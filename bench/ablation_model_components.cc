/**
 * @file
 * Ablation study (extension beyond the paper): which RPPM ingredients
 * buy the accuracy?
 *
 * The paper motivates RPPM by what the naive extensions *lack*:
 * "(1) it does not model contention in shared resources, (2) it does not
 * model cache coherence effects, and (3) it does not model
 * synchronization overhead" (Sec. I). This bench turns each mechanism
 * off individually and measures the resulting prediction error across a
 * representative slice of the suite:
 *
 *   full        the complete model
 *   -coherence  write invalidations not recorded (no coherence misses)
 *   -interfer.  shared LLC predicted from per-thread reuse distances
 *   -MLP        long-latency loads fully serialized (MLP = 1)
 *   -branch     perfect branch prediction assumed
 *   -ILP        Deff = front-end width (no window model)
 *   -sync       no Algorithm 2 (equivalent to the CRIT baseline)
 */

#include <cstdio>
#include <memory>

#include "common/stats.hh"
#include "common/table.hh"
#include "pipeline.hh"

int
main()
{
    using namespace rppm;
    using namespace rppm::bench;

    const MulticoreConfig cfg = baseConfig();

    // A slice covering the suite's behaviour space: coherence-heavy,
    // barrier-storm, pointer-chasing, compute-bound, condvar-heavy,
    // bandwidth-bound and branchy workloads...
    std::vector<WorkloadSpec> specs;
    for (const char *name : {"backprop", "bfs", "hotspot", "myocyte",
                             "particlefilter", "Canneal", "Fluidanimate",
                             "Streamcluster", "Vips"}) {
        specs.push_back(findBenchmark(name)->spec);
    }
    // ...plus two purpose-built stressors so the coherence and branch
    // columns have something to lose. coh-stress ping-pongs writes over
    // a small shared region (every reuse is a coherence miss); br-stress
    // is L1-resident compute with near-random branches.
    {
        WorkloadSpec s = barrierLoopSpec(4, 30, 8000);
        s.name = "coh-stress";
        s.kernel.privateBytes = 16 << 10;
        s.kernel.sharedBytes = 256 << 10;
        s.kernel.sharedFrac = 0.6;
        s.kernel.sharedWriteFrac = 0.5;
        s.kernel.reuseFrac = 0.6;
        s.kernel.hotLines = 48;
        s.kernel.randomFrac = 0.4;
        specs.push_back(s);
    }
    {
        WorkloadSpec s = barrierLoopSpec(4, 30, 8000);
        s.name = "br-stress";
        s.kernel.privateBytes = 16 << 10;
        s.kernel.reuseFrac = 0.8;
        s.kernel.fracLoad = 0.1;
        s.kernel.fracStore = 0.05;
        s.kernel.fracBranch = 0.2;
        s.kernel.branchEntropy = 0.35;
        s.kernel.chainFrac = 0.1;
        s.kernel.depMean = 30.0;
        specs.push_back(s);
    }

    // Each ablation variant is its own evaluator backend in one Study
    // grid. The -coherence variant carries a profiler-option override;
    // the profile cache keys on (workload, profiler options), so the
    // full-model profile is shared by every other variant and only the
    // stripped profile is produced in addition.
    Study study;
    for (const WorkloadSpec &spec : specs)
        study.addWorkload(spec);
    study.addConfig(cfg).jobs(defaultJobs());
    study.addEvaluator("sim");

    std::vector<std::string> variants;
    auto addVariant = [&](std::unique_ptr<Evaluator> evaluator) {
        variants.push_back(evaluator->label());
        study.addEvaluator(std::move(evaluator));
    };
    addVariant(std::make_unique<RppmEvaluator>("full"));
    {
        ProfilerOptions stripped;
        stripped.detectInvalidation = false;
        addVariant(std::make_unique<RppmEvaluator>("-coherence",
                                                   std::nullopt, stripped));
    }
    {
        RppmOptions o;
        o.eq1.llcUsesGlobalRd = false;
        addVariant(std::make_unique<RppmEvaluator>("-interfer.", o));
    }
    {
        RppmOptions o;
        o.eq1.mlpOverlap = false;
        addVariant(std::make_unique<RppmEvaluator>("-MLP", o));
    }
    {
        RppmOptions o;
        o.eq1.branch = false;
        addVariant(std::make_unique<RppmEvaluator>("-branch", o));
    }
    {
        RppmOptions o;
        o.eq1.ilpReplay = false;
        addVariant(std::make_unique<RppmEvaluator>("-ILP", o));
    }
    addVariant(std::make_unique<CritEvaluator>("-sync"));

    std::printf("==============================================================\n");
    std::printf("Ablation: mean absolute prediction error when removing one\n");
    std::printf("model ingredient at a time (Base config, 11 workloads).\n");
    std::printf("==============================================================\n\n");

    const StudyResult grid = study.run();

    std::vector<std::string> headers = {"Benchmark"};
    for (const std::string &v : variants)
        headers.push_back(v);
    TablePrinter table(headers);

    std::vector<std::vector<double>> errors(variants.size());
    for (const WorkloadSpec &spec : specs) {
        std::vector<std::string> row = {spec.name};
        for (size_t v = 0; v < variants.size(); ++v) {
            const double err =
                grid.errorVs(spec.name, cfg.name, variants[v], "sim");
            errors[v].push_back(err);
            row.push_back(fmtPct(err));
        }
        table.addRow(row);
    }
    {
        std::vector<std::string> row = {"average"};
        for (const auto &errs : errors)
            row.push_back(fmtPct(mean(errs)));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading: each column removes one mechanism. Degradation\n"
                "relative to 'full' quantifies that mechanism's value; the\n"
                "dominant contributors should be the ILP window model, the\n"
                "MLP overlap and the synchronization model, matching the\n"
                "paper's motivation for mechanistic multicore modeling.\n");
    return 0;
}

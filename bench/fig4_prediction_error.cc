/**
 * @file
 * Regenerates Figure 4 of the paper: prediction error of MAIN, CRIT and
 * RPPM versus cycle-level simulation for the Rodinia and Parsec
 * benchmarks, plus the per-suite and overall averages.
 *
 * Also echoes Table II (the Rodinia inputs of our synthetic suite).
 *
 * Paper numbers on the authors' setup: MAIN 45% avg (outliers > 100%),
 * CRIT 28% avg, RPPM 11.2% avg / 23% max. The expected *shape* on this
 * substrate: RPPM clearly beats CRIT which beats MAIN, MAIN blowing up
 * on Parsec pool benchmarks whose main thread does no real work.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "pipeline.hh"

int
main()
{
    using namespace rppm;
    using namespace rppm::bench;

    const MulticoreConfig cfg = baseConfig();

    std::printf("==============================================================\n");
    std::printf("Table II: Rodinia benchmarks and their inputs (synthetic\n");
    std::printf("equivalents; input column = paper's input for reference).\n");
    std::printf("==============================================================\n\n");
    {
        TablePrinter inputs({"Benchmark", "Input", "~uops (this repo)"});
        for (const SuiteEntry &entry : rodiniaSuite()) {
            inputs.addRow({entry.spec.name, entry.input,
                           std::to_string(entry.spec.approxTotalOps())});
        }
        std::printf("%s\n", inputs.render().c_str());
    }

    std::printf("==============================================================\n");
    std::printf("Figure 4: Prediction error for MAIN, CRIT and RPPM compared\n");
    std::printf("to cycle-level simulation (quad-core Base config).\n");
    std::printf("==============================================================\n\n");

    TablePrinter table({"Benchmark", "Suite", "MAIN", "CRIT", "RPPM",
                        "sim Mcycles"});
    AsciiBarChart chart({"MAIN", "CRIT", "RPPM"}, 40);
    std::vector<double> main_err, crit_err, rppm_err;
    std::vector<double> rod_rppm, par_rppm;

    // One Study grid: 26 workloads x Base config x {sim,rppm,main,crit},
    // profiled once each and evaluated on the worker pool.
    const std::vector<SuiteEntry> suite = fullSuite();
    const std::vector<PipelineResult> results = runSuite(suite, cfg);

    for (size_t i = 0; i < suite.size(); ++i) {
        const SuiteEntry &entry = suite[i];
        const PipelineResult &r = results[i];
        main_err.push_back(r.mainError());
        crit_err.push_back(r.critError());
        rppm_err.push_back(r.rppmError());
        (entry.suite == "rodinia" ? rod_rppm : par_rppm)
            .push_back(r.rppmError());
        table.addRow({r.name, entry.suite, fmtPct(r.mainError()),
                      fmtPct(r.critError()), fmtPct(r.rppmError()),
                      fmt(r.sim.totalCycles / 1e6, 1)});
        chart.addGroup(r.name,
                       {r.mainError(), r.critError(), r.rppmError()});
        std::fflush(stdout);
    }
    table.addRow({"average (all)", "", fmtPct(mean(main_err)),
                  fmtPct(mean(crit_err)), fmtPct(mean(rppm_err)), ""});
    table.addRow({"average (rodinia)", "", "", "", fmtPct(mean(rod_rppm)),
                  ""});
    table.addRow({"average (parsec)", "", "", "", fmtPct(mean(par_rppm)),
                  ""});
    table.addRow({"max", "", fmtPct(maxOf(main_err)),
                  fmtPct(maxOf(crit_err)), fmtPct(maxOf(rppm_err)), ""});
    std::printf("%s\n", table.render().c_str());

    std::printf("%s\n", chart.render().c_str());

    std::printf("Paper: MAIN 45%% avg, CRIT 28%% avg, RPPM 11.2%% avg "
                "(23%% max).\n");
    std::printf("This repro: MAIN %s avg, CRIT %s avg, RPPM %s avg "
                "(%s max).\n",
                fmtPct(mean(main_err)).c_str(),
                fmtPct(mean(crit_err)).c_str(),
                fmtPct(mean(rppm_err)).c_str(),
                fmtPct(maxOf(rppm_err)).c_str());
    return 0;
}

/**
 * @file
 * Regenerates Figure 5 of the paper: average per-thread CPI stacks by
 * RPPM versus simulation, normalized to the simulated total — per
 * benchmark, for all Rodinia and Parsec benchmarks.
 *
 * The paper attributes RPPM's residual error primarily to the base and
 * data-memory components; the same attribution gap shows up here (the
 * simulator's interval-union accounting and the model's additive Eq. 1
 * split overlapped cycles differently even when totals agree).
 */

#include <cstdio>

#include "common/table.hh"
#include "pipeline.hh"

int
main()
{
    using namespace rppm;
    using namespace rppm::bench;

    const MulticoreConfig cfg = baseConfig();

    std::printf("==============================================================\n");
    std::printf("Figure 5: normalized per-thread CPI stacks, RPPM (left bar,\n");
    std::printf("'R') vs simulation (right bar, 'S'), normalized to the\n");
    std::printf("simulated total CPI. mem = L2+LLC+DRAM components.\n");
    std::printf("==============================================================\n\n");

    TablePrinter table({"Benchmark", "", "base", "branch", "icache", "mem",
                        "sync", "total"});
    // The whole suite in one Study grid (see pipeline.hh).
    for (const PipelineResult &r : runSuite(fullSuite(), cfg)) {
        const CpiStack sim = r.sim.averageCpiStack();
        const CpiStack rppm = r.rppm.averageCpiStack();
        const double norm = sim.total();
        auto row = [&](const char *tag, const CpiStack &s) {
            table.addRow({tag == std::string("R") ? r.name : "", tag,
                          fmt(s[CpiComponent::Base] / norm, 3),
                          fmt(s[CpiComponent::Branch] / norm, 3),
                          fmt(s[CpiComponent::ICache] / norm, 3),
                          fmt(s.memTotal() / norm, 3),
                          fmt(s[CpiComponent::Sync] / norm, 3),
                          fmt(s.total() / norm, 3)});
        };
        row("R", rppm);
        row("S", sim);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading: 'S' rows total 1.000 by construction; an 'R' total\n"
                "above/below 1 is RPPM's CPI over/under-prediction. As in the\n"
                "paper, residual error concentrates in the base and mem\n"
                "components, which then skews the sync component.\n");
    return 0;
}

/**
 * @file
 * Regenerates Figure 6 of the paper: bottlegraphs for the Parsec
 * benchmarks — simulation on one side, RPPM's prediction on the other —
 * visualizing each thread's criticality share (box height) and
 * parallelism (box width).
 *
 * The paper's three groups should be recognizable: (1) well balanced
 * pools of four workers with an idle main thread, (2) main working
 * alongside the workers (facesim slightly main-heavy, freqmine clearly
 * main-bound), and (3) highly imbalanced main + three workers.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "pipeline.hh"
#include "sim/bottlegraph.hh"

int
main()
{
    using namespace rppm;
    using namespace rppm::bench;

    const MulticoreConfig cfg = baseConfig();

    std::printf("==============================================================\n");
    std::printf("Figure 6: bottlegraphs for the Parsec benchmarks. For each\n");
    std::printf("benchmark: simulated graph, RPPM-predicted graph, and the\n");
    std::printf("similarity of their normalized criticality shares.\n");
    std::printf("==============================================================\n\n");

    std::vector<double> similarities;
    // All ten Parsec benchmarks through one Study grid.
    for (const PipelineResult &r : runSuite(parsecSuite(), cfg)) {
        const Bottlegraph sim_graph = buildBottlegraph(r.sim);
        const Bottlegraph rppm_graph = r.rppm.bottlegraph();
        const double similarity =
            bottlegraphSimilarity(sim_graph, rppm_graph);
        similarities.push_back(similarity);

        std::printf("---- %s (similarity %s) ----\n", r.name.c_str(),
                    fmtPct(similarity).c_str());
        std::printf("%s", sim_graph.render("  simulation").c_str());
        std::printf("%s\n", rppm_graph.render("  RPPM").c_str());
        std::fflush(stdout);
    }
    std::printf("Average bottlegraph similarity: %s (1 = identical "
                "criticality shares).\n",
                fmtPct(mean(similarities)).c_str());
    std::printf("Paper take-away: RPPM accurately predicts the simulated\n"
                "bottlegraph, distinguishing balanced pools, main-heavy\n"
                "workloads (Freqmine) and 3-wide imbalanced groups.\n");
    return 0;
}

/**
 * @file
 * Performance micro-harness for the hot path: trace build, columnar
 * conversion, profiling (fused vs. legacy reference), the simulator
 * oracle (legacy AoS vs. columnar vs. parallel engines), single
 * prediction and a full Study sweep-grid evaluation (naive per-point
 * vs. memoized component engine), per workload kernel.
 *
 * Emits machine-readable JSON (schema "rppm-bench-perf-1") and can check
 * the measurements against a committed baseline, failing the process on
 * regression — this is what the CI perf-smoke job runs.
 *
 * Usage:
 *   bench_perf [--kernels a,b,c | --kernels all] [--filter REGEX]
 *              [--scale F] [--repeat N] [--jobs N] [--out FILE]
 *              [--baseline FILE [--max-regression F]]
 *              [--min-profile-speedup F] [--min-profile-par-speedup F]
 *              [--min-sim-speedup F] [--min-sim-par-speedup F]
 *              [--min-grid-speedup F] [--min-serve-speedup F]
 *              [--max-stream-overhead F]
 *              [--write-baseline FILE]
 *
 * --jobs drives every parallel knob at once: the Study worker pool of
 * the grid phases, the parallel profiler of the profile_par phase, the
 * parallel simulator of the sim_par phase, and the fully-parallel cold
 * Study of the study_cold phase (trace build + profile + memoized grid,
 * end to end from a spec). profile_par_speedup (fused wall time /
 * parallel wall time), sim_speedup (legacy / columnar), sim_par_speedup
 * (columnar sequential / parallel) and the other per-kernel speedups
 * are summarized as geomeans in a "summary" JSON block and on stdout.
 *
 * --filter selects kernels whose name matches REGEX (case-insensitive,
 * std::regex search). On its own it filters the full 26-kernel suite;
 * combined with --kernels it narrows that explicit set.
 *
 * Timings are the median of N repeats (N = --repeat, default 3): robust
 * against one noisy CI iteration in either direction, unlike best-of
 * (which a lucky run biases) or the mean (which a descheduled run
 * poisons). The regression check compares the normalized ns/op metrics
 * (profile_fused, predict, grid, grid_memo) against the baseline with a
 * relative tolerance (default 0.25 = fail when >25% slower). The
 * fused/legacy profile speedup and the grid memoization speedup are
 * machine-independent ratios and can be gated with
 * --min-profile-speedup / --min-grid-speedup (both per kernel). The
 * simulator-engine gates --min-sim-speedup / --min-sim-par-speedup
 * apply to the geomean over the kernel set instead: the sim phases run
 * tens of milliseconds at smoke scale, where per-kernel ratios are
 * noise-dominated, and the three engines are timed interleaved (see
 * medianOfInterleaved) so machine-speed drift cancels out of the
 * ratios.
 *
 * The grid phases evaluate the standard sweep grid — the Table-IV design
 * points, a per-core DVFS ladder on Base and every distinct thread
 * placement on a 2+2 big.LITTLE machine — end to end through a cold
 * Study (profiling included). "grid" forces the naive per-point path
 * (Study::memoization(false)); "grid_memo" is the default memoized
 * engine; grid_speedup is their ratio.
 *
 * The serve_warm phase measures the same sweep grid answered by a warm
 * in-process rppmd daemon (src/server) over its Unix-socket protocol:
 * the kernel's trace is served from an mmap'd file and its profile and
 * prediction memos stay resident across requests. serve_speedup =
 * study_cold_ms / serve_warm_ms is gated as a geomean via
 * --min-serve-speedup — the "predict many" payoff of keeping the
 * profile-once state alive in a daemon.
 *
 * The profile_stream phase runs the out-of-core streaming engine
 * (default chunk size, --jobs workers) over the in-memory trace;
 * stream_overhead = profile_stream_ms / profile_fused_ms is the price
 * of chunked execution on a trace that would have fit in memory anyway
 * — its geomean is gated via --max-stream-overhead (CI uses 1.15: the
 * pipeline may cost at most 15% over the fused sweep at smoke scale).
 *
 * Every medianOf-timed phase also records the getrusage max-RSS *delta*
 * across its repeats as <metric>_rss_delta_kb: how much that phase grew
 * the process's resident high-water mark. Deltas are order-dependent (a
 * phase dwarfed by an earlier one reports 0), but they make per-phase
 * memory growth visible in the nightly trajectory — in particular that
 * profile_stream's footprint stays small while traces scale.
 */

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <regex>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "sim/simulator.hh"
#include "study/study.hh"
#include "trace/columnar.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace {

using namespace rppm;
using namespace rppm::bench;
using Clock = std::chrono::steady_clock;

// Kernels with non-trivial multi-threaded memory interaction — the ones
// whose profiling cost dominates real Study grids. This is the reduced
// CI set; pass --kernels all for the full 26-kernel suite.
const char *kDefaultKernels =
    "bfs,cfd,srad,streamcluster,Canneal,Facesim,Fluidanimate,Vips";

struct KernelResult
{
    std::string name;
    std::string suite;
    uint32_t threads = 0;
    uint64_t ops = 0;
    // Wall milliseconds, median of N repeats.
    std::map<std::string, double> ms;
    // Growth of the process max-RSS high-water mark across a phase's
    // repeats, in kB (see file comment; kept separate from ms so the
    // ns/op machinery never treats it as a timing).
    std::map<std::string, double> rssDeltaKb;
    double profileSpeedup = 0.0;
    double profileParSpeedup = 0.0;
    double simSpeedup = 0.0;
    double simParSpeedup = 0.0;
    double gridSpeedup = 0.0;
    double serveSpeedup = 0.0;
    double streamOverhead = 0.0;

    double
    nsPerOp(const std::string &metric) const
    {
        auto it = ms.find(metric);
        if (it == ms.end() || ops == 0)
            return 0.0;
        return it->second * 1e6 / static_cast<double>(ops);
    }
};

double
elapsedMs(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/** Process max-RSS high-water mark in kB (Linux ru_maxrss unit). */
double
maxRssKb()
{
    struct rusage u;
    getrusage(RUSAGE_SELF, &u);
    return static_cast<double>(u.ru_maxrss);
}

/**
 * Median-of-N wall time of @p fn in milliseconds. The median tolerates a
 * single outlier repeat in either direction, so one descheduled (or one
 * suspiciously lucky) CI iteration cannot trip the regression gate.
 */
template <typename Fn>
double
medianOf(int repeat, Fn &&fn)
{
    std::vector<double> samples;
    samples.reserve(repeat);
    for (int r = 0; r < repeat; ++r) {
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        samples.push_back(elapsedMs(t0, t1));
    }
    std::sort(samples.begin(), samples.end());
    const size_t n = samples.size();
    return n % 2 == 1 ? samples[n / 2]
                      : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/**
 * Median wall time of each phase in @p fns, measured interleaved: round
 * r runs every phase once, in order, before round r+1 starts. Back-to-
 * back blocks (all repeats of phase A, then all of phase B) let slow
 * machine-speed drift — throttling, a noisy neighbor on a shared runner
 * — land entirely on one phase and skew A/B ratios; interleaving spreads
 * the drift across all phases so their ratios stay honest.
 */
std::vector<double>
medianOfInterleaved(int repeat,
                    const std::vector<std::function<void()>> &fns)
{
    std::vector<std::vector<double>> samples(fns.size());
    for (int r = 0; r < std::max(repeat, 1); ++r) {
        for (size_t i = 0; i < fns.size(); ++i) {
            const auto t0 = Clock::now();
            fns[i]();
            const auto t1 = Clock::now();
            samples[i].push_back(elapsedMs(t0, t1));
        }
    }
    std::vector<double> medians(fns.size());
    for (size_t i = 0; i < fns.size(); ++i) {
        std::sort(samples[i].begin(), samples[i].end());
        const size_t n = samples[i].size();
        medians[i] = n % 2 == 1 ?
            samples[i][n / 2] :
            0.5 * (samples[i][n / 2 - 1] + samples[i][n / 2]);
    }
    return medians;
}

/**
 * The standard sweep grid of the grid phases: design points multiply
 * across heterogeneous axes (configs x DVFS states x placements), which
 * is exactly the shape the memoized component engine exists for.
 */
std::vector<MulticoreConfig>
sweepConfigs(uint32_t numThreads)
{
    std::vector<MulticoreConfig> grid = tableIvConfigs();

    // Per-core DVFS ladder on Base: cores 1..3 take every combination of
    // three frequency levels (core 0 pins the reference clock domain).
    const MulticoreConfig base = baseConfig();
    const double levels[] = {1.67, 2.5, 3.33};
    for (double a : levels) {
        for (double b : levels) {
            for (double c : levels) {
                char name[48];
                std::snprintf(name, sizeof name, "dvfs-%.2f-%.2f-%.2f",
                              a, b, c);
                grid.push_back(dvfsConfig(base, {2.5, a, b, c}, name));
            }
        }
    }

    // Every distinct placement of the kernel's threads on a 2+2
    // big.LITTLE machine.
    for (const MulticoreConfig &m :
         mappingSweep(bigLittleConfig(2, 2), numThreads)) {
        grid.push_back(m);
    }
    return grid;
}

KernelResult
measureKernel(const SuiteEntry &entry, double scale, int repeat,
              unsigned jobs, uint64_t stream_chunk)
{
    KernelResult result;
    const WorkloadSpec spec = scaleSpec(entry.spec, scale);
    result.name = spec.name;
    result.suite = entry.suite;
    result.threads = spec.numThreads();

    // Timed phase wrapper: wall median plus the max-RSS growth across
    // the phase's repeats (see file comment on order dependence).
    const auto timed = [&](const char *metric,
                           const std::function<void()> &fn) {
        const double rss0 = maxRssKb();
        result.ms[metric] = medianOf(repeat, fn);
        result.rssDeltaKb[metric] = maxRssKb() - rss0;
    };

    WorkloadTrace trace;
    timed("build", [&] { trace = generateWorkload(spec); });
    result.ops = trace.totalOps();

    ColumnarTrace cols;
    timed("columnar", [&] { cols = ColumnarTrace::fromWorkload(trace); });

    WorkloadProfile profile;
    timed("profile_fused", [&] { profile = profileWorkload(cols); });
    timed("profile_legacy", [&] {
        WorkloadProfile legacy = profileWorkloadLegacy(trace);
        if (legacy.totalOps() != profile.totalOps())
            std::fprintf(stderr, "warning: legacy/fused op mismatch\n");
    });
    result.profileSpeedup =
        result.ms["profile_legacy"] / result.ms["profile_fused"];

    // Parallel epoch-sharded profiler on the harness's --jobs workers.
    // profile_par_speedup is fused/parallel wall time: > 1 means the
    // worker pool beats the single-threaded fused sweep (expect ~1.0 or
    // slightly below when --jobs 1 or on a single-core machine — the
    // sharded engine then pays its scatter overhead with no cores to
    // spend it on).
    ProfilerOptions paropts;
    paropts.jobs = jobs;
    WorkloadProfile parProfile;
    timed("profile_par", [&] {
        parProfile = profileWorkloadParallel(cols, paropts);
    });
    if (parProfile.totalOps() != profile.totalOps())
        std::fprintf(stderr, "warning: parallel/fused op mismatch\n");
    result.profileParSpeedup =
        result.ms["profile_fused"] / result.ms["profile_par"];

    // Out-of-core streaming engine over the same in-memory trace:
    // stream_overhead is what the chunk pipeline costs relative to the
    // fused sweep when memory pressure is not an issue (the case the
    // engine exists for is gated by the CI memory-cap job instead). The
    // chunk size is scaled so smoke-sized traces still split into
    // enough chunks to exercise the pipeline overlap, like a real
    // out-of-core run would.
    ProfilerOptions streamopts = paropts;
    streamopts.streamChunkRecords = stream_chunk > 0 ?
        stream_chunk :
        std::max<uint64_t>(result.ops / (8 * spec.numThreads()), 4096);
    WorkloadProfile streamProfile;
    timed("profile_stream", [&] {
        streamProfile = profileWorkloadStreaming(cols, streamopts);
    });
    if (streamProfile.totalOps() != profile.totalOps())
        std::fprintf(stderr, "warning: streaming/fused op mismatch\n");
    result.streamOverhead =
        result.ms["profile_stream"] / result.ms["profile_fused"];

    const MulticoreConfig base = baseConfig();
    timed("predict", [&] {
        const RppmPrediction pred = predict(profile, base);
        if (pred.totalCycles <= 0.0)
            std::fprintf(stderr, "warning: degenerate prediction\n");
    });

    // The simulator oracle, three engines over the same trace. All must
    // produce identical cycle counts (the differential test pins the
    // full results byte-identical; the bench cross-checks the headline
    // number as a cheap canary). sim_speedup is the columnar rewrite's
    // sequential win over the legacy AoS engine; sim_par_speedup is the
    // phased parallel engine's win over sequential columnar on --jobs
    // workers (expect ~1.0 or slightly below with --jobs 1 or on a
    // single-core machine — the phases then pay their scatter overhead
    // with no cores to spend it on).
    // The three engines are measured interleaved (legacy, columnar,
    // parallel, repeat) so machine-speed drift cancels out of the
    // speedup ratios instead of skewing whichever engine ran last.
    SimResult simRef, simCol, simPar;
    SimOptions simParOpts;
    simParOpts.jobs = jobs;
    const std::vector<double> simMs = medianOfInterleaved(
        repeat, {[&] { simRef = simulateLegacy(trace, base); },
                 [&] { simCol = simulate(cols, base); },
                 [&] { simPar = simulate(cols, base, simParOpts); }});
    result.ms["sim_legacy"] = simMs[0];
    result.ms["sim"] = simMs[1];
    result.ms["sim_par"] = simMs[2];
    if (simCol.totalCycles != simRef.totalCycles)
        std::fprintf(stderr, "warning: columnar/legacy sim mismatch\n");
    if (simPar.totalCycles != simRef.totalCycles)
        std::fprintf(stderr, "warning: parallel/legacy sim mismatch\n");
    result.simSpeedup = result.ms["sim_legacy"] / result.ms["sim"];
    result.simParSpeedup = result.ms["sim"] / result.ms["sim_par"];

    // Full facade path over the standard sweep grid: fresh Study per
    // repeat (profiling included) so the numbers reflect what a cold
    // grid evaluation actually costs. "grid" forces the naive per-point
    // predictor; "grid_memo" is the default memoized component engine —
    // bit-identical predictions, gated as a ratio below.
    const std::vector<MulticoreConfig> sweep = sweepConfigs(spec.numThreads());
    const auto runGrid = [&](bool memoize) {
        Study study;
        study.addWorkload(trace)
            .addConfigs(sweep)
            .addEvaluator("rppm")
            .memoization(memoize)
            .jobs(jobs);
        const StudyResult grid = study.run();
        if (grid.cells().empty())
            std::fprintf(stderr, "warning: empty grid\n");
    };
    timed("grid", [&] { runGrid(false); });
    timed("grid_memo", [&] { runGrid(true); });
    result.gridSpeedup = result.ms["grid"] / result.ms["grid_memo"];

    // Cold end-to-end Study: trace synthesis + (parallel) profiling +
    // the memoized sweep grid, all inside one spec-backed Study with
    // every jobs knob set — the "first contact with a new workload"
    // number the profile-once-predict-many pitch rests on.
    timed("study_cold", [&] {
        Study study;
        study.addWorkload(spec)
            .addConfigs(sweep)
            .addEvaluator("rppm")
            .profilerOptions(paropts)
            .jobs(jobs);
        const StudyResult cold = study.run();
        if (cold.cells().empty())
            std::fprintf(stderr, "warning: empty cold study\n");
    });

    // Warm-daemon serving: an in-process rppmd holding this kernel's
    // trace (mmap'd), profile and prediction memos hot answers the same
    // sweep grid over the wire. serve_speedup = study_cold / serve_warm
    // is the latency win of prediction-as-a-service over standing up a
    // cold in-process Study for every query.
    {
        const std::string tracePath =
            "/tmp/rppm_bench_" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
            spec.name + ".rppmtrc";
        saveTraceToFile(cols, tracePath);
        server::ServerOptions sopts;
        sopts.socketPath = tracePath + ".sock";
        sopts.workers = jobs;
        sopts.jobs = jobs;
        server::RppmServer daemon(sopts);
        daemon.start();
        server::RppmClient client;
        client.connect(sopts.socketPath);
        server::Query query;
        query.kind = server::WorkloadRefKind::TracePath;
        query.workload = tracePath;
        query.profiler = paropts;
        query.configs = sweep;
        // First contact warms the daemon (profile + memo tables), the
        // measured repeats are the steady-state request latency.
        if (client.evaluate(query).size() != sweep.size())
            std::fprintf(stderr, "warning: short serve grid\n");
        timed("serve_warm", [&] {
            if (client.evaluate(query).size() != sweep.size())
                std::fprintf(stderr, "warning: short serve grid\n");
        });
        client.close();
        daemon.stop();
        std::filesystem::remove(tracePath);
        result.serveSpeedup =
            result.ms["study_cold"] / result.ms["serve_warm"];
    }

    return result;
}

/** Geometric mean of one metric across kernels (0 when undefined). */
double
geomean(const std::vector<KernelResult> &results,
        const std::function<double(const KernelResult &)> &get)
{
    double logSum = 0.0;
    size_t n = 0;
    for (const KernelResult &r : results) {
        const double v = get(r);
        if (v > 0.0) {
            logSum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(logSum / static_cast<double>(n));
}

// -------------------------------------------------------------- JSON ---

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
resultsToJson(const std::vector<KernelResult> &results, double scale,
              int repeat, unsigned jobs)
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\n"
       << "  \"schema\": \"rppm-bench-perf-1\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"repeat\": " << repeat << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"kernels\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const KernelResult &r = results[i];
        os << "    {\n"
           << "      \"name\": \"" << jsonEscape(r.name) << "\",\n"
           << "      \"suite\": \"" << jsonEscape(r.suite) << "\",\n"
           << "      \"threads\": " << r.threads << ",\n"
           << "      \"ops\": " << r.ops << ",\n";
        for (const auto &[metric, ms] : r.ms) {
            os << "      \"" << metric << "_ms\": " << ms << ",\n"
               << "      \"" << metric << "_ns_per_op\": "
               << r.nsPerOp(metric) << ",\n";
        }
        for (const auto &[metric, kb] : r.rssDeltaKb)
            os << "      \"" << metric << "_rss_delta_kb\": " << kb
               << ",\n";
        os << "      \"stream_overhead\": " << r.streamOverhead << ",\n"
           << "      \"profile_speedup\": " << r.profileSpeedup << ",\n"
           << "      \"profile_par_speedup\": " << r.profileParSpeedup
           << ",\n"
           << "      \"sim_speedup\": " << r.simSpeedup << ",\n"
           << "      \"sim_par_speedup\": " << r.simParSpeedup << ",\n"
           << "      \"grid_speedup\": " << r.gridSpeedup << ",\n"
           << "      \"serve_speedup\": " << r.serveSpeedup << "\n"
           << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    // Geomean summary across the measured kernel set, precomputed so
    // trajectory dashboards (and humans) never re-derive it from the
    // per-kernel entries.
    os << "  ],\n"
       << "  \"summary\": {\n"
       << "    \"profile_speedup_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              return r.profileSpeedup;
          })
       << ",\n"
       << "    \"profile_par_speedup_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              return r.profileParSpeedup;
          })
       << ",\n"
       << "    \"sim_speedup_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              return r.simSpeedup;
          })
       << ",\n"
       << "    \"sim_par_speedup_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              return r.simParSpeedup;
          })
       << ",\n"
       << "    \"grid_speedup_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              return r.gridSpeedup;
          })
       << ",\n"
       << "    \"stream_overhead_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              return r.streamOverhead;
          })
       << ",\n"
       << "    \"study_cold_ms_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              const auto it = r.ms.find("study_cold");
              return it == r.ms.end() ? 0.0 : it->second;
          })
       << ",\n"
       << "    \"serve_warm_ms_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              const auto it = r.ms.find("serve_warm");
              return it == r.ms.end() ? 0.0 : it->second;
          })
       << ",\n"
       << "    \"serve_speedup_geomean\": "
       << geomean(results, [](const KernelResult &r) {
              return r.serveSpeedup;
          })
       << "\n  }\n}\n";
    return os.str();
}

/**
 * Minimal JSON reader for the harness's own schema: parses objects,
 * arrays, strings and numbers into flat per-kernel metric maps. Not a
 * general-purpose parser — it only needs to read what resultsToJson
 * wrote.
 */
class BaselineParser
{
  public:
    explicit BaselineParser(const std::string &text) : s_(text) {}

    /** kernel name -> (metric -> value). Throws std::runtime_error. */
    std::map<std::string, std::map<std::string, double>>
    parse()
    {
        std::map<std::string, std::map<std::string, double>> out;
        // Find the "kernels" array and walk its objects.
        seek("\"kernels\"");
        expect('[');
        skipWs();
        while (peek() == '{') {
            std::map<std::string, double> metrics;
            std::string name;
            expect('{');
            skipWs();
            while (peek() != '}') {
                const std::string key = string();
                expect(':');
                skipWs();
                if (peek() == '"') {
                    const std::string value = string();
                    if (key == "name")
                        name = value;
                } else {
                    metrics[key] = number();
                }
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                }
            }
            expect('}');
            if (name.empty())
                throw std::runtime_error("baseline kernel without name");
            out[name] = std::move(metrics);
            skipWs();
            if (peek() == ',') {
                ++pos_;
                skipWs();
            }
        }
        expect(']');
        return out;
    }

  private:
    void
    seek(const std::string &needle)
    {
        const size_t at = s_.find(needle, pos_);
        if (at == std::string::npos)
            throw std::runtime_error("baseline JSON: missing " + needle);
        pos_ = at + needle.size();
        skipWs();
        expect(':');
        skipWs();
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            throw std::runtime_error("baseline JSON: unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        skipWs();
        if (peek() != c) {
            throw std::runtime_error(
                std::string("baseline JSON: expected '") + c + "'");
        }
        ++pos_;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            char c = s_[pos_++];
            if (c == '\\')
                c = s_[pos_++];
            out.push_back(c);
        }
        ++pos_;
        return out;
    }

    double
    number()
    {
        skipWs();
        size_t end = pos_;
        while (end < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[end])) ||
                s_[end] == '.' || s_[end] == '-' || s_[end] == '+' ||
                s_[end] == 'e' || s_[end] == 'E')) {
            ++end;
        }
        if (end == pos_)
            throw std::runtime_error("baseline JSON: expected number");
        const double v = std::stod(s_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

// -------------------------------------------------------- regression ---

/** Metrics gated against the baseline (normalized per-op, so trace size
 *  changes show up too). */
const char *kGatedMetrics[] = {"profile_fused_ns_per_op",
                               "profile_par_ns_per_op",
                               "sim_ns_per_op", "sim_par_ns_per_op",
                               "predict_ns_per_op", "grid_ns_per_op",
                               "grid_memo_ns_per_op"};

int
checkRegressions(const std::vector<KernelResult> &results,
                 const std::string &baseline_path, double max_regression,
                 double min_profile_speedup, double min_profile_par_speedup,
                 double min_sim_speedup, double min_sim_par_speedup,
                 double min_grid_speedup, double min_serve_speedup,
                 double max_stream_overhead)
{
    std::ifstream is(baseline_path);
    if (!is) {
        std::fprintf(stderr, "bench_perf: cannot open baseline %s\n",
                     baseline_path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::map<std::string, std::map<std::string, double>> baseline;
    try {
        baseline = BaselineParser(buf.str()).parse();
    } catch (const std::exception &ex) {
        std::fprintf(stderr, "bench_perf: bad baseline: %s\n", ex.what());
        return 2;
    }

    int failures = 0;
    for (const KernelResult &r : results) {
        const auto base_it = baseline.find(r.name);
        if (base_it == baseline.end()) {
            std::printf("  %-16s (no baseline entry, skipped)\n",
                        r.name.c_str());
            continue;
        }
        for (const char *metric : kGatedMetrics) {
            const auto m = base_it->second.find(metric);
            if (m == base_it->second.end() || m->second <= 0.0)
                continue;
            const std::string bare(metric,
                                   std::strlen(metric) -
                                       std::strlen("_ns_per_op"));
            const double now = r.nsPerOp(bare);
            const double ratio = now / m->second;
            const bool bad = ratio > 1.0 + max_regression;
            std::printf("  %-16s %-24s %8.1f -> %8.1f ns/op (%+5.1f%%)%s\n",
                        r.name.c_str(), metric, m->second, now,
                        (ratio - 1.0) * 100.0, bad ? "  REGRESSION" : "");
            if (bad)
                ++failures;
        }
        if (min_profile_speedup > 0.0 &&
            r.profileSpeedup < min_profile_speedup) {
            std::printf("  %-16s profile_speedup %.2fx < required %.2fx"
                        "  REGRESSION\n",
                        r.name.c_str(), r.profileSpeedup,
                        min_profile_speedup);
            ++failures;
        }
        if (min_profile_par_speedup > 0.0 &&
            r.profileParSpeedup < min_profile_par_speedup) {
            std::printf("  %-16s profile_par_speedup %.2fx < required "
                        "%.2fx  REGRESSION\n",
                        r.name.c_str(), r.profileParSpeedup,
                        min_profile_par_speedup);
            ++failures;
        }
        if (min_grid_speedup > 0.0 && r.gridSpeedup < min_grid_speedup) {
            std::printf("  %-16s grid_speedup %.2fx < required %.2fx"
                        "  REGRESSION\n",
                        r.name.c_str(), r.gridSpeedup, min_grid_speedup);
            ++failures;
        }
    }
    // The simulator-engine gates apply to the geomean over the kernel
    // set, not per kernel: at smoke scale the per-kernel sim phases run
    // tens of milliseconds, where scheduler and frequency noise swings
    // individual legacy/columnar ratios by tens of percent run to run.
    // The geomean over the whole set is the stable statistic (the
    // profile gates predate this and keep their per-kernel form — their
    // margins are several times wider).
    if (min_sim_speedup > 0.0) {
        const double g = geomean(results, [](const KernelResult &r) {
            return r.simSpeedup;
        });
        const bool bad = g < min_sim_speedup;
        std::printf("  %-16s sim_speedup geomean %.2fx (required %.2fx)%s\n",
                    "(all kernels)", g, min_sim_speedup,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (min_sim_par_speedup > 0.0) {
        const double g = geomean(results, [](const KernelResult &r) {
            return r.simParSpeedup;
        });
        const bool bad = g < min_sim_par_speedup;
        std::printf("  %-16s sim_par_speedup geomean %.2fx "
                    "(required %.2fx)%s\n",
                    "(all kernels)", g, min_sim_par_speedup,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    // The streaming-overhead gate is self-relative (streaming vs. fused
    // wall time in the same run) and a geomean, for the same noise
    // reasons as the sim gates; profile_stream stays out of
    // kGatedMetrics because the ratio, not the machine-dependent ns/op,
    // is the contract.
    if (max_stream_overhead > 0.0) {
        const double g = geomean(results, [](const KernelResult &r) {
            return r.streamOverhead;
        });
        const bool bad = g > max_stream_overhead;
        std::printf("  %-16s stream_overhead geomean %.2fx "
                    "(allowed %.2fx)%s\n",
                    "(all kernels)", g, max_stream_overhead,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    // The serving gate is a geomean for the same reason: a warm daemon
    // round-trip is milliseconds at smoke scale, so per-kernel ratios
    // are dominated by scheduler noise.
    if (min_serve_speedup > 0.0) {
        const double g = geomean(results, [](const KernelResult &r) {
            return r.serveSpeedup;
        });
        const bool bad = g < min_serve_speedup;
        std::printf("  %-16s serve_speedup geomean %.2fx "
                    "(required %.2fx)%s\n",
                    "(all kernels)", g, min_serve_speedup,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (failures > 0) {
        std::fprintf(stderr,
                     "bench_perf: %d metric(s) regressed beyond %.0f%%\n",
                     failures, max_regression * 100.0);
        return 1;
    }
    std::printf("bench_perf: no regressions (tolerance %.0f%%)\n",
                max_regression * 100.0);
    return 0;
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "bench_perf: cannot write %s\n", path.c_str());
        std::exit(2);
    }
    os << content;
}

std::vector<std::string>
splitCsv(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernels = kDefaultKernels;
    bool kernels_given = false;
    std::string filter;
    // Default to the gitignored scratch name so casual local runs never
    // clobber the committed full-scale BENCH_results.json; CI and
    // intentional refreshes pass --out BENCH_results.json explicitly.
    std::string out_path = "BENCH_results.local.json";
    std::string baseline_path;
    std::string write_baseline_path;
    double scale = 0.25;
    double max_regression = 0.25;
    double min_profile_speedup = 0.0;
    double min_profile_par_speedup = 0.0;
    double min_sim_speedup = 0.0;
    double min_sim_par_speedup = 0.0;
    double min_grid_speedup = 0.0;
    double min_serve_speedup = 0.0;
    double max_stream_overhead = 0.0;
    uint64_t stream_chunk = 0;
    int repeat = 3;
    unsigned jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_perf: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--kernels") {
            kernels = next();
            kernels_given = true;
        } else if (arg == "--filter") {
            filter = next();
        } else if (arg == "--scale") {
            scale = std::stod(next());
        } else if (arg == "--repeat") {
            repeat = std::max(1, std::atoi(next().c_str()));
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::max(1, std::atoi(next().c_str())));
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--max-regression") {
            max_regression = std::stod(next());
        } else if (arg == "--min-profile-speedup") {
            min_profile_speedup = std::stod(next());
        } else if (arg == "--min-profile-par-speedup") {
            min_profile_par_speedup = std::stod(next());
        } else if (arg == "--min-sim-speedup") {
            min_sim_speedup = std::stod(next());
        } else if (arg == "--min-sim-par-speedup") {
            min_sim_par_speedup = std::stod(next());
        } else if (arg == "--min-grid-speedup") {
            min_grid_speedup = std::stod(next());
        } else if (arg == "--min-serve-speedup") {
            min_serve_speedup = std::stod(next());
        } else if (arg == "--max-stream-overhead") {
            max_stream_overhead = std::stod(next());
        } else if (arg == "--stream-chunk") {
            stream_chunk = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--write-baseline") {
            write_baseline_path = next();
        } else if (arg == "--list") {
            for (const SuiteEntry &e : fullSuite())
                std::printf("%s\n", e.spec.name.c_str());
            return 0;
        } else {
            std::fprintf(stderr, "bench_perf: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    std::vector<SuiteEntry> entries;
    if (kernels == "all" || (!filter.empty() && !kernels_given)) {
        // --filter on its own selects from the whole suite.
        entries = fullSuite();
    } else {
        for (const std::string &name : splitCsv(kernels)) {
            const auto entry = findBenchmark(name);
            if (!entry) {
                std::fprintf(stderr, "bench_perf: unknown kernel %s\n",
                             name.c_str());
                return 2;
            }
            entries.push_back(*entry);
        }
    }
    if (!filter.empty()) {
        std::regex re;
        try {
            re.assign(filter, std::regex::icase);
        } catch (const std::regex_error &e) {
            std::fprintf(stderr, "bench_perf: bad --filter regex: %s\n",
                         e.what());
            return 2;
        }
        std::erase_if(entries, [&re](const SuiteEntry &e) {
            return !std::regex_search(e.spec.name, re);
        });
        if (entries.empty()) {
            std::fprintf(stderr,
                         "bench_perf: --filter '%s' matches no kernel\n",
                         filter.c_str());
            return 2;
        }
    }

    std::printf("bench_perf: %zu kernel(s), scale %.2f, median of %d\n",
                entries.size(), scale, repeat);
    std::vector<KernelResult> results;
    for (const SuiteEntry &entry : entries) {
        KernelResult r =
            measureKernel(entry, scale, repeat, jobs, stream_chunk);
        std::printf("  %-16s ops=%8llu build=%7.1fms profile=%7.1fms "
                    "(legacy %7.1fms, %.2fx; par %7.1fms, %.2fx; stream "
                    "%7.1fms, %.2fx) "
                    "sim=%7.1fms (legacy %7.1fms, %.2fx; par %7.1fms, "
                    "%.2fx) predict=%6.2fms grid=%7.1fms (memo %7.1fms, "
                    "%.2fx) cold=%7.1fms serve=%6.1fms (%.2fx)\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.ops), r.ms["build"],
                    r.ms["profile_fused"], r.ms["profile_legacy"],
                    r.profileSpeedup, r.ms["profile_par"],
                    r.profileParSpeedup, r.ms["profile_stream"],
                    r.streamOverhead, r.ms["sim"], r.ms["sim_legacy"],
                    r.simSpeedup, r.ms["sim_par"], r.simParSpeedup,
                    r.ms["predict"], r.ms["grid"],
                    r.ms["grid_memo"], r.gridSpeedup, r.ms["study_cold"],
                    r.ms["serve_warm"], r.serveSpeedup);
        results.push_back(std::move(r));
    }
    std::printf("bench_perf: geomean profile_speedup %.2fx | "
                "profile_par_speedup %.2fx (jobs %u) | stream_overhead "
                "%.2fx | sim_speedup "
                "%.2fx | sim_par_speedup %.2fx | grid_speedup "
                "%.2fx | study_cold %.1fms | serve_warm %.1fms "
                "(%.2fx)\n",
                geomean(results, [](const KernelResult &r) {
                    return r.profileSpeedup;
                }),
                geomean(results, [](const KernelResult &r) {
                    return r.profileParSpeedup;
                }),
                jobs,
                geomean(results, [](const KernelResult &r) {
                    return r.streamOverhead;
                }),
                geomean(results, [](const KernelResult &r) {
                    return r.simSpeedup;
                }),
                geomean(results, [](const KernelResult &r) {
                    return r.simParSpeedup;
                }),
                geomean(results, [](const KernelResult &r) {
                    return r.gridSpeedup;
                }),
                geomean(results, [](const KernelResult &r) {
                    const auto it = r.ms.find("study_cold");
                    return it == r.ms.end() ? 0.0 : it->second;
                }),
                geomean(results, [](const KernelResult &r) {
                    const auto it = r.ms.find("serve_warm");
                    return it == r.ms.end() ? 0.0 : it->second;
                }),
                geomean(results, [](const KernelResult &r) {
                    return r.serveSpeedup;
                }));

    const std::string json = resultsToJson(results, scale, repeat, jobs);
    writeFileOrDie(out_path, json);
    std::printf("bench_perf: wrote %s\n", out_path.c_str());
    if (!write_baseline_path.empty()) {
        writeFileOrDie(write_baseline_path, json);
        std::printf("bench_perf: wrote baseline %s\n",
                    write_baseline_path.c_str());
    }

    if (!baseline_path.empty()) {
        return checkRegressions(results, baseline_path, max_regression,
                                min_profile_speedup,
                                min_profile_par_speedup, min_sim_speedup,
                                min_sim_par_speedup, min_grid_speedup,
                                min_serve_speedup, max_stream_overhead);
    }
    return 0;
}

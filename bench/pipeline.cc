#include "pipeline.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/stats.hh"

namespace rppm::bench {

double
PipelineResult::rppmError() const
{
    return absRelativeError(rppm.totalCycles, sim.totalCycles);
}

double
PipelineResult::mainError() const
{
    return absRelativeError(mainPrediction, sim.totalCycles);
}

double
PipelineResult::critError() const
{
    return absRelativeError(critPrediction, sim.totalCycles);
}

unsigned
defaultJobs()
{
    // rppm-lint: rng-ok(worker count only; results match at any jobs)
    if (const char *env = std::getenv("RPPM_JOBS")) {
        const long n = std::atol(env);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
addBenchEvaluators(Study &study)
{
    study.addEvaluator("sim")
        .addEvaluator("rppm")
        .addEvaluator("main")
        .addEvaluator("crit");
}

PipelineResult
extractPipelineResult(const StudyResult &grid, const std::string &workload,
                      const std::string &config)
{
    PipelineResult result;
    result.name = workload;
    result.sim = *grid.at(workload, config, "sim").sim;
    result.rppm = *grid.at(workload, config, "rppm").prediction;
    result.mainPrediction = grid.at(workload, config, "main").cycles;
    result.critPrediction = grid.at(workload, config, "crit").cycles;
    return result;
}

PipelineResult
runPipeline(const SuiteEntry &entry, const MulticoreConfig &cfg)
{
    return runSuite({entry}, cfg)[0];
}

std::vector<PipelineResult>
runSuite(const std::vector<SuiteEntry> &entries, const MulticoreConfig &cfg,
         unsigned jobs)
{
    Study study;
    study.addSuite(entries).addConfig(cfg).jobs(
        jobs == 0 ? defaultJobs() : jobs);
    addBenchEvaluators(study);
    const StudyResult grid = study.run();

    std::vector<PipelineResult> results;
    results.reserve(entries.size());
    for (const SuiteEntry &entry : entries)
        results.push_back(
            extractPipelineResult(grid, entry.spec.name, cfg.name));
    return results;
}

WorkloadSpec
scaleSpec(WorkloadSpec spec, double scale)
{
    auto mul = [scale](uint64_t v) {
        return std::max<uint64_t>(1, static_cast<uint64_t>(
            static_cast<double>(v) * scale));
    };
    spec.opsPerEpoch = mul(spec.opsPerEpoch);
    spec.initOps = mul(spec.initOps);
    spec.finalOps = mul(spec.finalOps);
    spec.itemOps = mul(spec.itemOps);
    return spec;
}

} // namespace rppm::bench

#include "pipeline.hh"

#include <algorithm>

#include "common/stats.hh"
#include "profile/profiler.hh"
#include "rppm/baselines.hh"

namespace rppm::bench {

double
PipelineResult::rppmError() const
{
    return absRelativeError(rppm.totalCycles, sim.totalCycles);
}

double
PipelineResult::mainError() const
{
    return absRelativeError(mainPrediction, sim.totalCycles);
}

double
PipelineResult::critError() const
{
    return absRelativeError(critPrediction, sim.totalCycles);
}

PipelineResult
runPipeline(const SuiteEntry &entry, const MulticoreConfig &cfg)
{
    const WorkloadTrace trace = generateWorkload(entry.spec);
    const WorkloadProfile profile = profileWorkload(trace);

    PipelineResult result;
    result.name = entry.spec.name;
    result.sim = simulate(trace, cfg);
    result.rppm = predict(profile, cfg);
    result.mainPrediction = predictMain(profile, cfg);
    result.critPrediction = predictCrit(profile, cfg);
    return result;
}

WorkloadSpec
scaleSpec(WorkloadSpec spec, double scale)
{
    auto mul = [scale](uint64_t v) {
        return std::max<uint64_t>(1, static_cast<uint64_t>(
            static_cast<double>(v) * scale));
    };
    spec.opsPerEpoch = mul(spec.opsPerEpoch);
    spec.initOps = mul(spec.initOps);
    spec.finalOps = mul(spec.finalOps);
    spec.itemOps = mul(spec.itemOps);
    return spec;
}

} // namespace rppm::bench

/**
 * @file
 * Shared driver for the bench harnesses: runs the full RPPM pipeline
 * (generate -> simulate -> profile -> predict + baselines) for one
 * benchmark of the suite, on one or more configurations.
 */

#ifndef RPPM_BENCH_PIPELINE_HH
#define RPPM_BENCH_PIPELINE_HH

#include <string>
#include <vector>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "workload/suite.hh"

namespace rppm::bench {

/** Everything the table/figure harnesses need for one benchmark. */
struct PipelineResult
{
    std::string name;
    SimResult sim;
    RppmPrediction rppm;
    double mainPrediction = 0.0; ///< MAIN baseline (cycles)
    double critPrediction = 0.0; ///< CRIT baseline (cycles)

    double rppmError() const;
    double mainError() const;
    double critError() const;
};

/** Run the full pipeline for @p entry on @p cfg. */
PipelineResult runPipeline(const SuiteEntry &entry,
                           const MulticoreConfig &cfg);

/** Scale factor applied to suite workloads (1 = full size). */
WorkloadSpec scaleSpec(WorkloadSpec spec, double scale);

} // namespace rppm::bench

#endif // RPPM_BENCH_PIPELINE_HH

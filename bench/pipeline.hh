/**
 * @file
 * Shared driver for the bench harnesses, built on the rppm::Study
 * facade: one grid evaluation (workloads x config x {sim, rppm, main,
 * crit}) replaces the hand-wired generate -> simulate -> profile ->
 * predict chain each harness used to carry. Workloads are profiled once
 * through the study's profile cache and grid cells run on a worker pool
 * (RPPM_JOBS environment knob, default: all hardware threads).
 */

#ifndef RPPM_BENCH_PIPELINE_HH
#define RPPM_BENCH_PIPELINE_HH

#include <string>
#include <vector>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "study/study.hh"
#include "workload/suite.hh"

namespace rppm::bench {

/** Everything the table/figure harnesses need for one benchmark. */
struct PipelineResult
{
    std::string name;
    SimResult sim;
    RppmPrediction rppm;
    double mainPrediction = 0.0; ///< MAIN baseline (cycles)
    double critPrediction = 0.0; ///< CRIT baseline (cycles)

    double rppmError() const;
    double mainError() const;
    double critError() const;
};

/**
 * Worker-pool size for bench grids: the RPPM_JOBS environment variable
 * when set (>= 1), otherwise all hardware threads.
 */
unsigned defaultJobs();

/** Populate @p study with the four standard bench evaluators. */
void addBenchEvaluators(Study &study);

/** Extract one benchmark's PipelineResult from a completed grid. */
PipelineResult extractPipelineResult(const StudyResult &grid,
                                     const std::string &workload,
                                     const std::string &config);

/** Run the full pipeline for @p entry on @p cfg through the facade. */
PipelineResult runPipeline(const SuiteEntry &entry,
                           const MulticoreConfig &cfg);

/**
 * Batch variant: evaluate all of @p entries on @p cfg in one Study
 * (shared profile cache, parallel grid). Results are in entry order.
 */
std::vector<PipelineResult>
runSuite(const std::vector<SuiteEntry> &entries, const MulticoreConfig &cfg,
         unsigned jobs = 0);

/** Scale factor applied to suite workloads (1 = full size). */
WorkloadSpec scaleSpec(WorkloadSpec spec, double scale);

} // namespace rppm::bench

#endif // RPPM_BENCH_PIPELINE_HH

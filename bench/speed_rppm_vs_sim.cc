/**
 * @file
 * Speed benchmarks backing the paper's "Rapid" claim: profiling is a
 * one-time cost (paper Sec. VII: at least an order of magnitude faster
 * than simulation per evaluated configuration), and evaluating the
 * analytical model for one more design point costs far less than one
 * more simulation — which is what makes design-space exploration cheap.
 *
 * Uses google-benchmark. The workload is a mid-size suite entry scaled
 * down so each iteration stays in the millisecond range.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "pipeline.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"

namespace {

using namespace rppm;
using namespace rppm::bench;

const SuiteEntry &
benchEntry()
{
    static const SuiteEntry entry = [] {
        SuiteEntry e = *findBenchmark("hotspot");
        e.spec = scaleSpec(e.spec, 0.25);
        return e;
    }();
    return entry;
}

const WorkloadTrace &
benchTrace()
{
    static const WorkloadTrace trace = generateWorkload(benchEntry().spec);
    return trace;
}

/**
 * The shared Study every grid benchmark runs against. Persisting the
 * Study across iterations means its ProfileCache serves the one profile
 * all benches share — the same "profile once, predict many" path the
 * other bench harnesses use — instead of silently re-profiling the
 * workload on every iteration (which used to dominate the reported
 * "grid" time and understate the speedup).
 */
Study &
benchStudy()
{
    // Built in place: a Study is not movable (the cache holds a mutex).
    static Study study;
    static const bool initialized = [] {
        study.addWorkload(benchEntry()).addConfigs(tableIvConfigs());
        study.addEvaluator("rppm");
        return true;
    }();
    (void)initialized;
    return study;
}

const WorkloadProfile &
benchProfile()
{
    // Through the shared study's cache: one profiling run per process.
    static const std::shared_ptr<const WorkloadProfile> profile =
        benchStudy().profile(benchEntry().spec.name);
    return *profile;
}

void
BM_GenerateWorkload(benchmark::State &state)
{
    for (auto _ : state) {
        const WorkloadTrace trace = generateWorkload(benchEntry().spec);
        benchmark::DoNotOptimize(trace.totalOps());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(benchTrace().totalOps()));
}

void
BM_Simulate(benchmark::State &state)
{
    const WorkloadTrace &trace = benchTrace();
    const MulticoreConfig cfg = baseConfig();
    for (auto _ : state) {
        const SimResult res = simulate(trace, cfg);
        benchmark::DoNotOptimize(res.totalCycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.totalOps()));
}

void
BM_ProfileOnce(benchmark::State &state)
{
    const WorkloadTrace &trace = benchTrace();
    for (auto _ : state) {
        const WorkloadProfile prof = profileWorkload(trace);
        benchmark::DoNotOptimize(prof.totalOps());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.totalOps()));
}

void
BM_PredictOneConfig(benchmark::State &state)
{
    const WorkloadProfile &prof = benchProfile();
    const MulticoreConfig cfg = baseConfig();
    for (auto _ : state) {
        const RppmPrediction pred = predict(prof, cfg);
        benchmark::DoNotOptimize(pred.totalCycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(benchTrace().totalOps()));
}

void
BM_PredictOneConfigFast(benchmark::State &state)
{
    // Fast path: skip the CPI-stack decomposition (same predicted total,
    // one window replay instead of five).
    const WorkloadProfile &prof = benchProfile();
    const MulticoreConfig cfg = baseConfig();
    RppmOptions opts;
    opts.eq1.decompose = false;
    for (auto _ : state) {
        const RppmPrediction pred = predict(prof, cfg, opts);
        benchmark::DoNotOptimize(pred.totalCycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(benchTrace().totalOps()));
}

void
BM_PredictDesignSpace(benchmark::State &state)
{
    // The amortization story: five design points from one profile.
    const WorkloadProfile &prof = benchProfile();
    const auto configs = tableIvConfigs();
    for (auto _ : state) {
        double sum = 0.0;
        for (const auto &cfg : configs)
            sum += predict(prof, cfg).totalSeconds;
        benchmark::DoNotOptimize(sum);
    }
}

void
BM_SimulateDesignSpace(benchmark::State &state)
{
    const WorkloadTrace &trace = benchTrace();
    const auto configs = tableIvConfigs();
    for (auto _ : state) {
        double sum = 0.0;
        for (const auto &cfg : configs)
            sum += simulate(trace, cfg).totalSeconds;
        benchmark::DoNotOptimize(sum);
    }
}

void
BM_StudyGridSerial(benchmark::State &state)
{
    // The facade end-to-end: one workload x five design points x the
    // analytical model, the profile served from the shared study's cache
    // (not re-profiled per iteration).
    Study &study = benchStudy();
    benchProfile(); // warm the cache outside the timed region
    for (auto _ : state) {
        study.jobs(1);
        const StudyResult grid = study.run();
        benchmark::DoNotOptimize(grid.cells().size());
    }
}

void
BM_StudyGridParallel(benchmark::State &state)
{
    // Same grid on the worker pool (state.range(0) workers).
    Study &study = benchStudy();
    benchProfile();
    for (auto _ : state) {
        study.jobs(static_cast<unsigned>(state.range(0)));
        const StudyResult grid = study.run();
        benchmark::DoNotOptimize(grid.cells().size());
    }
}

void
BM_SpeedupRppmVsSim(benchmark::State &state)
{
    // The paper's headline ratio, from the same cached profile: evaluate
    // one more design point analytically vs. one more simulation. The
    // reported "speedup" counter is sim time / predict time.
    const WorkloadProfile &prof = benchProfile();
    const WorkloadTrace &trace = benchTrace();
    const MulticoreConfig cfg = baseConfig();
    double predict_s = 0.0, sim_s = 0.0;
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        const RppmPrediction pred = predict(prof, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        const SimResult sim = simulate(trace, cfg);
        const auto t2 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(pred.totalCycles + sim.totalCycles);
        predict_s += std::chrono::duration<double>(t1 - t0).count();
        sim_s += std::chrono::duration<double>(t2 - t1).count();
    }
    state.counters["speedup"] = predict_s > 0.0 ? sim_s / predict_s : 0.0;
}

BENCHMARK(BM_GenerateWorkload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfileOnce)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictOneConfig)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictOneConfigFast)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PredictDesignSpace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateDesignSpace)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StudyGridSerial)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StudyGridParallel)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SpeedupRppmVsSim)->Unit(benchmark::kMillisecond);

} // namespace

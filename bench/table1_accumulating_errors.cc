/**
 * @file
 * Regenerates Table I of the paper: accumulating prediction errors in
 * barrier-synchronized applications.
 *
 * The micro-benchmark is the one the paper describes (Sec. II-A): a loop
 * of one million iterations, each iteration taking the same time,
 * parallelized over n threads with a barrier per iteration. The
 * "analytical model" is 100% accurate on average but each per-thread
 * inter-barrier prediction carries a uniform random error within a bound.
 * Because each inter-barrier epoch is timed by the *slowest* thread, the
 * overall prediction error accumulates: E[max_n(1+e)] - 1 = b(n-1)/(n+1)
 * for uniform errors in [-b, +b] — which the Monte-Carlo rows below
 * reproduce and the closed-form column confirms.
 */

#include <cstdio>

#include "common/rng.hh"
#include "common/table.hh"
#include "pipeline.hh"

namespace {

double
accumulatedError(uint32_t threads, double bound, uint32_t barriers,
                 rppm::Rng &rng)
{
    double predicted_total = 0.0;
    for (uint32_t b = 0; b < barriers; ++b) {
        double predicted_max = 0.0;
        for (uint32_t t = 0; t < threads; ++t) {
            predicted_max = std::max(
                predicted_max, 1.0 + rng.nextUniform(-bound, bound));
        }
        predicted_total += predicted_max;
    }
    return predicted_total / static_cast<double>(barriers) - 1.0;
}

} // namespace

int
main()
{
    using rppm::fmtPct;

    std::printf("==============================================================\n");
    std::printf("Table I: Accumulating prediction errors in barrier-\n");
    std::printf("synchronized applications (1M-iteration barrier loop).\n");
    std::printf("Overall prediction error vs thread count and inter-barrier\n");
    std::printf("error bound. Paper: 0/0.33/0.60/0.78/0.88%% at 1%% bound.\n");
    std::printf("==============================================================\n\n");

    constexpr uint32_t kIterations = 1000000; // as in the paper
    const double bounds[] = {0.01, 0.05, 0.10};
    const uint32_t thread_counts[] = {1, 2, 4, 8, 16};

    rppm::TablePrinter table(
        {"#Threads", "1%", "5%", "10%", "closed form (5%)"});
    rppm::Rng rng(0x7ab1e1);
    for (uint32_t n : thread_counts) {
        std::vector<std::string> row;
        row.push_back(std::to_string(n));
        for (double b : bounds)
            row.push_back(fmtPct(accumulatedError(n, b, kIterations, rng),
                                 2));
        const double closed =
            n == 1 ? 0.0 : 0.05 * (n - 1) / static_cast<double>(n + 1);
        row.push_back(fmtPct(closed, 2));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading: with a single thread, over- and under-estimations\n"
                "cancel; with more threads, the slowest thread defines each\n"
                "inter-barrier epoch, so errors accumulate and grow with\n"
                "thread count — motivating accurate per-epoch prediction.\n\n");

    // Companion measurement on the real pipeline: the same barrier-loop
    // shape, scaled down, evaluated sim-vs-RPPM through the Study
    // facade. RPPM's per-epoch modeling keeps the error flat where a
    // bounded-per-epoch model would accumulate it.
    std::printf("==============================================================\n");
    std::printf("Companion: RPPM error on a real barrier loop (scaled-down),\n");
    std::printf("via the Study facade (sim + rppm backends, one grid).\n");
    std::printf("==============================================================\n\n");
    {
        using namespace rppm::bench;
        const rppm::MulticoreConfig cfg = rppm::baseConfig();
        rppm::Study study;
        std::vector<std::string> names;
        for (uint32_t n : {2u, 4u}) {
            rppm::WorkloadSpec spec =
                rppm::barrierLoopSpec(n, 50, 4000);
            spec.name = "barrier-loop-" + std::to_string(n) + "t";
            names.push_back(spec.name);
            study.addWorkload(spec);
        }
        study.addConfig(cfg)
            .addEvaluator("rppm")
            .addEvaluator("sim")
            .jobs(defaultJobs());
        const rppm::StudyResult grid = study.run();

        rppm::TablePrinter real({"#Threads", "sim Mcycles", "RPPM Mcycles",
                                 "error"});
        for (const std::string &name : names) {
            const auto &sim = grid.at(name, cfg.name, "sim");
            const auto &rppm_cell = grid.at(name, cfg.name, "rppm");
            real.addRow({name.substr(name.size() - 2),
                         rppm::fmt(sim.cycles / 1e6, 2),
                         rppm::fmt(rppm_cell.cycles / 1e6, 2),
                         fmtPct(grid.errorVs(name, cfg.name, "rppm"))});
        }
        std::printf("%s\n", real.render().c_str());
    }
    return 0;
}

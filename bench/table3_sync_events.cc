/**
 * @file
 * Regenerates Table III of the paper: dynamic synchronization events in
 * the Parsec benchmarks (critical sections / barriers / condition
 * variables), as counted by the RPPM profiler.
 *
 * Counts are scaled-down versions of the paper's (our synthetic suite
 * targets tractable simulation times), but the *flavor mix* per
 * benchmark matches: fluidanimate is critical-section dominated,
 * streamcluster barrier dominated, facesim/vips condvar dominated, and
 * blackscholes/freqmine/swaptions synchronize only via join.
 */

#include <cstdio>

#include "common/table.hh"
#include "study/study.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    std::printf("==============================================================\n");
    std::printf("Table III: Synchronization events in the Parsec benchmarks\n");
    std::printf("(dynamic counts observed by the profiler; '-' means none).\n");
    std::printf("==============================================================\n\n");

    TablePrinter table(
        {"Benchmark", "Critical Sections", "Barriers", "Cond. var."});
    // The Study facade hands out each workload's profile through its
    // cache; no configurations or evaluators needed for this table.
    Study study;
    study.addSuite(parsecSuite());
    for (const SuiteEntry &entry : parsecSuite()) {
        const auto profile = study.profile(entry.spec.name);
        auto cell = [](uint64_t v) {
            return v == 0 ? std::string("-") : std::to_string(v);
        };
        table.addRow({entry.spec.name,
                      cell(profile->syncCounts.criticalSections),
                      cell(profile->syncCounts.barriers),
                      cell(profile->syncCounts.condVars)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper shape check: Fluidanimate dominated by critical\n"
                "sections, Streamcluster by barriers, Facesim/Vips by\n"
                "condition variables; Blackscholes/Freqmine/Swaptions use\n"
                "none of the three (join-only).\n");
    return 0;
}

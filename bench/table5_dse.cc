/**
 * @file
 * Regenerates Table V of the paper (and echoes Table IV): the design
 * space exploration case study.
 *
 * One profile per Rodinia benchmark predicts all five Table-IV design
 * points (iso peak throughput: width x frequency = 10 Gops/s). For each
 * bound x in {0%, 1%, 3%, 5%}, RPPM selects the design points whose
 * predicted time is within x of the predicted optimum; simulation then
 * picks the best of that candidate set. The table reports the deficiency
 * (slowdown of the selection versus the true simulated optimum) and the
 * number of candidates, exactly like the paper's rows.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "pipeline.hh"
#include "rppm/dse.hh"

int
main()
{
    using namespace rppm;
    using namespace rppm::bench;

    const std::vector<MulticoreConfig> configs = tableIvConfigs();

    std::printf("==============================================================\n");
    std::printf("Table IV: simulated architecture configurations (all deliver\n");
    std::printf("the same peak performance of ~10 Gops/s per core).\n");
    std::printf("==============================================================\n\n");
    {
        TablePrinter t({"", "Smallest", "Small", "Base", "Big", "Biggest"});
        auto row = [&](const char *name, auto get) {
            std::vector<std::string> cells = {name};
            for (const auto &cfg : configs)
                cells.push_back(get(cfg));
            t.addRow(cells);
        };
        row("frequency [GHz]", [](const MulticoreConfig &c) {
            return fmt(c.core().frequencyGHz, 2);
        });
        row("dispatch width", [](const MulticoreConfig &c) {
            return std::to_string(c.core().dispatchWidth);
        });
        row("ROB size", [](const MulticoreConfig &c) {
            return std::to_string(c.core().robSize);
        });
        row("issue queue size", [](const MulticoreConfig &c) {
            return std::to_string(c.core().issueQueueSize);
        });
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("==============================================================\n");
    std::printf("Table V: predicting the optimum design point. Cells show\n");
    std::printf("deficiency vs the true optimum and #candidate points at each\n");
    std::printf("bound. Paper: avg deficiency 1.95%% at 0%%, 0.12%% at 5%%.\n");
    std::printf("==============================================================\n\n");

    const double bounds[] = {0.0, 0.01, 0.03, 0.05};
    TablePrinter table({"Benchmark", "0%", "<1%", "<3%", "<5%"});
    std::vector<std::vector<double>> deficiencies(4);

    // Oracle times come through the Evaluator interface: the "sim"
    // backend simulates each design point inside the same grid that the
    // "rppm" backend predicts, parallelized over the worker pool.
    DseOptions dse;
    dse.jobs = defaultJobs();

    for (const SuiteEntry &entry : rodiniaSuite()) {
        const DseResult res =
            exploreDesignSpace(WorkloadSource(entry.spec), configs, dse);

        std::vector<std::string> row = {entry.spec.name};
        for (size_t b = 0; b < 4; ++b) {
            const double d = res.deficiency(bounds[b]);
            deficiencies[b].push_back(d);
            row.push_back(fmtPct(d, 2) + " " +
                          std::to_string(res.candidates(bounds[b]).size()));
        }
        table.addRow(row);
        std::fflush(stdout);
    }
    {
        std::vector<std::string> row = {"average"};
        for (size_t b = 0; b < 4; ++b)
            row.push_back(fmtPct(mean(deficiencies[b]), 2));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading: at a 0%% bound RPPM commits to a single design\n"
                "point; relaxing the bound lets simulation arbitrate among a\n"
                "few near-optimal candidates, driving deficiency toward 0.\n");
    return 0;
}

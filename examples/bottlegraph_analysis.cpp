/**
 * @file
 * Parallel performance analysis with bottlegraphs (paper Sec. VI-B).
 *
 * Builds bottlegraphs — per-thread criticality share x parallelism —
 * from RPPM's symbolic execution for three Parsec benchmarks with very
 * different balance characters, and compares each against the simulated
 * bottlegraph:
 *
 *   - Blackscholes: balanced pool of four workers, idle main thread.
 *   - Freqmine: the main thread is the scalability bottleneck.
 *   - Vips: imbalanced producer-consumer pipeline, parallelism ~3.
 *
 * Build & run:  ./build/examples/bottlegraph_analysis
 */

#include <cstdio>

#include "common/table.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "sim/bottlegraph.hh"
#include "sim/simulator.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    const MulticoreConfig cfg = baseConfig();
    for (const char *name : {"Blackscholes", "Freqmine", "Vips"}) {
        const SuiteEntry benchmark = *findBenchmark(name);
        const WorkloadTrace trace = generateWorkload(benchmark.spec);
        const WorkloadProfile profile = profileWorkload(trace);

        const SimResult sim = simulate(trace, cfg);
        const RppmPrediction pred = predict(profile, cfg);

        const Bottlegraph sim_graph = buildBottlegraph(sim);
        const Bottlegraph pred_graph = pred.bottlegraph();

        std::printf("==== %s ====\n", name);
        std::printf("%s", sim_graph.render("simulated").c_str());
        std::printf("%s", pred_graph.render("RPPM-predicted").c_str());
        std::printf("criticality-share similarity: %s\n\n",
                    fmtPct(bottlegraphSimilarity(sim_graph,
                                                 pred_graph)).c_str());
    }
    std::printf("Reading the graphs: the tallest box is the bottleneck\n"
                "thread; its width is how many threads run in parallel\n"
                "while it is active. A perfectly balanced 4-thread app has\n"
                "four boxes of height 25%% and width 4.\n");
    return 0;
}

/**
 * @file
 * Parallel performance analysis with bottlegraphs (paper Sec. VI-B).
 *
 * One Study grid — three Parsec benchmarks x Base config x {sim, rppm}
 * — yields both the simulated and the RPPM-predicted bottlegraph
 * (per-thread criticality share x parallelism) for benchmarks with very
 * different balance characters:
 *
 *   - Blackscholes: balanced pool of four workers, idle main thread.
 *   - Freqmine: the main thread is the scalability bottleneck.
 *   - Vips: imbalanced producer-consumer pipeline, parallelism ~3.
 *
 * Build & run:  ./build/examples/bottlegraph_analysis
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/bottlegraph.hh"
#include "study/study.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    const MulticoreConfig cfg = baseConfig();
    const char *names[] = {"Blackscholes", "Freqmine", "Vips"};

    Study study;
    for (const char *name : names)
        study.addWorkload(*findBenchmark(name));
    study.addConfig(cfg).addEvaluator("sim").addEvaluator("rppm");
    const StudyResult result = study.run();

    for (const char *name : names) {
        const Evaluation &sim = result.at(name, cfg.name, "sim");
        const Evaluation &pred = result.at(name, cfg.name, "rppm");

        const Bottlegraph sim_graph = buildBottlegraph(*sim.sim);
        const Bottlegraph pred_graph = pred.prediction->bottlegraph();

        std::printf("==== %s ====\n", name);
        std::printf("%s", sim_graph.render("simulated").c_str());
        std::printf("%s", pred_graph.render("RPPM-predicted").c_str());
        std::printf("criticality-share similarity: %s\n\n",
                    fmtPct(bottlegraphSimilarity(sim_graph,
                                                 pred_graph)).c_str());
    }
    std::printf("Reading the graphs: the tallest box is the bottleneck\n"
                "thread; its width is how many threads run in parallel\n"
                "while it is active. A perfectly balanced 4-thread app has\n"
                "four boxes of height 25%% and width 4.\n");
    return 0;
}

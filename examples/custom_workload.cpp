/**
 * @file
 * Authoring a custom workload against the public API.
 *
 * Two ways to describe a multi-threaded application:
 *
 *   1. Declaratively, via WorkloadSpec: a producer-consumer service with
 *      a critical-section-protected shared structure.
 *   2. Imperatively, via ThreadTraceBuilder: hand-written traces for a
 *      two-thread ping-pong — useful for unit experiments and for
 *      importing traces from external tools.
 *
 * Both land in one Study as workload sources — a spec directly, a
 * hand-built trace via WorkloadSource — and the grid evaluates all four
 * backends (sim, rppm, main, crit) on each.
 *
 * Build & run:  ./build/examples/custom_workload
 */

#include <cstdio>

#include "common/table.hh"
#include "study/study.hh"
#include "trace/trace_builder.hh"
#include "workload/workload.hh"

namespace {

using namespace rppm;

void
report(const StudyResult &result, const std::string &name,
       const MulticoreConfig &cfg)
{
    const double sim = result.at(name, cfg.name, "sim").cycles;
    std::printf("==== %s ====\n", name.c_str());
    TablePrinter table({"predictor", "Mcycles", "error vs sim"});
    table.addRow({"simulation", fmt(sim / 1e6, 2), "-"});
    for (const char *backend : {"rppm", "main", "crit"}) {
        const double cycles = result.at(name, cfg.name, backend).cycles;
        table.addRow({backend, fmt(cycles / 1e6, 2),
                      fmtPct((cycles - sim) / sim)});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    // ---- 1. Declarative: a work-queue service with a shared index. ----
    WorkloadSpec service;
    service.name = "custom-service";
    service.seed = 2026;
    service.numWorkers = 3;
    service.mainWorks = false;        // main only produces work items
    service.mainBookkeepingOps = 2000;
    service.queueItems = 120;         // condvar-backed task queue
    service.itemOps = 6000;
    service.numEpochs = 4;            // post-queue barrier phases
    service.opsPerEpoch = 15000;
    service.barrierFlavor = BarrierFlavor::Classic;
    service.csPerEpoch = 10;          // shared-index updates under a lock
    service.csLenOps = 50;
    service.numMutexes = 4;
    service.kernel.privateBytes = 2 << 20;
    service.kernel.sharedBytes = 8 << 20;
    service.kernel.sharedFrac = 0.2;  // the shared structure
    service.kernel.sharedWriteFrac = 0.3;
    service.kernel.branchEntropy = 0.08;

    // ---- 2. Imperative: hand-built two-thread ping-pong. ----
    WorkloadTrace pingpong;
    pingpong.name = "custom-pingpong";
    pingpong.threads.resize(2);
    {
        ThreadTraceBuilder main_thread(pingpong.threads[0]);
        ThreadTraceBuilder worker(pingpong.threads[1]);
        main_thread.sync(SyncType::ThreadCreate, 1);
        constexpr int kRounds = 200;
        for (int round = 0; round < kRounds; ++round) {
            // Main produces a value in shared memory, worker consumes it
            // through a condvar queue, then both meet at a barrier.
            for (int i = 0; i < 300; ++i)
                main_thread.op(OpClass::IntAlu, 4 * (i % 64), 1);
            main_thread.store(0x5000000 + 64 * (round % 8), 0x900);
            main_thread.sync(SyncType::QueuePush, 1);
            main_thread.sync(SyncType::BarrierWait, 2);

            worker.sync(SyncType::CondMarker, 3);
            worker.sync(SyncType::QueuePop, 1);
            worker.load(0x5000000 + 64 * (round % 8), 0xa00);
            for (int i = 0; i < 100; ++i)
                worker.op(OpClass::FpMul, 0xa04 + 4 * (i % 32), 2);
            worker.sync(SyncType::BarrierWait, 2);
        }
        main_thread.sync(SyncType::ThreadJoin, 1);
    }

    // ---- One grid: both workloads x Base x all four backends. ----
    const MulticoreConfig cfg = baseConfig();
    Study study;
    study.addWorkload(service)
        .addWorkload(std::move(pingpong))
        .addConfig(cfg)
        .addEvaluator("sim")
        .addEvaluator("rppm")
        .addEvaluator("main")
        .addEvaluator("crit");
    const StudyResult result = study.run();

    report(result, "custom-service", cfg);
    report(result, "custom-pingpong", cfg);

    std::printf("note how MAIN/CRIT miss the idle time the ping-pong\n"
                "spends in synchronization while RPPM models it.\n");
    return 0;
}

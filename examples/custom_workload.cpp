/**
 * @file
 * Authoring a custom workload against the public API.
 *
 * Two ways to describe a multi-threaded application:
 *
 *   1. Declaratively, via WorkloadSpec: a producer-consumer service with
 *      a critical-section-protected shared structure.
 *   2. Imperatively, via ThreadTraceBuilder: hand-written traces for a
 *      two-thread ping-pong — useful for unit experiments and for
 *      importing traces from external tools.
 *
 * Both are then pushed through profile -> predict and checked against
 * the simulator, including the MAIN/CRIT naive baselines for contrast.
 *
 * Build & run:  ./build/examples/custom_workload
 */

#include <cstdio>

#include "common/table.hh"
#include "profile/profiler.hh"
#include "rppm/baselines.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "trace/trace_builder.hh"
#include "workload/workload.hh"

namespace {

using namespace rppm;

void
report(const char *name, const WorkloadTrace &trace)
{
    const MulticoreConfig cfg = baseConfig();
    const WorkloadProfile profile = profileWorkload(trace);
    const SimResult sim = simulate(trace, cfg);
    const RppmPrediction rppm = predict(profile, cfg);
    const double main_pred = predictMain(profile, cfg);
    const double crit_pred = predictCrit(profile, cfg);

    std::printf("==== %s ====\n", name);
    TablePrinter table({"predictor", "Mcycles", "error vs sim"});
    auto err = [&](double cycles) {
        return fmtPct((cycles - sim.totalCycles) / sim.totalCycles);
    };
    table.addRow({"simulation", fmt(sim.totalCycles / 1e6, 2), "-"});
    table.addRow({"RPPM", fmt(rppm.totalCycles / 1e6, 2),
                  err(rppm.totalCycles)});
    table.addRow({"MAIN", fmt(main_pred / 1e6, 2), err(main_pred)});
    table.addRow({"CRIT", fmt(crit_pred / 1e6, 2), err(crit_pred)});
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    // ---- 1. Declarative: a work-queue service with a shared index. ----
    WorkloadSpec service;
    service.name = "custom-service";
    service.seed = 2026;
    service.numWorkers = 3;
    service.mainWorks = false;        // main only produces work items
    service.mainBookkeepingOps = 2000;
    service.queueItems = 120;         // condvar-backed task queue
    service.itemOps = 6000;
    service.numEpochs = 4;            // post-queue barrier phases
    service.opsPerEpoch = 15000;
    service.barrierFlavor = BarrierFlavor::Classic;
    service.csPerEpoch = 10;          // shared-index updates under a lock
    service.csLenOps = 50;
    service.numMutexes = 4;
    service.kernel.privateBytes = 2 << 20;
    service.kernel.sharedBytes = 8 << 20;
    service.kernel.sharedFrac = 0.2;  // the shared structure
    service.kernel.sharedWriteFrac = 0.3;
    service.kernel.branchEntropy = 0.08;
    report("declarative work-queue service",
           generateWorkload(service));

    // ---- 2. Imperative: hand-built two-thread ping-pong. ----
    WorkloadTrace pingpong;
    pingpong.name = "custom-pingpong";
    pingpong.threads.resize(2);
    {
        ThreadTraceBuilder main_thread(pingpong.threads[0]);
        ThreadTraceBuilder worker(pingpong.threads[1]);
        main_thread.sync(SyncType::ThreadCreate, 1);
        constexpr int kRounds = 200;
        for (int round = 0; round < kRounds; ++round) {
            // Main produces a value in shared memory, worker consumes it
            // through a condvar queue, then both meet at a barrier.
            for (int i = 0; i < 300; ++i)
                main_thread.op(OpClass::IntAlu, 4 * (i % 64), 1);
            main_thread.store(0x5000000 + 64 * (round % 8), 0x900);
            main_thread.sync(SyncType::QueuePush, 1);
            main_thread.sync(SyncType::BarrierWait, 2);

            worker.sync(SyncType::CondMarker, 3);
            worker.sync(SyncType::QueuePop, 1);
            worker.load(0x5000000 + 64 * (round % 8), 0xa00);
            for (int i = 0; i < 100; ++i)
                worker.op(OpClass::FpMul, 0xa04 + 4 * (i % 32), 2);
            worker.sync(SyncType::BarrierWait, 2);
        }
        main_thread.sync(SyncType::ThreadJoin, 1);
    }
    report("imperative ping-pong (hand-built trace)", pingpong);

    std::printf("note how MAIN/CRIT miss the idle time the ping-pong\n"
                "spends in synchronization while RPPM models it.\n");
    return 0;
}

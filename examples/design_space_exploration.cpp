/**
 * @file
 * Design-space exploration with one profile (paper Sec. VI-A).
 *
 * Profiles one benchmark once, then sweeps a 3x3 design space of
 * {dispatch width} x {LLC size} through a Study grid — nine
 * configurations evaluated by the analytical model in milliseconds, a
 * task that takes many simulator runs otherwise. Prints the predicted
 * execution time per point, picks the best, and validates the winner
 * with one targeted run of the simulator backend.
 *
 * Build & run:  ./build/examples/design_space_exploration
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "study/study.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    const SuiteEntry benchmark = *findBenchmark("kmeans");

    const uint32_t widths[] = {2, 4, 6};
    const uint32_t llc_mb[] = {2, 8, 32};

    std::vector<MulticoreConfig> configs;
    for (uint32_t width : widths) {
        for (uint32_t mb : llc_mb) {
            MulticoreConfig cfg = baseConfig();
            // Built with += rather than operator+ chaining: gcc 12's
            // -Wrestrict misfires on (const char* + string&&) inserts
            // (GCC PR 105651), and -Werror makes that fatal.
            std::string name = "w";
            name += std::to_string(width);
            name += "-llc";
            name += std::to_string(mb);
            name += "M";
            cfg.name = std::move(name);
            cfg.eachCore([width](CoreConfig &c) {
                c.dispatchWidth = width;
                c.robSize = 32 * width;
                c.issueQueueSize = 16 * width;
                c.fus[static_cast<size_t>(OpClass::IntAlu)].count = width;
            });
            cfg.llc.sizeBytes = mb * 1024 * 1024;
            configs.push_back(cfg);
        }
    }

    // The whole design space in one Study: the workload is profiled
    // once, then the analytical backend evaluates all nine points. The
    // source handle is shared with the validation study below, so the
    // trace is generated exactly once.
    const WorkloadSource source(benchmark.spec);
    Study study;
    study.add(source)
        .addConfigs(configs)
        .addEvaluator("rppm")
        .jobs(0); // use every hardware thread
    const StudyResult result = study.run();

    std::printf("design space for '%s': width x LLC size\n\n",
                benchmark.spec.name.c_str());
    TablePrinter table({"config", "width", "LLC", "predicted ms"});

    double best_seconds = 1e9;
    const MulticoreConfig *best = nullptr;
    for (const MulticoreConfig &cfg : configs) {
        const Evaluation &cell =
            result.at(benchmark.spec.name, cfg.name, "rppm");
        table.addRow({cfg.name,
                      std::to_string(cfg.core().dispatchWidth),
                      std::to_string(cfg.llc.sizeBytes >> 20) + " MB",
                      fmt(cell.seconds * 1e3, 3)});
        if (cell.seconds < best_seconds) {
            best_seconds = cell.seconds;
            best = &cfg;
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("predicted best: %s (%.3f ms)\n", best->name.c_str(),
                best_seconds * 1e3);

    // Validate the chosen point with one run of the oracle backend —
    // same Evaluator interface, same shared workload source.
    Study check;
    check.add(source).addConfig(*best).addEvaluator("sim");
    const double sim_seconds =
        check.run().at(benchmark.spec.name, best->name, "sim").seconds;
    std::printf("simulated time of the chosen point: %.3f ms "
                "(prediction error %s)\n",
                sim_seconds * 1e3,
                fmtPct((best_seconds - sim_seconds) /
                       sim_seconds).c_str());
    std::printf("\nnote: 9 model evaluations + 1 simulation instead of 9 "
                "simulations.\n");
    return 0;
}

/**
 * @file
 * Design-space exploration with one profile (paper Sec. VI-A).
 *
 * Profiles one benchmark once, then sweeps a 3x3 design space of
 * {dispatch width} x {LLC size} — nine configurations evaluated by the
 * analytical model in milliseconds, a task that takes many simulator
 * runs otherwise. Prints the predicted execution time per point, picks
 * the best, and validates the winner against simulation.
 *
 * Build & run:  ./build/examples/design_space_exploration
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    const SuiteEntry benchmark = *findBenchmark("kmeans");
    const WorkloadTrace trace = generateWorkload(benchmark.spec);
    const WorkloadProfile profile = profileWorkload(trace); // one time!

    const uint32_t widths[] = {2, 4, 6};
    const uint32_t llc_mb[] = {2, 8, 32};

    std::printf("design space for '%s': width x LLC size\n\n",
                benchmark.spec.name.c_str());
    TablePrinter table({"config", "width", "LLC", "predicted ms"});

    double best_seconds = 1e9;
    MulticoreConfig best;
    for (uint32_t width : widths) {
        for (uint32_t mb : llc_mb) {
            MulticoreConfig cfg = baseConfig();
            cfg.name = "w" + std::to_string(width) + "-llc" +
                std::to_string(mb) + "M";
            cfg.core.dispatchWidth = width;
            cfg.core.robSize = 32 * width;
            cfg.core.issueQueueSize = 16 * width;
            cfg.core.fus[static_cast<size_t>(OpClass::IntAlu)].count =
                width;
            cfg.llc.sizeBytes = mb * 1024 * 1024;
            cfg.validate();

            const RppmPrediction pred = predict(profile, cfg);
            table.addRow({cfg.name, std::to_string(width),
                          std::to_string(mb) + " MB",
                          fmt(pred.totalSeconds * 1e3, 3)});
            if (pred.totalSeconds < best_seconds) {
                best_seconds = pred.totalSeconds;
                best = cfg;
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("predicted best: %s (%.3f ms)\n", best.name.c_str(),
                best_seconds * 1e3);

    // Validate the chosen point with one simulation.
    const SimResult sim = simulate(trace, best);
    std::printf("simulated time of the chosen point: %.3f ms "
                "(prediction error %s)\n",
                sim.totalSeconds * 1e3,
                fmtPct((best_seconds - sim.totalSeconds) /
                       sim.totalSeconds).c_str());
    std::printf("\nnote: 9 model evaluations + 1 simulation instead of 9 "
                "simulations.\n");
    return 0;
}

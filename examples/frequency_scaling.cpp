/**
 * @file
 * Frequency-scaling (DVFS) analysis with one profile.
 *
 * A classic use of performance models (cf. DEP+BURST, which the paper
 * cites as frequency-only related work): how does a workload's execution
 * time respond to clock frequency when DRAM latency is fixed in
 * nanoseconds? Compute-bound code scales ~linearly with frequency;
 * memory-bound code saturates. One Study per workload answers this from
 * a single profile — the seven frequency points and the two validation
 * simulations share one grid — and, unlike DEP+BURST, the
 * microarchitecture could vary at the same time.
 *
 * Build & run:  ./build/examples/frequency_scaling
 */

#include <cstdio>

#include "common/table.hh"
#include "study/study.hh"
#include "workload/suite.hh"

namespace {

using namespace rppm;

/** Base config at @p ghz with DRAM latency fixed at 80 ns. */
MulticoreConfig
atFrequency(double ghz)
{
    MulticoreConfig cfg = baseConfig();
    cfg.name = "base@" + fmt(ghz, 2) + "GHz";
    cfg.eachCore([ghz](CoreConfig &c) {
        c.frequencyGHz = ghz;
        c.memLatency = static_cast<uint32_t>(80.0 * ghz + 0.5);
    });
    return cfg;
}

void
sweep(const char *name)
{
    const SuiteEntry benchmark = *findBenchmark(name);
    const double frequencies[] = {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0};

    // One source handle serves both studies below: WorkloadSource is a
    // shared handle, so the trace is generated exactly once.
    const WorkloadSource source(benchmark.spec);

    Study study;
    study.add(source).addEvaluator("rppm");
    for (double ghz : frequencies)
        study.addConfig(atFrequency(ghz));
    const StudyResult result = study.run();

    auto predicted = [&](double ghz) {
        return result.at(name, atFrequency(ghz).name, "rppm").seconds;
    };
    const double t_ref = predicted(1.0);

    std::printf("---- %s ----\n", name);
    TablePrinter table({"frequency", "predicted ms", "speedup vs 1 GHz",
                        "perfect scaling"});
    for (double ghz : frequencies) {
        table.addRow({fmt(ghz, 2) + " GHz",
                      fmt(predicted(ghz) * 1e3, 3),
                      fmt(t_ref / predicted(ghz), 2) + "x",
                      fmt(ghz, 2) + "x"});
    }
    std::printf("%s", table.render().c_str());

    // Validate the end points against the oracle backend, reusing the
    // same workload source (and hence the already-generated trace).
    Study check;
    check.add(source)
        .addConfig(atFrequency(1.0))
        .addConfig(atFrequency(5.0))
        .addEvaluator("sim");
    const StudyResult simmed = check.run();
    for (double ghz : {1.0, 5.0}) {
        const double sim_ms =
            simmed.at(name, atFrequency(ghz).name, "sim").seconds * 1e3;
        const double pred_ms = predicted(ghz) * 1e3;
        std::printf("  check @%.1f GHz: sim %.3f ms, RPPM %.3f ms (%s)\n",
                    ghz, sim_ms, pred_ms,
                    fmtPct((pred_ms - sim_ms) / sim_ms).c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // lavaMD's working set is mostly cache-resident: frequency keeps
    // paying off across the sweep. nn streams far beyond the LLC: the
    // fixed DRAM time dominates and the speedup saturates early. Both
    // end points are validated against the golden simulator.
    sweep("lavaMD");
    sweep("nn");
    std::printf("Take-away: one profile answers DVFS questions for both\n"
                "workload classes; no re-profiling, no simulation sweep.\n");
    return 0;
}

/**
 * @file
 * Frequency-scaling (DVFS) analysis with one profile.
 *
 * A classic use of performance models (cf. DEP+BURST, which the paper
 * cites as frequency-only related work): how does a workload's execution
 * time respond to clock frequency when DRAM latency is fixed in
 * nanoseconds? Compute-bound code scales ~linearly with frequency;
 * memory-bound code saturates. RPPM answers this from a single profile —
 * and, unlike DEP+BURST, can vary the microarchitecture at the same time.
 *
 * Build & run:  ./build/examples/frequency_scaling
 */

#include <cstdio>

#include "common/table.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "workload/suite.hh"

namespace {

using namespace rppm;

/** Base config at @p ghz with DRAM latency fixed at 80 ns. */
MulticoreConfig
atFrequency(double ghz)
{
    MulticoreConfig cfg = baseConfig();
    cfg.name = "base@" + fmt(ghz, 2) + "GHz";
    cfg.core.frequencyGHz = ghz;
    cfg.memLatency = static_cast<uint32_t>(80.0 * ghz + 0.5);
    return cfg;
}

void
sweep(const char *name)
{
    const SuiteEntry benchmark = *findBenchmark(name);
    const WorkloadTrace trace = generateWorkload(benchmark.spec);
    const WorkloadProfile profile = profileWorkload(trace);

    const MulticoreConfig ref = atFrequency(1.0);
    const double t_ref = predict(profile, ref).totalSeconds;

    std::printf("---- %s ----\n", name);
    TablePrinter table({"frequency", "predicted ms", "speedup vs 1 GHz",
                        "perfect scaling"});
    for (double ghz : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0}) {
        const RppmPrediction pred =
            predict(profile, atFrequency(ghz));
        table.addRow({fmt(ghz, 2) + " GHz",
                      fmt(pred.totalSeconds * 1e3, 3),
                      fmt(t_ref / pred.totalSeconds, 2) + "x",
                      fmt(ghz, 2) + "x"});
    }
    std::printf("%s", table.render().c_str());

    // Validate the end points against the golden simulator.
    for (double ghz : {1.0, 5.0}) {
        const MulticoreConfig cfg = atFrequency(ghz);
        const double sim_ms = simulate(trace, cfg).totalSeconds * 1e3;
        const double pred_ms =
            predict(profile, cfg).totalSeconds * 1e3;
        std::printf("  check @%.1f GHz: sim %.3f ms, RPPM %.3f ms (%s)\n",
                    ghz, sim_ms, pred_ms,
                    fmtPct((pred_ms - sim_ms) / sim_ms).c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // lavaMD's working set is mostly cache-resident: frequency keeps
    // paying off across the sweep. nn streams far beyond the LLC: the
    // fixed DRAM time dominates and the speedup saturates early. Both
    // end points are validated against the golden simulator.
    sweep("lavaMD");
    sweep("nn");
    std::printf("Take-away: one profile answers DVFS questions for both\n"
                "workload classes; no re-profiling, no simulation sweep.\n");
    return 0;
}

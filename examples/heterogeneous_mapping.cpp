/**
 * @file
 * Thread-placement exploration on an asymmetric multicore.
 *
 * Builds a big.LITTLE 4-core (2 Base-class big cores + 2 narrow,
 * slow-clocked little cores), takes one benchmark with imbalanced
 * threads, profiles it ONCE, and then treats every distinct
 * thread-to-core placement as a design point: RPPM predicts each
 * placement's execution time from the single profile, the chosen
 * placement is validated against the golden-reference simulator, and
 * the full predicted-vs-simulated ranking is printed side by side.
 *
 * This is the payoff of the heterogeneous configuration API: "profile
 * once, predict many" now spans machines the profile has never seen —
 * asymmetric cores, per-core DVFS and thread placements — not just
 * homogeneous parameter sweeps.
 *
 * Exits non-zero if the model's best placement disagrees badly with
 * simulation (used as a CI smoke check).
 *
 * Build & run:  ./build/examples/heterogeneous_mapping
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "rppm/dse.hh"
#include "study/study.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace {

/** Shrink the spec so the exhaustive simulation sweep stays snappy. */
rppm::WorkloadSpec
shrinkForDemo(rppm::WorkloadSpec spec)
{
    spec.opsPerEpoch = std::max<uint64_t>(500, spec.opsPerEpoch / 10);
    spec.initOps = std::max<uint64_t>(200, spec.initOps / 10);
    spec.finalOps = std::max<uint64_t>(100, spec.finalOps / 10);
    spec.numEpochs = std::min<uint32_t>(spec.numEpochs, 16);
    spec.queueItems = std::min<uint32_t>(spec.queueItems, 40);
    spec.csPerEpoch = std::min<uint32_t>(spec.csPerEpoch, 16);
    return spec;
}

} // namespace

int
main()
{
    using namespace rppm;

    // Vips: main thread does almost no work while three workers carry
    // the kernel — exactly the shape where placement on an asymmetric
    // machine matters (the main thread can live on a little core).
    const WorkloadSpec spec =
        shrinkForDemo(findBenchmark("Vips")->spec);

    const MulticoreConfig machine = bigLittleConfig(2, 2);
    const std::vector<MulticoreConfig> placements =
        mappingSweep(machine, spec.numThreads());

    std::printf("machine: %s (cores 0-1 big, 2-3 little)\n",
                machine.name.c_str());
    std::printf("workload: %s, %u threads (main + %u workers)\n\n",
                spec.name.c_str(), spec.numThreads(), spec.numWorkers);

    // Every distinct placement is a design point; exploreDesignSpace
    // profiles once, predicts all of them, and scores the selection
    // against exhaustive simulation.
    DseOptions opts;
    opts.jobs = 0; // all hardware threads
    const DseResult dse =
        exploreDesignSpace(WorkloadSource(spec), placements, opts);

    // Rank design points by predicted and by simulated time.
    std::vector<size_t> byPred(placements.size()), bySim(placements.size());
    for (size_t i = 0; i < placements.size(); ++i)
        byPred[i] = bySim[i] = i;
    std::sort(byPred.begin(), byPred.end(), [&](size_t a, size_t b) {
        return dse.predictedSeconds[a] < dse.predictedSeconds[b];
    });
    std::sort(bySim.begin(), bySim.end(), [&](size_t a, size_t b) {
        return dse.simulatedSeconds[a] < dse.simulatedSeconds[b];
    });

    TablePrinter table({"placement (thread->core)", "predicted ms",
                        "simulated ms", "sim rank"});
    for (size_t rank = 0; rank < byPred.size(); ++rank) {
        const size_t i = byPred[rank];
        const size_t simRank =
            std::find(bySim.begin(), bySim.end(), i) - bySim.begin();
        table.addRow({placements[i].name,
                      fmt(dse.predictedSeconds[i] * 1e3, 4),
                      fmt(dse.simulatedSeconds[i] * 1e3, 4),
                      std::to_string(simRank + 1)});
    }
    std::printf("%s\n", table.render().c_str());

    const size_t predBest = dse.predictedBest();
    const size_t trueBest = dse.trueBest();
    const double deficiency = dse.deficiency(0.0);
    std::printf("predicted best placement: %s\n",
                placements[predBest].name.c_str());
    std::printf("simulated best placement: %s\n",
                placements[trueBest].name.c_str());
    std::printf("deficiency of the model's pick: %s\n",
                fmtPct(deficiency).c_str());

    // Smoke gate: the model's chosen placement must be (near-)optimal —
    // within 5% of the true optimum (rank agreement up to simulation
    // noise between near-tied placements).
    if (deficiency > 0.05) {
        std::fprintf(stderr,
                     "FAIL: predicted placement is %.1f%% slower than "
                     "the simulated optimum\n",
                     deficiency * 100.0);
        return 1;
    }
    std::printf("\nOK: one profile ranked %zu placements; the pick is "
                "within %s of the simulated optimum.\n",
                placements.size(), fmtPct(0.05).c_str());
    return 0;
}

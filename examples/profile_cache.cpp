/**
 * @file
 * Profiles as durable artifacts, via the Study profile cache.
 *
 * A Study given a profile directory keeps every profile it computes as
 * a serialized file keyed by (workload, profiler options). A later
 * session — here simulated by a second Study — finds the file and skips
 * profiling entirely; serialization round-trips exactly, so the
 * predictions are bit-identical. This is the intended RPPM workflow:
 * profiling is the expensive one-time step, and the saved profile then
 * amortizes across every design point anyone ever wants to evaluate.
 *
 * Build & run:  ./build/examples/profile_cache
 */

#include <cstdio>
#include <filesystem>

#include "common/table.hh"
#include "study/study.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    const std::string dir = "/tmp/rppm_profile_cache";
    const SuiteEntry benchmark = *findBenchmark("srad");

    // Start pristine so session 1 below really is the cache miss the
    // demo narrates, even when the example ran before.
    std::filesystem::remove_all(dir);

    // --- Session 1: profile (cache miss) and sweep Table IV. ---
    {
        Study study;
        study.addWorkload(benchmark)
            .addConfigs(tableIvConfigs())
            .addEvaluator("rppm")
            .profileDirectory(dir);
        study.run();
        const ProfileCache::Stats stats = study.profiles().stats();
        std::printf("session 1: %llu profile computed, saved under %s\n",
                    static_cast<unsigned long long>(stats.misses),
                    dir.c_str());
    }

    // --- Session 2: a fresh Study (fresh process, other machine...)
    //     finds the serialized profile — no re-profiling. ---
    {
        Study study;
        study.addWorkload(benchmark)
            .addConfigs(tableIvConfigs())
            .addEvaluator("rppm")
            .profileDirectory(dir);
        const StudyResult result = study.run();

        const ProfileCache::Stats stats = study.profiles().stats();
        std::printf("session 2: %llu disk hit, %llu profiling runs\n\n",
                    static_cast<unsigned long long>(stats.diskHits),
                    static_cast<unsigned long long>(stats.misses));

        std::printf("predictions for 5 design points, straight from the "
                    "cached profile:\n\n");
        TablePrinter table({"config", "freq", "width", "predicted ms"});
        for (const MulticoreConfig &cfg : tableIvConfigs()) {
            const Evaluation &cell =
                result.at(benchmark.spec.name, cfg.name, "rppm");
            table.addRow({cfg.name, fmt(cfg.core().frequencyGHz, 2) + " GHz",
                          std::to_string(cfg.core().dispatchWidth),
                          fmt(cell.seconds * 1e3, 3)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("no simulation, no re-profiling — just the model.\n");
    }
    return 0;
}

/**
 * @file
 * Profiles as durable artifacts: profile once, save to disk, and let a
 * later session (or another machine) run the predictions.
 *
 * This mirrors the intended RPPM workflow: profiling is the expensive
 * one-time step; the saved profile then amortizes across every design
 * point anyone ever wants to evaluate.
 *
 * Build & run:  ./build/examples/profile_cache
 */

#include <cstdio>

#include "common/table.hh"
#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "rppm/predictor.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    const std::string path = "/tmp/rppm_srad.profile";

    // --- Session 1: profile and save. ---
    {
        const SuiteEntry benchmark = *findBenchmark("srad");
        const WorkloadTrace trace = generateWorkload(benchmark.spec);
        const WorkloadProfile profile = profileWorkload(trace);
        saveProfileToFile(profile, path);
        std::printf("profiled '%s' (%llu uops) and saved to %s\n",
                    profile.name.c_str(),
                    static_cast<unsigned long long>(profile.totalOps()),
                    path.c_str());
    }

    // --- Session 2: load and sweep the whole Table-IV design space. ---
    {
        const WorkloadProfile profile = loadProfileFromFile(path);
        std::printf("reloaded profile '%s'; predicting 5 design points:\n\n",
                    profile.name.c_str());
        TablePrinter table({"config", "freq", "width", "predicted ms"});
        for (const MulticoreConfig &cfg : tableIvConfigs()) {
            const RppmPrediction pred = predict(profile, cfg);
            table.addRow({cfg.name, fmt(cfg.core.frequencyGHz, 2) + " GHz",
                          std::to_string(cfg.core.dispatchWidth),
                          fmt(pred.totalSeconds * 1e3, 3)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("no simulation, no re-profiling — just the model.\n");
    }
    return 0;
}

/**
 * @file
 * Quickstart: the full RPPM workflow in ~50 lines.
 *
 *   1. Pick a benchmark from the synthetic suite (or author your own
 *      WorkloadSpec) and generate its multi-threaded trace.
 *   2. Profile it ONCE: the profile contains only microarchitecture-
 *      independent statistics.
 *   3. Predict execution time on any multicore configuration.
 *   4. (Optional) validate against the cycle-level simulator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "common/table.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    // 1. A Rodinia-like benchmark: hotspot (stencil, barrier phases).
    const SuiteEntry benchmark = *findBenchmark("hotspot");
    const WorkloadTrace trace = generateWorkload(benchmark.spec);
    std::printf("workload '%s': %llu micro-ops over %zu threads\n",
                trace.name.c_str(),
                static_cast<unsigned long long>(trace.totalOps()),
                trace.numThreads());

    // 2. Profile once (microarchitecture-independent).
    const WorkloadProfile profile = profileWorkload(trace);
    std::printf("profiled %zu threads; %llu barriers, %llu critical "
                "sections, %llu condvar events\n",
                profile.threads.size(),
                static_cast<unsigned long long>(
                    profile.syncCounts.barriers),
                static_cast<unsigned long long>(
                    profile.syncCounts.criticalSections),
                static_cast<unsigned long long>(
                    profile.syncCounts.condVars));

    // 3. Predict on the paper's Base quad-core.
    const MulticoreConfig cfg = baseConfig();
    const RppmPrediction pred = predict(profile, cfg);
    std::printf("RPPM predicts %.2f Mcycles (%.3f ms at %.2f GHz)\n",
                pred.totalCycles / 1e6, pred.totalSeconds * 1e3,
                cfg.core.frequencyGHz);

    // 4. Validate against the golden-reference simulator.
    const SimResult sim = simulate(trace, cfg);
    std::printf("simulator says    %.2f Mcycles -> prediction error %s\n",
                sim.totalCycles / 1e6,
                fmtPct((pred.totalCycles - sim.totalCycles) /
                       sim.totalCycles).c_str());

    // Bonus: the predicted per-thread CPI stack.
    const CpiStack stack = pred.averageCpiStack();
    std::printf("\npredicted average CPI stack (cycles per instruction):\n");
    for (size_t c = 0; c < kNumCpiComponents; ++c) {
        std::printf("  %-8s %6.3f\n",
                    cpiComponentName(static_cast<CpiComponent>(c)),
                    stack.cycles[c]);
    }
    return 0;
}

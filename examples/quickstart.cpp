/**
 * @file
 * Quickstart: the full RPPM workflow through the Study facade.
 *
 *   1. Pick a benchmark from the synthetic suite (or author your own
 *      WorkloadSpec) and add it to a Study.
 *   2. Add a multicore configuration and two evaluator backends: the
 *      RPPM analytical model and the golden-reference simulator.
 *   3. run() profiles the workload ONCE (microarchitecture-independent)
 *      and evaluates the grid; the result registry answers everything.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "common/table.hh"
#include "study/study.hh"
#include "workload/suite.hh"

int
main()
{
    using namespace rppm;

    // 1. A Rodinia-like benchmark: hotspot (stencil, barrier phases).
    const SuiteEntry benchmark = *findBenchmark("hotspot");
    const MulticoreConfig cfg = baseConfig();

    // 2+3. One Study: workload x config x {rppm, sim}.
    Study study;
    study.addWorkload(benchmark)
        .addConfig(cfg)
        .addEvaluator("rppm")
        .addEvaluator("sim");
    StudyResult result = study.run();

    // The profile was collected once and can be reused for any number
    // of further configurations.
    const auto profile = study.profile(benchmark.spec.name);
    std::printf("profiled '%s' once: %zu threads; %llu barriers, %llu "
                "critical sections, %llu condvar events\n",
                benchmark.spec.name.c_str(), profile->threads.size(),
                static_cast<unsigned long long>(
                    profile->syncCounts.barriers),
                static_cast<unsigned long long>(
                    profile->syncCounts.criticalSections),
                static_cast<unsigned long long>(
                    profile->syncCounts.condVars));

    // Query the grid: predicted vs golden-reference time.
    const Evaluation &pred =
        result.at(benchmark.spec.name, cfg.name, "rppm");
    const Evaluation &sim =
        result.at(benchmark.spec.name, cfg.name, "sim");
    std::printf("RPPM predicts %.2f Mcycles (%.3f ms at %.2f GHz)\n",
                pred.cycles / 1e6, pred.seconds * 1e3,
                cfg.core().frequencyGHz);
    std::printf("simulator says    %.2f Mcycles -> prediction error %s\n",
                sim.cycles / 1e6,
                fmtPct((pred.cycles - sim.cycles) / sim.cycles).c_str());

    // Bonus 1: the predicted per-thread CPI stack (backend detail kept
    // in the grid cell).
    const CpiStack stack = pred.prediction->averageCpiStack();
    std::printf("\npredicted average CPI stack (cycles per instruction):\n");
    for (size_t c = 0; c < kNumCpiComponents; ++c) {
        std::printf("  %-8s %6.3f\n",
                    cpiComponentName(static_cast<CpiComponent>(c)),
                    stack.cycles[c]);
    }

    // Bonus 2: the whole grid as CSV, ready for a spreadsheet.
    std::printf("\nCSV export:\n%s", result.csv().c_str());
    return 0;
}

#include "arch/component_key.hh"

#include <bit>
#include <cstdint>

namespace rppm {

namespace {

/** Little binary encoder: fixed-width fields, no separators needed. */
struct KeyEncoder
{
    std::string buf;

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }
};

} // namespace

void
appendKeyF64(std::string &buf, double v)
{
    KeyEncoder e;
    e.f64(v);
    buf += e.buf;
}

ComponentKeys
componentKeys(const MulticoreConfig &cfg, const CoreConfig &core)
{
    ComponentKeys keys;

    // Memory: everything the statistical cache model distinguishes. Line
    // counts are what StatStack sees; associativity and line size only
    // matter through them.
    {
        KeyEncoder e;
        e.u32(core.l1i.numLines());
        e.u32(core.l1d.numLines());
        e.u32(core.l1d.latency);
        e.u32(core.l2.numLines());
        e.u32(core.l2.latency);
        e.u32(cfg.llc.numLines());
        e.u32(cfg.llc.latency);
        e.u32(core.memLatency);
        e.u32(core.fus[static_cast<size_t>(OpClass::Store)].latency);
        keys.memory = std::move(e.buf);
    }

    // Branch: the entropy-model calibration inputs.
    {
        KeyEncoder e;
        e.u32(core.branch.totalBytes);
        e.u32(core.branch.historyBits);
        keys.branch = std::move(e.buf);
    }

    // Core term: the window-replay structural parameters.
    {
        KeyEncoder e;
        e.u32(core.dispatchWidth);
        e.u32(core.robSize);
        e.u32(core.issueQueueSize);
        e.u32(core.frontendDepth);
        e.u32(core.mshrs);
        for (const FuConfig &fu : core.fus) {
            e.u32(fu.latency);
            e.u32(fu.count);
            e.u32(fu.interval);
        }
        keys.core = std::move(e.buf);
    }

    // Bus: clock-domain fields only matter once contention is modeled.
    {
        KeyEncoder e;
        e.u32(cfg.memBusCycles);
        if (cfg.memBusCycles > 0) {
            e.f64(core.frequencyGHz);
            e.f64(cfg.referenceGHz());
            e.u32(cfg.numCores());
        }
        keys.bus = std::move(e.buf);
    }

    return keys;
}

std::string
threadComponentKey(const MulticoreConfig &cfg, uint32_t thread)
{
    return componentKeys(cfg, cfg.threadCore(thread)).full();
}

std::string
configComponentKey(const MulticoreConfig &cfg)
{
    KeyEncoder e;
    e.u32(cfg.numCores());
    std::string out = std::move(e.buf);
    for (const CoreConfig &core : cfg.cores) {
        out += componentKeys(cfg, core).full();
        KeyEncoder f;
        f.f64(core.frequencyGHz); // phase-2 time scales
        out += f.buf;
    }
    KeyEncoder m;
    m.u64(cfg.mapping.threadToCore.size());
    for (uint32_t c : cfg.mapping.threadToCore)
        m.u32(c);
    out += m.buf;
    return out;
}

} // namespace rppm

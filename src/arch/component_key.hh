/**
 * @file
 * Parameter-subset keys for the memoized component-evaluation engine.
 *
 * Eq. 1 (phase 1 of an RPPM prediction) reads only a subset of a
 * MulticoreConfig, and each of its model components reads a smaller
 * subset still. A component key is a compact binary encoding of exactly
 * the fields one component reads, so two design points whose keys match
 * are guaranteed — by construction, not by comparison of outputs — to
 * produce bit-identical component results, and a cache keyed on them is
 * sound. Fields a component derives (e.g. line counts from
 * size/assoc/line bytes) are encoded in derived form, so configs that
 * differ only in parameters the model never distinguishes share keys.
 *
 * The components and their invalidating fields:
 *
 *  - memory  cache geometry the StatStack model sees (L1I/L1D/L2/LLC
 *            line counts, hit latencies), the core's DRAM latency and
 *            the store FU latency
 *  - branch  predictor budget + history length (the entropy-model
 *            calibration inputs)
 *  - core    the window-replay term: width, ROB, IQ, front-end depth,
 *            MSHRs and every FU (latency/count/interval)
 *  - bus     memBusCycles, plus — only when bus contention is on —
 *            the clock-domain fields the M/D/1 model reads (core and
 *            reference frequency, core count). With the bus off a
 *            frequency-only sweep therefore shares phase-1 results
 *            across the entire axis.
 *
 * Core frequency is deliberately absent from every component except the
 * bus term: phase 1 works in the core's own cycle domain, so frequency
 * only enters a prediction through phase 2's time scales and the final
 * cycles-to-seconds conversions, which are never cached.
 */

#ifndef RPPM_ARCH_COMPONENT_KEY_HH
#define RPPM_ARCH_COMPONENT_KEY_HH

#include <string>

#include "arch/config.hh"

namespace rppm {

/** Append one double to a binary key buffer (fixed 8 bytes, the bit
 *  pattern little-endian — the shared convention of every key built
 *  here and of the prediction engine's derived cache keys). */
void appendKeyF64(std::string &buf, double v);

/** The per-component keys of one (multicore, core) pair. */
struct ComponentKeys
{
    std::string memory;
    std::string branch;
    std::string core;
    std::string bus;

    /** Concatenation: the full phase-1 invalidation key of a thread
     *  mapped to this core. */
    std::string full() const { return memory + branch + core + bus; }
};

/** Extract the component keys for a thread running on @p core of
 *  @p cfg. */
ComponentKeys componentKeys(const MulticoreConfig &cfg,
                            const CoreConfig &core);

/** full() of the core thread @p thread is mapped to. */
std::string threadComponentKey(const MulticoreConfig &cfg, uint32_t thread);

/**
 * Whole-config ordering key for grid sharding: the per-core full keys in
 * core-table order, the thread mapping and the frequency table. Configs
 * sorted by this key place design points that share component-cache
 * entries next to each other, and equal keys mark design points that are
 * identical in every field any model component reads.
 */
std::string configComponentKey(const MulticoreConfig &cfg);

} // namespace rppm

#endif // RPPM_ARCH_COMPONENT_KEY_HH

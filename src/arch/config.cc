#include "arch/config.hh"

#include <algorithm>

#include "common/assert.hh"

namespace rppm {

std::array<FuConfig, kNumOpClasses>
CoreConfig::defaultFus()
{
    std::array<FuConfig, kNumOpClasses> fus{};
    fus[static_cast<size_t>(OpClass::IntAlu)] = {1, 4, 1};
    fus[static_cast<size_t>(OpClass::IntMul)] = {3, 1, 1};
    fus[static_cast<size_t>(OpClass::IntDiv)] = {20, 1, 12};
    fus[static_cast<size_t>(OpClass::FpAdd)] = {3, 2, 1};
    fus[static_cast<size_t>(OpClass::FpMul)] = {5, 2, 1};
    fus[static_cast<size_t>(OpClass::FpDiv)] = {18, 1, 10};
    fus[static_cast<size_t>(OpClass::Load)] = {1, 2, 1};  // + cache latency
    fus[static_cast<size_t>(OpClass::Store)] = {1, 2, 1};
    fus[static_cast<size_t>(OpClass::Branch)] = {1, 2, 1};
    return fus;
}

void
MulticoreConfig::validate() const
{
    RPPM_REQUIRE(numCores >= 1, "need at least one core");
    RPPM_REQUIRE(core.dispatchWidth >= 1, "dispatch width must be >= 1");
    RPPM_REQUIRE(core.robSize >= core.dispatchWidth,
                 "ROB must hold at least one dispatch group");
    RPPM_REQUIRE(core.issueQueueSize >= 1, "issue queue must be >= 1");
    RPPM_REQUIRE(core.frequencyGHz > 0.0, "frequency must be positive");
    for (const CacheConfig *c : {&l1i, &l1d, &l2, &llc}) {
        RPPM_REQUIRE(c->lineBytes > 0 && c->assoc > 0 && c->sizeBytes > 0,
                     "cache parameters must be positive");
        RPPM_REQUIRE(c->sizeBytes % (c->assoc * c->lineBytes) == 0,
                     "cache size must be a whole number of sets");
    }
    RPPM_REQUIRE(l1i.lineBytes == l1d.lineBytes &&
                 l1d.lineBytes == l2.lineBytes &&
                 l2.lineBytes == llc.lineBytes,
                 "all cache levels must share one line size");
}

MulticoreConfig
baseConfig()
{
    MulticoreConfig cfg;
    cfg.name = "Base";
    cfg.numCores = 4;
    cfg.core.frequencyGHz = 2.5;
    cfg.core.dispatchWidth = 4;
    cfg.core.robSize = 128;
    cfg.core.issueQueueSize = 64;
    cfg.validate();
    return cfg;
}

std::vector<MulticoreConfig>
tableIvConfigs()
{
    // Table IV: same peak ops/s across all five design points.
    struct Row
    {
        const char *name;
        double freq;
        uint32_t width;
        uint32_t rob;
        uint32_t iq;
    };
    static const Row rows[] = {
        {"Smallest", 5.00, 2, 32, 16},
        {"Small", 3.33, 3, 72, 36},
        {"Base", 2.50, 4, 128, 64},
        {"Big", 2.00, 5, 200, 100},
        {"Biggest", 1.66, 6, 288, 144},
    };

    std::vector<MulticoreConfig> configs;
    for (const Row &row : rows) {
        MulticoreConfig cfg;
        cfg.name = row.name;
        cfg.numCores = 4;
        cfg.core.frequencyGHz = row.freq;
        cfg.core.dispatchWidth = row.width;
        cfg.core.robSize = row.rob;
        cfg.core.issueQueueSize = row.iq;
        // Off-chip DRAM latency is constant in wall-clock time (80 ns,
        // i.e. 200 cycles at the 2.5 GHz Base), so high-frequency design
        // points pay more core cycles per miss. On-chip cache latencies
        // stay constant in cycles (SRAM pipelines track the clock).
        cfg.memLatency = static_cast<uint32_t>(80.0 * row.freq + 0.5);
        // Execution resources scale with width so every design point can
        // actually sustain its peak dispatch rate (the iso-throughput
        // premise of the case study).
        cfg.core.fus[static_cast<size_t>(OpClass::IntAlu)].count =
            row.width;
        const uint32_t half = std::max<uint32_t>(2, (row.width + 1) / 2);
        for (OpClass cls : {OpClass::FpAdd, OpClass::FpMul, OpClass::Load,
                            OpClass::Store, OpClass::Branch}) {
            cfg.core.fus[static_cast<size_t>(cls)].count = half;
        }
        cfg.validate();
        configs.push_back(cfg);
    }
    return configs;
}

} // namespace rppm

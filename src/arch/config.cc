#include "arch/config.hh"

#include <algorithm>

#include "common/assert.hh"

namespace rppm {

std::array<FuConfig, kNumOpClasses>
CoreConfig::defaultFus()
{
    std::array<FuConfig, kNumOpClasses> fus{};
    fus[static_cast<size_t>(OpClass::IntAlu)] = {1, 4, 1};
    fus[static_cast<size_t>(OpClass::IntMul)] = {3, 1, 1};
    fus[static_cast<size_t>(OpClass::IntDiv)] = {20, 1, 12};
    fus[static_cast<size_t>(OpClass::FpAdd)] = {3, 2, 1};
    fus[static_cast<size_t>(OpClass::FpMul)] = {5, 2, 1};
    fus[static_cast<size_t>(OpClass::FpDiv)] = {18, 1, 10};
    fus[static_cast<size_t>(OpClass::Load)] = {1, 2, 1};  // + cache latency
    fus[static_cast<size_t>(OpClass::Store)] = {1, 2, 1};
    fus[static_cast<size_t>(OpClass::Branch)] = {1, 2, 1};
    return fus;
}

void
CoreConfig::validate() const
{
    RPPM_REQUIRE(dispatchWidth >= 1, "dispatch width must be >= 1");
    RPPM_REQUIRE(robSize >= dispatchWidth,
                 "ROB must hold at least one dispatch group");
    RPPM_REQUIRE(issueQueueSize >= 1, "issue queue must be >= 1");
    RPPM_REQUIRE(frequencyGHz > 0.0, "frequency must be positive");
    for (const CacheConfig *c : {&l1i, &l1d, &l2}) {
        RPPM_REQUIRE(c->lineBytes > 0 && c->assoc > 0 && c->sizeBytes > 0,
                     "cache parameters must be positive");
        RPPM_REQUIRE(c->sizeBytes % (c->assoc * c->lineBytes) == 0,
                     "cache size must be a whole number of sets");
    }
    RPPM_REQUIRE(l1i.lineBytes == l1d.lineBytes &&
                 l1d.lineBytes == l2.lineBytes,
                 "private cache levels must share one line size");
}

std::string
ThreadMapping::label() const
{
    if (threadToCore.empty())
        return "id";
    // Any multi-digit core id switches the whole label to '.'-separated
    // form; mixing the two would make labels ambiguous.
    const bool wide = std::any_of(threadToCore.begin(), threadToCore.end(),
                                  [](uint32_t c) { return c > 9; });
    std::string out;
    for (size_t t = 0; t < threadToCore.size(); ++t) {
        if (wide && t > 0)
            out += '.';
        out += std::to_string(threadToCore[t]);
    }
    return out;
}

void
ThreadMapping::validate(uint32_t numCores) const
{
    for (uint32_t core : threadToCore) {
        RPPM_REQUIRE(core < numCores,
                     "thread mapping references a core index beyond the "
                     "core table");
    }
}

bool
MulticoreConfig::homogeneous() const
{
    for (const CoreConfig &c : cores) {
        if (!(c == cores.front()))
            return false;
    }
    return true;
}

MulticoreConfig &
MulticoreConfig::setNumCores(uint32_t n)
{
    RPPM_REQUIRE(!cores.empty(), "core table is empty");
    cores.resize(n, cores.front());
    return *this;
}

void
MulticoreConfig::validate() const
{
    RPPM_REQUIRE(!cores.empty(), "need at least one core (empty core table)");
    for (const CoreConfig &c : cores)
        c.validate();
    RPPM_REQUIRE(llc.lineBytes > 0 && llc.assoc > 0 && llc.sizeBytes > 0,
                 "cache parameters must be positive");
    RPPM_REQUIRE(llc.sizeBytes % (llc.assoc * llc.lineBytes) == 0,
                 "cache size must be a whole number of sets");
    for (const CoreConfig &c : cores) {
        RPPM_REQUIRE(c.l1d.lineBytes == llc.lineBytes,
                     "all cache levels of all cores must share one line "
                     "size");
    }
    mapping.validate(numCores());
}

MulticoreConfig
baseConfig()
{
    CoreConfig core;
    core.frequencyGHz = 2.5;
    core.dispatchWidth = 4;
    core.robSize = 128;
    core.issueQueueSize = 64;
    MulticoreConfig cfg("Base", 4, core);
    cfg.validate();
    return cfg;
}

std::vector<MulticoreConfig>
tableIvConfigs()
{
    // Table IV: same peak ops/s across all five design points.
    struct Row
    {
        const char *name;
        double freq;
        uint32_t width;
        uint32_t rob;
        uint32_t iq;
    };
    static const Row rows[] = {
        {"Smallest", 5.00, 2, 32, 16},
        {"Small", 3.33, 3, 72, 36},
        {"Base", 2.50, 4, 128, 64},
        {"Big", 2.00, 5, 200, 100},
        {"Biggest", 1.66, 6, 288, 144},
    };

    std::vector<MulticoreConfig> configs;
    for (const Row &row : rows) {
        CoreConfig core;
        core.frequencyGHz = row.freq;
        core.dispatchWidth = row.width;
        core.robSize = row.rob;
        core.issueQueueSize = row.iq;
        // Off-chip DRAM latency is constant in wall-clock time (80 ns,
        // i.e. 200 cycles at the 2.5 GHz Base), so high-frequency design
        // points pay more core cycles per miss. On-chip cache latencies
        // stay constant in cycles (SRAM pipelines track the clock).
        core.memLatency = static_cast<uint32_t>(80.0 * row.freq + 0.5);
        // Execution resources scale with width so every design point can
        // actually sustain its peak dispatch rate (the iso-throughput
        // premise of the case study).
        core.fus[static_cast<size_t>(OpClass::IntAlu)].count = row.width;
        const uint32_t half = std::max<uint32_t>(2, (row.width + 1) / 2);
        for (OpClass cls : {OpClass::FpAdd, OpClass::FpMul, OpClass::Load,
                            OpClass::Store, OpClass::Branch}) {
            core.fus[static_cast<size_t>(cls)].count = half;
        }
        MulticoreConfig cfg(row.name, 4, core);
        cfg.validate();
        configs.push_back(std::move(cfg));
    }
    return configs;
}

MulticoreConfig
bigLittleConfig(uint32_t numBig, uint32_t numLittle, std::string name)
{
    RPPM_REQUIRE(numBig >= 1, "big.LITTLE needs at least one big core");
    RPPM_REQUIRE(numLittle >= 1,
                 "big.LITTLE needs at least one little core");

    // Big: the paper's Base core.
    const CoreConfig big = baseConfig().core();

    // Little: narrow, slow clock, shallow window, small private caches —
    // an efficiency core. DRAM latency keeps the same 80 ns wall-clock
    // cost in the little clock domain.
    CoreConfig little;
    little.frequencyGHz = 1.25;
    little.dispatchWidth = 2;
    little.robSize = 32;
    little.issueQueueSize = 16;
    little.frontendDepth = 4;
    little.mshrs = 8;
    little.fus[static_cast<size_t>(OpClass::IntAlu)].count = 2;
    little.branch.totalBytes = 1024;
    little.branch.historyBits = 8;
    little.l1i = {"L1I", 16 * 1024, 4, 64, 1};
    little.l1d = {"L1D", 16 * 1024, 4, 64, 2};
    little.l2 = {"L2", 128 * 1024, 8, 64, 8};
    little.memLatency =
        static_cast<uint32_t>(80.0 * little.frequencyGHz + 0.5);

    MulticoreConfig cfg;
    cfg.name = name.empty() ?
        "bigLITTLE-" + std::to_string(numBig) + "+" +
            std::to_string(numLittle) :
        std::move(name);
    cfg.cores.assign(numBig, big);
    cfg.cores.insert(cfg.cores.end(), numLittle, little);
    cfg.validate();
    return cfg;
}

MulticoreConfig
dvfsConfig(const MulticoreConfig &base, const std::vector<double> &perCoreGHz,
           std::string name)
{
    RPPM_REQUIRE(perCoreGHz.size() == base.cores.size(),
                 "one frequency required per core");
    MulticoreConfig cfg = base;
    for (size_t i = 0; i < cfg.cores.size(); ++i) {
        CoreConfig &c = cfg.cores[i];
        RPPM_REQUIRE(perCoreGHz[i] > 0.0, "frequency must be positive");
        // Constant wall-clock DRAM latency: rescale the cycle count to
        // the new clock.
        const double mem_ns =
            static_cast<double>(c.memLatency) / c.frequencyGHz;
        c.frequencyGHz = perCoreGHz[i];
        c.memLatency =
            static_cast<uint32_t>(mem_ns * perCoreGHz[i] + 0.5);
    }
    if (!name.empty())
        cfg.name = std::move(name);
    cfg.validate();
    return cfg;
}

std::vector<MulticoreConfig>
heterogeneousConfigs()
{
    std::vector<MulticoreConfig> configs;
    configs.push_back(bigLittleConfig(2, 2));
    configs.push_back(bigLittleConfig(1, 3));
    const MulticoreConfig base = baseConfig();
    configs.push_back(
        dvfsConfig(base, {2.5, 2.0, 1.5, 1.0}, "DVFS-ladder"));
    configs.push_back(
        dvfsConfig(base, {2.5, 2.5, 1.25, 1.25}, "DVFS-split"));
    return configs;
}

std::vector<MulticoreConfig>
mappingSweep(const MulticoreConfig &base, uint32_t numThreads)
{
    base.validate();
    RPPM_REQUIRE(numThreads >= 1, "need at least one thread");
    const uint32_t n = base.numCores();

    // Group interchangeable cores into classes; placements that differ
    // only by a permutation of equal cores are the same design point,
    // so the sweep enumerates *distinct class sequences* directly
    // (multiset permutations, one emitted config each) instead of
    // walking all n! core orderings.
    std::vector<std::vector<uint32_t>> classes; // core ids per class
    for (uint32_t c = 0; c < n; ++c) {
        size_t k = 0;
        while (k < classes.size() &&
               !(base.cores[classes[k].front()] == base.cores[c]))
            ++k;
        if (k == classes.size())
            classes.emplace_back();
        classes[k].push_back(c);
    }

    // Threads beyond the core count wrap onto the same placement
    // (thread t shares thread t-n's core), mirroring the identity
    // mapping's modulo semantics.
    const uint32_t len = std::min(numThreads, n);
    std::vector<MulticoreConfig> sweep;
    std::vector<size_t> seq;                    // class per position
    std::vector<uint32_t> used(classes.size(), 0);

    auto emit = [&]() {
        std::vector<uint32_t> map(numThreads);
        std::vector<uint32_t> taken(classes.size(), 0);
        for (uint32_t t = 0; t < numThreads; ++t) {
            if (t < len) {
                const size_t k = seq[t];
                map[t] = classes[k][taken[k]++]; // distinct physical core
            } else {
                map[t] = map[t % len];
            }
        }
        MulticoreConfig cfg = base;
        cfg.mapping = ThreadMapping(std::move(map));
        cfg.name = base.name + "#" + cfg.mapping.label();
        sweep.push_back(std::move(cfg));
    };
    // DFS over class sequences, bounded by each class's core count so
    // no placement oversubscribes a core.
    auto rec = [&](auto &&self) -> void {
        if (seq.size() == len) {
            emit();
            return;
        }
        for (size_t k = 0; k < classes.size(); ++k) {
            if (used[k] == classes[k].size())
                continue;
            ++used[k];
            seq.push_back(k);
            self(self);
            seq.pop_back();
            --used[k];
        }
    };
    rec(rec);
    return sweep;
}

} // namespace rppm

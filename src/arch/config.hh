/**
 * @file
 * Multicore architecture configuration.
 *
 * Mirrors the parameters the paper varies (Table IV): clock frequency,
 * dispatch width, ROB and issue-queue sizes, the cache hierarchy and the
 * branch predictor. Both the golden-reference simulator and the RPPM
 * analytical model consume the same MulticoreConfig, so a single profile
 * can be evaluated against any configuration ("profile once, predict many").
 *
 * A MulticoreConfig is a per-core table of CoreConfigs plus the shared
 * resources (LLC, memory bus), so heterogeneous machines — big.LITTLE
 * pairings, per-core DVFS ladders — are first-class design points. A
 * ThreadMapping places software threads onto cores; the default identity
 * mapping reproduces the classic homogeneous behaviour. Time bookkeeping
 * with mixed clock domains:
 *
 *  - per-core times are expressed in that core's own cycles;
 *  - multicore-level times (sync events, total execution time,
 *    bottlegraph activity) are expressed in *reference cycles*, i.e.
 *    cycles of core 0's clock, via timeScale(). For a homogeneous
 *    machine every scale factor is exactly 1.0, so predictions are
 *    bit-identical to the uniform-core code path.
 */

#ifndef RPPM_ARCH_CONFIG_HH
#define RPPM_ARCH_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hh"

namespace rppm {

/** Per-op-class execution latency / unit count / issue throughput. */
struct FuConfig
{
    uint32_t latency = 1;    ///< execution latency in cycles
    uint32_t count = 1;      ///< number of units
    uint32_t interval = 1;   ///< issue interval per unit (1 = pipelined)

    bool operator==(const FuConfig &) const = default;
};

/** One cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 4;
    uint32_t lineBytes = 64;
    uint32_t latency = 3;    ///< access (hit) latency in cycles

    uint32_t numSets() const { return sizeBytes / (assoc * lineBytes); }
    uint32_t numLines() const { return sizeBytes / lineBytes; }

    bool operator==(const CacheConfig &) const = default;
};

/** Branch predictor configuration (tournament, as in Table IV). */
struct BranchPredictorConfig
{
    uint32_t totalBytes = 4 * 1024;  ///< total predictor storage budget
    uint32_t historyBits = 12;       ///< gshare global history length

    /** 2-bit counters per table; budget split across three tables. */
    uint32_t tableEntries() const { return totalBytes * 8 / 2 / 3; }

    bool operator==(const BranchPredictorConfig &) const = default;
};

/**
 * Out-of-order core configuration, including the core's private cache
 * levels and its view of DRAM latency (in this core's cycles), so
 * asymmetric designs can give big and little cores different memory
 * front ends.
 */
struct CoreConfig
{
    double frequencyGHz = 2.5;
    uint32_t dispatchWidth = 4;
    uint32_t robSize = 128;
    uint32_t issueQueueSize = 64;
    uint32_t frontendDepth = 5;     ///< pipeline refill depth (cycles)
    uint32_t mshrs = 16;            ///< max outstanding L1D misses
    std::array<FuConfig, kNumOpClasses> fus = defaultFus();

    BranchPredictorConfig branch;

    /** Private cache levels (the LLC is shared, see MulticoreConfig). */
    CacheConfig l1i{"L1I", 32 * 1024, 4, 64, 1};
    CacheConfig l1d{"L1D", 32 * 1024, 4, 64, 3};
    CacheConfig l2{"L2", 256 * 1024, 8, 64, 10};

    /** DRAM access latency as seen by this core, in this core's cycles
     *  (off-chip latency is constant in wall-clock time, so cores at
     *  different frequencies pay different cycle counts). */
    uint32_t memLatency = 200;

    /** Default functional-unit latencies (Skylake-like integers). */
    static std::array<FuConfig, kNumOpClasses> defaultFus();

    /** Throws std::invalid_argument on inconsistent core parameters. */
    void validate() const;

    bool operator==(const CoreConfig &) const = default;
};

/**
 * Thread-to-core placement. An empty table is the identity mapping
 * (thread t runs on core t mod numCores); a non-empty table maps thread
 * t to threadToCore[t mod table-size]. Only the *parameters* of the
 * mapped core are applied — the model keeps the paper's assumption that
 * concurrently active threads do not time-share a core.
 */
struct ThreadMapping
{
    std::vector<uint32_t> threadToCore;

    ThreadMapping() = default;
    explicit ThreadMapping(std::vector<uint32_t> map)
        : threadToCore(std::move(map))
    {}

    bool isIdentity() const { return threadToCore.empty(); }

    /** Core index thread @p thread is placed on. */
    uint32_t coreOf(uint32_t thread, uint32_t numCores) const
    {
        if (threadToCore.empty())
            return numCores > 0 ? thread % numCores : 0;
        return threadToCore[thread % threadToCore.size()];
    }

    /** Compact label ("t0>c2 t1>c0 ..." shortened to "2031"). */
    std::string label() const;

    /** Throws std::invalid_argument on out-of-range core indices. */
    void validate(uint32_t numCores) const;

    bool operator==(const ThreadMapping &) const = default;
};

/**
 * Whole multicore: a per-core table of (possibly different) CoreConfigs
 * with private L1I/L1D/L2 each, one shared LLC, and a thread-to-core
 * mapping. The default constructor and the (name, numCores, core)
 * convenience constructor build the classic homogeneous machine.
 */
struct MulticoreConfig
{
    std::string name = "base";

    /** One entry per core; validate() rejects an empty table. */
    std::vector<CoreConfig> cores = std::vector<CoreConfig>(4);

    /** Thread placement; default identity. */
    ThreadMapping mapping;

    CacheConfig llc{"LLC", 8 * 1024 * 1024, 16, 64, 30};

    /**
     * Cycles the shared memory bus is occupied per DRAM transfer, in
     * reference (core 0) cycles; concurrent misses from different cores
     * queue behind each other. 0 disables bus contention (infinite
     * bandwidth), which matches the paper's simulation setup; set >0 to
     * study bandwidth interference.
     */
    uint32_t memBusCycles = 0;

    MulticoreConfig() = default;

    /** Uniform machine: @p n identical copies of @p core. */
    MulticoreConfig(std::string name_, uint32_t n, CoreConfig core_ = {})
        : name(std::move(name_)), cores(n, core_)
    {}

    uint32_t numCores() const
    {
        return static_cast<uint32_t>(cores.size());
    }

    /** Core @p i's configuration (core 0 by default: the homogeneous
     *  "template" core and the machine's reference clock domain). */
    CoreConfig &core(uint32_t i = 0) { return cores.at(i); }
    const CoreConfig &core(uint32_t i = 0) const { return cores.at(i); }

    /** True when every core equals core 0. */
    bool homogeneous() const;

    /** Resize the core table to @p n cores replicating core 0. */
    MulticoreConfig &setNumCores(uint32_t n);

    /** Apply @p fn to every core (uniform tweaks in one line). */
    template <typename Fn>
    MulticoreConfig &
    eachCore(Fn &&fn)
    {
        for (CoreConfig &c : cores)
            fn(c);
        return *this;
    }

    /** Core index thread @p thread is mapped to. */
    uint32_t coreOf(uint32_t thread) const
    {
        return mapping.coreOf(thread, numCores());
    }

    /** Configuration of the core thread @p thread is mapped to. */
    const CoreConfig &threadCore(uint32_t thread) const
    {
        return cores[coreOf(thread)];
    }

    /** The reference clock domain (core 0's frequency). */
    double referenceGHz() const { return cores.front().frequencyGHz; }

    /**
     * Reference cycles per cycle of core @p i: multiply a core-local
     * cycle count by this to express it on the common (core 0) time
     * base. Exactly 1.0 when the frequencies match.
     */
    double
    timeScale(uint32_t i) const
    {
        return referenceGHz() / cores[i].frequencyGHz;
    }

    /** timeScale() of the core thread @p thread is mapped to. */
    double
    threadTimeScale(uint32_t thread) const
    {
        return timeScale(coreOf(thread));
    }

    /** Convert a cycle count on core @p i's clock to nanoseconds. */
    double
    cyclesToNs(double cycles, uint32_t i = 0) const
    {
        return cycles / cores[i].frequencyGHz;
    }

    /** Convert reference cycles (the multicore time base) to seconds. */
    double
    refCyclesToSeconds(double refCycles) const
    {
        return refCycles / (referenceGHz() * 1e9);
    }

    /** Throws if internally inconsistent (empty core table, invalid
     *  core or cache parameters, mixed line sizes, out-of-range thread
     *  mapping). */
    void validate() const;

    bool operator==(const MulticoreConfig &) const = default;
};

/**
 * The five design points of Table IV. All five deliver the same peak
 * throughput (width x frequency = 10 Gops/s); ROB and issue queue scale
 * with width.
 */
std::vector<MulticoreConfig> tableIvConfigs();

/** The paper's Base configuration (middle column of Table IV). */
MulticoreConfig baseConfig();

// ------------------------------------------- heterogeneous design axes ---

/**
 * Asymmetric big.LITTLE machine: @p numBig Base-class cores (cores
 * 0..numBig-1) followed by @p numLittle in-order-ish little cores
 * (narrow, slow clock, small private caches). Core 0 is a big core, so
 * reference time stays on the big clock domain.
 */
MulticoreConfig bigLittleConfig(uint32_t numBig, uint32_t numLittle,
                                std::string name = "");

/**
 * Per-core DVFS scenario: copy of @p base with core i clocked at
 * @p perCoreGHz[i] (the vector must have one entry per core). Each
 * core's DRAM latency is rescaled so the wall-clock DRAM latency is
 * preserved — the paper's constant-80ns assumption, per core.
 */
MulticoreConfig dvfsConfig(const MulticoreConfig &base,
                           const std::vector<double> &perCoreGHz,
                           std::string name = "");

/**
 * A named family of heterogeneous scenarios to sweep alongside
 * tableIvConfigs(): big.LITTLE pairings and per-core DVFS ladders on
 * the Base machine.
 */
std::vector<MulticoreConfig> heterogeneousConfigs();

/**
 * Thread-placement design space: one config per *distinct* placement of
 * @p numThreads threads onto @p base's cores (permutations of the core
 * order, deduplicated by the per-thread core parameters they induce, so
 * symmetric cores do not multiply the space). Each config is named
 * "<base>#<mapping label>" and can be fed straight to Study::addConfigs
 * or exploreDesignSpace as design points.
 */
std::vector<MulticoreConfig> mappingSweep(const MulticoreConfig &base,
                                          uint32_t numThreads);

} // namespace rppm

#endif // RPPM_ARCH_CONFIG_HH

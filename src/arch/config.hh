/**
 * @file
 * Multicore architecture configuration.
 *
 * Mirrors the parameters the paper varies (Table IV): clock frequency,
 * dispatch width, ROB and issue-queue sizes, the cache hierarchy and the
 * branch predictor. Both the golden-reference simulator and the RPPM
 * analytical model consume the same MulticoreConfig, so a single profile
 * can be evaluated against any configuration ("profile once, predict many").
 */

#ifndef RPPM_ARCH_CONFIG_HH
#define RPPM_ARCH_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace rppm {

/** Per-op-class execution latency / unit count / issue throughput. */
struct FuConfig
{
    uint32_t latency = 1;    ///< execution latency in cycles
    uint32_t count = 1;      ///< number of units
    uint32_t interval = 1;   ///< issue interval per unit (1 = pipelined)
};

/** One cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 4;
    uint32_t lineBytes = 64;
    uint32_t latency = 3;    ///< access (hit) latency in cycles

    uint32_t numSets() const { return sizeBytes / (assoc * lineBytes); }
    uint32_t numLines() const { return sizeBytes / lineBytes; }
};

/** Branch predictor configuration (tournament, as in Table IV). */
struct BranchPredictorConfig
{
    uint32_t totalBytes = 4 * 1024;  ///< total predictor storage budget
    uint32_t historyBits = 12;       ///< gshare global history length

    /** 2-bit counters per table; budget split across three tables. */
    uint32_t tableEntries() const { return totalBytes * 8 / 2 / 3; }
};

/** Out-of-order core configuration. */
struct CoreConfig
{
    double frequencyGHz = 2.5;
    uint32_t dispatchWidth = 4;
    uint32_t robSize = 128;
    uint32_t issueQueueSize = 64;
    uint32_t frontendDepth = 5;     ///< pipeline refill depth (cycles)
    uint32_t mshrs = 16;            ///< max outstanding L1D misses
    std::array<FuConfig, kNumOpClasses> fus = defaultFus();

    BranchPredictorConfig branch;

    /** Default functional-unit latencies (Skylake-like integers). */
    static std::array<FuConfig, kNumOpClasses> defaultFus();
};

/** Whole multicore: identical cores, private L1I/L1D/L2, shared LLC. */
struct MulticoreConfig
{
    std::string name = "base";
    uint32_t numCores = 4;
    CoreConfig core;
    CacheConfig l1i{"L1I", 32 * 1024, 4, 64, 1};
    CacheConfig l1d{"L1D", 32 * 1024, 4, 64, 3};
    CacheConfig l2{"L2", 256 * 1024, 8, 64, 10};
    CacheConfig llc{"LLC", 8 * 1024 * 1024, 16, 64, 30};
    uint32_t memLatency = 200;      ///< DRAM access latency in cycles

    /**
     * Cycles the shared memory bus is occupied per DRAM transfer;
     * concurrent misses from different cores queue behind each other.
     * 0 disables bus contention (infinite bandwidth), which matches the
     * paper's simulation setup; set >0 to study bandwidth interference.
     */
    uint32_t memBusCycles = 0;

    /** Throws if internally inconsistent. */
    void validate() const;

    /** Convert a cycle count on this config to nanoseconds. */
    double cyclesToNs(double cycles) const
    {
        return cycles / core.frequencyGHz;
    }
};

/**
 * The five design points of Table IV. All five deliver the same peak
 * throughput (width x frequency = 10 Gops/s); ROB and issue queue scale
 * with width.
 */
std::vector<MulticoreConfig> tableIvConfigs();

/** The paper's Base configuration (middle column of Table IV). */
MulticoreConfig baseConfig();

} // namespace rppm

#endif // RPPM_ARCH_CONFIG_HH

#include "branch/entropy.hh"

#include <algorithm>
#include <cmath>

#include "branch/tournament.hh"
#include "common/assert.hh"
#include "common/rng.hh"

namespace rppm {

void
BranchEntropyProfile::grow(size_t new_cap)
{
    std::vector<uint8_t> old_used = std::move(used_);
    std::vector<uint64_t> old_pcs = std::move(pcs_);
    std::vector<Counts> old_counts = std::move(counts_);

    used_.assign(new_cap, 0);
    pcs_.assign(new_cap, 0);
    counts_.assign(new_cap, Counts{});

    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_used.size(); ++i) {
        if (!old_used[i])
            continue;
        size_t j = static_cast<size_t>(mix64(old_pcs[i])) & mask;
        while (used_[j])
            j = (j + 1) & mask;
        used_[j] = 1;
        pcs_[j] = old_pcs[i];
        counts_[j] = old_counts[i];
    }
}

void
BranchEntropyProfile::addCounts(uint64_t pc, uint64_t taken, uint64_t total)
{
    Counts &c = slot(pc);
    c.taken += taken;
    c.total += total;
    total_ += total;
}

void
BranchEntropyProfile::merge(const BranchEntropyProfile &other)
{
    other.forEach([this](uint64_t pc, uint64_t taken, uint64_t total) {
        Counts &mine = slot(pc);
        mine.taken += taken;
        mine.total += total;
    });
    total_ += other.total_;
}

double
BranchEntropyProfile::averageLinearEntropy() const
{
    if (total_ == 0)
        return 0.0;
    double weighted = 0.0;
    forEach([&weighted](uint64_t, uint64_t taken, uint64_t total) {
        const double p =
            static_cast<double>(taken) / static_cast<double>(total);
        // BranchEntropyProfile::forEach is this class's own
        // single-threaded slot-order visitor, not a worker pool.
        // rppm-lint: deterministic-reduce(sequential, fixed slot order)
        weighted += 2.0 * p * (1.0 - p) * static_cast<double>(total);
    });
    return weighted / static_cast<double>(total_);
}

EntropyMissRateModel::EntropyMissRateModel(const BranchPredictorConfig &cfg)
{
    // Calibrate: for a grid of taken probabilities, stream Bernoulli
    // branches from a moderate number of static PCs through the real
    // predictor and record (linear entropy, measured miss rate). Using
    // multiple PCs exercises aliasing the way a real workload would.
    constexpr int kStaticBranches = 64;
    constexpr int kStreamLength = 200000;
    Rng rng(0xb7a9c8e5f1d2433ULL);

    std::vector<std::pair<double, double>> raw;
    for (double p : {0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85,
                     0.9, 0.94, 0.97, 0.99, 1.0}) {
        TournamentPredictor pred(cfg);
        Rng stream = rng.fork(static_cast<uint64_t>(p * 1000));
        for (int i = 0; i < kStreamLength; ++i) {
            const uint64_t pc =
                0x400000 + 4 * stream.nextBounded(kStaticBranches);
            pred.predictAndUpdate(pc, stream.nextBool(p));
        }
        const double entropy = 2.0 * p * (1.0 - p);
        raw.emplace_back(entropy, pred.stats().missRate());
    }

    std::sort(raw.begin(), raw.end());
    // Enforce monotonicity (measurement noise can produce tiny dips).
    double running_max = 0.0;
    for (auto &[e, m] : raw) {
        running_max = std::max(running_max, m);
        m = running_max;
    }
    knots_ = std::move(raw);
    RPPM_ASSERT(!knots_.empty());
}

double
EntropyMissRateModel::missRate(double e) const
{
    e = std::clamp(e, 0.0, 0.5);
    if (e <= knots_.front().first)
        return knots_.front().second * (knots_.front().first > 0.0 ?
            e / knots_.front().first : 1.0);
    if (e >= knots_.back().first)
        return knots_.back().second;
    for (size_t i = 1; i < knots_.size(); ++i) {
        if (e <= knots_[i].first) {
            const auto &[e0, m0] = knots_[i - 1];
            const auto &[e1, m1] = knots_[i];
            const double t = (e - e0) / (e1 - e0);
            return m0 + t * (m1 - m0);
        }
    }
    return knots_.back().second;
}

} // namespace rppm

/**
 * @file
 * Microarchitecture-independent branch behaviour characterization.
 *
 * Follows the approach of De Pestel et al. (ISPASS 2015), which the paper
 * relies on for its branch component: the profiler measures each static
 * branch's *linear entropy* — a purely workload-dependent number — and a
 * one-time per-predictor calibration maps entropy to a miss rate for a
 * concrete predictor configuration. The calibration drives synthetic
 * Bernoulli branch streams through the real TournamentPredictor once per
 * predictor config and caches the resulting monotone entropy->missrate map.
 */

#ifndef RPPM_BRANCH_ENTROPY_HH
#define RPPM_BRANCH_ENTROPY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "common/hash.hh"

namespace rppm {

/**
 * Accumulates per-static-branch outcome counts and reports the
 * taken-count-weighted average linear entropy of the branch stream.
 *
 * Linear entropy of a branch with taken probability p is 2*p*(1-p): 0 for
 * perfectly biased branches, 1/2 for coin flips. It is linear in the
 * mispredict probability of an idealized predictor that always guesses the
 * majority outcome, which makes the entropy->missrate map close to linear
 * and easy to calibrate.
 */
class BranchEntropyProfile
{
  public:
    /** Record one dynamic branch outcome. Inline: called once per
     *  dynamic branch on the profiler hot path. */
    void
    record(uint64_t pc, bool taken)
    {
        Counts &c = slot(pc);
        ++c.total;
        if (taken)
            ++c.taken;
        ++total_;
    }

    /** Merge another profile (same PC space). */
    void merge(const BranchEntropyProfile &other);

    /** Total dynamic branches observed. */
    uint64_t dynamicBranches() const { return total_; }

    /**
     * Dynamic-count-weighted average linear entropy in [0, 0.5].
     * Branches seen only once contribute zero entropy.
     */
    double averageLinearEntropy() const;

    /** Number of distinct static branches. */
    size_t staticBranches() const { return size_; }

    /** Bulk-insert per-branch counts (deserialization). */
    void addCounts(uint64_t pc, uint64_t taken, uint64_t total);

    /** Visit every static branch as (pc, taken, total). Iteration order
     *  is unspecified (consumers that need determinism sort by pc). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < used_.size(); ++i) {
            if (used_[i])
                fn(pcs_[i], counts_[i].taken, counts_[i].total);
        }
    }

  private:
    struct Counts
    {
        uint64_t taken = 0;
        uint64_t total = 0;
    };

    /** Open-addressing slot for @p pc, inserting an empty entry. */
    Counts &
    slot(uint64_t pc)
    {
        if ((size_ + 1) * 10 >= used_.size() * 7)
            grow(used_.size() == 0 ? 256 : used_.size() * 2);
        const size_t mask = used_.size() - 1;
        size_t i = static_cast<size_t>(mix64(pc)) & mask;
        while (true) {
            if (!used_[i]) {
                used_[i] = 1;
                pcs_[i] = pc;
                ++size_;
                return counts_[i];
            }
            if (pcs_[i] == pc)
                return counts_[i];
            i = (i + 1) & mask;
        }
    }

    void grow(size_t new_cap);

    std::vector<uint8_t> used_;
    std::vector<uint64_t> pcs_;
    std::vector<Counts> counts_;
    size_t size_ = 0;
    uint64_t total_ = 0;
};

/**
 * Entropy -> miss-rate map for one predictor configuration.
 *
 * Built once per BranchPredictorConfig by measuring the real tournament
 * predictor on synthetic branch streams spanning the entropy range, then
 * evaluated by monotone piecewise-linear interpolation. This keeps the
 * profile microarchitecture-independent while the map itself is a
 * workload-independent property of the predictor — the same split the
 * paper uses.
 */
class EntropyMissRateModel
{
  public:
    explicit EntropyMissRateModel(const BranchPredictorConfig &cfg);

    /** Predicted miss rate for a stream of average linear entropy @p e. */
    double missRate(double e) const;

    /** The calibration knots (entropy, missRate), for inspection/tests. */
    const std::vector<std::pair<double, double>> &knots() const
    {
        return knots_;
    }

  private:
    std::vector<std::pair<double, double>> knots_;
};

} // namespace rppm

#endif // RPPM_BRANCH_ENTROPY_HH

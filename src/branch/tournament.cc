#include "branch/tournament.hh"

#include <bit>

#include "common/assert.hh"

namespace rppm {

TournamentPredictor::TournamentPredictor(const BranchPredictorConfig &cfg)
{
    // Round the per-table entry count down to a power of two so simple
    // mask indexing works.
    uint32_t entries = cfg.tableEntries();
    RPPM_REQUIRE(entries >= 4, "branch predictor budget too small");
    entries = uint32_t{1} << (31 - std::countl_zero(entries));
    entries_ = entries;
    mask_ = entries_ - 1;
    historyMask_ = (uint32_t{1} << cfg.historyBits) - 1;
    bimodal_.assign(entries_, 1);  // weakly not-taken
    gshare_.assign(entries_, 1);
    meta_.assign(entries_, 1);     // weakly prefer bimodal
}

void
TournamentPredictor::update2Bit(uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

bool
TournamentPredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    // Hash the PC down to an index; drop the low bits that are constant
    // for aligned instructions.
    const uint32_t pc_idx = static_cast<uint32_t>(pc >> 2) & mask_;
    const uint32_t gs_idx =
        (static_cast<uint32_t>(pc >> 2) ^ (history_ & historyMask_)) & mask_;

    const bool bimodal_pred = bimodal_[pc_idx] >= 2;
    const bool gshare_pred = gshare_[gs_idx] >= 2;
    const bool use_gshare = meta_[pc_idx] >= 2;
    const bool prediction = use_gshare ? gshare_pred : bimodal_pred;

    ++stats_.lookups;
    const bool correct = prediction == taken;
    if (!correct)
        ++stats_.mispredicts;

    // Meta table trains toward whichever component was right (only when
    // they disagree).
    if (bimodal_pred != gshare_pred)
        update2Bit(meta_[pc_idx], gshare_pred == taken);
    update2Bit(bimodal_[pc_idx], taken);
    update2Bit(gshare_[gs_idx], taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    return correct;
}

} // namespace rppm

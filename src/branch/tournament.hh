/**
 * @file
 * Tournament branch predictor (bimodal + gshare + meta chooser).
 *
 * This is the real predictor the golden-reference simulator drives with
 * the dynamic branch stream. The RPPM model never sees it directly: the
 * model predicts its miss rate from the workload's branch entropy via a
 * one-time calibration (see branch/entropy.hh), mirroring the paper's
 * microarchitecture-independent branch modeling [10].
 */

#ifndef RPPM_BRANCH_TOURNAMENT_HH
#define RPPM_BRANCH_TOURNAMENT_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"

namespace rppm {

/** Statistics of one predictor instance. */
struct BranchStats
{
    uint64_t lookups = 0;
    uint64_t mispredicts = 0;

    double missRate() const
    {
        return lookups ? static_cast<double>(mispredicts) /
            static_cast<double>(lookups) : 0.0;
    }
};

/**
 * Classic Alpha-21264-style tournament predictor.
 *
 * Three tables of 2-bit saturating counters sharing the configured storage
 * budget: a PC-indexed bimodal table, a global-history-xor-PC (gshare)
 * table, and a meta table choosing between them per PC.
 */
class TournamentPredictor
{
  public:
    explicit TournamentPredictor(const BranchPredictorConfig &cfg);

    /**
     * Predict, then update with the actual outcome.
     * @return true if the prediction was correct
     */
    bool predictAndUpdate(uint64_t pc, bool taken);

    const BranchStats &stats() const { return stats_; }
    void resetStats() { stats_ = BranchStats{}; }

  private:
    static void update2Bit(uint8_t &counter, bool taken);

    uint32_t entries_;       ///< entries per table (power of two)
    uint32_t mask_;
    uint32_t historyMask_;
    uint32_t history_ = 0;
    std::vector<uint8_t> bimodal_;
    std::vector<uint8_t> gshare_;
    std::vector<uint8_t> meta_;   ///< >=2 selects gshare
    BranchStats stats_;
};

} // namespace rppm

#endif // RPPM_BRANCH_TOURNAMENT_HH

#include "cache/cache.hh"

#include "common/assert.hh"

namespace rppm {

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg), numSets_(cfg.numSets())
{
    RPPM_REQUIRE(numSets_ > 0, "cache must have at least one set");
    ways_.resize(numSets_ * cfg_.assoc);
}

bool
Cache::access(uint64_t addr, bool is_write)
{
    ++stats_.accesses;
    const uint64_t line = lineOf(addr);
    const uint64_t tag = line / numSets_;
    Way *set = &ways_[setIndex(line) * cfg_.assoc];

    Way *victim = &set[0];
    for (uint32_t w = 0; w < cfg_.assoc; ++w) {
        Way &way = set[w];
        if (way.valid && way.tag == tag) {
            way.lru = ++lruClock_;
            way.dirty |= is_write;
            return true;
        }
        // Prefer an invalid way as the victim; otherwise the LRU one.
        if (!way.valid) {
            if (victim->valid)
                victim = &way;
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }

    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    victim->dirty = is_write;
    return false;
}

bool
Cache::contains(uint64_t addr) const
{
    const uint64_t line = lineOf(addr);
    const uint64_t tag = line / numSets_;
    const Way *set = &ways_[setIndex(line) * cfg_.assoc];
    for (uint32_t w = 0; w < cfg_.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(uint64_t addr)
{
    const uint64_t line = lineOf(addr);
    const uint64_t tag = line / numSets_;
    Way *set = &ways_[setIndex(line) * cfg_.assoc];
    for (uint32_t w = 0; w < cfg_.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            set[w].dirty = false;
            ++stats_.invalidations;
            return true;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (Way &way : ways_) {
        way.valid = false;
        way.dirty = false;
    }
}

} // namespace rppm

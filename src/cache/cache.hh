/**
 * @file
 * Set-associative LRU cache used by the golden-reference simulator.
 *
 * This is a functional+timing cache: it tracks tag state exactly (sets,
 * ways, true LRU) and reports hit/miss so the simulator can charge real
 * latencies. Coherence state is kept one level up in CacheHierarchy via a
 * directory; the cache itself supports targeted invalidation.
 */

#ifndef RPPM_CACHE_CACHE_HH
#define RPPM_CACHE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.hh"

namespace rppm {

/** Statistics for one cache instance. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;   ///< lines invalidated by coherence

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/**
 * A single set-associative cache with true-LRU replacement.
 *
 * Addresses are byte addresses; the cache works internally on line
 * numbers. No data is stored — only tags and a dirty bit.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on miss, allocate the line (evicting LRU).
     *
     * @param addr byte address
     * @param is_write marks the line dirty on hit or fill
     * @return true on hit
     */
    bool access(uint64_t addr, bool is_write);

    /** Probe without side effects. */
    bool contains(uint64_t addr) const;

    /**
     * Invalidate the line holding @p addr if present.
     * @return true if a line was invalidated
     */
    bool invalidate(uint64_t addr);

    /** Invalidate everything (used between independent runs). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }

    /** Line number for a byte address under this config. */
    uint64_t lineOf(uint64_t addr) const { return addr / cfg_.lineBytes; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lru = 0;       ///< higher = more recently used
        bool valid = false;
        bool dirty = false;
    };

    size_t setIndex(uint64_t line) const
    {
        return static_cast<size_t>(line % numSets_);
    }

    CacheConfig cfg_;
    size_t numSets_;
    std::vector<Way> ways_;     ///< numSets x assoc, row-major
    uint64_t lruClock_ = 0;
    CacheStats stats_;
};

} // namespace rppm

#endif // RPPM_CACHE_CACHE_HH

#include "cache/hierarchy.hh"

#include <algorithm>

#include "common/assert.hh"

namespace rppm {

CacheHierarchy::CacheHierarchy(const MulticoreConfig &cfg)
    : cfg_(cfg), stats_(cfg.numCores())
{
    cfg_.validate();
    for (uint32_t c = 0; c < cfg_.numCores(); ++c) {
        const CoreConfig &core = cfg_.core(c);
        l1i_.push_back(std::make_unique<Cache>(core.l1i));
        l1d_.push_back(std::make_unique<Cache>(core.l1d));
        l2_.push_back(std::make_unique<Cache>(core.l2));
    }
    llc_ = std::make_unique<Cache>(cfg_.llc);
}

bool
CacheHierarchy::invalidateRemote(uint32_t writer, uint64_t addr)
{
    bool any = false;
    for (uint32_t c = 0; c < cfg_.numCores(); ++c) {
        if (c == writer)
            continue;
        bool inv = l1d_[c]->invalidate(addr);
        inv |= l2_[c]->invalidate(addr);
        if (inv) {
            ++stats_[c].invalidationsReceived;
            any = true;
        }
    }
    return any;
}

AccessResult
CacheHierarchy::dataAccess(uint32_t core, uint64_t addr, bool is_write,
                           double now)
{
    RPPM_ASSERT(core < cfg_.numCores());
    const CoreConfig &cc = cfg_.core(core);
    CoreMemStats &st = stats_[core];
    AccessResult result;
    const uint64_t line = addr / cfg_.llc.lineBytes;

    // A write must invalidate every remote private copy before this core
    // can own the line — do this regardless of local hit/miss so the tag
    // state stays coherent.
    if (is_write)
        invalidateRemote(core, addr);

    ++st.l1dAccesses;
    if (l1d_[core]->access(addr, is_write)) {
        result.level = HitLevel::L1;
        result.latency = cc.l1d.latency;
        if (is_write)
            lastWriter_[line] = core + 1;
        return result;
    }
    ++st.l1dMisses;

    // Classify before we touch lower levels: if another core wrote this
    // line since our last access, the private-cache miss is a coherence
    // miss (the copy we once had was invalidated).
    auto writer_it = lastWriter_.find(line);
    const bool remote_written =
        writer_it != lastWriter_.end() && writer_it->second != core + 1;

    ++st.l2Accesses;
    if (l2_[core]->access(addr, is_write)) {
        result.level = HitLevel::L2;
        result.latency = cc.l1d.latency + cc.l2.latency;
        if (is_write)
            lastWriter_[line] = core + 1;
        return result;
    }
    ++st.l2Misses;

    ++st.llcAccesses;
    if (llc_->access(addr, is_write)) {
        result.level = HitLevel::LLC;
        result.latency =
            cc.l1d.latency + cc.l2.latency + cfg_.llc.latency;
        result.coherenceMiss = remote_written;
    } else {
        ++st.llcMisses;
        result.level = HitLevel::Memory;
        result.latency = cc.l1d.latency + cc.l2.latency +
            cfg_.llc.latency + cc.memLatency;
        result.coherenceMiss = remote_written;
        // Shared memory bus: concurrent DRAM transfers from different
        // cores serialize on the bus; the queueing delay adds to the
        // miss latency (negative bandwidth interference). The backlog
        // drains as observed time advances and grows by one service
        // time per transfer. Bus state lives on the reference (core 0)
        // clock; core-local timestamps and the returned penalty are
        // converted through the core's timeScale (exactly 1.0 on a
        // homogeneous machine).
        if (cfg_.memBusCycles > 0) {
            const double scale = cfg_.timeScale(core);
            const double now_ref = now * scale;
            if (now_ref > busLastNow_) {
                busBacklog_ = std::max(0.0, busBacklog_ -
                                       (now_ref - busLastNow_));
                busLastNow_ = now_ref;
            }
            result.latency += static_cast<uint32_t>(busBacklog_ / scale);
            busBacklog_ += static_cast<double>(cfg_.memBusCycles);
        }
    }
    if (result.coherenceMiss)
        ++st.coherenceMisses;
    if (is_write)
        lastWriter_[line] = core + 1;
    return result;
}

uint32_t
CacheHierarchy::instrFetch(uint32_t core, uint64_t pc)
{
    RPPM_ASSERT(core < cfg_.numCores());
    const CoreConfig &cc = cfg_.core(core);
    CoreMemStats &st = stats_[core];
    ++st.l1iAccesses;
    if (l1i_[core]->access(pc, false))
        return 0;
    ++st.l1iMisses;
    // Instruction misses are served by the unified L2 / LLC path.
    if (l2_[core]->access(pc, false))
        return cc.l2.latency;
    if (llc_->access(pc, false))
        return cc.l2.latency + cfg_.llc.latency;
    return cc.l2.latency + cfg_.llc.latency + cc.memLatency;
}

} // namespace rppm

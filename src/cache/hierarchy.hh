/**
 * @file
 * Multi-level cache hierarchy with a directory for write invalidation.
 *
 * Layout matches the paper's simulated machine: per-core private L1I, L1D
 * and L2, plus one shared LLC. A sharer directory at the LLC implements
 * MESI-style write invalidation: a write by one core removes the line from
 * every other core's private caches, so the next access by those cores is
 * a coherence miss — the behaviour RPPM's profiler detects as an infinite
 * per-thread reuse distance.
 */

#ifndef RPPM_CACHE_HIERARCHY_HH
#define RPPM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/config.hh"
#include "cache/cache.hh"

namespace rppm {

/** Which level serviced an access. */
enum class HitLevel : uint8_t
{
    L1,
    L2,
    LLC,
    Memory,
};

/** Outcome of a data access through the hierarchy. */
struct AccessResult
{
    HitLevel level = HitLevel::L1;
    uint32_t latency = 0;        ///< total load-to-use latency in cycles
    bool coherenceMiss = false;  ///< miss caused by a remote write
};

/** Per-core, per-level miss statistics. */
struct CoreMemStats
{
    uint64_t l1iAccesses = 0, l1iMisses = 0;
    uint64_t l1dAccesses = 0, l1dMisses = 0;
    uint64_t l2Accesses = 0, l2Misses = 0;
    uint64_t llcAccesses = 0, llcMisses = 0;
    uint64_t coherenceMisses = 0;
    uint64_t invalidationsReceived = 0;
};

/**
 * The full memory hierarchy for one multicore.
 *
 * Private levels are built per core from that core's CoreConfig, so
 * heterogeneous machines give each core its own cache geometry. Returned
 * latencies are in the *accessing core's* clock cycles; shared-bus
 * queueing state is kept on the reference (core 0) clock and converted
 * per access. Instruction fetches go through dataless L1I lookups; data
 * accesses walk L1D -> L2 -> LLC -> memory, filling on the way back.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const MulticoreConfig &cfg);

    /**
     * Perform a data access by @p core at byte address @p addr.
     * Handles coherence: writes invalidate remote private copies.
     *
     * @param now issue time in cycles; used for shared-bus queueing when
     *        memBusCycles > 0 (accesses must arrive in roughly global
     *        time order, which the simulator's scheduler guarantees)
     */
    AccessResult dataAccess(uint32_t core, uint64_t addr, bool is_write,
                            double now = 0.0);

    /**
     * Instruction fetch by @p core at PC byte address @p pc.
     * @return extra front-end stall cycles (0 on L1I hit)
     */
    uint32_t instrFetch(uint32_t core, uint64_t pc);

    const CoreMemStats &coreStats(uint32_t core) const
    {
        return stats_[core];
    }

    const Cache &llcCache() const { return *llc_; }
    const MulticoreConfig &config() const { return cfg_; }

  private:
    /** Invalidate @p addr in every private cache except @p writer's. */
    bool invalidateRemote(uint32_t writer, uint64_t addr);

    MulticoreConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1i_, l1d_, l2_;
    std::unique_ptr<Cache> llc_;
    std::vector<CoreMemStats> stats_;
    /**
     * Shared-bus state as a backlog (queued service time). Using a
     * backlog that drains with observed time instead of an absolute
     * next-free timestamp keeps the model robust to the scheduler's
     * slightly out-of-order access timestamps across cores.
     */
    double busBacklog_ = 0.0;
    double busLastNow_ = 0.0;

    /**
     * Last writer per line (line -> core+1; 0 = never written). Used to
     * classify coherence misses: if a core misses on a line last written
     * by another core, the miss is a coherence miss.
     */
    std::unordered_map<uint64_t, uint32_t> lastWriter_;
};

} // namespace rppm

#endif // RPPM_CACHE_HIERARCHY_HH

/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts the process.
 * fatal()  — the caller supplied an impossible configuration or input;
 *            throws std::invalid_argument so callers/tests can recover.
 */

#ifndef RPPM_COMMON_ASSERT_HH
#define RPPM_COMMON_ASSERT_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rppm {

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

/** Throw std::invalid_argument; use for invalid user configuration. */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << file << ":" << line << ": " << msg;
    throw std::invalid_argument(os.str());
}

} // namespace rppm

#define RPPM_PANIC(msg) ::rppm::panicImpl(__FILE__, __LINE__, (msg))
#define RPPM_FATAL(msg) ::rppm::fatalImpl(__FILE__, __LINE__, (msg))

/** Check an internal invariant; aborts on failure. */
#define RPPM_ASSERT(cond)                                                    \
    do {                                                                     \
        if (!(cond))                                                         \
            RPPM_PANIC(std::string("assertion failed: ") + #cond);           \
    } while (0)

/** Validate user-provided configuration; throws on failure. */
#define RPPM_REQUIRE(cond, msg)                                              \
    do {                                                                     \
        if (!(cond))                                                         \
            RPPM_FATAL(std::string(msg) + " (" + #cond + ")");               \
    } while (0)

#endif // RPPM_COMMON_ASSERT_HH

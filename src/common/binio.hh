/**
 * @file
 * Minimal binary container primitives shared by the trace and profile
 * serializers.
 *
 * Layout discipline (the "RPPM binary container"):
 *  - a fixed-size header: 8-byte magic, an endianness marker, a format
 *    version — readers reject anything they do not understand;
 *  - after the header, a sequence of *blocks*: a 16-byte block header
 *    (u32 tag, u32 element size, u64 element count) followed by the raw
 *    element data, padded to 8-byte alignment;
 *  - when the writer emits checksums (the default for every current
 *    format version), each block additionally carries an 8-byte trailer
 *    after the payload padding: u32 CRC32C of the payload bytes
 *    (common/crc32c.hh) plus u32 reserved-zero, so blocks stay 8-byte
 *    aligned on both ends. Readers opt in per format version via
 *    setBlockCrcVerify(); a mismatch means a torn write or bit-flip and
 *    is rejected like any other structural defect.
 *
 * Because every block states its size up front and data is 8-byte
 * aligned, a consumer can mmap the file and point straight into the
 * column payloads without parsing them; the stream-based reader here
 * does the same bounds checking over an in-memory buffer.
 *
 * All multi-byte values are in host byte order; the endianness marker in
 * the header makes cross-endian files fail loudly instead of silently
 * decoding garbage.
 */

#ifndef RPPM_COMMON_BINIO_HH
#define RPPM_COMMON_BINIO_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/crc32c.hh"

namespace rppm {

/** Marker written after the magic; a mismatch means a foreign-endian
 *  (or corrupt) file. */
constexpr uint32_t kBinEndianMarker = 0x01020304u;

/** Append-only builder for the binary container. */
class BinWriter
{
  public:
    /**
     * Start a container: magic (exactly 8 bytes), endianness, version.
     * @p block_crcs controls whether column blocks carry the CRC32C
     * trailer; pass false only to craft legacy (pre-checksum) images,
     * e.g. version-1 fixtures in tests.
     */
    BinWriter(const char magic[8], uint32_t version, bool block_crcs = true)
        : blockCrcs_(block_crcs)
    {
        buf_.append(magic, 8);
        u32(kBinEndianMarker);
        u32(version);
    }

    void u8(uint8_t v) { raw(&v, sizeof(v)); }
    void u16(uint16_t v) { raw(&v, sizeof(v)); }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }

    /** Length-prefixed string, padded to 8 bytes. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
        pad8();
    }

    /** One column block: header + raw element data. The block is padded
     *  to 8-byte alignment on both ends, so block headers and element
     *  payloads always start at 8-byte offsets regardless of what scalar
     *  fields precede them — this is what keeps the format mmap-safe.
     *  Accepts any contiguous container exposing data()/size() and a
     *  trivially-copyable value_type (std::vector, Column<T>, ...). */
    template <typename C>
    void
    column(uint32_t tag, const C &data)
    {
        using T = typename C::value_type;
        static_assert(std::is_trivially_copyable_v<T>);
        pad8();
        u32(tag);
        u32(static_cast<uint32_t>(sizeof(T)));
        u64(data.size());
        raw(data.data(), data.size() * sizeof(T));
        pad8();
        if (blockCrcs_) {
            u32(crc32c(data.data(), data.size() * sizeof(T)));
            u32(0); // reserved; keeps the trailer 8 bytes
        }
    }

    const std::string &data() const { return buf_; }

  private:
    void
    raw(const void *p, size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }

    void
    pad8()
    {
        while (buf_.size() % 8 != 0)
            buf_.push_back('\0');
    }

    std::string buf_;
    bool blockCrcs_;
};

/** Bounds-checked reader over an in-memory container image. */
class BinReader
{
  public:
    /**
     * Bind to @p data and validate the header. Throws
     * std::invalid_argument on bad magic, foreign endianness, or a
     * version other than @p expect_version (old/new formats are rejected,
     * never half-decoded). The reader never copies or outlives @p data;
     * binding a view over an mmap'd image (common/mmap.hh) lets
     * columnView() hand out zero-copy pointers into the file.
     */
    BinReader(std::string_view data, const char magic[8],
              uint32_t expect_version)
        : BinReader(data, magic, expect_version, expect_version)
    {
    }

    /**
     * Version-range overload for formats that still load older images
     * (e.g. pre-checksum v1 containers): accepts any version in
     * [min_version, max_version] and exposes the one seen via
     * version(), so the caller can adapt (typically
     * setBlockCrcVerify(version() >= first-checksummed-version)).
     */
    BinReader(std::string_view data, const char magic[8],
              uint32_t min_version, uint32_t max_version)
        : p_(data.data()), end_(data.data() + data.size()), base_(p_)
    {
        char seen[8];
        bytes(seen, 8, "magic");
        if (std::memcmp(seen, magic, 8) != 0)
            fail("bad magic (not this container format)");
        if (u32("endianness") != kBinEndianMarker)
            fail("foreign byte order");
        version_ = u32("version");
        if (version_ < min_version || version_ > max_version) {
            fail("unsupported format version " + std::to_string(version_) +
                 " (expected " + std::to_string(min_version) +
                 (max_version != min_version
                      ? ".." + std::to_string(max_version)
                      : "") +
                 ")");
        }
    }

    /** The container version seen in the header. */
    uint32_t version() const { return version_; }

    /** Enable (or disable) verification of per-block CRC32C trailers.
     *  The caller decides from version(): formats grew trailers at a
     *  specific version, and reading a trailer that is not there would
     *  misparse the stream. */
    void setBlockCrcVerify(bool verify) { blockCrcs_ = verify; }

    void
    bytes(void *out, size_t n, const char *what)
    {
        if (remaining() < n)
            fail(std::string("truncated input reading ") + what);
        std::memcpy(out, p_, n);
        p_ += n;
    }

    uint8_t u8(const char *what) { return pod<uint8_t>(what); }
    uint16_t u16(const char *what) { return pod<uint16_t>(what); }
    uint32_t u32(const char *what) { return pod<uint32_t>(what); }
    uint64_t u64(const char *what) { return pod<uint64_t>(what); }
    double f64(const char *what) { return pod<double>(what); }

    std::string
    str(const char *what)
    {
        const uint64_t n = u64(what);
        if (n > remaining())
            fail(std::string("truncated string: ") + what);
        std::string s(p_, n);
        p_ += n;
        skipPad8();
        return s;
    }

    /** Read one column block; the tag and element size must match. */
    template <typename T>
    std::vector<T>
    column(uint32_t tag, const char *what)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        skipPad8();
        const uint32_t seen_tag = u32(what);
        if (seen_tag != tag)
            fail(std::string("unexpected block tag for ") + what);
        const uint32_t elem = u32(what);
        if (elem != sizeof(T))
            fail(std::string("element size mismatch in ") + what);
        const uint64_t count = u64(what);
        if (count > remaining() / sizeof(T))
            fail(std::string("truncated column: ") + what);
        std::vector<T> data(count);
        if (count > 0)
            std::memcpy(data.data(), p_, count * sizeof(T));
        const char *payload = p_;
        p_ += count * sizeof(T);
        skipPad8();
        checkBlockCrc(payload, count * sizeof(T), what);
        return data;
    }

    /**
     * Read one column block without copying: returns {pointer, count}
     * aliasing the element payload inside the bound image. The caller
     * owns keeping the image alive for as long as the pointer is used.
     * Performs the same tag/element-size/bounds validation as column(),
     * plus an alignment check on the payload address — the container
     * discipline guarantees 8-byte payload *offsets*, so a misaligned
     * address means the image itself is not 8-byte aligned (e.g. an
     * odd-offset slice of a larger buffer) and borrowing is unsafe.
     */
    template <typename T>
    std::pair<const T *, size_t>
    columnView(uint32_t tag, const char *what)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        skipPad8();
        const uint32_t seen_tag = u32(what);
        if (seen_tag != tag)
            fail(std::string("unexpected block tag for ") + what);
        const uint32_t elem = u32(what);
        if (elem != sizeof(T))
            fail(std::string("element size mismatch in ") + what);
        const uint64_t count = u64(what);
        if (count > remaining() / sizeof(T))
            fail(std::string("truncated column: ") + what);
        if (reinterpret_cast<uintptr_t>(p_) % alignof(T) != 0)
            fail(std::string("misaligned column payload: ") + what);
        const T *view = reinterpret_cast<const T *>(p_);
        p_ += count * sizeof(T);
        skipPad8();
        checkBlockCrc(reinterpret_cast<const char *>(view),
                      count * sizeof(T), what);
        return {view, static_cast<size_t>(count)};
    }

    /** True once the whole image has been consumed. */
    bool atEnd() const { return p_ == end_; }

    /** Bytes left in the image; use to sanity-bound untrusted counts
     *  before reserving memory for them. */
    size_t remainingBytes() const { return remaining(); }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw std::invalid_argument("binary container: " + msg);
    }

  private:
    template <typename T>
    T
    pod(const char *what)
    {
        if (remaining() < sizeof(T))
            fail(std::string("truncated input reading ") + what);
        T v;
        std::memcpy(&v, p_, sizeof(T));
        p_ += sizeof(T);
        return v;
    }

    size_t remaining() const { return static_cast<size_t>(end_ - p_); }

    void
    skipPad8()
    {
        const size_t off = static_cast<size_t>(p_ - base_);
        const size_t pad = (8 - off % 8) % 8;
        if (pad > remaining())
            fail("truncated padding");
        p_ += pad;
    }

    /** Consume and verify a block's CRC trailer (no-op unless
     *  setBlockCrcVerify(true)); called after the payload padding. */
    void
    checkBlockCrc(const char *payload, size_t n, const char *what)
    {
        if (!blockCrcs_)
            return;
        const uint32_t stored = u32(what);
        u32(what); // reserved
        if (stored != crc32c(payload, n))
            fail(std::string("checksum mismatch in ") + what +
                 " (torn write or corruption)");
    }

    const char *p_;
    const char *end_;
    const char *base_;
    uint32_t version_ = 0;
    bool blockCrcs_ = false;
};

} // namespace rppm

#endif // RPPM_COMMON_BINIO_HH

/**
 * @file
 * Column<T>: a contiguous typed column with owned or borrowed storage.
 *
 * The columnar trace (trace/columnar.hh) historically stored each column
 * as a std::vector. That forces every consumer of an on-disk RPPMTRC file
 * to copy the payloads out of the (8-byte-aligned, mmap-friendly)
 * container even though the bytes on disk already have exactly the
 * in-memory layout. Column<T> keeps the entire read API of a const
 * vector — size()/empty()/operator[]/data()/begin()/end() — but the
 * storage behind it is either
 *
 *   owned:    a std::vector<T>, built by push_back or assigned whole
 *             (the conversion and deserialize-by-copy paths), or
 *   borrowed: a {pointer, count} view into memory owned by someone else
 *             (an mmap'd file image; see common/mmap.hh).
 *
 * Reads are branch-free in both modes: accessors go through a cached
 * {data, size} pair that mutators keep in sync. Mutating a borrowed
 * column is a programming error and panics; whoever borrows storage is
 * responsible for keeping the backing memory alive (ColumnarTrace holds
 * a shared_ptr to the MappedFile for exactly this).
 *
 * Comparison is by content, so an owned column and a borrowed view of
 * the same serialized bytes compare equal — the round-trip tests rely
 * on this to pin mmap views byte-identical to the copying loader.
 */

#ifndef RPPM_COMMON_COLUMN_HH
#define RPPM_COMMON_COLUMN_HH

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hh"

namespace rppm {

template <typename T>
class Column
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "columns hold raw serialized payloads");

  public:
    using value_type = T;

    Column() = default;

    /** Take ownership of @p v (deserialize-by-copy path). */
    /* implicit */ Column(std::vector<T> v) : owned_(std::move(v))
    {
        relink();
    }

    Column &
    operator=(std::vector<T> v)
    {
        owned_ = std::move(v);
        borrowed_ = false;
        relink();
        return *this;
    }

    /** Borrow @p count elements at @p p; the caller keeps @p p alive. */
    static Column
    borrow(const T *p, size_t count)
    {
        Column c;
        c.borrowed_ = true;
        c.data_ = p;
        c.size_ = count;
        return c;
    }

    // Copies and moves must re-point the cached view at the new vector
    // buffer in owned mode (and must not, in borrowed mode, where the
    // view aliases external storage by design).
    Column(const Column &o) : owned_(o.owned_), borrowed_(o.borrowed_)
    {
        if (borrowed_) {
            data_ = o.data_;
            size_ = o.size_;
        } else {
            relink();
        }
    }

    Column(Column &&o) noexcept
        : owned_(std::move(o.owned_)), borrowed_(o.borrowed_)
    {
        if (borrowed_) {
            data_ = o.data_;
            size_ = o.size_;
        } else {
            relink();
        }
        o.owned_.clear();
        o.borrowed_ = false;
        o.relink();
    }

    Column &
    operator=(const Column &o)
    {
        if (this == &o)
            return *this;
        owned_ = o.owned_;
        borrowed_ = o.borrowed_;
        if (borrowed_) {
            data_ = o.data_;
            size_ = o.size_;
        } else {
            relink();
        }
        return *this;
    }

    Column &
    operator=(Column &&o) noexcept
    {
        if (this == &o)
            return *this;
        owned_ = std::move(o.owned_);
        borrowed_ = o.borrowed_;
        if (borrowed_) {
            data_ = o.data_;
            size_ = o.size_;
        } else {
            relink();
        }
        o.owned_.clear();
        o.borrowed_ = false;
        o.relink();
        return *this;
    }

    // --- Read API (valid in both modes, branch-free).
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const T &operator[](size_t i) const { return data_[i]; }
    const T *data() const { return data_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    /** True when this column aliases storage it does not own. */
    bool isBorrowed() const { return borrowed_; }

    // --- Mutation (owned mode only; panics on a borrowed column).
    void
    reserve(size_t n)
    {
        RPPM_ASSERT(!borrowed_);
        owned_.reserve(n);
        relink();
    }

    void
    push_back(const T &v)
    {
        RPPM_ASSERT(!borrowed_);
        owned_.push_back(v);
        relink();
    }

    /** Content comparison, independent of storage mode. */
    bool
    operator==(const Column &o) const
    {
        if (size_ != o.size_)
            return false;
        for (size_t i = 0; i < size_; ++i) {
            if (!(data_[i] == o.data_[i]))
                return false;
        }
        return true;
    }

  private:
    void
    relink()
    {
        data_ = owned_.data();
        size_ = owned_.size();
    }

    std::vector<T> owned_;
    const T *data_ = nullptr;
    size_t size_ = 0;
    bool borrowed_ = false;
};

} // namespace rppm

#endif // RPPM_COMMON_COLUMN_HH

#include "common/crc32c.hh"

#include <array>

namespace rppm {

namespace {

/** The 256-entry lookup table for reflected CRC32C, built at static
 *  initialization from the reversed polynomial 0x82F63B78. */
std::array<uint32_t, 256>
buildTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> kTable = buildTable();

} // namespace

uint32_t
crc32cExtend(uint32_t crc, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t c = crc ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace rppm

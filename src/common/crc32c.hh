/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41) over byte ranges.
 *
 * The integrity checksum of the RPPM binary containers: every column
 * block of a version >= 2 RPPMTRC/RPPMPRF file carries a CRC32C trailer
 * over its payload bytes, so a torn write or bit-flip is detected at
 * load time instead of surfacing as a silently wrong prediction.
 *
 * The implementation is a portable slice-by-one table walk — no
 * hardware CRC instructions, so the checksum of a given byte sequence
 * is identical on every platform (the same property the containers'
 * explicit endianness marker protects). Throughput is far above what
 * the artifact read/write paths need.
 *
 * Checksums compose incrementally: crc32c(b, crc32c(a)) over
 * consecutive ranges a, b equals crc32c(a+b), which is what lets the
 * streaming trace reader verify a column as its windows are mapped
 * without ever holding the column resident (trace/trace_stream.hh).
 */

#ifndef RPPM_COMMON_CRC32C_HH
#define RPPM_COMMON_CRC32C_HH

#include <cstddef>
#include <cstdint>

namespace rppm {

/** Initial rolling state (also the checksum of the empty range). */
constexpr uint32_t kCrc32cInit = 0;

/** Extend @p crc with @p n bytes at @p data; fold consecutive ranges by
 *  passing the previous return value back in. */
uint32_t crc32cExtend(uint32_t crc, const void *data, size_t n);

/** One-shot checksum of a byte range. */
inline uint32_t
crc32c(const void *data, size_t n)
{
    return crc32cExtend(kCrc32cInit, data, n);
}

} // namespace rppm

#endif // RPPM_COMMON_CRC32C_HH

#include "common/fault.hh"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "common/rng.hh"
#include "common/thread_annotations.hh"

namespace rppm {
namespace fault {

namespace {

/** The registry: every injection point in the tree. Parse rejects
 *  names outside this list so a typo in a plan fails loudly instead of
 *  arming nothing. */
constexpr const char *kRegistry[] = {
    kPreadShort, kWriteEnospc, kRenameTorn, kRecvEintr, kSendPartial,
};

enum class TriggerKind : uint8_t
{
    Once,  ///< fire on hit N only
    First, ///< fire on hits 1..N
    Every, ///< fire on hits N, 2N, ...
    Prob,  ///< fire with probability pct% per hit (seeded stream)
};

struct PointState
{
    std::string name;
    TriggerKind kind = TriggerKind::Once;
    uint64_t n = 1;       ///< once/first/every parameter
    uint64_t pct = 0;     ///< prob parameter
    mutable Mutex rngMutex;
    mutable Rng rng RPPM_GUARDED_BY(rngMutex) {0};
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> fires{0};

    bool
    evaluate() const RPPM_EXCLUDES(rngMutex)
    {
        const uint64_t hit = hits.fetch_add(1, std::memory_order_relaxed) + 1;
        bool fired = false;
        switch (kind) {
        case TriggerKind::Once:
            fired = hit == n;
            break;
        case TriggerKind::First:
            fired = hit <= n;
            break;
        case TriggerKind::Every:
            fired = hit % n == 0;
            break;
        case TriggerKind::Prob: {
            MutexLock lock(rngMutex);
            fired = rng.nextBounded(100) < pct;
            break;
        }
        }
        if (fired)
            fires.fetch_add(1, std::memory_order_relaxed);
        return fired;
    }
};

struct Plan
{
    // Few points, looked up only while a plan is armed: linear scan.
    std::vector<std::unique_ptr<PointState>> points;

    const PointState *
    find(const char *name) const
    {
        for (const auto &p : points)
            if (p->name == name)
                return p.get();
        return nullptr;
    }
};

Mutex g_planMutex;
std::shared_ptr<const Plan> g_plan RPPM_GUARDED_BY(g_planMutex);

std::shared_ptr<const Plan>
currentPlan() RPPM_EXCLUDES(g_planMutex)
{
    MutexLock lock(g_planMutex);
    return g_plan;
}

[[noreturn]] void
badSpec(const std::string &spec, const std::string &why)
{
    throw std::invalid_argument("fault plan '" + spec + "': " + why);
}

uint64_t
parseCount(const std::string &spec, const std::string &text)
{
    if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
        badSpec(spec, "bad number '" + text + "'");
    return std::strtoull(text.c_str(), nullptr, 10);
}

std::unique_ptr<PointState>
parseEntry(const std::string &spec, const std::string &entry)
{
    const size_t eq = entry.find('=');
    if (eq == std::string::npos)
        badSpec(spec, "entry '" + entry + "' is not point=trigger");
    auto state = std::make_unique<PointState>();
    state->name = entry.substr(0, eq);

    bool known = false;
    for (const char *p : kRegistry)
        known = known || state->name == p;
    if (!known)
        badSpec(spec, "unknown injection point '" + state->name + "'");

    const std::string trigger = entry.substr(eq + 1);
    const size_t colon = trigger.find(':');
    if (colon == std::string::npos)
        badSpec(spec, "trigger '" + trigger + "' has no parameter");
    const std::string kind = trigger.substr(0, colon);
    const std::string args = trigger.substr(colon + 1);

    if (kind == "once" || kind == "first" || kind == "every") {
        state->kind = kind == "once"    ? TriggerKind::Once
                      : kind == "first" ? TriggerKind::First
                                        : TriggerKind::Every;
        state->n = parseCount(spec, args);
        if (state->n == 0)
            badSpec(spec, "trigger parameter must be >= 1");
    } else if (kind == "prob") {
        const size_t sep = args.find(':');
        if (sep == std::string::npos)
            badSpec(spec, "prob trigger needs prob:PCT:SEED");
        state->kind = TriggerKind::Prob;
        state->pct = parseCount(spec, args.substr(0, sep));
        if (state->pct > 100)
            badSpec(spec, "probability must be 0..100");
        state->rng = Rng(parseCount(spec, args.substr(sep + 1)));
    } else {
        badSpec(spec, "unknown trigger kind '" + kind + "'");
    }
    return state;
}

} // namespace

namespace detail {

std::atomic<uint32_t> armedPoints{0};

bool
fireSlow(const char *point)
{
    const std::shared_ptr<const Plan> plan = currentPlan();
    if (!plan)
        return false;
    const PointState *state = plan->find(point);
    return state != nullptr && state->evaluate();
}

} // namespace detail

std::vector<std::string>
knownPoints()
{
    return {std::begin(kRegistry), std::end(kRegistry)};
}

void
installPlan(const std::string &spec)
{
    auto plan = std::make_shared<Plan>();
    size_t at = 0;
    while (at < spec.size()) {
        size_t comma = spec.find(',', at);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(at, comma - at);
        if (!entry.empty())
            plan->points.push_back(parseEntry(spec, entry));
        at = comma + 1;
    }
    MutexLock lock(g_planMutex);
    if (plan->points.empty()) {
        g_plan.reset();
        detail::armedPoints.store(0, std::memory_order_relaxed);
    } else {
        const uint32_t n = static_cast<uint32_t>(plan->points.size());
        g_plan = std::move(plan);
        detail::armedPoints.store(n, std::memory_order_relaxed);
    }
}

void
clearPlan()
{
    MutexLock lock(g_planMutex);
    g_plan.reset();
    detail::armedPoints.store(0, std::memory_order_relaxed);
}

bool
installPlanFromEnv()
{
    // Chaos plans are explicit opt-in test state: the variable arms
    // failure injection and never alters fault-free results.
    // rppm-lint: rng-ok(fault plans only inject failures, never results)
    const char *spec = std::getenv("RPPM_FAULT_PLAN");
    if (spec == nullptr || spec[0] == '\0')
        return false;
    installPlan(spec);
    return true;
}

PointStats
pointStats(const std::string &point)
{
    PointStats out;
    const std::shared_ptr<const Plan> plan = currentPlan();
    if (!plan)
        return out;
    const PointState *state = plan->find(point.c_str());
    if (state != nullptr) {
        out.hits = state->hits.load(std::memory_order_relaxed);
        out.fires = state->fires.load(std::memory_order_relaxed);
    }
    return out;
}

} // namespace fault

namespace io {

XferResult
sendFull(int fd, const void *data, size_t n) noexcept
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        size_t len = n;
        // Injected partial write: cap this send() so the resumption
        // path runs; the transfer still completes byte-for-byte.
        if (fault::fire(fault::kSendPartial))
            len = (n + 1) / 2;
        const ssize_t w = ::send(fd, p, len, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return {XferResult::Err, errno};
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return {};
}

XferResult
recvFull(int fd, void *data, size_t n) noexcept
{
    char *p = static_cast<char *>(data);
    size_t got = 0;
    while (got < n) {
        // Injected EINTR: behave exactly as if a signal interrupted the
        // syscall before any bytes moved — loop and retry.
        if (fault::fire(fault::kRecvEintr))
            continue;
        const ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return {XferResult::Err, errno};
        }
        if (r == 0)
            return got == 0 ? XferResult{XferResult::Eof, 0}
                            : XferResult{XferResult::Err, ECONNRESET};
        got += static_cast<size_t>(r);
    }
    return {};
}

void
writeFileAtomic(const std::string &path, std::string_view bytes)
{
    const auto fail = [&](const char *op) {
        throw std::runtime_error("write " + path + ": " + op + ": " +
                                 std::strerror(errno));
    };
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid()));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        fail("open temp");

    const char *p = bytes.data();
    size_t n = bytes.size();
    bool enospc = false;
    while (n > 0) {
        // Injected ENOSPC: the filesystem fills mid-write. Stop short —
        // the torn temp file stays behind, exactly like a real crash —
        // and report the error the real syscall would.
        if (fault::fire(fault::kWriteEnospc)) {
            enospc = true;
            break;
        }
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            const int saved = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            errno = saved;
            fail("write");
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    if (enospc) {
        ::close(fd);
        errno = ENOSPC;
        fail("write");
    }
    // fsync *before* rename: without it, a crash after the rename can
    // leave the new name pointing at un-persisted data — the classic
    // torn-rename window the fs.rename.torn injection simulates.
    if (::fsync(fd) != 0) {
        const int saved = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        errno = saved;
        fail("fsync");
    }
    if (::close(fd) != 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        fail("close");
    }
    // Injected torn rename: drop the artifact's tail as an un-fsynced
    // rename plus a power cut would, then let the rename "succeed" —
    // the caller believes the write completed, and only the next
    // reader's checksum verification can catch the damage.
    if (fault::fire(fault::kRenameTorn))
        (void)::truncate(tmp.c_str(), static_cast<off_t>(bytes.size() / 2));
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        fail("rename");
    }
}

} // namespace io
} // namespace rppm

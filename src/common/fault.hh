/**
 * @file
 * Deterministic fault injection for the syscall-wrapper layer, plus the
 * fault-aware I/O helpers built on top of it.
 *
 * The serving and artifact layers must survive the failure modes real
 * deployments hit — short reads, EINTR storms, partial socket writes,
 * ENOSPC mid-write, torn renames — but none of those occur naturally
 * under test. This layer lets tests (and CI's chaos-smoke job) apply
 * them *deterministically*: a FaultPlan names injection points and
 * arms each with a trigger, and every syscall wrapper in the tree asks
 * `fault::fire("point.name")` before the real call.
 *
 * Zero overhead when off: with no plan installed, fire() is a single
 * relaxed atomic load. Plans are explicit opt-in chaos-testing state —
 * installed from a test, from `rppmd --fault-plan`, or from the
 * RPPM_FAULT_PLAN environment variable — and never affect fault-free
 * results (benign faults like a simulated EINTR perturb the syscall
 * pattern, not the bytes; hard faults like ENOSPC fail the operation
 * the way the real errno would).
 *
 * Plan syntax (comma-separated, `point=trigger`):
 *
 *     io.pread.short=every:3,net.recv.eintr=first:5
 *     fs.rename.torn=once:1
 *     net.send.partial=prob:25:42
 *
 * Triggers:
 *   once:N       fire on the Nth hit of the point only (1-based)
 *   first:N      fire on hits 1..N
 *   every:N      fire on every Nth hit (N, 2N, ...)
 *   prob:P:SEED  fire with probability P% per hit, drawn from a
 *                deterministic seeded rppm::Rng stream (fuzz plans)
 *
 * Unknown point names are rejected at parse time (a typo must not arm
 * nothing silently); the registry lives in fault.cc and every new
 * syscall wrapper must add its point there (see CONTRIBUTING.md).
 *
 * The rppm::io helpers bundled here are the canonical retry loops the
 * wrappers share: full-transfer send/recv over stream sockets (EINTR
 * and partial transfers retried, never surfaced) and the durable
 * atomic file write (temp file + fsync + rename) the ProfileCache's
 * serialized tier uses. They host the net.* and io.write/fs.rename
 * injection points.
 */

#ifndef RPPM_COMMON_FAULT_HH
#define RPPM_COMMON_FAULT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rppm {
namespace fault {

// --- Injection point names (the registry; parse rejects others).
inline constexpr const char *kPreadShort = "io.pread.short";
inline constexpr const char *kWriteEnospc = "io.write.enospc";
inline constexpr const char *kRenameTorn = "fs.rename.torn";
inline constexpr const char *kRecvEintr = "net.recv.eintr";
inline constexpr const char *kSendPartial = "net.send.partial";

/** Every registered injection point name. */
std::vector<std::string> knownPoints();

/**
 * Parse @p spec (syntax above) and install it as the process-wide
 * plan, replacing any previous one. Throws std::invalid_argument on a
 * malformed spec or an unregistered point name. An empty spec clears
 * the plan.
 */
void installPlan(const std::string &spec);

/** Disarm all points (idempotent). */
void clearPlan();

/** Install the plan named by the RPPM_FAULT_PLAN environment variable,
 *  if set and non-empty; returns true when a plan was installed. Only
 *  entry points (daemon main, tests) should call this — library code
 *  never reads the environment. */
bool installPlanFromEnv();

/** Per-point trigger counters, for tests asserting coverage. */
struct PointStats
{
    uint64_t hits = 0;  ///< fire() evaluations while the plan was live
    uint64_t fires = 0; ///< times the trigger actually fired
};

/** Counters of @p point under the current plan (zeros when the point
 *  is not armed or no plan is installed). */
PointStats pointStats(const std::string &point);

namespace detail {
extern std::atomic<uint32_t> armedPoints;
bool fireSlow(const char *point);
} // namespace detail

/** True when any injection point is armed. */
inline bool
armed()
{
    return detail::armedPoints.load(std::memory_order_relaxed) != 0;
}

/**
 * Evaluate injection point @p point: true when the caller must inject
 * its fault now. The fast path (no plan) is one relaxed atomic load.
 */
inline bool
fire(const char *point)
{
    return armed() && detail::fireSlow(point);
}

} // namespace fault

namespace io {

/** Outcome of a full-transfer socket operation. */
struct XferResult
{
    enum Status
    {
        Ok,  ///< all n bytes transferred
        Eof, ///< recv only: peer closed before the first byte
        Err, ///< syscall failed; `error` holds errno
    };
    Status status = Ok;
    int error = 0;
};

/**
 * Send exactly @p n bytes on stream socket @p fd (MSG_NOSIGNAL).
 * Retries EINTR and partial transfers internally; never throws, never
 * raises SIGPIPE. Injection point: net.send.partial (caps individual
 * send() calls so the retry loop is exercised; the transfer still
 * completes).
 */
XferResult sendFull(int fd, const void *data, size_t n) noexcept;

/**
 * Receive exactly @p n bytes from stream socket @p fd. Returns Eof
 * when the peer closes before the first byte; a close mid-transfer is
 * Err with error == ECONNRESET. Retries EINTR and short reads.
 * Injection point: net.recv.eintr (simulates an interrupted syscall;
 * the transfer still completes).
 */
XferResult recvFull(int fd, void *data, size_t n) noexcept;

/**
 * Durably replace the file at @p path with @p bytes: write to
 * `path + ".tmp.<pid>"`, fsync, rename over @p path. Concurrent
 * readers never observe a torn artifact and a crash before the rename
 * leaves @p path untouched. Throws std::runtime_error on failure (the
 * temp file is removed). Injection points: io.write.enospc (fails the
 * write mid-way the way a full filesystem would, leaving a stale temp
 * file behind like a real crash) and fs.rename.torn (simulates a
 * power cut after an un-fsynced rename: the rename happens but the
 * artifact's tail is lost — the caller believes the write succeeded
 * and the *next reader's* checksum verification must catch it).
 */
void writeFileAtomic(const std::string &path, std::string_view bytes);

} // namespace io
} // namespace rppm

#endif // RPPM_COMMON_FAULT_HH

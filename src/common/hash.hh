/**
 * @file
 * Shared hashing helper for the open-addressing tables on the profiler
 * hot path (per-line reuse state, instruction lines, branch counts).
 */

#ifndef RPPM_COMMON_HASH_HH
#define RPPM_COMMON_HASH_HH

#include <cstdint>

namespace rppm {

/** splitmix64 finalizer; good avalanche for line/pc integer keys. */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace rppm

#endif // RPPM_COMMON_HASH_HH

#include "common/histogram.hh"

#include "common/assert.hh"

namespace rppm {

LogHistogram::LogHistogram() : infinite_(0), totalFinite_(0)
{
    // counts_ is allocated lazily on the first finite sample: profiles
    // hold many per-epoch histograms and most of them stay empty.
}

size_t
LogHistogram::numBuckets()
{
    return kTotalBuckets;
}

uint64_t
LogHistogram::bucketLo(size_t index)
{
    if (index < kLinearMax)
        return index;
    const size_t rel = index - kLinearMax;
    const int log2 = static_cast<int>(rel / kSubBuckets) + 4;
    const int sub = static_cast<int>(rel % kSubBuckets);
    return (uint64_t{1} << log2) +
        ((uint64_t{1} << log2) / kSubBuckets) * sub;
}

uint64_t
LogHistogram::bucketHi(size_t index)
{
    if (index < kLinearMax)
        return index;
    if (index + 1 >= kTotalBuckets)
        return std::numeric_limits<uint64_t>::max() - 1;
    return bucketLo(index + 1) - 1;
}

uint64_t
LogHistogram::bucketMid(size_t index)
{
    const uint64_t lo = bucketLo(index);
    const uint64_t hi = bucketHi(index);
    return lo + (hi - lo) / 2;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (!other.counts_.empty()) {
        if (counts_.empty())
            counts_.assign(kTotalBuckets, 0);
        for (size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
    }
    infinite_ += other.infinite_;
    totalFinite_ += other.totalFinite_;
}

double
LogHistogram::survival(uint64_t value) const
{
    const uint64_t tot = total();
    if (tot == 0)
        return 0.0;
    if (value == kInfinity)
        return 0.0;

    if (counts_.empty())
        return static_cast<double>(infinite_) / static_cast<double>(tot);

    const size_t idx = bucketIndex(value);
    uint64_t above = infinite_;
    for (size_t i = idx + 1; i < counts_.size(); ++i)
        above += counts_[i];
    // Within the containing bucket, interpolate linearly: assume samples
    // are spread uniformly across the bucket's value range.
    const uint64_t lo = bucketLo(idx);
    const uint64_t hi = bucketHi(idx);
    const double width = static_cast<double>(hi - lo) + 1.0;
    const double frac_above =
        static_cast<double>(hi - value) / width;
    const double partial = static_cast<double>(counts_[idx]) * frac_above;
    return (static_cast<double>(above) + partial) / static_cast<double>(tot);
}

double
LogHistogram::meanFinite() const
{
    if (totalFinite_ == 0)
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i])
            sum += static_cast<double>(counts_[i]) *
                static_cast<double>(bucketMid(i));
    }
    return sum / static_cast<double>(totalFinite_);
}

uint64_t
LogHistogram::quantile(double q) const
{
    const uint64_t tot = total();
    if (tot == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(tot);
    double running = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        running += static_cast<double>(counts_[i]);
        if (running >= target && counts_[i] > 0)
            return bucketMid(i);
    }
    return kInfinity;
}

} // namespace rppm

/**
 * @file
 * Log-bucketed histogram used throughout the profiler.
 *
 * Reuse-distance and dependence-distance distributions span many orders of
 * magnitude, so the profiler stores them in logarithmically spaced buckets:
 * a handful of linear buckets for small values followed by sub-divided
 * power-of-two buckets. This keeps each per-epoch profile to a few hundred
 * bytes while retaining enough resolution for StatStack's conversion.
 */

#ifndef RPPM_COMMON_HISTOGRAM_HH
#define RPPM_COMMON_HISTOGRAM_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace rppm {

/**
 * Log-bucketed histogram over non-negative 64-bit values, with a dedicated
 * bucket for "infinite" samples (used for cold misses / coherence
 * invalidations, which StatStack records as infinite reuse distance).
 */
class LogHistogram
{
  public:
    /** Sentinel sample value mapped to the infinity bucket. */
    static constexpr uint64_t kInfinity =
        std::numeric_limits<uint64_t>::max();

    LogHistogram();

    /** Add @p count samples of value @p value. Inline: this is called
     *  one-to-three times per micro-op on the profiler's hot path. */
    void
    add(uint64_t value, uint64_t count = 1)
    {
        if (count == 0)
            return;
        if (value == kInfinity) {
            infinite_ += count;
            return;
        }
        if (counts_.empty())
            counts_.resize(kTotalBuckets);
        counts_[bucketIndex(value)] += count;
        totalFinite_ += count;
    }

    /** Merge another histogram into this one. */
    void merge(const LogHistogram &other);

    /** Total number of finite samples. */
    uint64_t totalFinite() const { return totalFinite_; }

    /** Number of samples recorded as infinite. */
    uint64_t totalInfinite() const { return infinite_; }

    /** Total number of samples (finite + infinite). */
    uint64_t total() const { return totalFinite_ + infinite_; }

    /** True when no samples have been recorded. */
    bool empty() const { return total() == 0; }

    /**
     * Fraction of all samples (finite and infinite) whose value is
     * strictly greater than @p value. Infinite samples always count.
     */
    double survival(uint64_t value) const;

    /** Fraction of all samples with value <= @p value (finite only). */
    double cdf(uint64_t value) const { return 1.0 - survival(value); }

    /** Mean of the finite samples (bucket-midpoint approximation). */
    double meanFinite() const;

    /**
     * Smallest value v such that cdf(v) >= @p q (q in [0,1]); returns
     * kInfinity when the quantile falls into the infinite tail.
     */
    uint64_t quantile(double q) const;

    /**
     * Visit every non-empty bucket as (representative value, count).
     * Representative value is the bucket midpoint. The infinity bucket is
     * visited last with value kInfinity.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < counts_.size(); ++i) {
            if (counts_[i])
                fn(bucketMid(i), counts_[i]);
        }
        if (infinite_)
            fn(kInfinity, infinite_);
    }

    /** Number of buckets (excluding the infinity bucket). */
    static size_t numBuckets();

    /** Lower bound (inclusive) of bucket @p index. */
    static uint64_t bucketLo(size_t index);

    /** Upper bound (inclusive) of bucket @p index. */
    static uint64_t bucketHi(size_t index);

    /** Midpoint of bucket @p index, used as its representative value. */
    static uint64_t bucketMid(size_t index);

    /** Bucket index for @p value. Inline: profiler hot path. */
    static size_t
    bucketIndex(uint64_t value)
    {
        if (value < kLinearMax)
            return static_cast<size_t>(value);
        const int log2 = 63 - std::countl_zero(value);
        // Sub-bucket within the [2^log2, 2^(log2+1)) decade.
        const uint64_t offset = value - (uint64_t{1} << log2);
        const uint64_t sub = (offset * kSubBuckets) >> log2;
        const size_t idx = kLinearMax +
            static_cast<size_t>(log2 - 4) * kSubBuckets +
            static_cast<size_t>(sub);
        return std::min(idx, kTotalBuckets - 1);
    }

  private:
    // Values 0..kLinearMax-1 get one bucket each; above that, each
    // power-of-two decade is split into kSubBuckets sub-buckets.
    static constexpr uint64_t kLinearMax = 16;
    static constexpr int kSubBuckets = 4;
    static constexpr int kMaxLog2 = 40; // reuse distances up to ~1.1e12
    static constexpr size_t kTotalBuckets =
        kLinearMax + static_cast<size_t>(kMaxLog2 - 4) * kSubBuckets;

    std::vector<uint64_t> counts_;
    uint64_t infinite_;
    uint64_t totalFinite_;
};

} // namespace rppm

#endif // RPPM_COMMON_HISTOGRAM_HH

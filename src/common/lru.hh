/**
 * @file
 * Byte-budgeted LRU bookkeeping for in-memory artifact tiers.
 *
 * Long-running processes (the rppmd daemon in particular) hold caches of
 * heavyweight immutable artifacts — profiles, memoized prediction
 * engines — that grow monotonically under the original
 * one-Study-per-process design. LruBudget tracks recency and an
 * approximate byte size per key and answers "which keys must go to get
 * back under budget"; the owning cache decides what eviction means
 * (dropping a shared_ptr — in-flight readers keep their references
 * alive, so eviction never invalidates a result in use).
 *
 * Not thread-safe on its own: callers embed it next to their own state
 * under their own mutex.
 */

#ifndef RPPM_COMMON_LRU_HH
#define RPPM_COMMON_LRU_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rppm {

template <typename Key>
class LruBudget
{
  public:
    /** Insert @p key at most-recently-used with @p bytes charged, or
     *  re-charge and touch it if already present. */
    void
    add(const Key &key, uint64_t bytes)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            bytes_ -= it->second->second;
            order_.erase(it->second);
            index_.erase(it);
        }
        order_.emplace_front(key, bytes);
        index_.emplace(key, order_.begin());
        bytes_ += bytes;
    }

    /** Mark @p key most-recently-used; no-op when absent. */
    void
    touch(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return;
        order_.splice(order_.begin(), order_, it->second);
    }

    /** Forget @p key; no-op when absent. */
    void
    remove(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return;
        bytes_ -= it->second->second;
        order_.erase(it->second);
        index_.erase(it);
    }

    /** Total bytes currently charged. */
    uint64_t bytes() const { return bytes_; }

    size_t size() const { return index_.size(); }

    /**
     * Drop least-recently-used entries until bytes() <= @p budget and
     * return their keys in eviction order. The newest entry is just as
     * evictable as any other — a single artifact bigger than the whole
     * budget is evicted immediately after use, which keeps the budget a
     * hard bound rather than a suggestion.
     */
    std::vector<Key>
    shrinkTo(uint64_t budget)
    {
        std::vector<Key> evicted;
        while (bytes_ > budget && !order_.empty()) {
            auto &[key, bytes] = order_.back();
            bytes_ -= bytes;
            index_.erase(key);
            evicted.push_back(std::move(key));
            order_.pop_back();
        }
        return evicted;
    }

  private:
    /** Recency order, most-recently-used first; pairs of {key, bytes}. */
    std::list<std::pair<Key, uint64_t>> order_;
    std::unordered_map<Key, typename std::list<std::pair<Key, uint64_t>>::
                                iterator>
        index_;
    uint64_t bytes_ = 0;
};

} // namespace rppm

#endif // RPPM_COMMON_LRU_HH

#include "common/mmap.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/fault.hh"

namespace rppm {

namespace {

[[noreturn]] void
ioFail(const std::string &path, const char *op)
{
    throw std::runtime_error("mmap " + path + ": " + op + ": " +
                             std::strerror(errno));
}

} // namespace

std::shared_ptr<const MappedFile>
MappedFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        ioFail(path, "open");

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        ioFail(path, "fstat");
    }
    const size_t size = static_cast<size_t>(st.st_size);

    const char *data = nullptr;
    if (size > 0) {
        void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p == MAP_FAILED) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            ioFail(path, "mmap");
        }
        data = static_cast<const char *>(p);
    }
    // The mapping outlives the descriptor; close it now.
    ::close(fd);

    return std::shared_ptr<const MappedFile>(
        new MappedFile(path, data, size));
}

MappedFile::~MappedFile()
{
    if (size_ > 0)
        ::munmap(const_cast<char *>(data_), size_);
}

FdFile::FdFile(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0)
        ioFail(path, "open");
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        const int saved = errno;
        ::close(fd_);
        errno = saved;
        ioFail(path, "fstat");
    }
    size_ = static_cast<size_t>(st.st_size);
}

FdFile::~FdFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
FdFile::pread(void *dst, size_t n, uint64_t offset) const
{
    char *out = static_cast<char *>(dst);
    while (n > 0) {
        size_t len = n;
        // Injected short read: cap this pread() so the resumption path
        // runs; the overall read still returns every byte (a kernel may
        // legitimately return fewer bytes than asked at any time).
        if (fault::fire(fault::kPreadShort))
            len = (n + 1) / 2;
        const ssize_t got =
            ::pread(fd_, out, len, static_cast<off_t>(offset));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            ioFail(path_, "pread");
        }
        if (got == 0) {
            throw std::runtime_error("mmap " + path_ +
                                     ": pread: unexpected end of file");
        }
        out += got;
        offset += static_cast<uint64_t>(got);
        n -= static_cast<size_t>(got);
    }
}

void
MappedWindow::map(const FdFile &file, uint64_t offset, size_t len)
{
    reset();
    if (len == 0)
        return;
    if (offset + len < offset || offset + len > file.size()) {
        throw std::runtime_error(
            "mmap " + file.path() + ": window out of bounds");
    }
    const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    const uint64_t aligned = offset & ~static_cast<uint64_t>(page - 1);
    const size_t mapLen = static_cast<size_t>(offset - aligned) + len;
    void *p = ::mmap(nullptr, mapLen, PROT_READ, MAP_PRIVATE, file.fd(),
                     static_cast<off_t>(aligned));
    if (p == MAP_FAILED)
        ioFail(file.path(), "mmap window");
    base_ = static_cast<char *>(p);
    mapLen_ = mapLen;
    data_ = base_ + (offset - aligned);
    len_ = len;
}

void
MappedWindow::reset()
{
    if (base_ != nullptr)
        ::munmap(base_, mapLen_);
    base_ = nullptr;
    mapLen_ = 0;
    data_ = nullptr;
    len_ = 0;
}

} // namespace rppm

#include "common/mmap.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace rppm {

namespace {

[[noreturn]] void
ioFail(const std::string &path, const char *op)
{
    throw std::runtime_error("mmap " + path + ": " + op + ": " +
                             std::strerror(errno));
}

} // namespace

std::shared_ptr<const MappedFile>
MappedFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        ioFail(path, "open");

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        ioFail(path, "fstat");
    }
    const size_t size = static_cast<size_t>(st.st_size);

    const char *data = nullptr;
    if (size > 0) {
        void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p == MAP_FAILED) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            ioFail(path, "mmap");
        }
        data = static_cast<const char *>(p);
    }
    // The mapping outlives the descriptor; close it now.
    ::close(fd);

    return std::shared_ptr<const MappedFile>(
        new MappedFile(path, data, size));
}

MappedFile::~MappedFile()
{
    if (size_ > 0)
        ::munmap(const_cast<char *>(data_), size_);
}

} // namespace rppm

/**
 * @file
 * Read-only memory-mapped file with RAII lifetime.
 *
 * The RPPM binary containers (RPPMTRC traces, RPPMPRF profiles) are laid
 * out so that every column payload starts at an 8-byte-aligned offset;
 * mapping such a file lets a reader point straight into the payloads
 * instead of copying them into vectors. MappedFile owns the mapping; any
 * structure that borrows pointers into it (Column<T> views inside a
 * ColumnarTrace, for example) must keep a shared_ptr to the MappedFile
 * alive for as long as the pointers are used.
 *
 * The mapping is strictly PROT_READ — writing through a borrowed view is
 * a segfault, which is the cheap enforcement backing the "immutable after
 * publish" discipline for shared artifacts.
 */

#ifndef RPPM_COMMON_MMAP_HH
#define RPPM_COMMON_MMAP_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace rppm {

/** An immutable byte image of a file, mapped with mmap(PROT_READ). */
class MappedFile
{
  public:
    /** Map @p path read-only; throws std::runtime_error on any I/O
     *  failure (missing file, unreadable, mmap refusal). Empty files
     *  yield a valid zero-length image without calling mmap. */
    static std::shared_ptr<const MappedFile> open(const std::string &path);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const char *data() const { return data_; }
    size_t size() const { return size_; }

    /** The whole image as a view (no copy). */
    std::string_view view() const { return {data_, size_}; }

    /** Path the image was mapped from (diagnostics only). */
    const std::string &path() const { return path_; }

  private:
    MappedFile(std::string path, const char *data, size_t size)
        : path_(std::move(path)), data_(data), size_(size)
    {}

    std::string path_;
    const char *data_;
    size_t size_;
};

/**
 * An open read-only file descriptor with RAII lifetime and whole-read
 * pread. The out-of-core trace reader uses this instead of MappedFile:
 * mapping a whole file charges its full size against RLIMIT_AS (the
 * `ulimit -v` memory caps the streaming engine must run under), whereas
 * a descriptor plus small MappedWindow views charges only the windows.
 */
class FdFile
{
  public:
    /** Open @p path read-only; throws std::runtime_error on failure. */
    explicit FdFile(const std::string &path);
    ~FdFile();

    FdFile(const FdFile &) = delete;
    FdFile &operator=(const FdFile &) = delete;

    size_t size() const { return size_; }
    const std::string &path() const { return path_; }
    int fd() const { return fd_; }

    /** Read exactly @p n bytes at @p offset into @p dst; throws
     *  std::runtime_error on any short read or I/O error. */
    void pread(void *dst, size_t n, uint64_t offset) const;

  private:
    std::string path_;
    int fd_ = -1;
    size_t size_ = 0;
};

/**
 * A remappable read-only mapping of one byte range of an FdFile.
 *
 * map() rounds the requested offset down to a page boundary internally;
 * data() always points at the requested offset. Remapping through the
 * same window (the streaming reader's double-buffered chunk slots)
 * replaces the previous mapping, so peak address-space charge stays at
 * one window's worth.
 */
class MappedWindow
{
  public:
    MappedWindow() = default;
    ~MappedWindow() { reset(); }

    MappedWindow(const MappedWindow &) = delete;
    MappedWindow &operator=(const MappedWindow &) = delete;
    MappedWindow(MappedWindow &&other) noexcept { *this = std::move(other); }
    MappedWindow &
    operator=(MappedWindow &&other) noexcept
    {
        if (this != &other) {
            reset();
            base_ = other.base_;
            mapLen_ = other.mapLen_;
            data_ = other.data_;
            len_ = other.len_;
            other.base_ = nullptr;
            other.mapLen_ = 0;
            other.data_ = nullptr;
            other.len_ = 0;
        }
        return *this;
    }

    /** Map bytes [offset, offset + len) of @p file, replacing any
     *  previous mapping; throws std::runtime_error on bounds or mmap
     *  failure. len == 0 just resets. */
    void map(const FdFile &file, uint64_t offset, size_t len);

    /** Unmap; data() becomes nullptr. */
    void reset();

    const char *data() const { return data_; }
    size_t size() const { return len_; }

  private:
    char *base_ = nullptr;  ///< page-aligned mapping base
    size_t mapLen_ = 0;     ///< mapped length from base_
    const char *data_ = nullptr; ///< base_ + in-page offset
    size_t len_ = 0;
};

} // namespace rppm

#endif // RPPM_COMMON_MMAP_HH

/**
 * @file
 * Read-only memory-mapped file with RAII lifetime.
 *
 * The RPPM binary containers (RPPMTRC traces, RPPMPRF profiles) are laid
 * out so that every column payload starts at an 8-byte-aligned offset;
 * mapping such a file lets a reader point straight into the payloads
 * instead of copying them into vectors. MappedFile owns the mapping; any
 * structure that borrows pointers into it (Column<T> views inside a
 * ColumnarTrace, for example) must keep a shared_ptr to the MappedFile
 * alive for as long as the pointers are used.
 *
 * The mapping is strictly PROT_READ — writing through a borrowed view is
 * a segfault, which is the cheap enforcement backing the "immutable after
 * publish" discipline for shared artifacts.
 */

#ifndef RPPM_COMMON_MMAP_HH
#define RPPM_COMMON_MMAP_HH

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace rppm {

/** An immutable byte image of a file, mapped with mmap(PROT_READ). */
class MappedFile
{
  public:
    /** Map @p path read-only; throws std::runtime_error on any I/O
     *  failure (missing file, unreadable, mmap refusal). Empty files
     *  yield a valid zero-length image without calling mmap. */
    static std::shared_ptr<const MappedFile> open(const std::string &path);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const char *data() const { return data_; }
    size_t size() const { return size_; }

    /** The whole image as a view (no copy). */
    std::string_view view() const { return {data_, size_}; }

    /** Path the image was mapped from (diagnostics only). */
    const std::string &path() const { return path_; }

  private:
    MappedFile(std::string path, const char *data, size_t size)
        : path_(std::move(path)), data_(data), size_(size)
    {}

    std::string path_;
    const char *data_;
    size_t size_;
};

} // namespace rppm

#endif // RPPM_COMMON_MMAP_HH

/**
 * @file
 * Generic open-addressing hash table with lazy-zero values.
 *
 * Extracted from the profiler's SeqTable (profile/reuse_tables.hh) so the
 * simulator's per-line coherence directory can share the exact layout and
 * probing discipline: flat key/value arrays, keys stored as key+1 with 0
 * meaning "empty" (line numbers are addr / lineBytes < 2^58, so +1 never
 * wraps), mix64 probing, linear open addressing and growth at 70%
 * occupancy. Values are value-initialized on first insert only — the
 * value store is default-initialized (left raw for trivial V), so
 * construction, reserve() and growth only ever memset the key array.
 * Callers that know an upper bound on the distinct-key count (the
 * simulator's directory knows the trace's memory-access count) should
 * reserve() it up front: a near-full table rehashes its entire contents
 * on every doubling, which dominates streaming workloads where almost
 * every key is fresh.
 *
 * Thread-safety contract: not internally synchronized; each instance is
 * owned by exactly one thread at a time (the profiler assigns one table
 * per shard worker, the simulator one directory per hierarchy replica).
 */

#ifndef RPPM_COMMON_OPEN_TABLE_HH
#define RPPM_COMMON_OPEN_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.hh"

namespace rppm {

/** Open-addressing map key -> V. V must be cheap to value-initialize. */
template <typename V>
class OpenTable
{
  public:
    explicit OpenTable(size_t initial_cap = size_t{1} << 8)
    {
        grow(initial_cap);
    }

    /**
     * Value slot for @p key; @p inserted reports whether the key was
     * fresh (value value-initialized), mirroring try_emplace. The
     * returned reference is invalidated by the next lookup() that
     * inserts (it may grow the table).
     */
    V &
    lookup(uint64_t key_in, bool &inserted)
    {
        if ((size_ + 1) * 10 >= cap_ * 7)
            grow(cap_ * 2);
        const uint64_t key = key_in + 1;
        size_t i = static_cast<size_t>(mix64(key)) & mask_;
        while (true) {
            if (keys_[i] == 0) {
                keys_[i] = key;
                ++size_;
                inserted = true;
                vals_[i] = V{};
                return vals_[i];
            }
            if (keys_[i] == key) {
                inserted = false;
                return vals_[i];
            }
            i = (i + 1) & mask_;
        }
    }

    /**
     * Software-prefetch the probe window of a future lookup(key). No
     * observable effect on table state — callers with a known upcoming
     * key stream hide the (usually DRAM-bound) probe latency.
     */
    void
    prefetch(uint64_t key_in) const
    {
        const size_t i =
            static_cast<size_t>(mix64(key_in + 1)) & mask_;
        __builtin_prefetch(&keys_[i]);
        __builtin_prefetch(&vals_[i]);
    }

    /**
     * Pre-size the backing store so @p expected distinct keys fit
     * without crossing the 70% growth threshold. Only ever enlarges;
     * existing entries are kept. Call before a fill whose key count has
     * a known upper bound to avoid rehash-on-doubling entirely.
     */
    void
    reserve(size_t expected)
    {
        size_t want = size_t{1} << 8;
        while ((expected + 1) * 10 >= want * 7)
            want *= 2;
        if (want > cap_)
            grow(want);
    }

    size_t size() const { return size_; }

  private:
    void
    grow(size_t new_cap)
    {
        std::vector<uint64_t> old_keys = std::move(keys_);
        std::unique_ptr<V[]> old_vals = std::move(vals_);
        cap_ = new_cap;
        mask_ = cap_ - 1;
        keys_.assign(cap_, 0);
        // Default-initialization: trivial V stays raw here. Slots are
        // value-initialized by lookup() on first insert, and grow()
        // only ever reads slots whose key is live.
        vals_.reset(new V[cap_]);
        for (size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == 0)
                continue;
            size_t j = static_cast<size_t>(mix64(old_keys[i])) & mask_;
            while (keys_[j] != 0)
                j = (j + 1) & mask_;
            keys_[j] = old_keys[i];
            vals_[j] = old_vals[i];
        }
    }

    size_t cap_ = 0;
    size_t mask_ = 0;
    size_t size_ = 0;
    std::vector<uint64_t> keys_;
    std::unique_ptr<V[]> vals_;
};

} // namespace rppm

#endif // RPPM_COMMON_OPEN_TABLE_HH

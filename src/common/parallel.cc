#include "common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace rppm {

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ParallelExecutor::ParallelExecutor(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
}

void
ParallelExecutor::forEach(size_t count,
                          const std::function<void(size_t)> &fn) const
{
    if (count == 0)
        return;
    if (jobs_ == 1 || count == 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    // `error` is written only under errorMutex; it is read after every
    // worker has joined, so the joins order the final read. (Locals
    // cannot carry RPPM_GUARDED_BY — the capability-annotated wrapper
    // still gives clang's analysis the acquire/release shape.)
    std::exception_ptr error;
    Mutex errorMutex;

    auto worker = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                MutexLock lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<size_t>(jobs_, count));
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace rppm

#include "common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace rppm {

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ParallelExecutor::ParallelExecutor(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
}

void
ParallelExecutor::forEach(size_t count,
                          const std::function<void(size_t)> &fn) const
{
    if (count == 0)
        return;
    if (jobs_ == 1 || count == 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    // `error` is written only under errorMutex; it is read after every
    // worker has joined, so the joins order the final read. (Locals
    // cannot carry RPPM_GUARDED_BY — the capability-annotated wrapper
    // still gives clang's analysis the acquire/release shape.)
    std::exception_ptr error;
    Mutex errorMutex;

    auto worker = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                MutexLock lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<size_t>(jobs_, count));
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

WorkDeque::WorkDeque(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
    // The waiting caller helps drain the deque, so it occupies one of
    // the job slots; spawn the rest as dedicated workers.
    for (unsigned t = 1; t < jobs_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkDeque::~WorkDeque()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        tasks_.clear();
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
WorkDeque::runTask(Task &&task)
{
    bool skip;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        skip = task.group->error_ != nullptr;
    }
    std::exception_ptr error;
    if (!skip) {
        try {
            task.fn();
        } catch (...) {
            error = std::current_exception();
        }
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error && !task.group->error_)
            task.group->error_ = error;
        if (--task.group->pending_ == 0)
            cv_.notify_all();
    }
}

void
WorkDeque::workerLoop()
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_)
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        runTask(std::move(task));
    }
}

void
WorkDeque::post(Group &group, std::function<void()> fn)
{
    if (jobs_ == 1) {
        // Degenerate deterministic mode: run inline in post order,
        // capturing the error exactly as a worker would.
        ++group.pending_;
        runTask(Task{&group, std::move(fn)});
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++group.pending_;
        tasks_.push_back(Task{&group, std::move(fn)});
    }
    cv_.notify_one();
}

void
WorkDeque::wait(Group &group)
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (group.pending_ == 0)
                break;
            if (tasks_.empty()) {
                // Nothing to steal: sleep until the group drains or new
                // work shows up to help with.
                cv_.wait(lock, [&] {
                    return group.pending_ == 0 || !tasks_.empty();
                });
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        runTask(std::move(task));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (group.error_) {
        const std::exception_ptr error = group.error_;
        group.error_ = nullptr;
        std::rethrow_exception(error);
    }
}

} // namespace rppm

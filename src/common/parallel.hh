/**
 * @file
 * Minimal worker-pool executor shared by every parallel subsystem.
 *
 * Runs `count` index-addressed tasks on up to `jobs` std::threads.
 * Because tasks are identified by index and write their results into
 * pre-sized slots, the output ordering is deterministic regardless of
 * scheduling: the same computation run with 1 worker and with 16 workers
 * yields byte-identical results.
 *
 * Users: the Study grid executor (study/executor.hh re-exports this
 * class under its historical name), the parallel profiler's phase
 * fan-outs (profile/profiler_parallel.cc) and parallel trace synthesis
 * (workload/workload.cc).
 */

#ifndef RPPM_COMMON_PARALLEL_HH
#define RPPM_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace rppm {

class ParallelExecutor
{
  public:
    /** @p jobs worker threads; 0 picks std::thread::hardware_concurrency. */
    explicit ParallelExecutor(unsigned jobs = 1);

    /** The resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Invoke @p fn(i) for every i in [0, count). With jobs() == 1 the
     * calls happen inline, in order; otherwise worker threads pull
     * indices from a shared counter. The first exception thrown by any
     * task is rethrown here after all workers have stopped (remaining
     * tasks are abandoned).
     */
    void forEach(size_t count, const std::function<void(size_t)> &fn) const;

  private:
    unsigned jobs_;
};

/** Resolve a jobs knob: 0 = all hardware threads, otherwise the value. */
unsigned resolveJobs(unsigned jobs);

} // namespace rppm

#endif // RPPM_COMMON_PARALLEL_HH

/**
 * @file
 * Minimal worker-pool executor shared by every parallel subsystem.
 *
 * Runs `count` index-addressed tasks on up to `jobs` std::threads.
 * Because tasks are identified by index and write their results into
 * pre-sized slots, the output ordering is deterministic regardless of
 * scheduling: the same computation run with 1 worker and with 16 workers
 * yields byte-identical results.
 *
 * Users: the Study grid executor (study/executor.hh re-exports this
 * class under its historical name), the parallel profiler's phase
 * fan-outs (profile/profiler_parallel.cc) and parallel trace synthesis
 * (workload/workload.cc).
 */

#ifndef RPPM_COMMON_PARALLEL_HH
#define RPPM_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rppm {

class ParallelExecutor
{
  public:
    /** @p jobs worker threads; 0 picks std::thread::hardware_concurrency. */
    explicit ParallelExecutor(unsigned jobs = 1);

    /** The resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Invoke @p fn(i) for every i in [0, count). With jobs() == 1 the
     * calls happen inline, in order; otherwise worker threads pull
     * indices from a shared counter. The first exception thrown by any
     * task is rethrown here after all workers have stopped (remaining
     * tasks are abandoned).
     */
    void forEach(size_t count, const std::function<void(size_t)> &fn) const;

  private:
    unsigned jobs_;
};

/** Resolve a jobs knob: 0 = all hardware threads, otherwise the value. */
unsigned resolveJobs(unsigned jobs);

/**
 * A small shared work deque for software-pipelined stages.
 *
 * ParallelExecutor::forEach is a barrier: it returns only when every
 * task of one homogeneous batch is done, so two overlapping stages (the
 * streaming profiler's phase-C bucketing of chunk k+1 against phase-D
 * resolution of chunk k) would serialize. WorkDeque instead tags each
 * task with a Group: post() enqueues onto one shared FIFO deque that
 * all workers drain regardless of group — the work *stealing* across
 * the stage boundary — and wait(group) blocks only until that group's
 * tasks finish, helping execute queued tasks (from any group) while it
 * waits instead of idling.
 *
 * With jobs == 1 no worker threads exist and post() runs the task
 * inline, in post order — the deterministic degenerate mode, mirroring
 * ParallelExecutor.
 *
 * Error contract: the first exception a group's task throws is captured
 * and rethrown by wait(group); once a group holds an error its not-yet-
 * started tasks are skipped (other groups are unaffected). Destroying
 * the deque abandons any tasks never waited on.
 */
class WorkDeque
{
  public:
    /** Completion tracker for one batch of related tasks. The caller
     *  owns it and must keep it alive until wait() returns. */
    class Group
    {
        friend class WorkDeque;
        size_t pending_ = 0;
        std::exception_ptr error_;
    };

    /** @p jobs worker threads; 0 picks hardware concurrency; 1 runs
     *  every post() inline with no threads at all. */
    explicit WorkDeque(unsigned jobs = 1);
    ~WorkDeque();

    WorkDeque(const WorkDeque &) = delete;
    WorkDeque &operator=(const WorkDeque &) = delete;

    /** The resolved worker-slot count (>= 1, counts the helping waiter). */
    unsigned jobs() const { return jobs_; }

    /** Enqueue @p fn under @p group. Never blocks (jobs > 1). */
    void post(Group &group, std::function<void()> fn);

    /** Drain @p group: execute queued tasks (any group) until all of
     *  @p group's tasks have finished, then rethrow its first error. */
    void wait(Group &group);

  private:
    struct Task
    {
        Group *group;
        std::function<void()> fn;
    };

    void runTask(Task &&task);
    void workerLoop();

    unsigned jobs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Task> tasks_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace rppm

#endif // RPPM_COMMON_PARALLEL_HH

#include "common/rng.hh"

#include <cmath>

#include "common/assert.hh"

namespace rppm {

namespace {

/** splitmix64 step, used for seed expansion. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    RPPM_ASSERT(bound > 0);
    // Lemire-style rejection-free reduction is overkill here; the modulo
    // bias is negligible for the bounds used in workload synthesis, but we
    // still mask first to keep the bias below 2^-32 for small bounds.
    return next() % bound;
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextUniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    const double p = 1.0 / mean;
    const double u = nextDouble();
    // Inverse-CDF sampling of a geometric distribution on {1, 2, ...}.
    const double v = std::log1p(-u) / std::log1p(-p);
    uint64_t draw = static_cast<uint64_t>(v) + 1;
    return draw == 0 ? 1 : draw;
}

Rng
Rng::fork(uint64_t salt)
{
    // Mix the parent's next output with the salt through splitmix64 so
    // children with different salts are decorrelated.
    uint64_t s = next() ^ (salt * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
    return Rng(splitmix64(s));
}

} // namespace rppm

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in workload generation and model calibration flow
 * through Rng so that traces, profiles and predictions are bit-reproducible
 * across runs and platforms. The generator is xoshiro256** seeded through
 * splitmix64, which is both fast and statistically strong enough for
 * workload synthesis.
 */

#ifndef RPPM_COMMON_RNG_HH
#define RPPM_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace rppm {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Seeding is position-independent: Rng(seed) always yields the same
 * sequence. Use fork() to derive independent streams (e.g. one per thread
 * of a synthetic workload) without correlated output.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /** Uniform double in [lo, hi). */
    double nextUniform(double lo, double hi);

    /** Geometric-ish positive integer with mean roughly @p mean (>= 1). */
    uint64_t nextGeometric(double mean);

    /**
     * Derive an independent child generator. The child's stream is a
     * deterministic function of this generator's state and @p salt, and
     * consuming it does not advance the parent beyond the fork call.
     */
    Rng fork(uint64_t salt);

  private:
    std::array<uint64_t, 4> state_;
};

} // namespace rppm

#endif // RPPM_COMMON_RNG_HH

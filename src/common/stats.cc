#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace rppm {

void
RunningStats::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
}

double
RunningStats::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
RunningStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return count_ ? max_ : 0.0;
}

double
relativeError(double predicted, double actual)
{
    if (actual == 0.0)
        return predicted == 0.0 ? 0.0 : 1.0;
    return (predicted - actual) / actual;
}

double
absRelativeError(double predicted, double actual)
{
    return std::fabs(relativeError(predicted, actual));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

} // namespace rppm

/**
 * @file
 * Small numeric helpers shared by the simulator, profiler and model:
 * running means, absolute/relative error, and geometric utilities used in
 * the evaluation harnesses.
 */

#ifndef RPPM_COMMON_STATS_HH
#define RPPM_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace rppm {

/** Incrementally maintained mean / min / max over double samples. */
class RunningStats
{
  public:
    void add(double sample);

    uint64_t count() const { return count_; }
    double mean() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Signed relative error of @p predicted w.r.t. @p actual (0 if both 0). */
double relativeError(double predicted, double actual);

/** |relativeError| */
double absRelativeError(double predicted, double actual);

/** Arithmetic mean of a vector (0 for empty input). */
double mean(const std::vector<double> &values);

/** Maximum of a vector (0 for empty input). */
double maxOf(const std::vector<double> &values);

} // namespace rppm

#endif // RPPM_COMMON_STATS_HH

#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hh"

namespace rppm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    RPPM_REQUIRE(row.size() == headers_.size(),
                 "table row arity mismatch");
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(headers_);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

AsciiBarChart::AsciiBarChart(std::vector<std::string> series_names, int width)
    : seriesNames_(std::move(series_names)), width_(width)
{
    RPPM_REQUIRE(width_ > 0, "chart width must be positive");
}

void
AsciiBarChart::addGroup(const std::string &label, std::vector<double> values)
{
    RPPM_REQUIRE(values.size() == seriesNames_.size(),
                 "chart group arity mismatch");
    groups_.push_back({label, std::move(values)});
}

std::string
AsciiBarChart::render() const
{
    double max_value = 0.0;
    for (const auto &g : groups_)
        for (double v : g.values)
            max_value = std::max(max_value, v);
    if (max_value <= 0.0)
        max_value = 1.0;

    size_t label_w = 0;
    for (const auto &g : groups_)
        label_w = std::max(label_w, g.label.size());
    for (const auto &s : seriesNames_)
        label_w = std::max(label_w, s.size() + 2);

    std::ostringstream os;
    for (const auto &g : groups_) {
        os << g.label << '\n';
        for (size_t s = 0; s < seriesNames_.size(); ++s) {
            const double v = g.values[s];
            const int len = static_cast<int>(
                v / max_value * static_cast<double>(width_) + 0.5);
            os << "  " << seriesNames_[s]
               << std::string(label_w - seriesNames_[s].size() - 2 + 2, ' ')
               << '|' << std::string(static_cast<size_t>(len), '#')
               << ' ' << fmt(v, 3) << '\n';
        }
    }
    return os.str();
}

} // namespace rppm

/**
 * @file
 * ASCII table and bar-chart rendering for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures and
 * prints it in a format close to the published layout. TablePrinter handles
 * column alignment; AsciiBarChart renders Figure-style grouped bars.
 */

#ifndef RPPM_COMMON_TABLE_HH
#define RPPM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace rppm {

/** Simple right-padded column-aligned table. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render to a string with aligned columns and a separator rule. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 2);

/** Format a percentage, e.g. fmtPct(0.112) == "11.2%". */
std::string fmtPct(double fraction, int precision = 1);

/**
 * Horizontal ASCII bar chart: one group per label, one bar per series.
 * Used to render Figure 4/5-style comparisons in the bench output.
 */
class AsciiBarChart
{
  public:
    /** @p series_names one entry per bar within each group. */
    explicit AsciiBarChart(std::vector<std::string> series_names,
                           int width = 50);

    /** Add a group (e.g. one benchmark) with one value per series. */
    void addGroup(const std::string &label, std::vector<double> values);

    /** Render; bars are scaled to the global maximum. */
    std::string render() const;

  private:
    std::vector<std::string> seriesNames_;
    int width_;
    struct Group
    {
        std::string label;
        std::vector<double> values;
    };
    std::vector<Group> groups_;
};

} // namespace rppm

#endif // RPPM_COMMON_TABLE_HH

/**
 * @file
 * Clang thread-safety annotations and a capability-annotated mutex.
 *
 * The repo's core guarantee — every fast path is bit-identical to its
 * retained reference implementation — depends on shared mutable state
 * being impossible to touch without its lock. The differential tests
 * and the TSan CI shard enforce that dynamically on the code paths they
 * happen to exercise; these annotations enforce it statically on every
 * path, at compile time, under clang's -Wthread-safety analysis (CI
 * builds the clang matrix legs with -Werror=thread-safety).
 *
 * Usage pattern (see study/profile_cache.hh for a full example):
 *
 *     class Cache
 *     {
 *         mutable Mutex mutex_;
 *         std::unordered_map<K, V> entries_ RPPM_GUARDED_BY(mutex_);
 *
 *         V lookup(K k) RPPM_EXCLUDES(mutex_)
 *         {
 *             MutexLock lock(mutex_);
 *             return entries_[k];
 *         }
 *     };
 *
 * Under gcc (which has no thread-safety analysis) every macro expands
 * to nothing, so annotated code builds identically on both compilers.
 *
 * Annotate with the RPPM_* macros only; never spell the raw attributes
 * in code. Use rppm::Mutex + rppm::MutexLock (not std::mutex +
 * std::lock_guard) for any mutex that guards annotated state — the
 * analysis only tracks capability-annotated types.
 */

#ifndef RPPM_COMMON_THREAD_ANNOTATIONS_HH
#define RPPM_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RPPM_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef RPPM_THREAD_ANNOTATION_
#define RPPM_THREAD_ANNOTATION_(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define RPPM_CAPABILITY(x) RPPM_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define RPPM_SCOPED_CAPABILITY RPPM_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define RPPM_GUARDED_BY(x) RPPM_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define RPPM_PT_GUARDED_BY(x) RPPM_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function callable only while holding the listed capabilities. */
#define RPPM_REQUIRES(...) \
    RPPM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function callable only while *not* holding them (deadlock guard). */
#define RPPM_EXCLUDES(...) \
    RPPM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Function acquires the listed capabilities and does not release. */
#define RPPM_ACQUIRE(...) \
    RPPM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define RPPM_RELEASE(...) \
    RPPM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p result. */
#define RPPM_TRY_ACQUIRE(result, ...) \
    RPPM_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/** Function returns a reference to the capability guarding its result. */
#define RPPM_RETURN_CAPABILITY(x) RPPM_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Escape hatch: suppresses the analysis inside one function. Every use
 * must carry a comment explaining why the code is safe anyway.
 */
#define RPPM_NO_THREAD_SAFETY_ANALYSIS \
    RPPM_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rppm {

/**
 * std::mutex with the capability annotation the analysis needs.
 * Drop-in: same lock/unlock/try_lock surface, zero overhead.
 */
class RPPM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() RPPM_ACQUIRE() { m_.lock(); }
    void unlock() RPPM_RELEASE() { m_.unlock(); }
    bool try_lock() RPPM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_;
};

/** RAII guard for Mutex — the annotated analogue of std::lock_guard. */
class RPPM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) RPPM_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() RPPM_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

} // namespace rppm

#endif // RPPM_COMMON_THREAD_ANNOTATIONS_HH

#include "profile/epoch_profile.hh"

namespace rppm {

double
EpochProfile::meanLoadGap() const
{
    if (loadGap.total() == 0)
        return static_cast<double>(numOps == 0 ? 1 : numOps);
    return loadGap.meanFinite();
}

uint64_t
ThreadProfile::totalOps() const
{
    uint64_t n = 0;
    for (const auto &epoch : epochs)
        n += epoch.numOps;
    return n;
}

uint64_t
WorkloadProfile::totalOps() const
{
    uint64_t n = 0;
    for (const auto &thread : threads)
        n += thread.totalOps();
    return n;
}

} // namespace rppm

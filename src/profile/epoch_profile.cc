#include "profile/epoch_profile.hh"

namespace rppm {

double
EpochProfile::meanLoadGap() const
{
    if (loadGap.total() == 0)
        return static_cast<double>(numOps == 0 ? 1 : numOps);
    return loadGap.meanFinite();
}

uint64_t
ThreadProfile::totalOps() const
{
    uint64_t n = 0;
    for (const auto &epoch : epochs)
        n += epoch.numOps;
    return n;
}

uint64_t
WorkloadProfile::totalOps() const
{
    uint64_t n = 0;
    for (const auto &thread : threads)
        n += thread.totalOps();
    return n;
}

namespace {

uint64_t
approxHistogramBytes(const LogHistogram &h)
{
    // The bucket vector is either unallocated or full-size (see
    // LogHistogram::add); the infinity bucket and totals are scalars.
    return h.totalFinite() == 0 ?
        0 :
        static_cast<uint64_t>(LogHistogram::numBuckets()) * sizeof(uint64_t);
}

} // namespace

uint64_t
WorkloadProfile::approxResidentBytes() const
{
    uint64_t bytes = sizeof(WorkloadProfile);
    for (const auto &thread : threads) {
        for (const auto &epoch : thread.epochs) {
            bytes += sizeof(EpochProfile);
            bytes += approxHistogramBytes(epoch.depDist);
            bytes += approxHistogramBytes(epoch.localRd);
            bytes += approxHistogramBytes(epoch.globalRd);
            bytes += approxHistogramBytes(epoch.loadLocalRd);
            bytes += approxHistogramBytes(epoch.loadGlobalRd);
            bytes += approxHistogramBytes(epoch.instrRd);
            bytes += approxHistogramBytes(epoch.loadGap);
            // Open-addressing branch table: slots are ~70% occupied at
            // the growth threshold; charge per-slot payload (used byte,
            // pc, taken/total counts) at that density.
            bytes += epoch.branches.staticBranches() * 25 * 10 / 7;
            for (const auto &mt : epoch.microTraces)
                bytes += mt.ops.size() * sizeof(MicroTraceOp);
        }
    }
    bytes += barrierPopulation.size() * 2 * sizeof(uint64_t);
    bytes += condVarClasses.size() * 2 * sizeof(uint64_t);
    return bytes;
}

} // namespace rppm

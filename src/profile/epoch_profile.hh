/**
 * @file
 * Microarchitecture-independent per-epoch profile data structures.
 *
 * An epoch is the stretch of one thread's execution between two of its
 * synchronization events (paper Sec. III-A, Fig. 3a). Each epoch profile
 * contains only workload-inherent statistics: instruction mix, dependence
 * distances, sampled micro-traces (1000-uop snippets with per-access reuse
 * distances), branch entropy accumulators, per-thread and global
 * (interleaved) reuse-distance distributions, and the synchronization
 * event that terminates the epoch. The RPPM model consumes these profiles
 * to predict performance on any MulticoreConfig.
 */

#ifndef RPPM_PROFILE_EPOCH_PROFILE_HH
#define RPPM_PROFILE_EPOCH_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "branch/entropy.hh"
#include "common/histogram.hh"
#include "trace/trace.hh"

namespace rppm {

/** One op of a sampled micro-trace (paper Sec. II-B: ILP modeling). */
struct MicroTraceOp
{
    uint64_t localRd = LogHistogram::kInfinity;  ///< per-thread reuse dist.
    uint64_t globalRd = LogHistogram::kInfinity; ///< interleaved reuse dist.
    uint16_t dep1 = 0;
    uint16_t dep2 = 0;
    OpClass op = OpClass::IntAlu;
};

/** A sampled 1000-uop snippet capturing fine-grained ILP behaviour. */
struct MicroTrace
{
    std::vector<MicroTraceOp> ops;
};

/** Profile of one inter-synchronization epoch of one thread. */
struct EpochProfile
{
    // --- Scalar counts.
    uint64_t numOps = 0;
    uint64_t numLoads = 0;
    uint64_t numStores = 0;
    uint64_t numBranches = 0;
    uint64_t loadsDependingOnLoad = 0; ///< loads serialized behind a load
    std::array<uint64_t, kNumOpClasses> mix{};

    // --- Distributions.
    LogHistogram depDist;      ///< dependence distances (all ops)
    LogHistogram localRd;      ///< per-thread data reuse distances
    LogHistogram globalRd;     ///< interleaved data reuse distances
    LogHistogram loadLocalRd;  ///< loads only: per-thread reuse distances
    LogHistogram loadGlobalRd; ///< loads only: interleaved reuse distances
    LogHistogram instrRd;      ///< instruction-stream reuse distances
    LogHistogram loadGap;      ///< micro-ops between consecutive loads

    // --- Branch behaviour (per-static-branch outcome counts).
    BranchEntropyProfile branches;

    // --- Fine-grained ILP samples.
    std::vector<MicroTrace> microTraces;

    // --- Event terminating this epoch (None = thread finished).
    SyncType endType = SyncType::None;
    uint32_t endArg = 0;

    /** Mean micro-ops between loads (numOps when the epoch has <2 loads). */
    double meanLoadGap() const;
};

/** All epochs of one thread, in execution order. */
struct ThreadProfile
{
    std::vector<EpochProfile> epochs;

    uint64_t totalOps() const;
};

/** Classification of a condition-variable usage pattern (paper III-B). */
enum class CondVarClass : uint8_t
{
    BarrierLike,       ///< all-but-one wait; any thread can release
    ProducerConsumer,  ///< disjoint waiter / releaser thread sets
};

/** Dynamic synchronization counts, as reported in Table III. */
struct SyncCounts
{
    uint64_t criticalSections = 0; ///< mutex acquisitions
    uint64_t barriers = 0;         ///< classic barrier arrivals / population
    uint64_t condVars = 0;         ///< condvar events (waits + signals)
};

/** The complete microarchitecture-independent profile of a workload. */
struct WorkloadProfile
{
    std::string name;
    uint32_t numThreads = 0;
    std::vector<ThreadProfile> threads;

    /** Participants per barrier-like sync object id. */
    std::unordered_map<uint32_t, uint32_t> barrierPopulation;

    /** Classification of every condvar-backed sync object. */
    std::unordered_map<uint32_t, CondVarClass> condVarClasses;

    SyncCounts syncCounts;

    /** Total micro-ops across all threads and epochs. */
    uint64_t totalOps() const;

    /**
     * Approximate resident heap footprint in bytes. Used by byte-budgeted
     * cache eviction (common/lru.hh) — accuracy within a small constant
     * factor is all the budget math needs, so this counts the dominant
     * payloads (histogram buckets, micro-trace ops, branch tables) and
     * ignores allocator overhead.
     */
    uint64_t approxResidentBytes() const;
};

} // namespace rppm

#endif // RPPM_PROFILE_EPOCH_PROFILE_HH

/**
 * @file
 * Fused single-pass profiler over the columnar trace.
 *
 * One sweep over the columns feeds every model component simultaneously:
 * ILP (dependence distances, sampled micro-traces), MLP (load gaps,
 * load-on-load chains), branch entropy, memory/StatStack reuse-distance
 * distributions, and the synchronization profile. Structural validation
 * and barrier populations come from the sparse sync columns
 * (ColumnarTrace::validateAndBarrierPopulations), so nothing walks the
 * full record stream more than once.
 *
 * The functional replay (round-robin quanta, functional synchronization,
 * write-invalidation detection) is semantically identical to the
 * reference implementation in profiler_legacy.cc — tests assert the two
 * produce bit-identical profiles. The per-record statistics loop itself
 * lives in profile/stat_sweep.hh, shared with the parallel and streaming
 * engines; this engine instantiates it with a *live* reuse-distance
 * provider that probes the global LineTable in replay order, fusing
 * reuse-distance resolution into the same pass.
 */

#include "profile/profiler.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hh"
#include "profile/reuse_tables.hh"
#include "profile/stat_sweep.hh"
#include "sim/sync_state.hh"
#include "trace/columnar.hh"

namespace rppm {

namespace {

// LineTable / SeqTable / InstrLineMap — the open-addressing state tables
// this sweep runs on — live in profile/reuse_tables.hh, shared with the
// parallel engine (profiler_parallel.cc).

/** Per-thread profiling cursor and scratch state. */
struct ThreadState
{
    size_t next = 0; ///< next record index
    bool done = false;
    /** Shared-sweep cursor (column indices, sampling windows, op ring). */
    SweepState sweep;
    uint64_t localDataSeq = 0; ///< this thread's data access counter
    InstrLineMap instrLast;    ///< pc line -> seq
};

} // namespace

WorkloadProfile
profileWorkloadFused(const ColumnarTrace &trace, const ProfilerOptions &opts)
{
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());

    WorkloadProfile profile;
    profile.name = trace.name;
    profile.numThreads = num_threads;
    profile.threads.resize(num_threads);
    // The replay below indexes the sparse columns blindly, so a
    // hand-assembled trace must be internally consistent (cheap: only
    // the 1-byte op column is scanned densely).
    trace.validateColumnConsistency();
    // Fused pre-pass: validation + barrier sizing from the sync columns.
    profile.barrierPopulation = trace.validateAndBarrierPopulations();

    // Functional synchronization replay: "time" is the global record
    // step counter, only used to order wakeups.
    SyncState sync(num_threads, profile.barrierPopulation);

    std::vector<ThreadState> state(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
        profile.threads[t].epochs.emplace_back();
    }

    uint64_t total_mem_ops = 0;
    for (const ThreadColumns &cols : trace.threads)
        total_mem_ops += cols.addr.size();
    LineTable lines(num_threads, total_mem_ops);
    uint64_t global_seq = 0;
    uint64_t step = 0;

    auto close_epoch = [&](uint32_t tid, SyncType type, uint32_t arg) {
        ThreadProfile &tp = profile.threads[tid];
        tp.epochs.back().endType = type;
        tp.epochs.back().endArg = arg;
        tp.epochs.emplace_back();
        SweepState &ts = state[tid].sweep;
        ts.opsInEpoch = 0;
        ts.nextMicroTraceAt = 0;
        ts.microTraceRemaining = 0;
    };

    auto process_sync = [&](uint32_t tid, SyncType type,
                            uint32_t arg) -> bool {
        // Returns true when the thread blocks. Sync counts and condvar
        // classification are order-independent aggregates over the sync
        // columns, computed once at the end (classifySyncProfile).
        if (type == SyncType::CondMarker) {
            // Source marker: does not delineate an epoch.
            return false;
        }

        TraceRecord rec;
        rec.sync = type;
        rec.syncArg = arg;
        const SyncOutcome out =
            sync.apply(tid, rec, static_cast<double>(step));
        close_epoch(tid, type, arg);
        return out.blocks;
    };

    // Round-robin functional replay. Micro-op runs between sync events
    // are processed without per-record sync checks: the sparse syncPos
    // column bounds each run up front.
    uint32_t live = num_threads;
    uint32_t cursor = 0;
    while (live > 0) {
        // Find the next runnable thread in round-robin order.
        uint32_t pick = UINT32_MAX;
        for (uint32_t i = 0; i < num_threads; ++i) {
            const uint32_t t = (cursor + i) % num_threads;
            if (!state[t].done && !sync.blocked(t)) {
                pick = t;
                break;
            }
        }
        RPPM_REQUIRE(pick != UINT32_MAX,
                     "deadlock during profiling (malformed trace)");
        cursor = (pick + 1) % num_threads;

        ThreadState &ts = state[pick];
        const ThreadColumns &cols = trace.threads[pick];
        const size_t num_records = cols.numRecords();

        // Live reuse-distance provider: resolves local and global reuse
        // against the global LineTable at the access's position in the
        // interleaved replay — the "fused" in the engine's name.
        auto live_rd = [&](size_t memIdx,
                           bool is_store) -> std::pair<uint64_t, uint64_t> {
            const uint64_t line = cols.addr[memIdx] / opts.lineBytes;
            ++global_seq;
            ++ts.localDataSeq;

            uint64_t local_rd = LogHistogram::kInfinity;
            uint64_t global_rd = LogHistogram::kInfinity;

            const size_t s = lines.slot(line);
            LineTable::Meta &meta = lines.meta(s);
            LineTable::PerThread &mine = lines.perThread(s, pick);

            // Global (interleaved) reuse distance: accesses by anyone
            // since the line was last touched by anyone.
            if (meta.lastGlobalSeq != 0)
                global_rd = global_seq - meta.lastGlobalSeq - 1;

            // Per-thread reuse distance with write-invalidation: if any
            // other thread wrote the line since our last access, the
            // reuse is broken — record an infinite distance (coherence
            // miss), as in the paper's StatStack extension.
            if (mine.count != 0) {
                const bool invalidated = opts.detectInvalidation &&
                    meta.lastWriteSeq > mine.seq &&
                    meta.lastWriter != pick;
                if (!invalidated)
                    local_rd = ts.localDataSeq - mine.count - 1;
            }

            mine.count = ts.localDataSeq;
            mine.seq = global_seq;
            meta.lastGlobalSeq = global_seq;
            if (is_store) {
                meta.lastWriteSeq = global_seq;
                meta.lastWriter = pick;
            }
            return {local_rd, global_rd};
        };

        uint32_t executed = 0;
        while (ts.next < num_records && executed < opts.quantum) {
            const size_t next_sync =
                ts.sweep.syncIdx < cols.syncPos.size() ?
                static_cast<size_t>(cols.syncPos[ts.sweep.syncIdx]) :
                num_records;
            if (ts.next == next_sync) {
                const SyncType type = cols.syncType[ts.sweep.syncIdx];
                const uint32_t arg = cols.syncArg[ts.sweep.syncIdx];
                ++ts.sweep.syncIdx;
                ++ts.next;
                ++step;
                ++executed;
                if (process_sync(pick, type, arg))
                    break;
                continue;
            }
            // Run of pure micro-ops: bounded by the quantum budget and
            // the next sync event. The epoch reference is stable across
            // the run (epochs only change at sync events), and the step
            // counter is only consumed at sync events, so it can advance
            // in bulk.
            const size_t run_end = std::min(
                next_sync,
                ts.next + (opts.quantum - executed));
            const size_t run = run_end - ts.next;
            EpochProfile &ep = profile.threads[pick].epochs.back();
            sweepRun(cols, opts, ts.sweep, ts.instrLast, live_rd,
                     coldFirstTouch, ep, ts.next, run_end);
            ts.next = run_end;
            step += run;
            executed += static_cast<uint32_t>(run);
        }
        if (ts.next >= num_records && !ts.done) {
            ts.done = true;
            --live;
            sync.finish(pick, static_cast<double>(step));
        }
    }

    std::vector<SyncView> sync_views;
    sync_views.reserve(num_threads);
    for (const ThreadColumns &cols : trace.threads)
        sync_views.push_back(syncView(cols));
    classifySyncProfile(profile, sync_views);

    return profile;
}

WorkloadProfile
profileWorkload(const ColumnarTrace &trace, const ProfilerOptions &opts)
{
    // Engine selection is pure policy — all engines produce bit-identical
    // profiles, so neither jobs nor streamChunkRecords enters the
    // ProfileCache key (study/profile_cache.cc). streamChunkRecords > 0
    // opts into the bounded-memory chunked engine; otherwise jobs == 1
    // keeps the original single-threaded fused sweep (no scheduling-pass
    // or scatter overhead) and any other value routes to the
    // epoch-sharded parallel engine.
    if (opts.streamChunkRecords > 0)
        return profileWorkloadStreaming(trace, opts);
    if (opts.jobs == 1)
        return profileWorkloadFused(trace, opts);
    return profileWorkloadParallel(trace, opts);
}

WorkloadProfile
profileWorkload(const WorkloadTrace &trace, const ProfilerOptions &opts)
{
    return profileWorkload(ColumnarTrace::fromWorkload(trace), opts);
}

} // namespace rppm

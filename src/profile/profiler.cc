/**
 * @file
 * Fused single-pass profiler over the columnar trace.
 *
 * One sweep over the columns feeds every model component simultaneously:
 * ILP (dependence distances, sampled micro-traces), MLP (load gaps,
 * load-on-load chains), branch entropy, memory/StatStack reuse-distance
 * distributions, and the synchronization profile. Structural validation
 * and barrier populations come from the sparse sync columns
 * (ColumnarTrace::validateAndBarrierPopulations), so nothing walks the
 * full record stream more than once.
 *
 * The functional replay (round-robin quanta, functional synchronization,
 * write-invalidation detection) is semantically identical to the
 * reference implementation in profiler_legacy.cc — tests assert the two
 * produce bit-identical profiles. What changed is the data layout: the
 * per-line reuse/coherence state and the per-thread instruction-line
 * state live in open-addressing tables with flat per-thread rows instead
 * of std::unordered_map nodes, and micro-op runs between sync events are
 * processed without per-record sync checks.
 */

#include "profile/profiler.hh"

#include <algorithm>
#include <array>
#include <memory>
#include <set>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/assert.hh"
#include "common/hash.hh"
#include "profile/reuse_tables.hh"
#include "sim/sync_state.hh"
#include "trace/columnar.hh"

namespace rppm {

namespace {

// LineTable / SeqTable / InstrLineMap — the open-addressing state tables
// this sweep runs on — live in profile/reuse_tables.hh, shared with the
// parallel engine (profiler_parallel.cc).

/** Per-thread profiling cursor and scratch state. */
struct ThreadState
{
    // --- Column cursors.
    size_t next = 0;     ///< next record index
    size_t memIdx = 0;   ///< next entry in the sparse addr column
    size_t brIdx = 0;    ///< next entry in the sparse taken column
    size_t syncIdx = 0;  ///< next entry in the sparse sync columns
    bool done = false;

    // --- Profiling state (identical to the legacy implementation).
    uint64_t localDataSeq = 0;     ///< this thread's data access counter
    uint64_t instrSeq = 0;         ///< this thread's fetch counter
    uint64_t opsInEpoch = 0;
    uint64_t opsSinceLastLoad = 0;
    uint64_t nextMicroTraceAt = 0; ///< op index (in epoch) of next sample
    uint64_t microTraceRemaining = 0;
    /** Ring of recent op classes for load->load dependence detection. */
    std::vector<OpClass> recentOps;
    uint64_t emitted = 0;
    InstrLineMap instrLast; ///< pc line -> seq
};

} // namespace

WorkloadProfile
profileWorkloadFused(const ColumnarTrace &trace, const ProfilerOptions &opts)
{
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());

    WorkloadProfile profile;
    profile.name = trace.name;
    profile.numThreads = num_threads;
    profile.threads.resize(num_threads);
    // The replay below indexes the sparse columns blindly, so a
    // hand-assembled trace must be internally consistent (cheap: only
    // the 1-byte op column is scanned densely).
    trace.validateColumnConsistency();
    // Fused pre-pass: validation + barrier sizing from the sync columns.
    profile.barrierPopulation = trace.validateAndBarrierPopulations();

    // Functional synchronization replay: "time" is the global record
    // step counter, only used to order wakeups.
    SyncState sync(num_threads, profile.barrierPopulation);

    std::vector<ThreadState> state(num_threads);
    constexpr size_t kRecentOps = 512;
    for (auto &ts : state) {
        ts.recentOps.assign(kRecentOps, OpClass::IntAlu);
        ts.nextMicroTraceAt = 0; // sample at every epoch start
    }
    for (uint32_t t = 0; t < num_threads; ++t) {
        profile.threads[t].epochs.emplace_back();
    }

    uint64_t total_mem_ops = 0;
    for (const ThreadColumns &cols : trace.threads)
        total_mem_ops += cols.addr.size();
    LineTable lines(num_threads, total_mem_ops);
    uint64_t global_seq = 0;
    uint64_t step = 0;

    // Condvar classification bookkeeping: which threads wait at / release
    // each condvar-backed object (recognition rule of paper Sec. III-B).
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_waiters;
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_releasers;

    auto close_epoch = [&](uint32_t tid, SyncType type, uint32_t arg) {
        ThreadProfile &tp = profile.threads[tid];
        tp.epochs.back().endType = type;
        tp.epochs.back().endArg = arg;
        tp.epochs.emplace_back();
        ThreadState &ts = state[tid];
        ts.opsInEpoch = 0;
        ts.nextMicroTraceAt = 0;
        ts.microTraceRemaining = 0;
    };

    // One run of pure micro-ops [start, end) of thread tid — no sync
    // records inside, so the epoch and thread state are stable. The
    // per-component statistics are *fissioned* into tight per-column
    // loops: every statistic below is a histogram or counter whose
    // content does not depend on the interleaving of the component
    // updates, only on the per-component order, which each loop
    // preserves. The union of the loops is a field-for-field port of the
    // legacy per-record process_op.
    auto process_run = [&](uint32_t tid, const ThreadColumns &cols,
                           ThreadState &ts, EpochProfile &ep,
                           size_t start, size_t end) {
        // --- Instruction mix (op column only).
        {
            std::array<uint64_t, kNumOpClasses> mix_local{};
            for (size_t i = start; i < end; ++i)
                ++mix_local[static_cast<size_t>(cols.op[i])];
            for (size_t c = 0; c < kNumOpClasses; ++c)
                ep.mix[c] += mix_local[c];
            ep.numOps += end - start;
        }

        // --- Dependence distances (dep columns) and instruction-stream
        //     reuse distance at line granularity (pc column).
        for (size_t i = start; i < end; ++i) {
            if (cols.dep1[i])
                ep.depDist.add(cols.dep1[i]);
            if (cols.dep2[i])
                ep.depDist.add(cols.dep2[i]);

            const uint64_t pc_line = cols.pc[i] / opts.lineBytes;
            ++ts.instrSeq;
            bool inserted = false;
            uint64_t &last_fetch = ts.instrLast.lookup(pc_line, inserted);
            if (!inserted) {
                ep.instrRd.add(ts.instrSeq - last_fetch - 1);
            } else {
                ep.instrRd.add(LogHistogram::kInfinity);
            }
            last_fetch = ts.instrSeq;
        }

        // --- Stateful sweep: micro-trace sampling windows, memory /
        //     StatStack reuse distances, branches, MLP statistics.
        //     Specialized on whether any op of this run can fall inside
        //     a sampling window: when none can (the common case — the
        //     windows cover ~10% of the stream), the per-op sampling
        //     checks and the micro-trace push vanish from the loop.
        auto stateful = [&](auto sampling_tag, size_t s_begin,
                            size_t s_end) {
            constexpr bool kSampling = decltype(sampling_tag)::value;
        for (size_t i = s_begin; i < s_end; ++i) {
            const OpClass op = cols.op[i];

            // Micro-trace sampling policy: a snippet at each epoch start
            // and then one every microTraceInterval ops.
            if (kSampling && ts.microTraceRemaining == 0 &&
                ts.opsInEpoch >= ts.nextMicroTraceAt) {
                // No up-front reserve: epochs delimited by frequent sync
                // (critical-section-heavy workloads) truncate most
                // snippets after a handful of ops, so geometric growth
                // wastes less than reserving the full snippet would.
                ep.microTraces.emplace_back();
                ts.microTraceRemaining = opts.microTraceLength;
                ts.nextMicroTraceAt =
                    ts.opsInEpoch + opts.microTraceInterval;
            }

            uint64_t local_rd = LogHistogram::kInfinity;
            uint64_t global_rd = LogHistogram::kInfinity;

            if (isMemory(op)) {
                const uint64_t line =
                    cols.addr[ts.memIdx++] / opts.lineBytes;
                const bool is_store = op == OpClass::Store;
                ++global_seq;
                ++ts.localDataSeq;

                const size_t s = lines.slot(line);
                LineTable::Meta &meta = lines.meta(s);
                LineTable::PerThread &mine = lines.perThread(s, tid);

                // Global (interleaved) reuse distance: accesses by
                // anyone since the line was last touched by anyone.
                if (meta.lastGlobalSeq != 0)
                    global_rd = global_seq - meta.lastGlobalSeq - 1;

                // Per-thread reuse distance with write-invalidation: if
                // any other thread wrote the line since our last access,
                // the reuse is broken — record an infinite distance
                // (coherence miss), as in the paper's StatStack
                // extension.
                if (mine.count != 0) {
                    const bool invalidated = opts.detectInvalidation &&
                        meta.lastWriteSeq > mine.seq &&
                        meta.lastWriter != tid;
                    if (!invalidated)
                        local_rd = ts.localDataSeq - mine.count - 1;
                }

                ep.localRd.add(local_rd);
                ep.globalRd.add(global_rd);
                if (!is_store) {
                    ep.loadLocalRd.add(local_rd);
                    ep.loadGlobalRd.add(global_rd);
                }

                mine.count = ts.localDataSeq;
                mine.seq = global_seq;
                meta.lastGlobalSeq = global_seq;
                if (is_store) {
                    meta.lastWriteSeq = global_seq;
                    meta.lastWriter = tid;
                }

                if (is_store) {
                    ++ep.numStores;
                } else {
                    ++ep.numLoads;
                    ep.loadGap.add(ts.opsSinceLastLoad);
                    ts.opsSinceLastLoad = 0;
                    // Pointer-chase detection: does a source operand
                    // name a load among the recent ops?
                    auto dep_is_load = [&](uint16_t dep) {
                        if (dep == 0 || dep > ts.emitted ||
                            dep >= kRecentOps) {
                            return false;
                        }
                        return ts.recentOps[(ts.emitted - dep) %
                                            kRecentOps] == OpClass::Load;
                    };
                    if (dep_is_load(cols.dep1[i]) ||
                        dep_is_load(cols.dep2[i])) {
                        ++ep.loadsDependingOnLoad;
                    }
                }
            }

            if (op == OpClass::Branch) {
                ++ep.numBranches;
                ep.branches.record(cols.pc[i],
                                   cols.taken[ts.brIdx++] != 0);
            }

            if (kSampling && ts.microTraceRemaining > 0) {
                MicroTraceOp mop;
                mop.op = op;
                mop.dep1 = cols.dep1[i];
                mop.dep2 = cols.dep2[i];
                mop.localRd = local_rd;
                mop.globalRd = global_rd;
                ep.microTraces.back().ops.push_back(mop);
                --ts.microTraceRemaining;
            }

            ts.recentOps[ts.emitted % kRecentOps] = op;
            ++ts.emitted;
            ++ts.opsInEpoch;
            if (!isMemory(op) || op == OpClass::Store)
                ++ts.opsSinceLastLoad;
        }
        };

        // A run is sampling-free iff no window is open and the window
        // trigger (opsInEpoch >= nextMicroTraceAt) cannot fire for any
        // op in it.
        if (ts.microTraceRemaining == 0 &&
            ts.opsInEpoch + (end - start) <= ts.nextMicroTraceAt) {
            stateful(std::false_type{}, start, end);
        } else {
            stateful(std::true_type{}, start, end);
        }
    };

    auto process_sync = [&](uint32_t tid, SyncType type,
                            uint32_t arg) -> bool {
        // Returns true when the thread blocks.
        switch (type) {
          case SyncType::MutexLock:
            ++profile.syncCounts.criticalSections;
            break;
          case SyncType::BarrierWait:
            ++profile.syncCounts.barriers;
            break;
          case SyncType::CondBarrier:
            ++profile.syncCounts.condVars;
            cond_waiters[arg].insert(tid);
            cond_releasers[arg].insert(tid);
            break;
          case SyncType::QueuePop:
            ++profile.syncCounts.condVars;
            cond_waiters[arg].insert(tid);
            break;
          case SyncType::QueuePush:
            ++profile.syncCounts.condVars;
            cond_releasers[arg].insert(tid);
            break;
          default:
            break;
        }

        if (type == SyncType::CondMarker) {
            // Source marker: the thread *could* wait here. Recorded for
            // classification; does not delineate an epoch.
            cond_waiters[arg];
            return false;
        }

        TraceRecord rec;
        rec.sync = type;
        rec.syncArg = arg;
        const SyncOutcome out =
            sync.apply(tid, rec, static_cast<double>(step));
        close_epoch(tid, type, arg);
        return out.blocks;
    };

    // Round-robin functional replay. Micro-op runs between sync events
    // are processed without per-record sync checks: the sparse syncPos
    // column bounds each run up front.
    uint32_t live = num_threads;
    uint32_t cursor = 0;
    while (live > 0) {
        // Find the next runnable thread in round-robin order.
        uint32_t pick = UINT32_MAX;
        for (uint32_t i = 0; i < num_threads; ++i) {
            const uint32_t t = (cursor + i) % num_threads;
            if (!state[t].done && !sync.blocked(t)) {
                pick = t;
                break;
            }
        }
        RPPM_REQUIRE(pick != UINT32_MAX,
                     "deadlock during profiling (malformed trace)");
        cursor = (pick + 1) % num_threads;

        ThreadState &ts = state[pick];
        const ThreadColumns &cols = trace.threads[pick];
        const size_t num_records = cols.numRecords();
        uint32_t executed = 0;
        while (ts.next < num_records && executed < opts.quantum) {
            const size_t next_sync = ts.syncIdx < cols.syncPos.size() ?
                static_cast<size_t>(cols.syncPos[ts.syncIdx]) : num_records;
            if (ts.next == next_sync) {
                const SyncType type = cols.syncType[ts.syncIdx];
                const uint32_t arg = cols.syncArg[ts.syncIdx];
                ++ts.syncIdx;
                ++ts.next;
                ++step;
                ++executed;
                if (process_sync(pick, type, arg))
                    break;
                continue;
            }
            // Run of pure micro-ops: bounded by the quantum budget and
            // the next sync event. The epoch reference is stable across
            // the run (epochs only change at sync events), and the step
            // counter is only consumed at sync events, so it can advance
            // in bulk.
            const size_t run_end = std::min(
                next_sync,
                ts.next + (opts.quantum - executed));
            const size_t run = run_end - ts.next;
            EpochProfile &ep = profile.threads[pick].epochs.back();
            process_run(pick, cols, ts, ep, ts.next, run_end);
            ts.next = run_end;
            step += run;
            executed += static_cast<uint32_t>(run);
        }
        if (ts.next >= num_records && !ts.done) {
            ts.done = true;
            --live;
            sync.finish(pick, static_cast<double>(step));
        }
    }

    // Classify condvar-backed objects: symmetric waiter/releaser sets
    // mean a barrier; disjoint sets mean producer-consumer.
    // rppm-lint: ordered-ok(distinct condVarClasses key per id)
    for (const auto &[id, waiters] : cond_waiters) {
        const auto rel_it = cond_releasers.find(id);
        std::set<uint32_t> releasers =
            rel_it == cond_releasers.end() ? std::set<uint32_t>{} :
            rel_it->second;
        const bool symmetric = !waiters.empty() && waiters == releasers;
        profile.condVarClasses[id] = symmetric ?
            CondVarClass::BarrierLike : CondVarClass::ProducerConsumer;
    }

    return profile;
}

WorkloadProfile
profileWorkload(const ColumnarTrace &trace, const ProfilerOptions &opts)
{
    // jobs == 1 keeps the original single-threaded fused sweep (no
    // scheduling-pass or scatter overhead); any other value routes to
    // the epoch-sharded parallel engine. Both produce bit-identical
    // profiles, so the knob is pure policy and stays out of the
    // ProfileCache key (study/profile_cache.cc).
    if (opts.jobs == 1)
        return profileWorkloadFused(trace, opts);
    return profileWorkloadParallel(trace, opts);
}

WorkloadProfile
profileWorkload(const WorkloadTrace &trace, const ProfilerOptions &opts)
{
    return profileWorkload(ColumnarTrace::fromWorkload(trace), opts);
}

} // namespace rppm

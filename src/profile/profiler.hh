/**
 * @file
 * The RPPM profiler (Pin-tool substitute).
 *
 * Performs a functional concurrent replay of a workload trace: threads
 * advance in round-robin quanta (an arbitrary but fixed interleaving, just
 * like profiling on a real host machine), synchronization is honored
 * functionally, and every access updates per-thread and global reuse-
 * distance state (the multi-threaded StatStack extension, paper Sec.
 * III-A and Fig. 2). Write invalidation is detected by checking whether
 * another thread wrote a line between two accesses by the same thread;
 * if so, an infinite per-thread reuse distance is recorded.
 *
 * The primary implementation is a *single-pass fused sweep* over the
 * columnar trace (trace/columnar.hh): one walk feeds the ILP statistics
 * (dependence distances, micro-traces), the MLP statistics (load gaps,
 * load-on-load chains), the branch entropy accumulators, the
 * memory/StatStack reuse-distance distributions and the synchronization
 * profile simultaneously — structural validation and barrier sizing read
 * only the sparse sync columns instead of re-walking the trace. The hot
 * per-line and per-PC state lives in open-addressing tables instead of
 * std::unordered_map. The original multi-pass AoS implementation is kept
 * as profileWorkloadLegacy() (profiler_legacy.cc) and the two are
 * bit-identical by test.
 *
 * The output is a WorkloadProfile: only microarchitecture-independent
 * statistics, collected once, usable to predict any MulticoreConfig.
 */

#ifndef RPPM_PROFILE_PROFILER_HH
#define RPPM_PROFILE_PROFILER_HH

#include <cstdint>
#include <string>

#include "profile/epoch_profile.hh"
#include "trace/columnar.hh"
#include "trace/trace.hh"

namespace rppm {

/** Profiler tunables (sampling policy, not workload characteristics). */
struct ProfilerOptions
{
    /** Micro-trace length in micro-ops (paper: one thousand). */
    uint32_t microTraceLength = 1000;

    /** Micro-ops between micro-trace samples within an epoch. The paper
     *  samples once per million; we default to a denser 1-in-10 so the
     *  epoch-start sample (which over-represents cold misses) carries
     *  less weight on the short epochs of the synthetic suite. */
    uint64_t microTraceInterval = 10000;

    /** Round-robin scheduling quantum in trace records. */
    uint32_t quantum = 64;

    /** Cache line size assumed when mapping addresses to lines (bytes).
     *  Reuse distances are measured in line-granular accesses; all
     *  configurations in this repository share 64-byte lines. */
    uint32_t lineBytes = 64;

    /** Record write invalidations as infinite per-thread reuse distances
     *  (the paper's coherence modeling). Disable only for ablation
     *  studies. */
    bool detectInvalidation = true;

    /**
     * Worker threads for the profile itself (1 = the single-threaded
     * fused sweep, 0 = all hardware threads, n = the epoch-sharded
     * parallel engine on n workers). Pure execution policy: the profile
     * is bit-identical for every value, so this knob is deliberately
     * excluded from profilerOptionsKey() and thus from ProfileCache
     * keys — a cached profile serves every job count.
     */
    unsigned jobs = 1;

    /**
     * Records per streaming chunk for the out-of-core engine (0 = do not
     * stream; profileWorkload() picks fused/parallel as usual). Like
     * jobs, pure execution policy — the streaming engine is bit-identical
     * to the fused sweep at every chunk size, so this knob too stays out
     * of profilerOptionsKey() and ProfileCache keys.
     */
    uint64_t streamChunkRecords = 0;
};

/** Default chunk size when an entry point wants streaming but the caller
 *  left streamChunkRecords at 0 (~4M records ≈ 32 MiB of dense columns
 *  per in-flight chunk per thread). */
constexpr uint64_t kDefaultStreamChunkRecords = uint64_t{1} << 22;

/** Profile @p trace once; the result predicts any architecture. This is
 *  the hot path of every Study grid: opts.jobs == 1 runs the fused
 *  single-pass sweep, any other value the parallel engine — the output
 *  is bit-identical either way. */
WorkloadProfile profileWorkload(const ColumnarTrace &trace,
                                const ProfilerOptions &opts = {});

/** The fused single-threaded sweep, callable directly (differential
 *  tests, and the speedup baseline of the parallel engine). */
WorkloadProfile profileWorkloadFused(const ColumnarTrace &trace,
                                     const ProfilerOptions &opts = {});

/**
 * The parallel epoch-sharded profiler, callable directly regardless of
 * opts.jobs (opts.jobs selects the worker count; even jobs == 1 runs
 * the sharded engine serially, which the differential tests exploit).
 *
 * Decomposition (profiler_parallel.cc): a cheap sequential replay of
 * the round-robin schedule over the sparse sync columns pins down the
 * exact global interleaving; the interleaved reuse/coherence resolution
 * is sharded by line hash across the worker pool (per-shard LineTables,
 * shared write-timestamp semantics preserved exactly); and the
 * per-thread statistics sweep — instruction mix, dependence and
 * instruction-reuse distances, branch entropy, micro-trace sampling —
 * fans out one thread per worker, consuming the pre-resolved reuse
 * distances. Bit-identical to profileWorkloadFused() by construction
 * and by test.
 */
WorkloadProfile profileWorkloadParallel(const ColumnarTrace &trace,
                                        const ProfilerOptions &opts = {});

/**
 * The chunked streaming profiler over an in-memory columnar trace,
 * callable directly regardless of opts.streamChunkRecords (0 falls back
 * to kDefaultStreamChunkRecords). Processes each thread's records in
 * fixed-size chunks through the same phase decomposition as the parallel
 * engine — per-chunk bucketing overlaps with shard resolution of the
 * previous chunk, and the statistics sweep consumes chunk-local reuse
 * arrays from a carried cursor — so peak scratch memory is bounded by
 * the chunk size instead of the trace size. Bit-identical to
 * profileWorkloadFused() by construction and by test.
 */
WorkloadProfile profileWorkloadStreaming(const ColumnarTrace &trace,
                                         const ProfilerOptions &opts = {});

/**
 * The out-of-core entry point: streams an RPPMTRC container straight
 * from disk without ever materializing whole columns. Only the sparse
 * sync columns are resident; dense column data is read through small
 * per-chunk mapped windows, so peak RSS is O(chunk × threads), not
 * O(file). Profiles traces larger than physical memory.
 */
WorkloadProfile profileWorkloadStreamingFile(const std::string &path,
                                             const ProfilerOptions &opts = {});

/** AoS convenience overload: converts to columnar form, then profiles. */
WorkloadProfile profileWorkload(const WorkloadTrace &trace,
                                const ProfilerOptions &opts = {});

/**
 * Reference implementation: the original multi-pass AoS profiler, kept
 * for equivalence testing and as the bench/perf speedup baseline.
 * Produces a profile bit-identical to profileWorkload().
 */
WorkloadProfile profileWorkloadLegacy(const WorkloadTrace &trace,
                                      const ProfilerOptions &opts = {});

} // namespace rppm

#endif // RPPM_PROFILE_PROFILER_HH

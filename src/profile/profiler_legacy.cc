/**
 * @file
 * Reference profiler: the original multi-pass AoS implementation.
 *
 * Kept verbatim as the correctness oracle for the fused columnar
 * profiler (profiler.cc): tests assert that both produce bit-identical
 * profiles, and bench/perf reports the fused profiler's speedup against
 * this implementation. It walks the AoS trace three times (validate,
 * barrier populations, replay) and keeps its hot state in
 * std::unordered_map.
 */

#include "profile/profiler.hh"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/assert.hh"
#include "sim/sync_state.hh"

namespace rppm {

namespace {

/** Per-line reuse / coherence tracking state. */
struct LineState
{
    uint64_t lastGlobalSeq = 0;     ///< last access by any thread (1-based)
    uint64_t lastWriteSeq = 0;      ///< last write by any thread (1-based)
    uint32_t lastWriter = UINT32_MAX;
    /** Per-thread: (local access counter, global seq) of the thread's
     *  most recent access to this line; 0 = never accessed. */
    std::vector<std::pair<uint64_t, uint64_t>> perThread;
};

/** Per-thread profiling cursor and scratch state. */
struct ThreadState
{
    size_t next = 0;               ///< next record index in the trace
    bool done = false;
    uint64_t localDataSeq = 0;     ///< this thread's data access counter
    uint64_t instrSeq = 0;         ///< this thread's fetch counter
    uint64_t opsInEpoch = 0;
    uint64_t opsSinceLastLoad = 0;
    uint64_t nextMicroTraceAt = 0; ///< op index (in epoch) of next sample
    uint64_t microTraceRemaining = 0;
    /** Ring of recent op classes for load->load dependence detection. */
    std::vector<OpClass> recentOps;
    uint64_t emitted = 0;
    std::unordered_map<uint64_t, uint64_t> instrLast; ///< pc line -> seq
};

} // namespace

WorkloadProfile
profileWorkloadLegacy(const WorkloadTrace &trace, const ProfilerOptions &opts)
{
    trace.validate();
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());

    WorkloadProfile profile;
    profile.name = trace.name;
    profile.numThreads = num_threads;
    profile.threads.resize(num_threads);
    profile.barrierPopulation = barrierPopulations(trace);

    // Functional synchronization replay: "time" is the global record
    // step counter, only used to order wakeups.
    SyncState sync(num_threads, profile.barrierPopulation);

    std::vector<ThreadState> state(num_threads);
    constexpr size_t kRecentOps = 512;
    for (auto &ts : state) {
        ts.recentOps.assign(kRecentOps, OpClass::IntAlu);
        ts.nextMicroTraceAt = 0; // sample at every epoch start
    }
    for (uint32_t t = 0; t < num_threads; ++t) {
        profile.threads[t].epochs.emplace_back();
    }

    std::unordered_map<uint64_t, LineState> lines;
    uint64_t global_seq = 0;
    uint64_t step = 0;

    // Condvar classification bookkeeping: which threads wait at / release
    // each condvar-backed object (recognition rule of paper Sec. III-B).
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_waiters;
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_releasers;

    auto close_epoch = [&](uint32_t tid, SyncType type, uint32_t arg) {
        ThreadProfile &tp = profile.threads[tid];
        tp.epochs.back().endType = type;
        tp.epochs.back().endArg = arg;
        tp.epochs.emplace_back();
        ThreadState &ts = state[tid];
        ts.opsInEpoch = 0;
        ts.nextMicroTraceAt = 0;
        ts.microTraceRemaining = 0;
    };

    auto process_op = [&](uint32_t tid, const TraceRecord &rec) {
        ThreadState &ts = state[tid];
        EpochProfile &ep = profile.threads[tid].epochs.back();

        // Micro-trace sampling policy: a snippet at each epoch start and
        // then one every microTraceInterval ops.
        if (ts.microTraceRemaining == 0 &&
            ts.opsInEpoch >= ts.nextMicroTraceAt) {
            ep.microTraces.emplace_back();
            ts.microTraceRemaining = opts.microTraceLength;
            ts.nextMicroTraceAt = ts.opsInEpoch + opts.microTraceInterval;
        }

        ++ep.numOps;
        ++ep.mix[static_cast<size_t>(rec.op)];
        if (rec.dep1)
            ep.depDist.add(rec.dep1);
        if (rec.dep2)
            ep.depDist.add(rec.dep2);

        // Instruction-stream reuse distance at line granularity.
        const uint64_t pc_line = rec.pc / opts.lineBytes;
        ++ts.instrSeq;
        auto [it, inserted] = ts.instrLast.try_emplace(pc_line, 0);
        if (!inserted) {
            ep.instrRd.add(ts.instrSeq - it->second - 1);
        } else {
            ep.instrRd.add(LogHistogram::kInfinity);
        }
        it->second = ts.instrSeq;

        uint64_t local_rd = LogHistogram::kInfinity;
        uint64_t global_rd = LogHistogram::kInfinity;

        if (rec.isMem()) {
            const uint64_t line = rec.addr / opts.lineBytes;
            const bool is_store = rec.op == OpClass::Store;
            ++global_seq;
            ++ts.localDataSeq;

            LineState &ls = lines[line];
            if (ls.perThread.empty())
                ls.perThread.assign(num_threads, {0, 0});

            // Global (interleaved) reuse distance: accesses by anyone
            // since the line was last touched by anyone.
            if (ls.lastGlobalSeq != 0)
                global_rd = global_seq - ls.lastGlobalSeq - 1;

            // Per-thread reuse distance with write-invalidation: if any
            // other thread wrote the line since our last access, the
            // reuse is broken — record an infinite distance (coherence
            // miss), as in the paper's StatStack extension.
            auto &[my_count, my_seq] = ls.perThread[tid];
            if (my_count != 0) {
                const bool invalidated = opts.detectInvalidation &&
                    ls.lastWriteSeq > my_seq && ls.lastWriter != tid;
                if (!invalidated)
                    local_rd = ts.localDataSeq - my_count - 1;
            }

            ep.localRd.add(local_rd);
            ep.globalRd.add(global_rd);
            if (!is_store) {
                ep.loadLocalRd.add(local_rd);
                ep.loadGlobalRd.add(global_rd);
            }

            my_count = ts.localDataSeq;
            my_seq = global_seq;
            ls.lastGlobalSeq = global_seq;
            if (is_store) {
                ls.lastWriteSeq = global_seq;
                ls.lastWriter = tid;
            }

            if (is_store) {
                ++ep.numStores;
            } else {
                ++ep.numLoads;
                ep.loadGap.add(ts.opsSinceLastLoad);
                ts.opsSinceLastLoad = 0;
                // Pointer-chase detection: does a source operand name a
                // load among the recent ops?
                auto dep_is_load = [&](uint16_t dep) {
                    if (dep == 0 || dep > ts.emitted || dep >= kRecentOps)
                        return false;
                    return ts.recentOps[(ts.emitted - dep) % kRecentOps] ==
                        OpClass::Load;
                };
                if (dep_is_load(rec.dep1) || dep_is_load(rec.dep2))
                    ++ep.loadsDependingOnLoad;
            }
        }

        if (rec.isBranch()) {
            ++ep.numBranches;
            ep.branches.record(rec.pc, rec.taken);
        }

        if (ts.microTraceRemaining > 0) {
            MicroTraceOp mop;
            mop.op = rec.op;
            mop.dep1 = rec.dep1;
            mop.dep2 = rec.dep2;
            mop.localRd = local_rd;
            mop.globalRd = global_rd;
            ep.microTraces.back().ops.push_back(mop);
            --ts.microTraceRemaining;
        }

        ts.recentOps[ts.emitted % kRecentOps] = rec.op;
        ++ts.emitted;
        ++ts.opsInEpoch;
        if (!rec.isMem() || rec.op == OpClass::Store)
            ++ts.opsSinceLastLoad;
    };

    auto process_sync = [&](uint32_t tid, const TraceRecord &rec) -> bool {
        // Returns true when the thread blocks.
        switch (rec.sync) {
          case SyncType::MutexLock:
            ++profile.syncCounts.criticalSections;
            break;
          case SyncType::BarrierWait:
            ++profile.syncCounts.barriers;
            break;
          case SyncType::CondBarrier:
            ++profile.syncCounts.condVars;
            cond_waiters[rec.syncArg].insert(tid);
            cond_releasers[rec.syncArg].insert(tid);
            break;
          case SyncType::QueuePop:
            ++profile.syncCounts.condVars;
            cond_waiters[rec.syncArg].insert(tid);
            break;
          case SyncType::QueuePush:
            ++profile.syncCounts.condVars;
            cond_releasers[rec.syncArg].insert(tid);
            break;
          default:
            break;
        }

        if (rec.sync == SyncType::CondMarker) {
            // Source marker: the thread *could* wait here. Recorded for
            // classification; does not delineate an epoch.
            cond_waiters[rec.syncArg];
            return false;
        }

        const SyncOutcome out =
            sync.apply(tid, rec, static_cast<double>(step));
        close_epoch(tid, rec.sync, rec.syncArg);
        return out.blocks;
    };

    // Round-robin functional replay.
    uint32_t live = num_threads;
    uint32_t cursor = 0;
    while (live > 0) {
        // Find the next runnable thread in round-robin order.
        uint32_t pick = UINT32_MAX;
        for (uint32_t i = 0; i < num_threads; ++i) {
            const uint32_t t = (cursor + i) % num_threads;
            if (!state[t].done && !sync.blocked(t)) {
                pick = t;
                break;
            }
        }
        RPPM_REQUIRE(pick != UINT32_MAX,
                     "deadlock during profiling (malformed trace)");
        cursor = (pick + 1) % num_threads;

        ThreadState &ts = state[pick];
        const auto &records = trace.threads[pick].records;
        uint32_t executed = 0;
        while (ts.next < records.size() && executed < opts.quantum) {
            const TraceRecord &rec = records[ts.next];
            ++ts.next;
            ++step;
            ++executed;
            if (rec.isSync()) {
                if (process_sync(pick, rec))
                    break;
            } else {
                process_op(pick, rec);
            }
        }
        if (ts.next >= records.size() && !ts.done) {
            ts.done = true;
            --live;
            sync.finish(pick, static_cast<double>(step));
        }
    }

    // Classify condvar-backed objects: symmetric waiter/releaser sets
    // mean a barrier; disjoint sets mean producer-consumer.
    // rppm-lint: ordered-ok(distinct condVarClasses key per id)
    for (const auto &[id, waiters] : cond_waiters) {
        const auto rel_it = cond_releasers.find(id);
        std::set<uint32_t> releasers =
            rel_it == cond_releasers.end() ? std::set<uint32_t>{} :
            rel_it->second;
        const bool symmetric = !waiters.empty() && waiters == releasers;
        profile.condVarClasses[id] = symmetric ?
            CondVarClass::BarrierLike : CondVarClass::ProducerConsumer;
    }

    return profile;
}

} // namespace rppm

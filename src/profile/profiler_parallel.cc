/**
 * @file
 * Parallel epoch-sharded profiler — bit-identical to the fused sweep.
 *
 * profileWorkload()'s fused single-pass sweep (profiler.cc) is
 * inherently sequential: the multi-threaded StatStack extension orders
 * every memory access of every thread on one global sequence counter,
 * and coherence invalidation compares per-line write timestamps across
 * threads. This engine reproduces exactly the same profile — the same
 * bits, for every job count — by decomposing the sweep into phases
 * whose parallel grains are independent by construction:
 *
 *  A. Index     (parallel, one task per thread) Per-thread prefix
 *               counts of memory records, so any record range can be
 *               converted to a memory-access count in O(1).
 *  B. Schedule  (sequential, cheap) The pausable replay of the
 *               round-robin quantum scheduler over the *sparse sync
 *               columns only* (profile/schedule_replay.hh, shared with
 *               the streaming engine): it runs the same SyncState
 *               machine as the fused sweep but skips all per-record
 *               statistics, so it costs O(#runs + #sync) instead of
 *               O(#records). Its output is the exact global
 *               interleaving: for every run of micro-ops it executed,
 *               the global-sequence number its first memory access will
 *               receive.
 *  C. Emit      (parallel, one task per thread) Each thread converts
 *               its runs into a stream of (line, global seq, ordinal)
 *               access entries, bucketed by line-hash shard. A line
 *               lives in exactly one shard, so the per-line reuse and
 *               write-timestamp state of different shards never
 *               interacts.
 *  D. Resolve   (parallel, one task per shard) Each shard merges its
 *               per-thread entry lists by global sequence number — a
 *               deterministic interleaving identical to the schedule's —
 *               and walks them through a shard-local LineTable, the same
 *               table the fused sweep uses globally. This resolves, per
 *               access: the interleaved (global) reuse distance, and the
 *               per-thread reuse distance including the coherence rule
 *               ("another thread wrote the line since my last access"
 *               => infinite distance), using the shared write-timestamp
 *               ordering the global sequence numbers encode. Results
 *               scatter into per-thread arrays indexed by access
 *               ordinal — every slot is written exactly once, so shards
 *               need no locks.
 *  E. Sweep     (parallel, one task per *segment*) The per-thread
 *               statistics pass of the fused sweep — instruction mix,
 *               dependence distances, instruction-stream reuse, branch
 *               entropy, load gaps, pointer-chase detection, micro-trace
 *               sampling, epoch delimitation — which only reads thread-
 *               local state plus the pre-resolved reuse arrays from D.
 *               The loop itself is the shared sweep template
 *               (profile/stat_sweep.hh), instantiated here with an
 *               array-reader reuse-distance provider. To scale past the
 *               workload's thread count (most suite kernels have 2-4
 *               threads), each thread's record range splits into up to
 *               4 x jobs segments: a cheap cursor dry-run pins the exact
 *               sweep state at each boundary, the segments sweep
 *               concurrently, and a sequential per-thread stitch
 *               resolves cross-segment instruction reuse and open
 *               micro-trace windows exactly (stat_sweep.hh).
 *  F. Classify  (sequential, cheap) Synchronization counts and condvar
 *               classification from the sync columns; both are
 *               order-independent aggregates (classifySyncProfile,
 *               shared with the other engines).
 *
 * Nothing here is sampled or approximated: phase B pins down the exact
 * interleaving the fused sweep would have produced, and phases C-E are
 * refactorings of the fused loops around it. tests/test_profile_parallel
 * asserts byte-identical serialized profiles against the fused engine on
 * the whole workload suite for several job counts.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hh"
#include "common/hash.hh"
#include "common/parallel.hh"
#include "profile/profiler.hh"
#include "profile/reuse_tables.hh"
#include "profile/schedule_replay.hh"
#include "profile/stat_sweep.hh"
#include "trace/columnar.hh"

namespace rppm {

namespace {

/** One scheduled run of micro-ops: records [start, end) of one thread,
 *  whose memory accesses receive global sequence numbers gseqBase+1.. */
struct Run
{
    uint64_t start;
    uint64_t end;
    uint64_t gseqBase;
};

/** One memory access routed to a line-hash shard. */
struct AccessEntry
{
    uint64_t line;
    uint64_t gseq;    ///< global sequence number (from the schedule)
    uint32_t ordinal; ///< index into the thread's sparse addr column
    uint32_t isStore;
};

/** Records below which a thread's range is not worth splitting: the
 *  boundary dry-run and stitch are O(range) and O(touched lines), so
 *  tiny segments would be all overhead. */
constexpr size_t kMinSegmentRecords = 4096;

/** One phase-E work item: records [lo, hi) of thread tid, entered with
 *  the exact sweep cursor the sequential sweep would hold at lo. */
struct Segment
{
    uint32_t tid;
    size_t lo;
    size_t hi;
    SweepState entry;
};

} // namespace

WorkloadProfile
profileWorkloadParallel(const ColumnarTrace &trace,
                        const ProfilerOptions &opts)
{
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());
    const ParallelExecutor pool(opts.jobs);

    WorkloadProfile profile;
    profile.name = trace.name;
    profile.numThreads = num_threads;
    profile.threads.resize(num_threads);
    trace.validateColumnConsistency();
    profile.barrierPopulation = trace.validateAndBarrierPopulations();

    // --- Phase A: per-thread memory prefix counts (parallel).
    std::vector<std::vector<uint32_t>> memPrefix(num_threads);
    pool.forEach(num_threads, [&](size_t t) {
        const ThreadColumns &cols = trace.threads[t];
        RPPM_REQUIRE(cols.addr.size() < UINT32_MAX,
                     "trace thread exceeds 2^32 memory accesses");
        std::vector<uint32_t> &prefix = memPrefix[t];
        prefix.resize(cols.numRecords() + 1);
        uint32_t count = 0;
        for (size_t i = 0; i < cols.numRecords(); ++i) {
            prefix[i] = count;
            if (isMemory(cols.op[i]))
                ++count;
        }
        prefix[cols.numRecords()] = count;
    });

    // --- Phase B: schedule replay (sequential, O(#runs + #sync)).
    std::vector<SyncView> sync_views;
    sync_views.reserve(num_threads);
    for (const ThreadColumns &cols : trace.threads)
        sync_views.push_back(syncView(cols));

    std::vector<std::vector<Run>> runs(num_threads);
    ScheduleReplayer replayer(opts, sync_views, profile.barrierPopulation);
    replayer.advance(
        [&](uint32_t t, size_t lo, size_t hi) -> uint64_t {
            return memPrefix[t][hi] - memPrefix[t][lo];
        },
        [&](uint32_t t, size_t lo, size_t hi, uint64_t gseqBase,
            uint64_t mem) {
            if (mem > 0)
                runs[t].push_back(Run{lo, hi, gseqBase});
        },
        [] { return false; });

    // --- Phase C: emit shard-bucketed access streams (parallel).
    // Shards partition the line space by the *high* bits of the same
    // mix64 hash the LineTable probes with its low bits, so shard
    // assignment and in-shard probing stay uncorrelated. The shard count
    // is pure execution policy — every count yields the same profile.
    unsigned shardBits = 3;
    while ((1u << shardBits) < std::min(64u, pool.jobs() * 4))
        ++shardBits;
    const size_t numShards = size_t{1} << shardBits;

    std::vector<std::vector<std::vector<AccessEntry>>> buckets(num_threads);
    pool.forEach(num_threads, [&](size_t t) {
        const ThreadColumns &cols = trace.threads[t];
        auto &mine = buckets[t];
        mine.resize(numShards);
        const size_t expect = cols.addr.size() / numShards + 16;
        for (auto &bucket : mine)
            bucket.reserve(expect);
        for (const Run &run : runs[t]) {
            uint32_t j = memPrefix[t][run.start];
            uint64_t gseq = run.gseqBase;
            for (size_t i = run.start; i < run.end; ++i) {
                const OpClass op = cols.op[i];
                if (!isMemory(op))
                    continue;
                const uint64_t line = cols.addr[j] / opts.lineBytes;
                const size_t shard = static_cast<size_t>(
                    mix64(line + 1) >> (64 - shardBits));
                mine[shard].push_back(AccessEntry{
                    line, ++gseq, j, op == OpClass::Store});
                ++j;
            }
        }
    });

    // --- Phase D: per-shard interleaved reuse resolution (parallel).
    std::vector<std::vector<uint64_t>> localRd(num_threads);
    std::vector<std::vector<uint64_t>> globalRd(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
        localRd[t].resize(trace.threads[t].addr.size());
        globalRd[t].resize(trace.threads[t].addr.size());
    }
    pool.forEach(numShards, [&](size_t s) {
        uint64_t shard_accesses = 0;
        for (uint32_t t = 0; t < num_threads; ++t)
            shard_accesses += buckets[t][s].size();
        if (shard_accesses == 0)
            return;
        LineTable lines(num_threads, shard_accesses);

        // Deterministic merge of the per-thread entry lists by global
        // sequence number (each list is already ascending; gseq values
        // are globally unique). This is exactly the order in which the
        // fused sweep touched these lines.
        std::vector<size_t> at(num_threads, 0);
        for (uint64_t n = 0; n < shard_accesses; ++n) {
            uint32_t tid = UINT32_MAX;
            uint64_t best = UINT64_MAX;
            for (uint32_t t = 0; t < num_threads; ++t) {
                if (at[t] < buckets[t][s].size() &&
                    buckets[t][s][at[t]].gseq < best) {
                    best = buckets[t][s][at[t]].gseq;
                    tid = t;
                }
            }
            const AccessEntry &e = buckets[tid][s][at[tid]++];

            const size_t slot = lines.slot(e.line);
            LineTable::Meta &meta = lines.meta(slot);
            LineTable::PerThread &mine = lines.perThread(slot, tid);

            uint64_t local = LogHistogram::kInfinity;
            uint64_t global = LogHistogram::kInfinity;
            if (meta.lastGlobalSeq != 0)
                global = e.gseq - meta.lastGlobalSeq - 1;
            if (mine.count != 0) {
                const bool invalidated = opts.detectInvalidation &&
                    meta.lastWriteSeq > mine.seq &&
                    meta.lastWriter != tid;
                if (!invalidated) {
                    // The thread's data-access counter at any access is
                    // ordinal+1, so the fused sweep's
                    // localDataSeq - count - 1 is this difference.
                    local = e.ordinal - (mine.count - 1) - 1;
                }
            }
            localRd[tid][e.ordinal] = local;
            globalRd[tid][e.ordinal] = global;

            mine.count = static_cast<uint64_t>(e.ordinal) + 1;
            mine.seq = e.gseq;
            meta.lastGlobalSeq = e.gseq;
            if (e.isStore) {
                meta.lastWriteSeq = e.gseq;
                meta.lastWriter = tid;
            }
        }
    });
    buckets.clear();
    buckets.shrink_to_fit();

    // --- Phase E: segmented statistics sweep (parallel, one task per
    //     segment). Boundary cursors first: a dry-run of the sweep's
    //     cursor arithmetic (1-byte op column reads, no statistics) per
    //     thread, snapshotting the exact SweepState at each segment
    //     edge so segments are independent by construction.
    std::vector<Segment> segments;
    std::vector<std::vector<size_t>> segOfThread(num_threads);
    {
        std::vector<std::vector<Segment>> perThread(num_threads);
        pool.forEach(num_threads, [&](size_t t) {
            const ThreadColumns &cols = trace.threads[t];
            const size_t n = cols.numRecords();
            size_t numSegs = 1;
            if (pool.jobs() > 1 && n >= 2 * kMinSegmentRecords) {
                numSegs = std::min<size_t>(size_t{4} * pool.jobs(),
                                           n / kMinSegmentRecords);
            }
            SweepState st;
            for (size_t s = 0; s < numSegs; ++s) {
                const size_t lo = n * s / numSegs;
                const size_t hi = n * (s + 1) / numSegs;
                perThread[t].push_back(
                    Segment{static_cast<uint32_t>(t), lo, hi, st});
                if (s + 1 < numSegs) {
                    advanceSweepCursor(cols, sync_views[t], opts, st, lo,
                                       hi);
                }
            }
        });
        for (uint32_t t = 0; t < num_threads; ++t) {
            for (Segment &sg : perThread[t]) {
                segOfThread[t].push_back(segments.size());
                segments.push_back(std::move(sg));
            }
        }
    }

    std::vector<SegmentSweep> sweeps(segments.size());
    pool.forEach(segments.size(), [&](size_t i) {
        const Segment &sg = segments[i];
        const ThreadColumns &cols = trace.threads[sg.tid];
        auto rd = [&](size_t memIdx,
                      bool) -> std::pair<uint64_t, uint64_t> {
            return {localRd[sg.tid][memIdx], globalRd[sg.tid][memIdx]};
        };
        sweeps[i] = runSweepSegment(cols, sync_views[sg.tid], opts,
                                    sg.entry, rd, sg.lo, sg.hi);
    });

    // Stitch sequentially per thread (threads stitch concurrently):
    // resolves cross-segment instruction reuse against the thread's
    // carried line map and splices partial epochs.
    pool.forEach(num_threads, [&](size_t t) {
        InstrLineMap carried;
        for (const size_t i : segOfThread[t]) {
            stitchSweepSegment(profile.threads[t], carried,
                               std::move(sweeps[i]));
        }
    });

    // --- Phase F: synchronization aggregates (order-independent).
    classifySyncProfile(profile, sync_views);

    return profile;
}

} // namespace rppm

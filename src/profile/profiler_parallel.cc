/**
 * @file
 * Parallel epoch-sharded profiler — bit-identical to the fused sweep.
 *
 * profileWorkload()'s fused single-pass sweep (profiler.cc) is
 * inherently sequential: the multi-threaded StatStack extension orders
 * every memory access of every thread on one global sequence counter,
 * and coherence invalidation compares per-line write timestamps across
 * threads. This engine reproduces exactly the same profile — the same
 * bits, for every job count — by decomposing the sweep into phases
 * whose parallel grains are independent by construction:
 *
 *  A. Index     (parallel, one task per thread) Per-thread prefix
 *               counts of memory records, so any record range can be
 *               converted to a memory-access count in O(1).
 *  B. Schedule  (sequential, cheap) A replay of the round-robin quantum
 *               scheduler over the *sparse sync columns only*: it runs
 *               the same SyncState machine as the fused sweep but skips
 *               all per-record statistics, so it costs O(#runs + #sync)
 *               instead of O(#records). Its output is the exact global
 *               interleaving: for every run of micro-ops it executed,
 *               the global-sequence number its first memory access will
 *               receive.
 *  C. Emit      (parallel, one task per thread) Each thread converts
 *               its runs into a stream of (line, global seq, ordinal)
 *               access entries, bucketed by line-hash shard. A line
 *               lives in exactly one shard, so the per-line reuse and
 *               write-timestamp state of different shards never
 *               interacts.
 *  D. Resolve   (parallel, one task per shard) Each shard merges its
 *               per-thread entry lists by global sequence number — a
 *               deterministic interleaving identical to the schedule's —
 *               and walks them through a shard-local LineTable, the same
 *               table the fused sweep uses globally. This resolves, per
 *               access: the interleaved (global) reuse distance, and the
 *               per-thread reuse distance including the coherence rule
 *               ("another thread wrote the line since my last access"
 *               => infinite distance), using the shared write-timestamp
 *               ordering the global sequence numbers encode. Results
 *               scatter into per-thread arrays indexed by access
 *               ordinal — every slot is written exactly once, so shards
 *               need no locks.
 *  E. Sweep     (parallel, one task per thread) The full per-thread
 *               statistics pass of the fused sweep — instruction mix,
 *               dependence distances, instruction-stream reuse, branch
 *               entropy, load gaps, pointer-chase detection, micro-trace
 *               sampling, epoch delimitation — which only reads thread-
 *               local state plus the pre-resolved reuse arrays from D.
 *  F. Classify  (sequential, cheap) Synchronization counts and condvar
 *               classification from the sync columns; both are
 *               order-independent aggregates.
 *
 * Nothing here is sampled or approximated: phase B pins down the exact
 * interleaving the fused sweep would have produced, and phases C-E are
 * refactorings of the fused loops around it. tests/test_profile_parallel
 * asserts byte-identical serialized profiles against the fused engine on
 * the whole workload suite for several job counts.
 */

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/assert.hh"
#include "common/hash.hh"
#include "common/parallel.hh"
#include "profile/profiler.hh"
#include "profile/reuse_tables.hh"
#include "sim/sync_state.hh"
#include "trace/columnar.hh"

namespace rppm {

namespace {

/** One scheduled run of micro-ops: records [start, end) of one thread,
 *  whose memory accesses receive global sequence numbers gseqBase+1.. */
struct Run
{
    uint64_t start;
    uint64_t end;
    uint64_t gseqBase;
};

/** One memory access routed to a line-hash shard. */
struct AccessEntry
{
    uint64_t line;
    uint64_t gseq;    ///< global sequence number (from the schedule)
    uint32_t ordinal; ///< index into the thread's sparse addr column
    uint32_t isStore;
};

/** Per-thread state of the statistics sweep (phase E). */
struct SweepState
{
    size_t memIdx = 0;
    size_t brIdx = 0;
    uint64_t instrSeq = 0;
    uint64_t opsInEpoch = 0;
    uint64_t opsSinceLastLoad = 0;
    uint64_t nextMicroTraceAt = 0;
    uint64_t microTraceRemaining = 0;
    std::vector<OpClass> recentOps;
    uint64_t emitted = 0;
    InstrLineMap instrLast;
};

/**
 * Phase B: replay the fused sweep's round-robin quantum scheduler using
 * only the sync columns and the phase-A memory prefix counts. The loop
 * structure mirrors profileWorkloadFused() exactly — same quantum
 * accounting, same step clock driving SyncState, same deadlock check —
 * minus all per-record work.
 */
std::vector<std::vector<Run>>
replaySchedule(const ColumnarTrace &trace, const ProfilerOptions &opts,
               const std::vector<std::vector<uint32_t>> &memPrefix,
               const std::unordered_map<uint32_t, uint32_t> &barriers)
{
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());
    SyncState sync(num_threads, barriers);

    struct Cursor
    {
        size_t next = 0;
        size_t syncIdx = 0;
        bool done = false;
    };
    std::vector<Cursor> cur(num_threads);
    std::vector<std::vector<Run>> runs(num_threads);

    uint64_t global_seq = 0;
    uint64_t step = 0;
    uint32_t live = num_threads;
    uint32_t cursor = 0;
    while (live > 0) {
        uint32_t pick = UINT32_MAX;
        for (uint32_t i = 0; i < num_threads; ++i) {
            const uint32_t t = (cursor + i) % num_threads;
            if (!cur[t].done && !sync.blocked(t)) {
                pick = t;
                break;
            }
        }
        RPPM_REQUIRE(pick != UINT32_MAX,
                     "deadlock during profiling (malformed trace)");
        cursor = (pick + 1) % num_threads;

        Cursor &ts = cur[pick];
        const ThreadColumns &cols = trace.threads[pick];
        const size_t num_records = cols.numRecords();
        uint32_t executed = 0;
        while (ts.next < num_records && executed < opts.quantum) {
            const size_t next_sync = ts.syncIdx < cols.syncPos.size() ?
                static_cast<size_t>(cols.syncPos[ts.syncIdx]) : num_records;
            if (ts.next == next_sync) {
                const SyncType type = cols.syncType[ts.syncIdx];
                const uint32_t arg = cols.syncArg[ts.syncIdx];
                ++ts.syncIdx;
                ++ts.next;
                ++step;
                ++executed;
                // Source markers never reach SyncState (and never block)
                // in the fused sweep; everything else does.
                if (type == SyncType::CondMarker)
                    continue;
                TraceRecord rec;
                rec.sync = type;
                rec.syncArg = arg;
                const SyncOutcome out =
                    sync.apply(pick, rec, static_cast<double>(step));
                if (out.blocks)
                    break;
                continue;
            }
            const size_t run_end = std::min(
                next_sync, ts.next + (opts.quantum - executed));
            const size_t run = run_end - ts.next;
            const uint64_t mem = memPrefix[pick][run_end] -
                                 memPrefix[pick][ts.next];
            if (mem > 0) {
                runs[pick].push_back(Run{ts.next, run_end, global_seq});
                global_seq += mem;
            }
            ts.next = run_end;
            step += run;
            executed += static_cast<uint32_t>(run);
        }
        if (ts.next >= num_records && !ts.done) {
            ts.done = true;
            --live;
            sync.finish(pick, static_cast<double>(step));
        }
    }
    return runs;
}

/**
 * Phase E worker: the fused sweep's per-thread statistics, reading the
 * pre-resolved reuse distances instead of probing a global LineTable.
 * Field-for-field identical to profileWorkloadFused()'s process_run /
 * close_epoch pair restricted to one thread.
 */
void
sweepThread(const ThreadColumns &cols, const ProfilerOptions &opts,
            const std::vector<uint64_t> &localRd,
            const std::vector<uint64_t> &globalRd, ThreadProfile &tp)
{
    constexpr size_t kRecentOps = 512;
    SweepState ts;
    ts.recentOps.assign(kRecentOps, OpClass::IntAlu);
    tp.epochs.emplace_back();

    auto process_run = [&](EpochProfile &ep, size_t start, size_t end) {
        // --- Instruction mix (op column only).
        {
            std::array<uint64_t, kNumOpClasses> mix_local{};
            for (size_t i = start; i < end; ++i)
                ++mix_local[static_cast<size_t>(cols.op[i])];
            for (size_t c = 0; c < kNumOpClasses; ++c)
                ep.mix[c] += mix_local[c];
            ep.numOps += end - start;
        }

        // --- Dependence distances and instruction-stream reuse.
        for (size_t i = start; i < end; ++i) {
            if (cols.dep1[i])
                ep.depDist.add(cols.dep1[i]);
            if (cols.dep2[i])
                ep.depDist.add(cols.dep2[i]);

            const uint64_t pc_line = cols.pc[i] / opts.lineBytes;
            ++ts.instrSeq;
            bool inserted = false;
            uint64_t &last_fetch = ts.instrLast.lookup(pc_line, inserted);
            if (!inserted) {
                ep.instrRd.add(ts.instrSeq - last_fetch - 1);
            } else {
                ep.instrRd.add(LogHistogram::kInfinity);
            }
            last_fetch = ts.instrSeq;
        }

        // --- Stateful sweep: sampling windows, memory statistics (from
        //     the resolved arrays), branches, MLP statistics.
        auto stateful = [&](auto sampling_tag, size_t s_begin,
                            size_t s_end) {
            constexpr bool kSampling = decltype(sampling_tag)::value;
        for (size_t i = s_begin; i < s_end; ++i) {
            const OpClass op = cols.op[i];

            if (kSampling && ts.microTraceRemaining == 0 &&
                ts.opsInEpoch >= ts.nextMicroTraceAt) {
                ep.microTraces.emplace_back();
                ts.microTraceRemaining = opts.microTraceLength;
                ts.nextMicroTraceAt =
                    ts.opsInEpoch + opts.microTraceInterval;
            }

            uint64_t local_rd = LogHistogram::kInfinity;
            uint64_t global_rd = LogHistogram::kInfinity;

            if (isMemory(op)) {
                const bool is_store = op == OpClass::Store;
                local_rd = localRd[ts.memIdx];
                global_rd = globalRd[ts.memIdx];
                ++ts.memIdx;

                ep.localRd.add(local_rd);
                ep.globalRd.add(global_rd);
                if (!is_store) {
                    ep.loadLocalRd.add(local_rd);
                    ep.loadGlobalRd.add(global_rd);
                }

                if (is_store) {
                    ++ep.numStores;
                } else {
                    ++ep.numLoads;
                    ep.loadGap.add(ts.opsSinceLastLoad);
                    ts.opsSinceLastLoad = 0;
                    auto dep_is_load = [&](uint16_t dep) {
                        if (dep == 0 || dep > ts.emitted ||
                            dep >= kRecentOps) {
                            return false;
                        }
                        return ts.recentOps[(ts.emitted - dep) %
                                            kRecentOps] == OpClass::Load;
                    };
                    if (dep_is_load(cols.dep1[i]) ||
                        dep_is_load(cols.dep2[i])) {
                        ++ep.loadsDependingOnLoad;
                    }
                }
            }

            if (op == OpClass::Branch) {
                ++ep.numBranches;
                ep.branches.record(cols.pc[i],
                                   cols.taken[ts.brIdx++] != 0);
            }

            if (kSampling && ts.microTraceRemaining > 0) {
                MicroTraceOp mop;
                mop.op = op;
                mop.dep1 = cols.dep1[i];
                mop.dep2 = cols.dep2[i];
                mop.localRd = local_rd;
                mop.globalRd = global_rd;
                ep.microTraces.back().ops.push_back(mop);
                --ts.microTraceRemaining;
            }

            ts.recentOps[ts.emitted % kRecentOps] = op;
            ++ts.emitted;
            ++ts.opsInEpoch;
            if (!isMemory(op) || op == OpClass::Store)
                ++ts.opsSinceLastLoad;
        }
        };

        if (ts.microTraceRemaining == 0 &&
            ts.opsInEpoch + (end - start) <= ts.nextMicroTraceAt) {
            stateful(std::false_type{}, start, end);
        } else {
            stateful(std::true_type{}, start, end);
        }
    };

    const size_t num_records = cols.numRecords();
    size_t i = 0;
    size_t syncIdx = 0;
    while (i < num_records) {
        const size_t next_sync = syncIdx < cols.syncPos.size() ?
            static_cast<size_t>(cols.syncPos[syncIdx]) : num_records;
        if (i == next_sync) {
            const SyncType type = cols.syncType[syncIdx];
            const uint32_t arg = cols.syncArg[syncIdx];
            ++syncIdx;
            ++i;
            if (type == SyncType::CondMarker)
                continue; // markers do not delineate epochs
            tp.epochs.back().endType = type;
            tp.epochs.back().endArg = arg;
            tp.epochs.emplace_back();
            ts.opsInEpoch = 0;
            ts.nextMicroTraceAt = 0;
            ts.microTraceRemaining = 0;
            continue;
        }
        // The whole run up to the next sync event: unlike the fused
        // sweep, no quantum boundary ever splits it — quanta only order
        // the global interleaving, which phase D already resolved.
        EpochProfile &ep = tp.epochs.back();
        process_run(ep, i, next_sync);
        i = next_sync;
    }
}

} // namespace

WorkloadProfile
profileWorkloadParallel(const ColumnarTrace &trace,
                        const ProfilerOptions &opts)
{
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());
    const ParallelExecutor pool(opts.jobs);

    WorkloadProfile profile;
    profile.name = trace.name;
    profile.numThreads = num_threads;
    profile.threads.resize(num_threads);
    trace.validateColumnConsistency();
    profile.barrierPopulation = trace.validateAndBarrierPopulations();

    // --- Phase A: per-thread memory prefix counts (parallel).
    std::vector<std::vector<uint32_t>> memPrefix(num_threads);
    pool.forEach(num_threads, [&](size_t t) {
        const ThreadColumns &cols = trace.threads[t];
        RPPM_REQUIRE(cols.addr.size() < UINT32_MAX,
                     "trace thread exceeds 2^32 memory accesses");
        std::vector<uint32_t> &prefix = memPrefix[t];
        prefix.resize(cols.numRecords() + 1);
        uint32_t count = 0;
        for (size_t i = 0; i < cols.numRecords(); ++i) {
            prefix[i] = count;
            if (isMemory(cols.op[i]))
                ++count;
        }
        prefix[cols.numRecords()] = count;
    });

    // --- Phase B: schedule replay (sequential, O(#runs + #sync)).
    const std::vector<std::vector<Run>> runs =
        replaySchedule(trace, opts, memPrefix, profile.barrierPopulation);

    // --- Phase C: emit shard-bucketed access streams (parallel).
    // Shards partition the line space by the *high* bits of the same
    // mix64 hash the LineTable probes with its low bits, so shard
    // assignment and in-shard probing stay uncorrelated. The shard count
    // is pure execution policy — every count yields the same profile.
    unsigned shardBits = 3;
    while ((1u << shardBits) < std::min(64u, pool.jobs() * 4))
        ++shardBits;
    const size_t numShards = size_t{1} << shardBits;

    std::vector<std::vector<std::vector<AccessEntry>>> buckets(num_threads);
    pool.forEach(num_threads, [&](size_t t) {
        const ThreadColumns &cols = trace.threads[t];
        auto &mine = buckets[t];
        mine.resize(numShards);
        const size_t expect = cols.addr.size() / numShards + 16;
        for (auto &bucket : mine)
            bucket.reserve(expect);
        for (const Run &run : runs[t]) {
            uint32_t j = memPrefix[t][run.start];
            uint64_t gseq = run.gseqBase;
            for (size_t i = run.start; i < run.end; ++i) {
                const OpClass op = cols.op[i];
                if (!isMemory(op))
                    continue;
                const uint64_t line = cols.addr[j] / opts.lineBytes;
                const size_t shard = static_cast<size_t>(
                    mix64(line + 1) >> (64 - shardBits));
                mine[shard].push_back(AccessEntry{
                    line, ++gseq, j, op == OpClass::Store});
                ++j;
            }
        }
    });

    // --- Phase D: per-shard interleaved reuse resolution (parallel).
    std::vector<std::vector<uint64_t>> localRd(num_threads);
    std::vector<std::vector<uint64_t>> globalRd(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
        localRd[t].resize(trace.threads[t].addr.size());
        globalRd[t].resize(trace.threads[t].addr.size());
    }
    pool.forEach(numShards, [&](size_t s) {
        uint64_t shard_accesses = 0;
        for (uint32_t t = 0; t < num_threads; ++t)
            shard_accesses += buckets[t][s].size();
        if (shard_accesses == 0)
            return;
        LineTable lines(num_threads, shard_accesses);

        // Deterministic merge of the per-thread entry lists by global
        // sequence number (each list is already ascending; gseq values
        // are globally unique). This is exactly the order in which the
        // fused sweep touched these lines.
        std::vector<size_t> at(num_threads, 0);
        for (uint64_t n = 0; n < shard_accesses; ++n) {
            uint32_t tid = UINT32_MAX;
            uint64_t best = UINT64_MAX;
            for (uint32_t t = 0; t < num_threads; ++t) {
                if (at[t] < buckets[t][s].size() &&
                    buckets[t][s][at[t]].gseq < best) {
                    best = buckets[t][s][at[t]].gseq;
                    tid = t;
                }
            }
            const AccessEntry &e = buckets[tid][s][at[tid]++];

            const size_t slot = lines.slot(e.line);
            LineTable::Meta &meta = lines.meta(slot);
            LineTable::PerThread &mine = lines.perThread(slot, tid);

            uint64_t local = LogHistogram::kInfinity;
            uint64_t global = LogHistogram::kInfinity;
            if (meta.lastGlobalSeq != 0)
                global = e.gseq - meta.lastGlobalSeq - 1;
            if (mine.count != 0) {
                const bool invalidated = opts.detectInvalidation &&
                    meta.lastWriteSeq > mine.seq &&
                    meta.lastWriter != tid;
                if (!invalidated) {
                    // The thread's data-access counter at any access is
                    // ordinal+1, so the fused sweep's
                    // localDataSeq - count - 1 is this difference.
                    local = e.ordinal - (mine.count - 1) - 1;
                }
            }
            localRd[tid][e.ordinal] = local;
            globalRd[tid][e.ordinal] = global;

            mine.count = static_cast<uint64_t>(e.ordinal) + 1;
            mine.seq = e.gseq;
            meta.lastGlobalSeq = e.gseq;
            if (e.isStore) {
                meta.lastWriteSeq = e.gseq;
                meta.lastWriter = tid;
            }
        }
    });
    buckets.clear();
    buckets.shrink_to_fit();

    // --- Phase E: per-thread statistics sweep (parallel).
    pool.forEach(num_threads, [&](size_t t) {
        sweepThread(trace.threads[t], opts, localRd[t], globalRd[t],
                    profile.threads[t]);
    });

    // --- Phase F: synchronization aggregates (order-independent).
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_waiters;
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_releasers;
    for (uint32_t t = 0; t < num_threads; ++t) {
        const ThreadColumns &cols = trace.threads[t];
        for (size_t k = 0; k < cols.syncPos.size(); ++k) {
            const uint32_t arg = cols.syncArg[k];
            switch (cols.syncType[k]) {
              case SyncType::MutexLock:
                ++profile.syncCounts.criticalSections;
                break;
              case SyncType::BarrierWait:
                ++profile.syncCounts.barriers;
                break;
              case SyncType::CondBarrier:
                ++profile.syncCounts.condVars;
                cond_waiters[arg].insert(t);
                cond_releasers[arg].insert(t);
                break;
              case SyncType::QueuePop:
                ++profile.syncCounts.condVars;
                cond_waiters[arg].insert(t);
                break;
              case SyncType::QueuePush:
                ++profile.syncCounts.condVars;
                cond_releasers[arg].insert(t);
                break;
              case SyncType::CondMarker:
                cond_waiters[arg];
                break;
              default:
                break;
            }
        }
    }
    // rppm-lint: ordered-ok(distinct condVarClasses key per id)
    for (const auto &[id, waiters] : cond_waiters) {
        const auto rel_it = cond_releasers.find(id);
        std::set<uint32_t> releasers =
            rel_it == cond_releasers.end() ? std::set<uint32_t>{} :
            rel_it->second;
        const bool symmetric = !waiters.empty() && waiters == releasers;
        profile.condVarClasses[id] = symmetric ?
            CondVarClass::BarrierLike : CondVarClass::ProducerConsumer;
    }

    return profile;
}

} // namespace rppm

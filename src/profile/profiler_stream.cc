/**
 * @file
 * Out-of-core streaming profiler — bit-identical to the fused sweep
 * with peak memory bounded by the chunk size, not the trace size.
 *
 * The fused and parallel engines both require the whole trace resident
 * (owned columns or a whole-file mapping), so their peak address-space
 * charge is O(trace). This engine processes the trace in fixed-size
 * chunks of streamChunkRecords records per thread, keeping at most two
 * chunks in flight, and produces exactly the same profile — the same
 * bits, for every chunk size and job count.
 *
 * The decomposition is the parallel engine's (see
 * profiler_parallel.cc), re-cut along the record axis:
 *
 *  1. The pausable schedule replayer (profile/schedule_replay.hh) is
 *     advanced until every live thread's record cursor reaches the next
 *     chunk target. It pauses only between quantum slices, so the
 *     resulting chunk edges are exact run boundaries: every scheduled
 *     run lies wholly inside one chunk, and the global sequence numbers
 *     it assigns are identical to the unpaused replay's. The memory
 *     oracle it needs is a rolling forward scan of the op column (a
 *     small mapped window for file sources), which also yields the
 *     sparse addr/taken offsets of each chunk edge.
 *  2. Phase C (shard-bucketed access emit) runs per (chunk, thread)
 *     over just-mapped column windows.
 *  3. Phase D (per-shard reuse resolution) runs per shard against
 *     *persistent* shard LineTables that carry line state across
 *     chunks; the absolute ordinals and global sequence numbers make
 *     the per-chunk merges a partition of the whole-trace merge.
 *  4. Phase E is the shared statistics sweep (profile/stat_sweep.hh),
 *     one segment per (chunk, thread) with the SweepState cursor and
 *     InstrLineMap carried across chunks and stitched in chunk order.
 *
 * The phases of consecutive chunks overlap through a shared work deque
 * (common/parallel.hh): chunk k+1's emit tasks are queued before chunk
 * k's resolve tasks, and the barrier waits help execute whatever is at
 * the front of the deque, so workers flow across the C/D boundary
 * instead of idling at it. The main thread advances the replayer for
 * chunk k+1 while workers bucket chunk k.
 *
 * Sources: an in-memory ColumnarTrace (windows are pointer slices into
 * its columns) or an RPPMTRC file accessed through the chunked reader
 * (trace/trace_stream.hh) — index the container, keep only the sparse
 * sync columns resident, and map each chunk's column slices on demand.
 * The file path never materializes the trace, so profiling a trace far
 * larger than the address-space budget succeeds where the whole-file
 * loaders cannot even map their input (tests/test_profile_streaming,
 * CI stream-smoke).
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hh"
#include "common/hash.hh"
#include "common/parallel.hh"
#include "profile/profiler.hh"
#include "profile/reuse_tables.hh"
#include "profile/schedule_replay.hh"
#include "profile/stat_sweep.hh"
#include "trace/columnar.hh"
#include "trace/trace_stream.hh"

namespace rppm {

namespace {

/**
 * Where chunk data comes from. The driver below only ever sees absolute
 * record/ordinal ranges and TraceChunk windows, so the pipeline is
 * identical for resident and out-of-core traces.
 */
class StreamSource
{
  public:
    virtual ~StreamSource() = default;

    virtual const std::string &name() const = 0;
    virtual uint32_t numThreads() const = 0;
    virtual uint64_t numRecords(uint32_t t) const = 0;
    /** Declared sparse column lengths (cross-checked against the scan). */
    virtual uint64_t numMems(uint32_t t) const = 0;
    virtual uint64_t numBranches(uint32_t t) const = 0;
    virtual SyncView sync(uint32_t t) const = 0;

    /** Structural validation + barrier populations (throws
     *  std::invalid_argument, same as the resident loaders). */
    virtual std::unordered_map<uint32_t, uint32_t> validateAndBarriers()
        const = 0;

    /**
     * Count memory and branch records in records [lo, hi) of thread
     * @p t, adding into @p mems / @p branches. Called with ascending,
     * non-overlapping ranges per thread (the replayer's runs), so a
     * rolling window suffices. File sources validate op classes here —
     * the one walk that sees every record.
     */
    virtual void countRange(uint32_t t, size_t lo, size_t hi,
                            uint64_t &mems, uint64_t &branches) = 0;

    /** Materialize one chunk's column windows (see TraceChunk). */
    virtual TraceChunk fetch(uint32_t t, size_t recLo, size_t recHi,
                             uint64_t memLo, uint64_t memHi, uint64_t brLo,
                             uint64_t brHi) = 0;
};

/** Resident source: chunks are pointer slices into the trace columns. */
class MemorySource final : public StreamSource
{
  public:
    explicit MemorySource(const ColumnarTrace &trace) : trace_(trace) {}

    const std::string &name() const override { return trace_.name; }

    uint32_t
    numThreads() const override
    {
        return static_cast<uint32_t>(trace_.numThreads());
    }

    uint64_t
    numRecords(uint32_t t) const override
    {
        return trace_.threads[t].numRecords();
    }

    uint64_t
    numMems(uint32_t t) const override
    {
        return trace_.threads[t].addr.size();
    }

    uint64_t
    numBranches(uint32_t t) const override
    {
        return trace_.threads[t].taken.size();
    }

    SyncView
    sync(uint32_t t) const override
    {
        return syncView(trace_.threads[t]);
    }

    std::unordered_map<uint32_t, uint32_t>
    validateAndBarriers() const override
    {
        trace_.validateColumnConsistency();
        return trace_.validateAndBarrierPopulations();
    }

    void
    countRange(uint32_t t, size_t lo, size_t hi, uint64_t &mems,
               uint64_t &branches) override
    {
        const Column<OpClass> &op = trace_.threads[t].op;
        for (size_t i = lo; i < hi; ++i) {
            if (isMemory(op[i]))
                ++mems;
            else if (op[i] == OpClass::Branch)
                ++branches;
        }
    }

    TraceChunk
    fetch(uint32_t t, size_t recLo, size_t recHi, uint64_t memLo,
          uint64_t memHi, uint64_t brLo, uint64_t brHi) override
    {
        const ThreadColumns &cols = trace_.threads[t];
        TraceChunk chunk;
        chunk.recLo = recLo;
        chunk.recHi = recHi;
        chunk.memLo = memLo;
        chunk.memHi = memHi;
        chunk.brLo = brLo;
        chunk.brHi = brHi;
        if (recLo < recHi) {
            chunk.op = cols.op.data() + recLo;
            chunk.pc = cols.pc.data() + recLo;
            chunk.dep1 = cols.dep1.data() + recLo;
            chunk.dep2 = cols.dep2.data() + recLo;
        }
        if (memLo < memHi)
            chunk.addr = cols.addr.data() + memLo;
        if (brLo < brHi)
            chunk.taken = cols.taken.data() + brLo;
        return chunk;
    }

  private:
    const ColumnarTrace &trace_;
};

/** Out-of-core source over an indexed RPPMTRC file. Resident state is
 *  the layout and the sparse sync columns; everything else arrives in
 *  mapped windows and leaves with them. */
class FileSource final : public StreamSource
{
  public:
    explicit FileSource(const std::string &path)
        : file_(path), layout_(indexTraceFile(file_)),
          sync_(loadSyncColumns(file_, layout_)), reader_(file_, layout_)
    {
        scanners_.reserve(layout_.threads.size());
        for (const ThreadLayout &th : layout_.threads)
            scanners_.emplace_back(file_, th);
    }

    const std::string &name() const override { return layout_.name; }

    uint32_t
    numThreads() const override
    {
        return static_cast<uint32_t>(layout_.threads.size());
    }

    uint64_t
    numRecords(uint32_t t) const override
    {
        return layout_.threads[t].records;
    }

    uint64_t
    numMems(uint32_t t) const override
    {
        return layout_.threads[t].addr.count;
    }

    uint64_t
    numBranches(uint32_t t) const override
    {
        return layout_.threads[t].taken.count;
    }

    SyncView
    sync(uint32_t t) const override
    {
        const ResidentSync &s = sync_[t];
        return SyncView{s.pos.data(), s.type.data(), s.arg.data(),
                        s.pos.size(),
                        static_cast<size_t>(layout_.threads[t].records)};
    }

    std::unordered_map<uint32_t, uint32_t>
    validateAndBarriers() const override
    {
        std::vector<SyncSpan> spans;
        spans.reserve(sync_.size());
        for (size_t t = 0; t < sync_.size(); ++t) {
            spans.push_back(SyncSpan{sync_[t].type.data(),
                                     sync_[t].arg.data(),
                                     sync_[t].pos.size(),
                                     layout_.threads[t].records});
        }
        return validateSyncAndBarrierPopulations(spans);
    }

    void
    countRange(uint32_t t, size_t lo, size_t hi, uint64_t &mems,
               uint64_t &branches) override
    {
        OpColumnScanner &scan = scanners_[t];
        for (size_t i = lo; i < hi; ++i) {
            const OpClass op = scan.at(i);
            RPPM_REQUIRE(static_cast<uint8_t>(op) <
                             static_cast<uint8_t>(OpClass::NumClasses),
                         "op class out of range");
            if (isMemory(op))
                ++mems;
            else if (op == OpClass::Branch)
                ++branches;
        }
    }

    TraceChunk
    fetch(uint32_t t, size_t recLo, size_t recHi, uint64_t memLo,
          uint64_t memHi, uint64_t brLo, uint64_t brHi) override
    {
        TraceChunk chunk =
            reader_.read(t, recLo, recHi, memLo, memHi, brLo, brHi);
        // The resident loaders validate branch outcomes trace-wide; do
        // the same incrementally, on the slice just mapped.
        for (uint64_t b = brLo; b < brHi; ++b) {
            RPPM_REQUIRE(chunk.taken[b - brLo] <= 1,
                         "branch outcome out of range");
        }
        return chunk;
    }

  private:
    FdFile file_;
    TraceFileLayout layout_;
    std::vector<ResidentSync> sync_;
    TraceChunkReader reader_;
    std::vector<OpColumnScanner> scanners_;
};

/** One scheduled run inside a chunk (records [start, end) of one
 *  thread); its mems get gseqBase+1.. and sparse ordinals memBase.. */
struct Run
{
    uint64_t start;
    uint64_t end;
    uint64_t gseqBase;
    uint64_t memBase;
};

/** One memory access routed to a line-hash shard (as in the parallel
 *  engine; the ordinal is absolute, so shard state carries verbatim). */
struct AccessEntry
{
    uint64_t line;
    uint64_t gseq;
    uint32_t ordinal;
    uint32_t isStore;
};

/** One thread's slice of one in-flight chunk. */
struct ThreadChunk
{
    size_t recLo = 0, recHi = 0;
    uint64_t memLo = 0, memHi = 0;
    uint64_t brLo = 0, brHi = 0;
    std::vector<Run> runs;
    TraceChunk data;
    /** Phase-C output: per-shard access entries. */
    std::vector<std::vector<AccessEntry>> buckets;
    /** Phase-D output, indexed ordinal - memLo. */
    std::vector<uint64_t> localRd, globalRd;
};

/** One in-flight chunk (the pipeline keeps two alive). */
struct ChunkState
{
    std::vector<ThreadChunk> threads;
    bool valid = false;
};

WorkloadProfile
streamProfile(StreamSource &src, const ProfilerOptions &opts)
{
    const uint32_t num_threads = src.numThreads();
    const uint64_t chunk_records = opts.streamChunkRecords > 0 ?
        opts.streamChunkRecords :
        kDefaultStreamChunkRecords;

    WorkloadProfile profile;
    profile.name = src.name();
    profile.numThreads = num_threads;
    profile.threads.resize(num_threads);
    profile.barrierPopulation = src.validateAndBarriers();

    std::vector<SyncView> sync_views;
    sync_views.reserve(num_threads);
    uint64_t total_mems = 0;
    for (uint32_t t = 0; t < num_threads; ++t) {
        sync_views.push_back(src.sync(t));
        RPPM_REQUIRE(src.numMems(t) < UINT32_MAX,
                     "trace thread exceeds 2^32 memory accesses");
        total_mems += src.numMems(t);
    }

    WorkDeque deque(opts.jobs);

    // Same shard geometry as the parallel engine (profiler_parallel.cc
    // phase C); the per-shard LineTables here are *persistent*, carrying
    // line state across chunks so the per-chunk resolves compose to the
    // whole-trace merge.
    unsigned shardBits = 3;
    while ((1u << shardBits) < std::min(64u, deque.jobs() * 4))
        ++shardBits;
    const size_t numShards = size_t{1} << shardBits;
    // Presize from the *chunk* size, not total_mems: the whole point of
    // streaming is peak memory independent of trace length, and the
    // tables grow on demand if the workload really touches more
    // distinct lines than a couple of chunks' worth of accesses.
    const uint64_t line_hint =
        std::min(total_mems, 2 * chunk_records * num_threads) / numShards;
    std::vector<LineTable> shardLines;
    shardLines.reserve(numShards);
    for (size_t s = 0; s < numShards; ++s)
        shardLines.emplace_back(num_threads, line_hint);

    // The replayer's memory oracle: a rolling forward scan of the op
    // column tracking the absolute sparse offsets reached so far. At
    // every pause the un-scanned tail of a thread consists solely of
    // sync slots (neutral: no mems, no branches), so the rolling totals
    // are exact at every chunk edge.
    ScheduleReplayer replayer(opts, sync_views, profile.barrierPopulation);
    std::vector<size_t> scanPos(num_threads, 0);
    std::vector<uint64_t> memSoFar(num_threads, 0);
    std::vector<uint64_t> brSoFar(num_threads, 0);
    std::vector<size_t> prevCursor(num_threads, 0);
    std::vector<uint64_t> prevMemHi(num_threads, 0);
    std::vector<uint64_t> prevBrHi(num_threads, 0);
    bool replayDone = false;

    auto memCount = [&](uint32_t t, size_t, size_t hi) -> uint64_t {
        const uint64_t before = memSoFar[t];
        src.countRange(t, scanPos[t], hi, memSoFar[t], brSoFar[t]);
        scanPos[t] = hi;
        return memSoFar[t] - before;
    };

    // Carried phase-E state, one per thread: the sweep cursor, and the
    // instruction-line map the chunk stitches resolve against.
    std::vector<SweepState> eCursor(num_threads);
    std::vector<InstrLineMap> carried(num_threads);

    ChunkState chunks[2];
    WorkDeque::Group cGroup[2];
    WorkDeque::Group dGroup;
    WorkDeque::Group eGroup;

    // Advance the replayer one chunk and materialize its windows.
    // Returns false (st.valid == false) once the schedule is spent.
    auto advanceChunk = [&](ChunkState &st) -> bool {
        st.valid = false;
        if (replayDone)
            return false;
        st.threads.clear();
        st.threads.resize(num_threads);

        std::vector<size_t> target(num_threads);
        for (uint32_t t = 0; t < num_threads; ++t) {
            target[t] = static_cast<size_t>(
                std::min<uint64_t>(prevCursor[t] + chunk_records,
                                   src.numRecords(t)));
        }
        // Never pause before the first slice: when every target is
        // already met (e.g. all remaining threads are recordless), the
        // replayer still has thread-finish bookkeeping to run, and one
        // slice guarantees forward progress.
        size_t checks = 0;
        auto pause = [&] {
            if (checks++ == 0)
                return false;
            for (uint32_t t = 0; t < num_threads; ++t) {
                if (replayer.recordCursor(t) < target[t])
                    return false;
            }
            return true;
        };
        replayDone = replayer.advance(
            memCount,
            [&](uint32_t t, size_t lo, size_t hi, uint64_t gseqBase,
                uint64_t mem) {
                if (mem > 0) {
                    st.threads[t].runs.push_back(
                        Run{lo, hi, gseqBase, memSoFar[t] - mem});
                }
            },
            pause);

        bool any = false;
        for (uint32_t t = 0; t < num_threads; ++t) {
            ThreadChunk &tc = st.threads[t];
            tc.recLo = prevCursor[t];
            tc.recHi = replayer.recordCursor(t);
            prevCursor[t] = tc.recHi;
            tc.memLo = prevMemHi[t];
            tc.brLo = prevBrHi[t];
            tc.memHi = memSoFar[t];
            tc.brHi = brSoFar[t];
            prevMemHi[t] = tc.memHi;
            prevBrHi[t] = tc.brHi;
            if (tc.recLo == tc.recHi)
                continue;
            any = true;
            tc.data = src.fetch(t, tc.recLo, tc.recHi, tc.memLo, tc.memHi,
                                tc.brLo, tc.brHi);
            // Phase D scatters into these from multiple shard tasks;
            // allocate them here, before any task can run.
            tc.localRd.resize(tc.memHi - tc.memLo);
            tc.globalRd.resize(tc.memHi - tc.memLo);
        }
        st.valid = any;
        return any;
    };

    // --- Phase C of one chunk: shard-bucketed access emit, one task
    //     per thread (identical math to the parallel engine, with run
    //     memBase standing in for the memory prefix array).
    auto postEmit = [&](ChunkState &st, WorkDeque::Group &group) {
        for (uint32_t t = 0; t < num_threads; ++t) {
            ThreadChunk &tc = st.threads[t];
            if (tc.runs.empty())
                continue;
            deque.post(group, [&opts, &tc, numShards, shardBits] {
                tc.buckets.resize(numShards);
                const size_t expect =
                    static_cast<size_t>(tc.memHi - tc.memLo) / numShards +
                    16;
                for (auto &bucket : tc.buckets)
                    bucket.reserve(expect);
                for (const Run &run : tc.runs) {
                    uint64_t j = run.memBase;
                    uint64_t gseq = run.gseqBase;
                    for (size_t i = run.start; i < run.end; ++i) {
                        const OpClass op = tc.data.op[i - tc.recLo];
                        if (!isMemory(op))
                            continue;
                        const uint64_t line =
                            tc.data.addr[j - tc.memLo] / opts.lineBytes;
                        const size_t shard = static_cast<size_t>(
                            mix64(line + 1) >> (64 - shardBits));
                        tc.buckets[shard].push_back(AccessEntry{
                            line, ++gseq, static_cast<uint32_t>(j),
                            op == OpClass::Store});
                        ++j;
                    }
                }
            });
        }
    };

    // --- Phase D of one chunk: per-shard reuse resolution against the
    //     persistent shard tables. Byte-for-byte the parallel engine's
    //     merge: absolute gseqs make per-chunk in-order globally
    //     in-order, absolute ordinals make the counts carry verbatim.
    auto postResolve = [&](ChunkState &st, WorkDeque::Group &group) {
        for (size_t s = 0; s < numShards; ++s) {
            deque.post(group, [&st, &shardLines, &opts, num_threads, s] {
                auto entries =
                    [&](uint32_t t) -> std::vector<AccessEntry> & {
                    return st.threads[t].buckets[s];
                };
                uint64_t shard_accesses = 0;
                for (uint32_t t = 0; t < num_threads; ++t) {
                    if (!st.threads[t].buckets.empty())
                        shard_accesses += entries(t).size();
                }
                if (shard_accesses == 0)
                    return;
                LineTable &lines = shardLines[s];

                std::vector<size_t> at(num_threads, 0);
                for (uint64_t n = 0; n < shard_accesses; ++n) {
                    uint32_t tid = UINT32_MAX;
                    uint64_t best = UINT64_MAX;
                    for (uint32_t t = 0; t < num_threads; ++t) {
                        if (st.threads[t].buckets.empty())
                            continue;
                        if (at[t] < entries(t).size() &&
                            entries(t)[at[t]].gseq < best) {
                            best = entries(t)[at[t]].gseq;
                            tid = t;
                        }
                    }
                    const AccessEntry &e = entries(tid)[at[tid]++];

                    const size_t slot = lines.slot(e.line);
                    LineTable::Meta &meta = lines.meta(slot);
                    LineTable::PerThread &mine =
                        lines.perThread(slot, tid);

                    uint64_t local = LogHistogram::kInfinity;
                    uint64_t global = LogHistogram::kInfinity;
                    if (meta.lastGlobalSeq != 0)
                        global = e.gseq - meta.lastGlobalSeq - 1;
                    if (mine.count != 0) {
                        const bool invalidated =
                            opts.detectInvalidation &&
                            meta.lastWriteSeq > mine.seq &&
                            meta.lastWriter != tid;
                        if (!invalidated)
                            local = e.ordinal - (mine.count - 1) - 1;
                    }
                    ThreadChunk &tc = st.threads[tid];
                    tc.localRd[e.ordinal - tc.memLo] = local;
                    tc.globalRd[e.ordinal - tc.memLo] = global;

                    mine.count = static_cast<uint64_t>(e.ordinal) + 1;
                    mine.seq = e.gseq;
                    meta.lastGlobalSeq = e.gseq;
                    if (e.isStore) {
                        meta.lastWriteSeq = e.gseq;
                        meta.lastWriter = tid;
                    }
                }
            });
        }
    };

    // --- Phase E of one chunk: the shared statistics sweep, one
    //     segment per thread, cursor carried across chunks and stitched
    //     in-task (chunks arrive in order; threads are independent).
    auto postSweep = [&](ChunkState &st, WorkDeque::Group &group) {
        for (uint32_t t = 0; t < num_threads; ++t) {
            ThreadChunk &tc = st.threads[t];
            if (tc.recLo == tc.recHi)
                continue;
            deque.post(group, [&sync_views, &opts, &profile, &eCursor,
                               &carried, &tc, t] {
                const WindowCols wc{{tc.data.op, tc.recLo},
                                    {tc.data.pc, tc.recLo},
                                    {tc.data.dep1, tc.recLo},
                                    {tc.data.dep2, tc.recLo},
                                    {tc.data.taken,
                                     static_cast<size_t>(tc.brLo)}};
                auto rd = [&tc](size_t memIdx,
                                bool) -> std::pair<uint64_t, uint64_t> {
                    return {tc.localRd[memIdx - tc.memLo],
                            tc.globalRd[memIdx - tc.memLo]};
                };
                SegmentSweep seg =
                    runSweepSegment(wc, sync_views[t], opts, eCursor[t],
                                    rd, tc.recLo, tc.recHi);
                eCursor[t] = seg.exit;
                stitchSweepSegment(profile.threads[t], carried[t],
                                   std::move(seg));
            });
        }
    };

    // --- The pipeline. Queue order per iteration: C(k+1) before D(k)
    //     before E(k); the FIFO deque plus helping waits let workers
    //     cross the stage boundaries, while the dependences (D(k) after
    //     C(k); E(k) after D(k); D(k+1) after D(k), for the shared
    //     shard tables) are enforced by the group waits.
    try {
        size_t k = 0;
        if (advanceChunk(chunks[0]))
            postEmit(chunks[0], cGroup[0]);
        while (chunks[k & 1].valid) {
            ChunkState &cur = chunks[k & 1];
            ChunkState &nxt = chunks[(k + 1) & 1];
            // The replay/scan of chunk k+1 touches only main-thread
            // state, so it runs under C(k)'s bucketing on the workers.
            const bool more = advanceChunk(nxt);
            deque.wait(cGroup[k & 1]);
            if (more)
                postEmit(nxt, cGroup[(k + 1) & 1]);
            postResolve(cur, dGroup);
            deque.wait(dGroup);
            postSweep(cur, eGroup);
            deque.wait(eGroup);
            cur = ChunkState{}; // release windows, buckets, rd arrays
            ++k;
        }
    } catch (...) {
        // Outstanding tasks capture this frame; drain every group
        // before unwinding it.
        for (WorkDeque::Group *g :
             {&cGroup[0], &cGroup[1], &dGroup, &eGroup}) {
            try {
                deque.wait(*g);
            } catch (...) {
            }
        }
        throw;
    }

    // The scan is the only pass that sees every record of a file-backed
    // trace; cross-check it against the declared sparse column lengths
    // (the resident loaders validate the same properties up front).
    for (uint32_t t = 0; t < num_threads; ++t) {
        RPPM_REQUIRE(memSoFar[t] == src.numMems(t),
                     "addr column length does not match memory op count");
        RPPM_REQUIRE(brSoFar[t] == src.numBranches(t),
                     "taken column length does not match branch count");
        // A thread with no records still owns one (empty) epoch.
        if (profile.threads[t].epochs.empty())
            profile.threads[t].epochs.emplace_back();
    }

    classifySyncProfile(profile, sync_views);
    return profile;
}

} // namespace

WorkloadProfile
profileWorkloadStreaming(const ColumnarTrace &trace,
                         const ProfilerOptions &opts)
{
    MemorySource src(trace);
    return streamProfile(src, opts);
}

WorkloadProfile
profileWorkloadStreamingFile(const std::string &path,
                             const ProfilerOptions &opts)
{
    FileSource src(path);
    return streamProfile(src, opts);
}

} // namespace rppm

/**
 * @file
 * Open-addressing state tables shared by the fused and parallel
 * profilers (internal header).
 *
 * The profiler's hot per-line and per-PC state lives in open-addressing
 * tables with flat storage instead of std::unordered_map nodes. The
 * fused single-pass sweep (profiler.cc) keeps one LineTable for the
 * whole interleaved replay; the parallel engine
 * (profiler_parallel.cc) keeps one per line-hash shard — the table
 * layout and probing are identical, which is part of why the two
 * engines produce bit-identical profiles.
 *
 * Thread-safety contract: these tables are deliberately NOT internally
 * synchronized and carry no RPPM_GUARDED_BY annotations — each instance
 * is owned by exactly one thread at a time. The fused sweep owns its
 * table for the whole pass; the parallel engine assigns each shard's
 * table to exactly one phase-D worker (shard index = high mix64 bits of
 * the line key, so two workers can never reach the same table). Sharing
 * one table across threads is a bug; guard it with rppm::Mutex and
 * annotate if a future engine ever needs to.
 */

#ifndef RPPM_PROFILE_REUSE_TABLES_HH
#define RPPM_PROFILE_REUSE_TABLES_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.hh"
#include "common/open_table.hh"

namespace rppm {

/**
 * Open-addressing table of per-line reuse/coherence state with flat
 * per-thread rows. Keys are stored as line+1 so 0 can mean "empty"
 * (line numbers are addr / lineBytes < 2^58, so +1 never wraps). The
 * shared scalar state is interleaved in one struct and the per-thread
 * (count, seq) pair is adjacent in memory, so an access touches two
 * cache lines instead of five.
 */
class LineTable
{
  public:
    /** One hash slot: key and shared per-line scalar state together, so
     *  the probe and the state update touch the same cache line. Kept
     *  trivial (no default member initializers): slots live in
     *  deliberately uninitialized arrays and are only written on claim —
     *  implicit zero-construction would memset the whole presized table
     *  on every profile call. */
    struct Meta
    {
        uint64_t key; ///< line+1; 0 = empty slot (used_ is authoritative)
        uint64_t lastGlobalSeq;
        uint64_t lastWriteSeq;
        uint32_t lastWriter;
        uint32_t pad;
    };

    /** One thread's view of one line; trivial for the same reason. */
    struct PerThread
    {
        uint64_t count; ///< thread-local access counter at last touch
        uint64_t seq;   ///< global sequence number at last touch
    };

    /**
     * @param num_threads workload thread count
     * @param mem_ops total dynamic memory accesses, used to presize the
     *        table: distinct lines cannot exceed mem_ops, and empirically
     *        run well below half of it, so presizing to ~mem_ops/2 slots
     *        (bounded to keep degenerate traces cheap) avoids mid-sweep
     *        rehashes of the whole table.
     */
    LineTable(uint32_t num_threads, uint64_t mem_ops)
        : threads_(num_threads)
    {
        uint64_t cap = uint64_t{1} << 16;
        const uint64_t want = std::min<uint64_t>(mem_ops / 2,
                                                 uint64_t{1} << 20);
        while (cap < want)
            cap *= 2;
        grow(static_cast<size_t>(cap));
    }

    /** Slot for @p line, inserting zero-initialized state if absent. */
    size_t
    slot(uint64_t line)
    {
        if ((size_ + 1) * 10 >= cap_ * 7)
            grow(cap_ * 2);
        const uint64_t key = line + 1;
        size_t i = static_cast<size_t>(mix64(key)) & mask_;
        while (true) {
            if (!used_[i]) {
                used_[i] = 1;
                meta_[i] = Meta{key, 0, 0, UINT32_MAX, 0};
                for (uint32_t t = 0; t < threads_; ++t)
                    pt_[i * threads_ + t] = PerThread{};
                ++size_;
                return i;
            }
            if (meta_[i].key == key)
                return i;
            i = (i + 1) & mask_;
        }
    }

    Meta &meta(size_t s) { return meta_[s]; }
    PerThread &perThread(size_t s, uint32_t tid)
    {
        return pt_[s * threads_ + tid];
    }

  private:
    void
    grow(size_t new_cap)
    {
        std::vector<uint8_t> old_used = std::move(used_);
        auto old_meta = std::move(meta_);
        auto old_pt = std::move(pt_);
        const size_t old_cap = cap_;

        cap_ = new_cap;
        mask_ = cap_ - 1;
        // Only the occupancy bytes are zeroed up front (cap_ bytes); the
        // wide slot and per-thread arrays stay uninitialized until their
        // slot is claimed. Presizing for hundreds of thousands of lines
        // would otherwise spend more time in memset than the rehashes it
        // avoids.
        used_.assign(cap_, 0);
        meta_ = std::make_unique_for_overwrite<Meta[]>(cap_);
        pt_ = std::make_unique_for_overwrite<PerThread[]>(cap_ * threads_);

        for (size_t i = 0; i < old_cap; ++i) {
            if (!old_used[i])
                continue;
            size_t j =
                static_cast<size_t>(mix64(old_meta[i].key)) & mask_;
            while (used_[j])
                j = (j + 1) & mask_;
            used_[j] = 1;
            meta_[j] = old_meta[i];
            for (uint32_t t = 0; t < threads_; ++t)
                pt_[j * threads_ + t] = old_pt[i * threads_ + t];
        }
    }

    uint32_t threads_;
    size_t cap_ = 0;
    size_t mask_ = 0;
    size_t size_ = 0;
    std::vector<uint8_t> used_;
    std::unique_ptr<Meta[]> meta_;
    std::unique_ptr<PerThread[]> pt_;
};

/**
 * Open-addressing map line -> sequence number (instruction stream). The
 * generic table this used to implement inline now lives in
 * common/open_table.hh (the simulator's coherence directory shares it);
 * keeping the historical alias preserves the profiler's vocabulary.
 */
using SeqTable = OpenTable<uint64_t>;

/**
 * Instruction-line -> last-fetch map. PC lines are small and dense for
 * every realistic code footprint, so the common case is a flat array
 * indexed by line (0 = never fetched; fetch counters start at 1); lines
 * beyond the flat range fall back to the open-addressing SeqTable.
 * Semantically identical to the legacy unordered_map<line, seq>.
 */
class InstrLineMap
{
  public:
    static constexpr uint64_t kFlatLines = 1u << 16;

    InstrLineMap() { flat_.assign(kFlatLines, 0); }

    /** Last-fetch slot for @p line; @p inserted = first fetch of it. */
    uint64_t &
    lookup(uint64_t line, bool &inserted)
    {
        if (line < kFlatLines) {
            uint64_t &v = flat_[line];
            inserted = v == 0;
            return v;
        }
        return overflow_.lookup(line, inserted);
    }

  private:
    std::vector<uint64_t> flat_;
    SeqTable overflow_;
};

} // namespace rppm

#endif // RPPM_PROFILE_REUSE_TABLES_HH

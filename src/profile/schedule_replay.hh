/**
 * @file
 * Pausable round-robin schedule replayer (internal, shared by the
 * parallel and streaming engines).
 *
 * Phase B of the decomposed profilers: replay the fused sweep's
 * round-robin quantum scheduler using only the sparse sync columns plus
 * a caller-supplied memory-count oracle. The loop structure mirrors
 * profileWorkloadFused() exactly — same quantum accounting, same step
 * clock driving SyncState, same deadlock check — minus all per-record
 * work, so it costs O(#runs + #sync) instead of O(#records). Its output
 * is the exact global interleaving: for every run of micro-ops, the
 * global-sequence number its first memory access will receive.
 *
 * Unlike the original one-shot helper, the replayer is *pausable*: the
 * streaming engine advances it in chunk-sized slices, pausing between
 * quantum slices (never inside a run), so every emitted run lies
 * entirely within one chunk and chunk boundaries are exact run
 * boundaries. The parallel engine simply never pauses. Because the
 * replay state (cursors, SyncState, global sequence, step clock) is
 * carried across pauses, the schedule — and therefore the profile — is
 * invariant under the chunk size.
 */

#ifndef RPPM_PROFILE_SCHEDULE_REPLAY_HH
#define RPPM_PROFILE_SCHEDULE_REPLAY_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hh"
#include "profile/profiler.hh"
#include "profile/stat_sweep.hh"
#include "sim/sync_state.hh"

namespace rppm {

class ScheduleReplayer
{
  public:
    /**
     * @param sync one SyncView per workload thread (numRecords set)
     * @param barriers barrier populations (validateAndBarrierPopulations)
     */
    ScheduleReplayer(const ProfilerOptions &opts,
                     std::vector<SyncView> sync,
                     const std::unordered_map<uint32_t, uint32_t> &barriers)
        : opts_(opts), sync_(std::move(sync)),
          numThreads_(static_cast<uint32_t>(sync_.size())),
          syncState_(numThreads_, barriers), cur_(numThreads_),
          live_(numThreads_)
    {
    }

    /**
     * Replay until @p pause returns true (checked between quantum
     * slices) or the schedule completes.
     *
     * @param memCount memCount(tid, lo, hi) -> memory accesses in
     *        records [lo, hi) of thread tid. Ranges are queried in
     *        ascending, non-overlapping order per thread (they are the
     *        runs themselves), so rolling-scan implementations work.
     * @param onRun onRun(tid, lo, hi, gseqBase, mem) for every run, in
     *        schedule order; the run's memory accesses receive global
     *        sequence numbers gseqBase+1 .. gseqBase+mem. Runs with
     *        mem == 0 are reported too (callers tracking record
     *        coverage need them; the parallel engine just filters).
     * @param pause checked before picking the next thread; return true
     *        to suspend. The replayer resumes exactly where it left off
     *        on the next advance() call.
     * @return true when the whole schedule has been replayed.
     */
    template <typename MemCount, typename OnRun, typename Pause>
    bool
    advance(MemCount &&memCount, OnRun &&onRun, Pause &&pause)
    {
        while (live_ > 0) {
            if (pause())
                return false;
            // Find the next runnable thread in round-robin order.
            uint32_t pick = UINT32_MAX;
            for (uint32_t i = 0; i < numThreads_; ++i) {
                const uint32_t t = (cursor_ + i) % numThreads_;
                if (!cur_[t].done && !syncState_.blocked(t)) {
                    pick = t;
                    break;
                }
            }
            RPPM_REQUIRE(pick != UINT32_MAX,
                         "deadlock during profiling (malformed trace)");
            cursor_ = (pick + 1) % numThreads_;

            Cursor &ts = cur_[pick];
            const SyncView &sv = sync_[pick];
            const size_t num_records = sv.numRecords;
            uint32_t executed = 0;
            while (ts.next < num_records && executed < opts_.quantum) {
                const size_t next_sync = sv.next(ts.syncIdx);
                if (ts.next == next_sync) {
                    const SyncType type = sv.type[ts.syncIdx];
                    const uint32_t arg = sv.arg[ts.syncIdx];
                    ++ts.syncIdx;
                    ++ts.next;
                    ++step_;
                    ++executed;
                    // Source markers never reach SyncState (and never
                    // block) in the fused sweep; everything else does.
                    if (type == SyncType::CondMarker)
                        continue;
                    TraceRecord rec;
                    rec.sync = type;
                    rec.syncArg = arg;
                    const SyncOutcome out = syncState_.apply(
                        pick, rec, static_cast<double>(step_));
                    if (out.blocks)
                        break;
                    continue;
                }
                const size_t run_end = std::min(
                    next_sync, ts.next + (opts_.quantum - executed));
                const size_t run = run_end - ts.next;
                const uint64_t mem = memCount(pick, ts.next, run_end);
                onRun(pick, ts.next, run_end, globalSeq_, mem);
                globalSeq_ += mem;
                ts.next = run_end;
                step_ += run;
                executed += static_cast<uint32_t>(run);
            }
            if (ts.next >= num_records && !ts.done) {
                ts.done = true;
                --live_;
                syncState_.finish(pick, static_cast<double>(step_));
            }
        }
        return true;
    }

    bool done() const { return live_ == 0; }

    /** Record cursor of thread @p t. Between advance() calls this is
     *  always a run/sync boundary — the streaming engine's chunk edges. */
    size_t recordCursor(uint32_t t) const { return cur_[t].next; }

  private:
    struct Cursor
    {
        size_t next = 0;
        size_t syncIdx = 0;
        bool done = false;
    };

    ProfilerOptions opts_;
    std::vector<SyncView> sync_;
    uint32_t numThreads_;
    SyncState syncState_;
    std::vector<Cursor> cur_;
    uint64_t globalSeq_ = 0;
    uint64_t step_ = 0;
    uint32_t live_;
    uint32_t cursor_ = 0;
};

} // namespace rppm

#endif // RPPM_PROFILE_SCHEDULE_REPLAY_HH

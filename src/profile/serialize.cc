#include "profile/serialize.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/assert.hh"

namespace rppm {

namespace {

constexpr const char *kMagic = "RPPMPROF 1";

/** Histograms are stored sparsely as (representative value, count). */
void
writeHistogram(std::ostream &os, const char *tag, const LogHistogram &hist)
{
    size_t buckets = 0;
    hist.forEach([&](uint64_t, uint64_t) { ++buckets; });
    os << tag << ' ' << buckets << '\n';
    hist.forEach([&](uint64_t value, uint64_t count) {
        if (value == LogHistogram::kInfinity)
            os << "inf " << count << '\n';
        else
            os << value << ' ' << count << '\n';
    });
}

LogHistogram
readHistogram(std::istream &is, const char *tag)
{
    std::string seen;
    size_t buckets = 0;
    is >> seen >> buckets;
    RPPM_REQUIRE(is && seen == tag,
                 std::string("expected histogram tag ") + tag);
    LogHistogram hist;
    for (size_t i = 0; i < buckets; ++i) {
        std::string value;
        uint64_t count = 0;
        is >> value >> count;
        RPPM_REQUIRE(static_cast<bool>(is), "truncated histogram");
        if (value == "inf") {
            hist.add(LogHistogram::kInfinity, count);
        } else {
            hist.add(std::stoull(value), count);
        }
    }
    return hist;
}

void
writeEpoch(std::ostream &os, const EpochProfile &epoch)
{
    os << "epoch " << epoch.numOps << ' ' << epoch.numLoads << ' '
       << epoch.numStores << ' ' << epoch.numBranches << ' '
       << epoch.loadsDependingOnLoad << ' '
       << static_cast<int>(epoch.endType) << ' ' << epoch.endArg << '\n';
    os << "mix";
    for (uint64_t count : epoch.mix)
        os << ' ' << count;
    os << '\n';

    writeHistogram(os, "depDist", epoch.depDist);
    writeHistogram(os, "localRd", epoch.localRd);
    writeHistogram(os, "globalRd", epoch.globalRd);
    writeHistogram(os, "loadLocalRd", epoch.loadLocalRd);
    writeHistogram(os, "loadGlobalRd", epoch.loadGlobalRd);
    writeHistogram(os, "instrRd", epoch.instrRd);
    writeHistogram(os, "loadGap", epoch.loadGap);

    // Branch counts sorted by PC so the output is byte-deterministic.
    std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> branches;
    epoch.branches.forEach(
        [&branches](uint64_t pc, uint64_t taken, uint64_t total) {
            branches.emplace_back(pc, taken, total);
        });
    std::sort(branches.begin(), branches.end());
    os << "branches " << branches.size() << '\n';
    for (const auto &[pc, taken, total] : branches)
        os << pc << ' ' << taken << ' ' << total << '\n';

    os << "microtraces " << epoch.microTraces.size() << '\n';
    for (const MicroTrace &mt : epoch.microTraces) {
        os << "mt " << mt.ops.size() << '\n';
        for (const MicroTraceOp &op : mt.ops) {
            os << static_cast<int>(op.op) << ' ' << op.dep1 << ' '
               << op.dep2 << ' ';
            if (op.localRd == LogHistogram::kInfinity)
                os << "inf ";
            else
                os << op.localRd << ' ';
            if (op.globalRd == LogHistogram::kInfinity)
                os << "inf";
            else
                os << op.globalRd;
            os << '\n';
        }
    }
}

uint64_t
readRdValue(std::istream &is)
{
    std::string token;
    is >> token;
    RPPM_REQUIRE(static_cast<bool>(is), "truncated micro-trace");
    if (token == "inf")
        return LogHistogram::kInfinity;
    return std::stoull(token);
}

EpochProfile
readEpoch(std::istream &is)
{
    std::string tag;
    EpochProfile epoch;
    int end_type = 0;
    is >> tag >> epoch.numOps >> epoch.numLoads >> epoch.numStores >>
        epoch.numBranches >> epoch.loadsDependingOnLoad >> end_type >>
        epoch.endArg;
    RPPM_REQUIRE(is && tag == "epoch", "expected epoch header");
    RPPM_REQUIRE(end_type >= 0 &&
                 end_type < static_cast<int>(SyncType::NumTypes),
                 "bad epoch end type");
    epoch.endType = static_cast<SyncType>(end_type);

    is >> tag;
    RPPM_REQUIRE(is && tag == "mix", "expected mix");
    for (uint64_t &count : epoch.mix)
        is >> count;

    epoch.depDist = readHistogram(is, "depDist");
    epoch.localRd = readHistogram(is, "localRd");
    epoch.globalRd = readHistogram(is, "globalRd");
    epoch.loadLocalRd = readHistogram(is, "loadLocalRd");
    epoch.loadGlobalRd = readHistogram(is, "loadGlobalRd");
    epoch.instrRd = readHistogram(is, "instrRd");
    epoch.loadGap = readHistogram(is, "loadGap");

    size_t branches = 0;
    is >> tag >> branches;
    RPPM_REQUIRE(is && tag == "branches", "expected branches");
    for (size_t b = 0; b < branches; ++b) {
        uint64_t pc = 0, taken = 0, total = 0;
        is >> pc >> taken >> total;
        RPPM_REQUIRE(static_cast<bool>(is), "truncated branch counts");
        epoch.branches.addCounts(pc, taken, total);
    }

    size_t traces = 0;
    is >> tag >> traces;
    RPPM_REQUIRE(is && tag == "microtraces", "expected microtraces");
    for (size_t t = 0; t < traces; ++t) {
        size_t ops = 0;
        is >> tag >> ops;
        RPPM_REQUIRE(is && tag == "mt", "expected micro-trace");
        MicroTrace mt;
        mt.ops.reserve(ops);
        for (size_t o = 0; o < ops; ++o) {
            MicroTraceOp op;
            int cls = 0;
            is >> cls >> op.dep1 >> op.dep2;
            RPPM_REQUIRE(is && cls >= 0 &&
                         cls < static_cast<int>(OpClass::NumClasses),
                         "bad micro-trace op");
            op.op = static_cast<OpClass>(cls);
            op.localRd = readRdValue(is);
            op.globalRd = readRdValue(is);
            mt.ops.push_back(op);
        }
        epoch.microTraces.push_back(std::move(mt));
    }
    return epoch;
}

} // namespace

void
saveProfile(const WorkloadProfile &profile, std::ostream &os)
{
    os << kMagic << '\n';
    os << "name " << profile.name << '\n';
    os << "threads " << profile.numThreads << '\n';

    // Sort map contents so the output is byte-deterministic.
    const std::map<uint32_t, uint32_t> barriers(
        profile.barrierPopulation.begin(), profile.barrierPopulation.end());
    os << "barriers " << barriers.size() << '\n';
    for (const auto &[id, pop] : barriers)
        os << id << ' ' << pop << '\n';

    const std::map<uint32_t, CondVarClass> condvars(
        profile.condVarClasses.begin(), profile.condVarClasses.end());
    os << "condvars " << condvars.size() << '\n';
    for (const auto &[id, cls] : condvars)
        os << id << ' ' << static_cast<int>(cls) << '\n';

    os << "synccounts " << profile.syncCounts.criticalSections << ' '
       << profile.syncCounts.barriers << ' '
       << profile.syncCounts.condVars << '\n';

    for (const ThreadProfile &thread : profile.threads) {
        os << "thread " << thread.epochs.size() << '\n';
        for (const EpochProfile &epoch : thread.epochs)
            writeEpoch(os, epoch);
    }
    if (!os)
        throw std::runtime_error("profile write failed");
}

WorkloadProfile
loadProfile(std::istream &is)
{
    std::string magic_word, magic_version;
    is >> magic_word >> magic_version;
    RPPM_REQUIRE(is && magic_word + " " + magic_version == kMagic,
                 "not an RPPM profile (bad magic)");

    WorkloadProfile profile;
    std::string tag;
    is >> tag >> profile.name;
    RPPM_REQUIRE(is && tag == "name", "expected name");
    is >> tag >> profile.numThreads;
    RPPM_REQUIRE(is && tag == "threads", "expected thread count");

    size_t barriers = 0;
    is >> tag >> barriers;
    RPPM_REQUIRE(is && tag == "barriers", "expected barriers");
    for (size_t b = 0; b < barriers; ++b) {
        uint32_t id = 0, pop = 0;
        is >> id >> pop;
        RPPM_REQUIRE(static_cast<bool>(is), "truncated barriers");
        profile.barrierPopulation[id] = pop;
    }

    size_t condvars = 0;
    is >> tag >> condvars;
    RPPM_REQUIRE(is && tag == "condvars", "expected condvars");
    for (size_t c = 0; c < condvars; ++c) {
        uint32_t id = 0;
        int cls = 0;
        is >> id >> cls;
        RPPM_REQUIRE(static_cast<bool>(is), "truncated condvars");
        profile.condVarClasses[id] = static_cast<CondVarClass>(cls);
    }

    is >> tag >> profile.syncCounts.criticalSections >>
        profile.syncCounts.barriers >> profile.syncCounts.condVars;
    RPPM_REQUIRE(is && tag == "synccounts", "expected synccounts");

    for (uint32_t t = 0; t < profile.numThreads; ++t) {
        size_t epochs = 0;
        is >> tag >> epochs;
        RPPM_REQUIRE(is && tag == "thread", "expected thread");
        ThreadProfile thread;
        thread.epochs.reserve(epochs);
        for (size_t e = 0; e < epochs; ++e)
            thread.epochs.push_back(readEpoch(is));
        profile.threads.push_back(std::move(thread));
    }
    return profile;
}

void
saveProfileToFile(const WorkloadProfile &profile, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open " + path + " for writing");
    saveProfile(profile, os);
}

WorkloadProfile
loadProfileFromFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    return loadProfile(is);
}

} // namespace rppm

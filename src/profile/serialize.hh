/**
 * @file
 * Profile serialization.
 *
 * The whole point of RPPM is that the profile is collected once and
 * reused for every subsequent prediction; that only pays off if profiles
 * are durable artifacts. This module writes a WorkloadProfile to a
 * line-oriented text format ("RPPMPROF 1") and reads it back, preserving
 * everything the model consumes: per-epoch counters, instruction mix,
 * all reuse-distance histograms, per-static-branch outcome counts,
 * micro-traces and the synchronization structure.
 *
 * Round-tripping is exact with respect to predictions: predict(load(save
 * (p))) == predict(p) for every configuration.
 */

#ifndef RPPM_PROFILE_SERIALIZE_HH
#define RPPM_PROFILE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "profile/epoch_profile.hh"

namespace rppm {

/** Write @p profile to @p os; throws std::runtime_error on I/O error. */
void saveProfile(const WorkloadProfile &profile, std::ostream &os);

/** Parse a profile from @p is; throws std::invalid_argument on bad
 *  input (wrong magic, truncated stream, malformed records). */
WorkloadProfile loadProfile(std::istream &is);

/** Convenience wrappers over file paths. */
void saveProfileToFile(const WorkloadProfile &profile,
                       const std::string &path);
WorkloadProfile loadProfileFromFile(const std::string &path);

} // namespace rppm

#endif // RPPM_PROFILE_SERIALIZE_HH

/**
 * @file
 * Profile serialization.
 *
 * The whole point of RPPM is that the profile is collected once and
 * reused for every subsequent prediction; that only pays off if profiles
 * are durable artifacts. Two formats are provided, both preserving
 * everything the model consumes (per-epoch counters, instruction mix,
 * all reuse-distance histograms, per-static-branch outcome counts,
 * micro-traces and the synchronization structure):
 *
 *  - a line-oriented text format ("RPPMPROF 1"): human-readable, handy
 *    for debugging and diffing;
 *  - the binary container format ("RPPMPRF", common/binio.hh; same
 *    header/block discipline as the RPPMTRC trace format): compact and
 *    fast, used by the Study ProfileCache's serialized tier. Old-version
 *    or foreign files are rejected with std::invalid_argument, never
 *    half-decoded.
 *
 * Round-tripping through either format is exact with respect to
 * predictions: predict(load(save(p))) == predict(p) for every
 * configuration. Both writers emit byte-deterministic output (maps are
 * sorted before writing).
 */

#ifndef RPPM_PROFILE_SERIALIZE_HH
#define RPPM_PROFILE_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "profile/epoch_profile.hh"

namespace rppm {

/** Write @p profile to @p os; throws std::runtime_error on I/O error. */
void saveProfile(const WorkloadProfile &profile, std::ostream &os);

/** Parse a profile from @p is; throws std::invalid_argument on bad
 *  input (wrong magic, truncated stream, malformed records). */
WorkloadProfile loadProfile(std::istream &is);

/** Convenience wrappers over file paths. */
void saveProfileToFile(const WorkloadProfile &profile,
                       const std::string &path);
WorkloadProfile loadProfileFromFile(const std::string &path);

/** Current RPPMPRF binary format version. Version 2 added CRC32C
 *  trailers to every column block (common/binio.hh); version 1 files
 *  (no trailers) still load, just without integrity verification. */
constexpr uint32_t kProfileFormatVersion = 2;

/** Oldest RPPMPRF version the loader accepts. */
constexpr uint32_t kProfileFormatVersionMin = 1;

/** First version whose column blocks carry CRC32C trailers. */
constexpr uint32_t kProfileFormatVersionCrc = 2;

/** Write @p profile in the binary container format; throws
 *  std::runtime_error on I/O error. */
void saveProfileBinary(const WorkloadProfile &profile, std::ostream &os);

/** Parse a binary-format profile; throws std::invalid_argument on bad
 *  magic, foreign byte order, unsupported version or malformed input. */
WorkloadProfile loadProfileBinary(std::istream &is);

/** Convenience wrappers over file paths (binary format). */
void saveProfileBinaryToFile(const WorkloadProfile &profile,
                             const std::string &path);
WorkloadProfile loadProfileBinaryFromFile(const std::string &path);

} // namespace rppm

#endif // RPPM_PROFILE_SERIALIZE_HH

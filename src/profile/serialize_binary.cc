/**
 * @file
 * Binary profile serialization ("RPPMPRF" container, see serialize.hh).
 *
 * Layout: header (magic, endianness, version), then name, thread count,
 * the sorted barrier/condvar maps, sync counts, and per thread the epoch
 * list. Each epoch stores its scalars, the mix array, the seven
 * histograms as sparse (value, count) pairs, the branch table sorted by
 * PC, and the micro-traces as packed op records. Output is
 * byte-deterministic for a given profile.
 */

#include "profile/serialize.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/binio.hh"

namespace rppm {

namespace {

constexpr char kProfileMagic[8] = {'R', 'P', 'P', 'M', 'P', 'R', 'F', '\0'};

/** Sparse histogram entry: representative value (kInfinity for the
 *  infinite bucket) and sample count. */
struct HistEntry
{
    uint64_t value;
    uint64_t count;
};

/** Packed micro-trace op. */
struct PackedMop
{
    uint64_t localRd;
    uint64_t globalRd;
    uint16_t dep1;
    uint16_t dep2;
    uint8_t op;
    uint8_t pad[3];
};

static_assert(sizeof(HistEntry) == 16);
static_assert(sizeof(PackedMop) == 24);

// Block tags.
enum : uint32_t
{
    kTagHist = 0x48495354,     // 'HIST'
    kTagBranches = 0x42524e43, // 'BRNC'
    kTagMicro = 0x4d4f505f,    // 'MOP_'
    kTagMix = 0x4d495800,      // 'MIX'
    kTagBarriers = 0x42415200, // 'BAR'
    kTagCondVars = 0x43565200, // 'CVR'
};

void
writeHistogram(BinWriter &out, const LogHistogram &hist)
{
    std::vector<HistEntry> entries;
    hist.forEach([&entries](uint64_t value, uint64_t count) {
        entries.push_back({value, count});
    });
    out.column(kTagHist, entries);
}

LogHistogram
readHistogram(BinReader &in)
{
    LogHistogram hist;
    for (const HistEntry &e : in.column<HistEntry>(kTagHist, "histogram"))
        hist.add(e.value, e.count);
    return hist;
}

void
writeEpoch(BinWriter &out, const EpochProfile &epoch)
{
    out.u64(epoch.numOps);
    out.u64(epoch.numLoads);
    out.u64(epoch.numStores);
    out.u64(epoch.numBranches);
    out.u64(epoch.loadsDependingOnLoad);
    out.u8(static_cast<uint8_t>(epoch.endType));
    out.u32(epoch.endArg);

    std::vector<uint64_t> mix(epoch.mix.begin(), epoch.mix.end());
    out.column(kTagMix, mix);

    writeHistogram(out, epoch.depDist);
    writeHistogram(out, epoch.localRd);
    writeHistogram(out, epoch.globalRd);
    writeHistogram(out, epoch.loadLocalRd);
    writeHistogram(out, epoch.loadGlobalRd);
    writeHistogram(out, epoch.instrRd);
    writeHistogram(out, epoch.loadGap);

    // Branch counts sorted by PC so the output is byte-deterministic.
    std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> branches;
    epoch.branches.forEach(
        [&branches](uint64_t pc, uint64_t taken, uint64_t total) {
            branches.emplace_back(pc, taken, total);
        });
    std::sort(branches.begin(), branches.end());
    std::vector<uint64_t> flat;
    flat.reserve(branches.size() * 3);
    for (const auto &[pc, taken, total] : branches) {
        flat.push_back(pc);
        flat.push_back(taken);
        flat.push_back(total);
    }
    out.column(kTagBranches, flat);

    out.u64(epoch.microTraces.size());
    for (const MicroTrace &mt : epoch.microTraces) {
        std::vector<PackedMop> mops;
        mops.reserve(mt.ops.size());
        for (const MicroTraceOp &op : mt.ops) {
            PackedMop m{};
            m.localRd = op.localRd;
            m.globalRd = op.globalRd;
            m.dep1 = op.dep1;
            m.dep2 = op.dep2;
            m.op = static_cast<uint8_t>(op.op);
            mops.push_back(m);
        }
        out.column(kTagMicro, mops);
    }
}

EpochProfile
readEpoch(BinReader &in)
{
    EpochProfile epoch;
    epoch.numOps = in.u64("epoch numOps");
    epoch.numLoads = in.u64("epoch numLoads");
    epoch.numStores = in.u64("epoch numStores");
    epoch.numBranches = in.u64("epoch numBranches");
    epoch.loadsDependingOnLoad = in.u64("epoch loadsDependingOnLoad");
    const uint8_t end_type = in.u8("epoch endType");
    if (end_type >= static_cast<uint8_t>(SyncType::NumTypes))
        in.fail("bad epoch end type");
    epoch.endType = static_cast<SyncType>(end_type);
    epoch.endArg = in.u32("epoch endArg");

    const std::vector<uint64_t> mix = in.column<uint64_t>(kTagMix, "mix");
    if (mix.size() != epoch.mix.size())
        in.fail("mix array size mismatch");
    std::copy(mix.begin(), mix.end(), epoch.mix.begin());

    epoch.depDist = readHistogram(in);
    epoch.localRd = readHistogram(in);
    epoch.globalRd = readHistogram(in);
    epoch.loadLocalRd = readHistogram(in);
    epoch.loadGlobalRd = readHistogram(in);
    epoch.instrRd = readHistogram(in);
    epoch.loadGap = readHistogram(in);

    const std::vector<uint64_t> flat =
        in.column<uint64_t>(kTagBranches, "branch counts");
    if (flat.size() % 3 != 0)
        in.fail("branch count block not a multiple of 3");
    for (size_t b = 0; b < flat.size(); b += 3)
        epoch.branches.addCounts(flat[b], flat[b + 1], flat[b + 2]);

    const uint64_t traces = in.u64("micro-trace count");
    // Each micro-trace costs at least a 16-byte block header, so a count
    // beyond the remaining bytes is corruption; fail before reserving.
    if (traces > in.remainingBytes() / 16)
        in.fail("micro-trace count exceeds file size");
    epoch.microTraces.reserve(traces);
    for (uint64_t t = 0; t < traces; ++t) {
        MicroTrace mt;
        for (const PackedMop &m :
             in.column<PackedMop>(kTagMicro, "micro-trace ops")) {
            if (m.op >= static_cast<uint8_t>(OpClass::NumClasses))
                in.fail("bad micro-trace op class");
            MicroTraceOp op;
            op.op = static_cast<OpClass>(m.op);
            op.dep1 = m.dep1;
            op.dep2 = m.dep2;
            op.localRd = m.localRd;
            op.globalRd = m.globalRd;
            mt.ops.push_back(op);
        }
        epoch.microTraces.push_back(std::move(mt));
    }
    return epoch;
}

} // namespace

void
saveProfileBinary(const WorkloadProfile &profile, std::ostream &os)
{
    BinWriter out(kProfileMagic, kProfileFormatVersion);
    out.str(profile.name);
    out.u32(profile.numThreads);

    // Sort map contents so the output is byte-deterministic.
    const std::map<uint32_t, uint32_t> barriers(
        profile.barrierPopulation.begin(), profile.barrierPopulation.end());
    std::vector<uint32_t> barrier_flat;
    barrier_flat.reserve(barriers.size() * 2);
    for (const auto &[id, pop] : barriers) {
        barrier_flat.push_back(id);
        barrier_flat.push_back(pop);
    }
    out.column(kTagBarriers, barrier_flat);

    const std::map<uint32_t, CondVarClass> condvars(
        profile.condVarClasses.begin(), profile.condVarClasses.end());
    std::vector<uint32_t> condvar_flat;
    condvar_flat.reserve(condvars.size() * 2);
    for (const auto &[id, cls] : condvars) {
        condvar_flat.push_back(id);
        condvar_flat.push_back(static_cast<uint32_t>(cls));
    }
    out.column(kTagCondVars, condvar_flat);

    out.u64(profile.syncCounts.criticalSections);
    out.u64(profile.syncCounts.barriers);
    out.u64(profile.syncCounts.condVars);

    for (const ThreadProfile &thread : profile.threads) {
        out.u64(thread.epochs.size());
        for (const EpochProfile &epoch : thread.epochs)
            writeEpoch(out, epoch);
    }

    os.write(out.data().data(),
             static_cast<std::streamsize>(out.data().size()));
    if (!os)
        throw std::runtime_error("profile write failed");
}

WorkloadProfile
loadProfileBinary(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string data = buf.str();

    BinReader in(data, kProfileMagic, kProfileFormatVersionMin,
                 kProfileFormatVersion);
    in.setBlockCrcVerify(in.version() >= kProfileFormatVersionCrc);
    WorkloadProfile profile;
    profile.name = in.str("name");
    profile.numThreads = in.u32("thread count");

    const std::vector<uint32_t> barrier_flat =
        in.column<uint32_t>(kTagBarriers, "barriers");
    if (barrier_flat.size() % 2 != 0)
        in.fail("barrier block not a multiple of 2");
    for (size_t b = 0; b < barrier_flat.size(); b += 2)
        profile.barrierPopulation[barrier_flat[b]] = barrier_flat[b + 1];

    const std::vector<uint32_t> condvar_flat =
        in.column<uint32_t>(kTagCondVars, "condvars");
    if (condvar_flat.size() % 2 != 0)
        in.fail("condvar block not a multiple of 2");
    for (size_t c = 0; c < condvar_flat.size(); c += 2) {
        profile.condVarClasses[condvar_flat[c]] =
            static_cast<CondVarClass>(condvar_flat[c + 1]);
    }

    profile.syncCounts.criticalSections = in.u64("criticalSections");
    profile.syncCounts.barriers = in.u64("barriers");
    profile.syncCounts.condVars = in.u64("condVars");

    // A corrupt thread count would otherwise drive a huge reserve.
    if (profile.numThreads > data.size())
        in.fail("thread count exceeds file size");
    for (uint32_t t = 0; t < profile.numThreads; ++t) {
        const uint64_t epochs = in.u64("epoch count");
        if (epochs > data.size())
            in.fail("epoch count exceeds file size");
        ThreadProfile thread;
        thread.epochs.reserve(epochs);
        for (uint64_t e = 0; e < epochs; ++e)
            thread.epochs.push_back(readEpoch(in));
        profile.threads.push_back(std::move(thread));
    }
    if (!in.atEnd())
        in.fail("trailing bytes after last thread");
    return profile;
}

void
saveProfileBinaryToFile(const WorkloadProfile &profile,
                        const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open " + path + " for writing");
    saveProfileBinary(profile, os);
}

WorkloadProfile
loadProfileBinaryFromFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    return loadProfileBinary(is);
}

} // namespace rppm

/**
 * @file
 * The one statistics sweep shared by every profiler engine (internal).
 *
 * Historically the per-record statistics loop — instruction mix,
 * dependence distances, instruction-stream reuse, micro-trace sampling,
 * branch entropy, load gaps, pointer-chase detection — existed twice:
 * once in the fused engine's process_run (profiler.cc) and once in the
 * parallel engine's sweepThread (profiler_parallel.cc), differing only
 * in where the memory reuse distances come from. The streaming engine
 * would have made a third copy, so the loop now lives here exactly once,
 * templated on a *reuse-distance provider*:
 *
 *   provider(memIdx, isStore) -> {localRd, globalRd}
 *
 * The fused engine instantiates it with a live provider that probes the
 * global LineTable in replay order; the parallel and streaming engines
 * instantiate it with array readers over reuse distances pre-resolved by
 * their phase D. Everything else in the loop is shared, which is what
 * pins the engines byte-identical by construction.
 *
 * On top of the shared run loop, this header provides the *segmented*
 * sweep used for finer-than-thread parallelism: a thread's record range
 * is split at arbitrary record boundaries, each segment is swept
 * independently from a carried cursor (SweepState), and a cheap
 * sequential stitch per thread resolves the two pieces of state that
 * cross segment boundaries — instruction-reuse first touches (deferred
 * as pendings against the thread's long-lived InstrLineMap) and
 * micro-trace windows left open at the boundary. Stitching is exact, not
 * approximate: histogram adds commute, so resolving a first touch after
 * the fact produces the same buckets the sequential sweep would have.
 * The parallel engine uses segments to scale phase E past the workload's
 * thread count; the streaming engine uses one segment per (chunk,
 * thread) with the cursor carried across chunks.
 */

#ifndef RPPM_PROFILE_STAT_SWEEP_HH
#define RPPM_PROFILE_STAT_SWEEP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <set>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hh"
#include "profile/epoch_profile.hh"
#include "profile/profiler.hh"
#include "profile/reuse_tables.hh"
#include "trace/columnar.hh"

namespace rppm {

/** Ring size for load->load dependence detection (all engines). */
constexpr size_t kSweepRecentOps = 512;

/**
 * The sweep's complete scalar cursor at a record boundary. Copying this
 * struct at position i and resuming from the copy reproduces the exact
 * statistics the uninterrupted sweep would emit from i on — that is the
 * whole carried-state handoff contract of segmented and chunked sweeps.
 * All cursors are absolute (indices into the thread's full columns);
 * windowed engines translate via OffsetSpan, not by resetting cursors.
 */
struct SweepState
{
    size_t memIdx = 0;  ///< next entry in the sparse addr column
    size_t brIdx = 0;   ///< next entry in the sparse taken column
    size_t syncIdx = 0; ///< next entry in the sparse sync columns
    uint64_t instrSeq = 0;
    uint64_t opsInEpoch = 0;
    uint64_t opsSinceLastLoad = 0;
    uint64_t nextMicroTraceAt = 0;
    uint64_t microTraceRemaining = 0;
    uint64_t emitted = 0;
    /** Recent op classes, indexed by absolute emitted % kSweepRecentOps.
     *  OpClass::IntAlu is 0, so zero-init is the required fill. */
    std::array<OpClass, kSweepRecentOps> recentOps{};
};

/** Read-only view of one thread's sparse sync columns. */
struct SyncView
{
    const uint64_t *pos = nullptr;
    const SyncType *type = nullptr;
    const uint32_t *arg = nullptr;
    size_t count = 0;
    size_t numRecords = 0; ///< sentinel when no sync events remain

    size_t
    next(size_t syncIdx) const
    {
        return syncIdx < count ? static_cast<size_t>(pos[syncIdx]) :
                                 numRecords;
    }
};

inline SyncView
syncView(const ThreadColumns &cols)
{
    return SyncView{cols.syncPos.data(), cols.syncType.data(),
                    cols.syncArg.data(), cols.syncPos.size(),
                    cols.numRecords()};
}

/**
 * A pointer that answers absolute record indices for a mapped window:
 * span[i] reads element i - base of the underlying slice. Lets windowed
 * engines keep every SweepState cursor absolute.
 */
template <typename T>
struct OffsetSpan
{
    const T *p = nullptr;
    size_t base = 0;

    const T &operator[](size_t i) const { return p[i - base]; }
};

/** Column bundle for windowed sweeps (streaming chunks). */
struct WindowCols
{
    OffsetSpan<OpClass> op;
    OffsetSpan<uint32_t> pc;
    OffsetSpan<uint16_t> dep1;
    OffsetSpan<uint16_t> dep2;
    OffsetSpan<uint8_t> taken;
};

/**
 * One run of pure micro-ops [start, end) of one thread — no sync records
 * inside, so the epoch reference is stable. This is THE per-record
 * statistics loop: a field-for-field port of the legacy per-record
 * process_op, fissioned into tight per-column loops (each statistic is a
 * histogram or counter whose content depends only on per-component
 * order, which each loop preserves).
 *
 * @param cols  column bundle: cols.op/pc/dep1/dep2 indexed by absolute
 *              record index, cols.taken by ts.brIdx
 * @param ts    carried cursor (advanced in place)
 * @param instr instruction-line -> last-fetch map; lookup(line, inserted)
 * @param rd    reuse-distance provider: rd(memIdx, isStore) ->
 *              {localRd, globalRd} for the access at sparse index memIdx
 * @param firstTouch hook for an instruction line first seen by @p instr:
 *              firstTouch(ep, line, instrSeq). Whole-thread sweeps add
 *              kInfinity (a cold fetch); segmented sweeps defer the
 *              decision to the stitcher.
 */
template <typename Cols, typename InstrMap, typename RdProvider,
          typename FirstTouch>
void
sweepRun(const Cols &cols, const ProfilerOptions &opts, SweepState &ts,
         InstrMap &instr, RdProvider &&rd, FirstTouch &&firstTouch,
         EpochProfile &ep, size_t start, size_t end)
{
    // --- Instruction mix (op column only).
    {
        std::array<uint64_t, kNumOpClasses> mix_local{};
        for (size_t i = start; i < end; ++i)
            ++mix_local[static_cast<size_t>(cols.op[i])];
        for (size_t c = 0; c < kNumOpClasses; ++c)
            ep.mix[c] += mix_local[c];
        ep.numOps += end - start;
    }

    // --- Dependence distances (dep columns) and instruction-stream
    //     reuse distance at line granularity (pc column).
    for (size_t i = start; i < end; ++i) {
        if (cols.dep1[i])
            ep.depDist.add(cols.dep1[i]);
        if (cols.dep2[i])
            ep.depDist.add(cols.dep2[i]);

        const uint64_t pc_line = cols.pc[i] / opts.lineBytes;
        ++ts.instrSeq;
        bool inserted = false;
        uint64_t &last_fetch = instr.lookup(pc_line, inserted);
        if (!inserted) {
            ep.instrRd.add(ts.instrSeq - last_fetch - 1);
        } else {
            firstTouch(ep, pc_line, ts.instrSeq);
        }
        last_fetch = ts.instrSeq;
    }

    // --- Stateful sweep: micro-trace sampling windows, memory /
    //     StatStack reuse distances, branches, MLP statistics.
    //     Specialized on whether any op of this run can fall inside a
    //     sampling window: when none can (the common case — the windows
    //     cover ~10% of the stream), the per-op sampling checks and the
    //     micro-trace push vanish from the loop.
    auto stateful = [&](auto sampling_tag, size_t s_begin, size_t s_end) {
        constexpr bool kSampling = decltype(sampling_tag)::value;
    for (size_t i = s_begin; i < s_end; ++i) {
        const OpClass op = cols.op[i];

        // Micro-trace sampling policy: a snippet at each epoch start and
        // then one every microTraceInterval ops.
        if (kSampling && ts.microTraceRemaining == 0 &&
            ts.opsInEpoch >= ts.nextMicroTraceAt) {
            // No up-front reserve: epochs delimited by frequent sync
            // (critical-section-heavy workloads) truncate most snippets
            // after a handful of ops, so geometric growth wastes less
            // than reserving the full snippet would.
            ep.microTraces.emplace_back();
            ts.microTraceRemaining = opts.microTraceLength;
            ts.nextMicroTraceAt = ts.opsInEpoch + opts.microTraceInterval;
        }

        uint64_t local_rd = LogHistogram::kInfinity;
        uint64_t global_rd = LogHistogram::kInfinity;

        if (isMemory(op)) {
            const bool is_store = op == OpClass::Store;
            const std::pair<uint64_t, uint64_t> rds =
                rd(ts.memIdx, is_store);
            ++ts.memIdx;
            local_rd = rds.first;
            global_rd = rds.second;

            ep.localRd.add(local_rd);
            ep.globalRd.add(global_rd);
            if (!is_store) {
                ep.loadLocalRd.add(local_rd);
                ep.loadGlobalRd.add(global_rd);
            }

            if (is_store) {
                ++ep.numStores;
            } else {
                ++ep.numLoads;
                ep.loadGap.add(ts.opsSinceLastLoad);
                ts.opsSinceLastLoad = 0;
                // Pointer-chase detection: does a source operand name a
                // load among the recent ops?
                auto dep_is_load = [&](uint16_t dep) {
                    if (dep == 0 || dep > ts.emitted ||
                        dep >= kSweepRecentOps) {
                        return false;
                    }
                    return ts.recentOps[(ts.emitted - dep) %
                                        kSweepRecentOps] == OpClass::Load;
                };
                if (dep_is_load(cols.dep1[i]) ||
                    dep_is_load(cols.dep2[i])) {
                    ++ep.loadsDependingOnLoad;
                }
            }
        }

        if (op == OpClass::Branch) {
            ++ep.numBranches;
            ep.branches.record(cols.pc[i], cols.taken[ts.brIdx++] != 0);
        }

        if (kSampling && ts.microTraceRemaining > 0) {
            MicroTraceOp mop;
            mop.op = op;
            mop.dep1 = cols.dep1[i];
            mop.dep2 = cols.dep2[i];
            mop.localRd = local_rd;
            mop.globalRd = global_rd;
            ep.microTraces.back().ops.push_back(mop);
            --ts.microTraceRemaining;
        }

        ts.recentOps[ts.emitted % kSweepRecentOps] = op;
        ++ts.emitted;
        ++ts.opsInEpoch;
        if (!isMemory(op) || op == OpClass::Store)
            ++ts.opsSinceLastLoad;
    }
    };

    // A run is sampling-free iff no window is open and the window
    // trigger (opsInEpoch >= nextMicroTraceAt) cannot fire for any op in
    // it.
    if (ts.microTraceRemaining == 0 &&
        ts.opsInEpoch + (end - start) <= ts.nextMicroTraceAt) {
        stateful(std::false_type{}, start, end);
    } else {
        stateful(std::true_type{}, start, end);
    }
}

/** firstTouch policy of whole-thread sweeps: a first fetch of an
 *  instruction line is a cold (infinite-distance) fetch. */
inline void
coldFirstTouch(EpochProfile &ep, uint64_t, uint64_t)
{
    ep.instrRd.add(LogHistogram::kInfinity);
}

/**
 * Advance @p ts across records [lo, hi) exactly as the sweep would —
 * same sampling-window state machine, same epoch resets, same cursor
 * arithmetic — without emitting any statistics. O(records) over the
 * 1-byte op column; this is how segment entry cursors are computed.
 */
template <typename Cols>
void
advanceSweepCursor(const Cols &cols, const SyncView &sync,
                   const ProfilerOptions &opts, SweepState &ts, size_t lo,
                   size_t hi)
{
    size_t i = lo;
    while (i < hi) {
        const size_t next_sync = sync.next(ts.syncIdx);
        if (i == next_sync) {
            const SyncType type = sync.type[ts.syncIdx];
            ++ts.syncIdx;
            ++i;
            if (type == SyncType::CondMarker)
                continue; // markers do not delineate epochs
            ts.opsInEpoch = 0;
            ts.nextMicroTraceAt = 0;
            ts.microTraceRemaining = 0;
            continue;
        }
        const size_t run_end = std::min(next_sync, hi);
        for (; i < run_end; ++i) {
            const OpClass op = cols.op[i];
            if (ts.microTraceRemaining == 0 &&
                ts.opsInEpoch >= ts.nextMicroTraceAt) {
                ts.microTraceRemaining = opts.microTraceLength;
                ts.nextMicroTraceAt =
                    ts.opsInEpoch + opts.microTraceInterval;
            }
            if (isMemory(op)) {
                ++ts.memIdx;
                if (op == OpClass::Load)
                    ts.opsSinceLastLoad = 0;
            } else if (op == OpClass::Branch) {
                ++ts.brIdx;
            }
            if (ts.microTraceRemaining > 0)
                --ts.microTraceRemaining;
            ts.recentOps[ts.emitted % kSweepRecentOps] = op;
            ++ts.emitted;
            ++ts.instrSeq;
            ++ts.opsInEpoch;
            if (!isMemory(op) || op == OpClass::Store)
                ++ts.opsSinceLastLoad;
        }
    }
}

/** An instruction line first fetched inside a segment: whether the fetch
 *  was cold or a reuse of an earlier segment's fetch is only decidable
 *  at stitch time, against the thread's carried InstrLineMap. */
struct InstrPending
{
    uint64_t line;
    uint64_t seq;   ///< instrSeq at the touch
    uint32_t epoch; ///< index into the segment's epoch vector
};

/** Result of sweeping one segment independently of its predecessors. */
struct SegmentSweep
{
    /** Partial epochs; the first continues whatever epoch was open at
     *  the segment boundary (possibly a brand-new empty one). */
    std::vector<EpochProfile> epochs;
    std::vector<InstrPending> pendings;
    /** Segment-local line -> last fetch seq (exported to the carried
     *  map at stitch; its key set is exactly the pendings' lines). */
    SeqTable instr{size_t{1} << 8};
    /** Entry cursor had an open micro-trace window: the segment's first
     *  micro-trace extends the thread's currently open one. */
    bool firstTraceContinues = false;
    /** Cursor after the segment (chunked engines carry it forward). */
    SweepState exit;
};

/**
 * Sweep records [lo, hi) of one thread from entry cursor @p entry.
 * Pure function of (columns, options, entry, rd): segments can run on
 * any worker in any order. @p rd is the reuse-distance provider (see
 * sweepRun).
 */
template <typename Cols, typename RdProvider>
SegmentSweep
runSweepSegment(const Cols &cols, const SyncView &sync,
                const ProfilerOptions &opts, const SweepState &entry,
                RdProvider &&rd, size_t lo, size_t hi)
{
    SegmentSweep seg;
    SweepState ts = entry;
    seg.firstTraceContinues = ts.microTraceRemaining > 0;
    seg.epochs.emplace_back();
    // Continuation ops must land in "the open micro-trace", which lives
    // in an earlier segment; give them a local trace the stitcher will
    // splice onto it.
    if (seg.firstTraceContinues)
        seg.epochs.back().microTraces.emplace_back();

    uint32_t epochIdx = 0;
    auto firstTouch = [&](EpochProfile &, uint64_t line, uint64_t seq) {
        seg.pendings.push_back(InstrPending{line, seq, epochIdx});
    };

    size_t i = lo;
    while (i < hi) {
        const size_t next_sync = sync.next(ts.syncIdx);
        if (i == next_sync) {
            const SyncType type = sync.type[ts.syncIdx];
            const uint32_t arg = sync.arg[ts.syncIdx];
            // Windowed engines skip whole-column validation; re-assert
            // the sync-slot neutrality invariant the sweep relies on
            // here, where it costs O(#sync) instead of O(records).
            RPPM_REQUIRE(cols.op[i] == OpClass::IntAlu &&
                             cols.pc[i] == 0 && cols.dep1[i] == 0 &&
                             cols.dep2[i] == 0,
                         "sync slot carries micro-op data");
            ++ts.syncIdx;
            ++i;
            if (type == SyncType::CondMarker)
                continue; // markers do not delineate epochs
            seg.epochs.back().endType = type;
            seg.epochs.back().endArg = arg;
            seg.epochs.emplace_back();
            ++epochIdx;
            ts.opsInEpoch = 0;
            ts.nextMicroTraceAt = 0;
            ts.microTraceRemaining = 0;
            continue;
        }
        // The whole run up to the next sync event (or segment end):
        // quantum boundaries only order the global interleaving, which
        // the reuse-distance provider has already absorbed.
        const size_t run_end = std::min(next_sync, hi);
        sweepRun(cols, opts, ts, seg.instr, rd, firstTouch,
                 seg.epochs.back(), i, run_end);
        i = run_end;
    }
    seg.exit = ts;
    return seg;
}

/** Merge a segment's first (partial) epoch into the thread's currently
 *  open epoch. Every constituent merge is exact: counters add,
 *  histograms add bucket-wise, branch tables add per-PC counts. */
inline void
mergeEpochInto(EpochProfile &open, EpochProfile &first,
               bool firstTraceContinues)
{
    open.numOps += first.numOps;
    open.numLoads += first.numLoads;
    open.numStores += first.numStores;
    open.numBranches += first.numBranches;
    open.loadsDependingOnLoad += first.loadsDependingOnLoad;
    for (size_t c = 0; c < kNumOpClasses; ++c)
        open.mix[c] += first.mix[c];
    open.depDist.merge(first.depDist);
    open.localRd.merge(first.localRd);
    open.globalRd.merge(first.globalRd);
    open.loadLocalRd.merge(first.loadLocalRd);
    open.loadGlobalRd.merge(first.loadGlobalRd);
    open.instrRd.merge(first.instrRd);
    open.loadGap.merge(first.loadGap);
    open.branches.merge(first.branches);

    size_t m0 = 0;
    if (firstTraceContinues && !first.microTraces.empty()) {
        RPPM_ASSERT(!open.microTraces.empty());
        std::vector<MicroTraceOp> &dst = open.microTraces.back().ops;
        const std::vector<MicroTraceOp> &src = first.microTraces[0].ops;
        dst.insert(dst.end(), src.begin(), src.end());
        m0 = 1;
    }
    for (size_t m = m0; m < first.microTraces.size(); ++m)
        open.microTraces.push_back(std::move(first.microTraces[m]));

    // Whichever segment closes the epoch sets these; until then both
    // sides hold the open-epoch default (None, 0).
    open.endType = first.endType;
    open.endArg = first.endArg;
}

/**
 * Stitch one segment into the thread's profile, in segment order:
 * resolve the deferred instruction first touches against the thread's
 * carried map, roll the segment's fetches into it, then splice the
 * partial epochs. Sequential per thread (different threads stitch
 * concurrently); cost is O(pendings + epochs), not O(records).
 */
inline void
stitchSweepSegment(ThreadProfile &tp, InstrLineMap &carried,
                   SegmentSweep &&seg)
{
    for (const InstrPending &p : seg.pendings) {
        bool fresh = false;
        const uint64_t last = carried.lookup(p.line, fresh);
        EpochProfile &ep = seg.epochs[p.epoch];
        if (!fresh) {
            // An earlier segment fetched this line: the distance the
            // sequential sweep would have recorded at this very op.
            ep.instrRd.add(p.seq - last - 1);
        } else {
            ep.instrRd.add(LogHistogram::kInfinity);
        }
    }
    // Export the segment's final fetch sequence per line. Every line the
    // segment touched appears in pendings exactly once (its first
    // touch), so pendings double as the export's key list — including
    // any slot the resolution loop above may have freshly inserted.
    for (const InstrPending &p : seg.pendings) {
        bool ignored = false;
        const uint64_t last = seg.instr.lookup(p.line, ignored);
        carried.lookup(p.line, ignored) = last;
    }

    if (tp.epochs.empty())
        tp.epochs.emplace_back();
    mergeEpochInto(tp.epochs.back(), seg.epochs[0],
                   seg.firstTraceContinues);
    for (size_t e = 1; e < seg.epochs.size(); ++e)
        tp.epochs.push_back(std::move(seg.epochs[e]));
}

/**
 * Phase F of every engine: synchronization counts and condvar
 * classification from the sparse sync columns (order-independent
 * aggregates, paper Sec. III-B).
 */
inline void
classifySyncProfile(WorkloadProfile &profile,
                    const std::vector<SyncView> &sync)
{
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_waiters;
    std::unordered_map<uint32_t, std::set<uint32_t>> cond_releasers;
    for (uint32_t t = 0; t < sync.size(); ++t) {
        const SyncView &sv = sync[t];
        for (size_t k = 0; k < sv.count; ++k) {
            const uint32_t arg = sv.arg[k];
            switch (sv.type[k]) {
              case SyncType::MutexLock:
                ++profile.syncCounts.criticalSections;
                break;
              case SyncType::BarrierWait:
                ++profile.syncCounts.barriers;
                break;
              case SyncType::CondBarrier:
                ++profile.syncCounts.condVars;
                cond_waiters[arg].insert(t);
                cond_releasers[arg].insert(t);
                break;
              case SyncType::QueuePop:
                ++profile.syncCounts.condVars;
                cond_waiters[arg].insert(t);
                break;
              case SyncType::QueuePush:
                ++profile.syncCounts.condVars;
                cond_releasers[arg].insert(t);
                break;
              case SyncType::CondMarker:
                // Source marker: the thread *could* wait here.
                cond_waiters[arg];
                break;
              default:
                break;
            }
        }
    }
    // Classify condvar-backed objects: symmetric waiter/releaser sets
    // mean a barrier; disjoint sets mean producer-consumer.
    // rppm-lint: ordered-ok(distinct condVarClasses key per id)
    for (const auto &[id, waiters] : cond_waiters) {
        const auto rel_it = cond_releasers.find(id);
        std::set<uint32_t> releasers =
            rel_it == cond_releasers.end() ? std::set<uint32_t>{} :
            rel_it->second;
        const bool symmetric = !waiters.empty() && waiters == releasers;
        profile.condVarClasses[id] = symmetric ?
            CondVarClass::BarrierLike : CondVarClass::ProducerConsumer;
    }
}

} // namespace rppm

#endif // RPPM_PROFILE_STAT_SWEEP_HH

#include "rppm/baselines.hh"

#include <algorithm>

#include "common/assert.hh"
#include "rppm/thread_model.hh"

namespace rppm {

double
predictMain(const WorkloadProfile &profile, const MulticoreConfig &cfg)
{
    RPPM_REQUIRE(!profile.threads.empty(), "profile has no threads");
    // Thread 0 is the thread initiated at program start.
    return predictThread(profile.threads[0], cfg).activeCycles;
}

double
predictCrit(const WorkloadProfile &profile, const MulticoreConfig &cfg)
{
    RPPM_REQUIRE(!profile.threads.empty(), "profile has no threads");
    double worst = 0.0;
    for (const ThreadProfile &thread : profile.threads) {
        worst = std::max(worst,
                         predictThread(thread, cfg).activeCycles);
    }
    return worst;
}

} // namespace rppm

#include "rppm/baselines.hh"

#include <algorithm>

#include "common/assert.hh"
#include "rppm/thread_model.hh"

namespace rppm {

double
predictMain(const WorkloadProfile &profile, const MulticoreConfig &cfg)
{
    RPPM_REQUIRE(!profile.threads.empty(), "profile has no threads");
    // Thread 0 is the thread initiated at program start; evaluate it on
    // its mapped core and report reference cycles.
    return predictThread(profile.threads[0], cfg, cfg.threadCore(0))
               .activeCycles *
        cfg.threadTimeScale(0);
}

double
predictCrit(const WorkloadProfile &profile, const MulticoreConfig &cfg)
{
    RPPM_REQUIRE(!profile.threads.empty(), "profile has no threads");
    // The critical thread is the slowest in wall-clock terms, so each
    // thread's cycles are compared on the common reference time base.
    double worst = 0.0;
    for (uint32_t t = 0; t < profile.threads.size(); ++t) {
        worst = std::max(
            worst,
            predictThread(profile.threads[t], cfg, cfg.threadCore(t))
                    .activeCycles *
                cfg.threadTimeScale(t));
    }
    return worst;
}

} // namespace rppm

/**
 * @file
 * The paper's naive baseline predictors (Sec. II-C), used as comparison
 * points in the Fig. 4 evaluation:
 *
 *  - MAIN: profile only the main thread, apply the single-threaded model,
 *    and use the main thread's predicted time as the application's
 *    execution time.
 *  - CRIT: predict every thread independently with the single-threaded
 *    model and use the slowest (critical) thread's time.
 *
 * Neither models synchronization, shared-resource interference beyond
 * what the profile's reuse distances capture, nor idle time.
 */

#ifndef RPPM_RPPM_BASELINES_HH
#define RPPM_RPPM_BASELINES_HH

#include "arch/config.hh"
#include "profile/epoch_profile.hh"

namespace rppm {

/** MAIN baseline: predicted cycles of the main thread only, evaluated
 *  on its mapped core and reported in reference cycles. */
double predictMain(const WorkloadProfile &profile,
                   const MulticoreConfig &cfg);

/** CRIT baseline: predicted reference cycles of the slowest thread
 *  (each thread evaluated on its mapped core). */
double predictCrit(const WorkloadProfile &profile,
                   const MulticoreConfig &cfg);

} // namespace rppm

#endif // RPPM_RPPM_BASELINES_HH

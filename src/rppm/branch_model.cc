#include "rppm/branch_model.hh"

#include <algorithm>

namespace rppm {

BranchModelCache &
BranchModelCache::instance()
{
    static BranchModelCache cache;
    return cache;
}

const EntropyMissRateModel &
BranchModelCache::get(const BranchPredictorConfig &cfg)
{
    const auto key = std::make_pair(cfg.totalBytes, cfg.historyBits);
    // std::map iterators are insert-stable, so the reference returned
    // here survives later insertions; the lock only guards the lookup
    // and the (idempotent) first-use calibration.
    MutexLock lock(mutex_);
    auto it = models_.find(key);
    if (it == models_.end()) {
        it = models_.emplace(
            key, std::make_unique<EntropyMissRateModel>(cfg)).first;
    }
    return *it->second;
}

double
epochBranchMissRate(const EpochProfile &epoch, const CoreConfig &core)
{
    if (epoch.numBranches == 0)
        return 0.0;
    const EntropyMissRateModel &model =
        BranchModelCache::instance().get(core.branch);
    return model.missRate(epoch.branches.averageLinearEntropy());
}

BranchComponent
branchComponent(const EpochProfile &epoch, const CoreConfig &core,
                double penalty_per_mispredict)
{
    BranchComponent result;
    if (epoch.numBranches == 0)
        return result;

    const double miss_rate = epochBranchMissRate(epoch, core);
    result.mispredicts =
        miss_rate * static_cast<double>(epoch.numBranches);

    // Eq. 1's mbpred x (cres + cfr), with (cres + cfr) evaluated as the
    // replay-measured effective redirect cost: resolution + refill minus
    // the back-end slack that would have stalled dispatch anyway.
    result.cycles = result.mispredicts *
        std::max(penalty_per_mispredict, 1.0);
    return result;
}

} // namespace rppm

/**
 * @file
 * Branch component of Eq. 1: mbpred x (cres + cfr).
 *
 * The misprediction count mbpred comes from the workload's linear branch
 * entropy (microarchitecture-independent) mapped through the calibrated
 * per-predictor EntropyMissRateModel. The resolution time cres is the
 * average dispatch-to-execute delay of branches, obtained from the ILP
 * replay; the refill time cfr is the front-end depth.
 */

#ifndef RPPM_RPPM_BRANCH_MODEL_HH
#define RPPM_RPPM_BRANCH_MODEL_HH

#include <map>
#include <memory>

#include "arch/config.hh"
#include "common/thread_annotations.hh"
#include "branch/entropy.hh"
#include "profile/epoch_profile.hh"

namespace rppm {

/**
 * Caches EntropyMissRateModel calibrations per predictor configuration so
 * design-space sweeps pay the calibration cost once per predictor.
 * Thread-safe: grid workers share the process-wide instance. Returned
 * references stay valid for the cache's lifetime (entries are never
 * evicted).
 */
class BranchModelCache
{
  public:
    /** The calibrated map for @p cfg (built on first use). */
    const EntropyMissRateModel &get(const BranchPredictorConfig &cfg)
        RPPM_EXCLUDES(mutex_);

    /** Process-wide instance. */
    static BranchModelCache &instance();

  private:
    Mutex mutex_;
    std::map<std::pair<uint32_t, uint32_t>,
             std::unique_ptr<EntropyMissRateModel>> models_
        RPPM_GUARDED_BY(mutex_);
};

/** Predicted branch-component cycles for one epoch. */
struct BranchComponent
{
    double mispredicts = 0.0;
    double cycles = 0.0;
};

/** Entropy-predicted misprediction probability of @p epoch on @p core. */
double epochBranchMissRate(const EpochProfile &epoch,
                           const CoreConfig &core);

/**
 * Evaluate the branch component of @p epoch on @p core.
 *
 * @param penalty_per_mispredict effective front-end redirect cost of one
 *        misprediction (resolution + refill beyond back-end slack), from
 *        the epoch's ILP replay
 */
BranchComponent branchComponent(const EpochProfile &epoch,
                                const CoreConfig &core,
                                double penalty_per_mispredict);

} // namespace rppm

#endif // RPPM_RPPM_BRANCH_MODEL_HH

#include "rppm/dse.hh"

#include <algorithm>
#include <limits>

#include "common/assert.hh"
#include "rppm/memo.hh"
#include "rppm/predictor.hh"
#include "study/study.hh"

namespace rppm {

size_t
DseResult::predictedBest() const
{
    RPPM_ASSERT(!predictedSeconds.empty());
    return static_cast<size_t>(
        std::min_element(predictedSeconds.begin(), predictedSeconds.end()) -
        predictedSeconds.begin());
}

size_t
DseResult::trueBest() const
{
    RPPM_ASSERT(!simulatedSeconds.empty());
    return static_cast<size_t>(
        std::min_element(simulatedSeconds.begin(), simulatedSeconds.end()) -
        simulatedSeconds.begin());
}

std::vector<size_t>
DseResult::candidates(double bound) const
{
    const double best = predictedSeconds[predictedBest()];
    std::vector<size_t> result;
    for (size_t i = 0; i < predictedSeconds.size(); ++i) {
        if (predictedSeconds[i] <= best * (1.0 + bound))
            result.push_back(i);
    }
    return result;
}

double
DseResult::deficiency(double bound) const
{
    // Among the predicted candidates, simulation identifies the best one;
    // the deficiency is its slowdown versus the true optimum.
    const std::vector<size_t> cands = candidates(bound);
    double best_cand = std::numeric_limits<double>::infinity();
    for (size_t idx : cands)
        best_cand = std::min(best_cand, simulatedSeconds[idx]);
    const double optimum = simulatedSeconds[trueBest()];
    if (optimum <= 0.0)
        return 0.0;
    return best_cand / optimum - 1.0;
}

DseResult
exploreDesignSpace(const WorkloadSource &workload,
                   const std::vector<MulticoreConfig> &configs,
                   const DseOptions &opts)
{
    RPPM_REQUIRE(!configs.empty(), "empty design space");

    std::unique_ptr<Evaluator> oracle = makeEvaluator(opts.oracle);
    RPPM_REQUIRE(oracle->isOracle(),
                 "DSE oracle backend must be a golden reference");

    // One grid: the model predicts every design point from a single
    // profile while the oracle supplies the reference times — both
    // through the same Evaluator interface, sharing the worker pool.
    Study study;
    study.add(workload)
        .addConfigs(configs)
        .addEvaluator(makeEvaluator(opts.model))
        .addEvaluator(std::move(oracle))
        .profilerOptions(opts.study.profiler)
        .rppmOptions(opts.study.rppm)
        .simOptions(opts.study.sim)
        .jobs(opts.jobs);
    const StudyResult grid = study.run();

    DseResult result;
    result.workload = workload.name();
    const std::string &model = grid.evaluators()[0];
    const std::string &oracleName = grid.evaluators()[1];
    for (const Evaluation *cell : grid.sweep(workload.name(), model))
        result.predictedSeconds.push_back(cell->seconds);
    for (const Evaluation *cell : grid.sweep(workload.name(), oracleName))
        result.simulatedSeconds.push_back(cell->seconds);
    return result;
}

DseResult
exploreDesignSpace(const WorkloadProfile &profile,
                   const std::vector<MulticoreConfig> &configs,
                   const std::vector<double> &simulated_seconds)
{
    RPPM_REQUIRE(configs.size() == simulated_seconds.size(),
                 "one simulated time required per design point");
    RPPM_REQUIRE(!configs.empty(), "empty design space");

    // Deliberately positional (not via Study): the legacy contract
    // indexes design points by position and accepts duplicate or
    // unnamed configurations, which name-keyed grids reject. Design
    // points share one memoized engine; the key property — the same
    // profile serves every design point — now extends to every model
    // component the points have in common.
    DseResult result;
    result.workload = profile.name;
    result.simulatedSeconds = simulated_seconds;
    for (const RppmPrediction &pred : predictGrid(profile, configs))
        result.predictedSeconds.push_back(pred.totalSeconds);
    return result;
}

} // namespace rppm

/**
 * @file
 * Design-space exploration driver (paper Sec. VI-A, Table V).
 *
 * Given one profile and a set of candidate configurations, RPPM predicts
 * the execution time of each candidate and selects every design point
 * whose predicted time is within a bound of the predicted optimum. The
 * harness then scores the selection against exhaustive simulation: the
 * deficiency is how much slower the best *selected* point is than the
 * true (simulated) optimum.
 */

#ifndef RPPM_RPPM_DSE_HH
#define RPPM_RPPM_DSE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"

namespace rppm {

/** Outcome of exploring one workload over a design space. */
struct DseResult
{
    std::string workload;
    std::vector<double> predictedSeconds; ///< per design point
    std::vector<double> simulatedSeconds; ///< per design point (oracle)

    /** Index of the predicted-optimal design point. */
    size_t predictedBest() const;

    /** Index of the simulated (true) optimal design point. */
    size_t trueBest() const;

    /** Design points within @p bound of the predicted optimum. */
    std::vector<size_t> candidates(double bound) const;

    /**
     * Deficiency at @p bound: simulated time of the best candidate
     * (by simulation) relative to the true optimum, minus one. Zero when
     * the candidate set contains the true optimum.
     */
    double deficiency(double bound) const;
};

/**
 * Predict @p profile on every configuration in @p configs.
 * @p simulated_seconds must hold the matching golden-reference times.
 */
DseResult exploreDesignSpace(const WorkloadProfile &profile,
                             const std::vector<MulticoreConfig> &configs,
                             const std::vector<double> &simulated_seconds);

} // namespace rppm

#endif // RPPM_RPPM_DSE_HH

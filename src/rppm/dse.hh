/**
 * @file
 * Design-space exploration driver (paper Sec. VI-A, Table V).
 *
 * Given one profile and a set of candidate configurations, RPPM predicts
 * the execution time of each candidate and selects every design point
 * whose predicted time is within a bound of the predicted optimum. The
 * harness then scores the selection against exhaustive simulation: the
 * deficiency is how much slower the best *selected* point is than the
 * true (simulated) optimum.
 */

#ifndef RPPM_RPPM_DSE_HH
#define RPPM_RPPM_DSE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "study/evaluator.hh"
#include "study/source.hh"

namespace rppm {

/** Outcome of exploring one workload over a design space. */
struct DseResult
{
    std::string workload;
    std::vector<double> predictedSeconds; ///< per design point
    std::vector<double> simulatedSeconds; ///< per design point (oracle)

    /** Index of the predicted-optimal design point. */
    size_t predictedBest() const;

    /** Index of the simulated (true) optimal design point. */
    size_t trueBest() const;

    /** Design points within @p bound of the predicted optimum. */
    std::vector<size_t> candidates(double bound) const;

    /**
     * Deficiency at @p bound: simulated time of the best candidate
     * (by simulation) relative to the true optimum, minus one. Zero when
     * the candidate set contains the true optimum.
     */
    double deficiency(double bound) const;
};

/** Knobs of the evaluator-backed exploration. */
struct DseOptions
{
    /** Registered backend predicting each design point ("rppm", or an
     *  ablation variant registered via registerEvaluator). */
    std::string model = "rppm";

    /** Registered golden-reference backend scoring the selection. Must
     *  report isOracle(). */
    std::string oracle = "sim";

    /** Model/profiler/simulator tunables shared by both backends. */
    StudyOptions study;

    /** Worker-pool size for grid evaluation (0 = all hardware threads). */
    unsigned jobs = 1;
};

/**
 * Explore @p configs for @p workload: the model backend predicts every
 * design point and the oracle backend supplies the golden-reference
 * times, both through the Evaluator interface (no caller-supplied
 * timing vectors). The workload is profiled at most once. Design
 * points are a Study grid axis, so every config needs a distinct name.
 *
 * Any MulticoreConfig is a design point — including heterogeneous
 * machines and thread placements: feed mappingSweep() or
 * heterogeneousConfigs() output here to pick the best thread-to-core
 * mapping or DVFS scenario from one profile (see
 * examples/heterogeneous_mapping.cpp).
 */
DseResult exploreDesignSpace(const WorkloadSource &workload,
                             const std::vector<MulticoreConfig> &configs,
                             const DseOptions &opts = {});

/**
 * Backward-compatible wrapper over pre-computed golden-reference times:
 * predicts with the RPPM model and adopts @p simulated_seconds as the
 * oracle column. Prefer the WorkloadSource overload, which obtains
 * oracle times through the Evaluator interface.
 */
DseResult exploreDesignSpace(const WorkloadProfile &profile,
                             const std::vector<MulticoreConfig> &configs,
                             const std::vector<double> &simulated_seconds);

} // namespace rppm

#endif // RPPM_RPPM_DSE_HH

#include "rppm/ilp_model.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hh"

namespace rppm {

IlpResult
replayMicroTrace(const MicroTrace &mt, const CoreConfig &core,
                 const LoadLatencyFn &mem_latency,
                 double fetch_stall_per_op, double branch_miss_rate)
{
    return replayMicroTrace(
        mt, 0, core,
        [&mem_latency](const MicroTraceOp &op, uint32_t, uint32_t) {
            return mem_latency(op);
        },
        fetch_stall_per_op, branch_miss_rate);
}

IlpResult
replayMicroTrace(const MicroTrace &mt, uint32_t trace,
                 const CoreConfig &core,
                 const IndexedLatencyFn &mem_latency,
                 double fetch_stall_per_op, double branch_miss_rate)
{
    IlpResult result;
    const size_t n = mt.ops.size();
    if (n == 0)
        return result;

    // Idealized instruction-window replay: same structural constraints as
    // the simulator core (width, ROB, IQ, dependences, FU contention) but
    // with perfect branch prediction and I-cache, and statistical memory
    // latencies. The achieved IPC is the epoch's effective dispatch rate.
    std::vector<double> completion(n, 0.0);
    std::vector<double> issue(n, 0.0);
    std::vector<double> retire(n, 0.0);
    std::vector<double> mshr_free(std::max<uint32_t>(core.mshrs, 1), 0.0);
    std::array<std::vector<double>, kNumOpClasses> fu_free;
    for (size_t c = 0; c < kNumOpClasses; ++c)
        fu_free[c].assign(std::max<uint32_t>(core.fus[c].count, 1), 0.0);

    double dispatch_cycle = 0.0;
    uint32_t dispatched = 0;
    double last_retire = 0.0;
    double branch_res_sum = 0.0;
    double branch_pen_sum = 0.0;
    double flush_accum = 0.0;
    uint64_t branch_count = 0;
    uint64_t load_count = 0;

    for (size_t i = 0; i < n; ++i) {
        const MicroTraceOp &op = mt.ops[i];

        // Expected I-cache stall delays the in-order front end.
        dispatch_cycle += fetch_stall_per_op;

        double earliest = 0.0;
        if (i >= core.robSize)
            earliest = std::max(earliest, retire[i - core.robSize]);
        if (i >= core.issueQueueSize)
            earliest = std::max(earliest, issue[i - core.issueQueueSize]);

        earliest = std::ceil(earliest);
        if (earliest > dispatch_cycle) {
            dispatch_cycle = earliest;
            dispatched = 0;
        }
        if (dispatched >= core.dispatchWidth) {
            dispatch_cycle += 1.0;
            dispatched = 0;
        }
        ++dispatched;
        const double dispatch = dispatch_cycle;

        double ready = dispatch + 1.0;
        if (op.dep1 > 0 && op.dep1 <= i)
            ready = std::max(ready, completion[i - op.dep1]);
        if (op.dep2 > 0 && op.dep2 <= i)
            ready = std::max(ready, completion[i - op.dep2]);

        const size_t cls = static_cast<size_t>(op.op);
        auto &fus = fu_free[cls];
        auto unit = std::min_element(fus.begin(), fus.end());
        double at = std::max(ready, *unit);

        double latency = static_cast<double>(core.fus[cls].latency);
        if (isMemory(op.op))
            latency = mem_latency(op, trace, static_cast<uint32_t>(i));

        // MSHR constraint: a load cannot issue before the MSHR ring has
        // a free slot, bounding memory-level parallelism the same way
        // the simulator core does.
        if (op.op == OpClass::Load) {
            const size_t slot = load_count % mshr_free.size();
            at = std::max(at, mshr_free[slot]);
            mshr_free[slot] = at + latency;
            ++load_count;
        }
        *unit = at + static_cast<double>(core.fus[cls].interval);

        completion[i] = at + latency;
        issue[i] = at;
        if (op.op == OpClass::Branch) {
            branch_res_sum += completion[i] - dispatch;
            // If this branch were mispredicted, the front end would
            // restart at completion + refill; only the part beyond the
            // back-end frontier (what has retired so far) is lost time.
            branch_pen_sum += std::max(
                0.0, completion[i] +
                    static_cast<double>(core.frontendDepth) - last_retire);
            ++branch_count;
            // Flush emulation: mispredict every (1/rate)-th branch. The
            // redirect stalls dispatch until the branch resolves plus
            // the refill, and the window naturally pays the ramp-up.
            flush_accum += branch_miss_rate;
            if (flush_accum >= 1.0) {
                flush_accum -= 1.0;
                const double redirect = completion[i] +
                    static_cast<double>(core.frontendDepth);
                if (redirect > dispatch_cycle) {
                    dispatch_cycle = redirect;
                    dispatched = 0;
                }
            }
        }
        last_retire = std::max(last_retire, completion[i]);
        retire[i] = last_retire;
    }

    result.ipc = last_retire > 0.0 ?
        static_cast<double>(n) / last_retire :
        static_cast<double>(core.dispatchWidth);
    result.ipc = std::min(result.ipc,
                          static_cast<double>(core.dispatchWidth));
    if (branch_count > 0) {
        result.branchResolution =
            branch_res_sum / static_cast<double>(branch_count);
        result.branchPenalty =
            branch_pen_sum / static_cast<double>(branch_count);
    }
    return result;
}

IlpResult
epochIlp(const EpochProfile &epoch, const CoreConfig &core,
         const LoadLatencyFn &mem_latency, double fetch_stall_per_op,
         double branch_miss_rate)
{
    return epochIlp(
        epoch, core,
        [&mem_latency](const MicroTraceOp &op, uint32_t, uint32_t) {
            return mem_latency(op);
        },
        fetch_stall_per_op, branch_miss_rate);
}

IlpResult
epochIlp(const EpochProfile &epoch, const CoreConfig &core,
         const IndexedLatencyFn &mem_latency, double fetch_stall_per_op,
         double branch_miss_rate)
{
    double weighted_cycles = 0.0;
    double branch_res_sum = 0.0;
    double branch_pen_sum = 0.0;
    uint64_t ops = 0;
    uint64_t traces_with_branches = 0;
    for (size_t t = 0; t < epoch.microTraces.size(); ++t) {
        const MicroTrace &mt = epoch.microTraces[t];
        if (mt.ops.empty())
            continue;
        const IlpResult r = replayMicroTrace(
            mt, static_cast<uint32_t>(t), core, mem_latency,
            fetch_stall_per_op, branch_miss_rate);
        weighted_cycles += static_cast<double>(mt.ops.size()) / r.ipc;
        ops += mt.ops.size();
        if (r.branchResolution > 0.0) {
            branch_res_sum += r.branchResolution;
            branch_pen_sum += r.branchPenalty;
            ++traces_with_branches;
        }
    }

    IlpResult result;
    if (ops > 0) {
        result.ipc = static_cast<double>(ops) / weighted_cycles;
        if (traces_with_branches > 0) {
            result.branchResolution =
                branch_res_sum / static_cast<double>(traces_with_branches);
            result.branchPenalty =
                branch_pen_sum / static_cast<double>(traces_with_branches);
        }
        return result;
    }

    // No samples (empty epoch): fall back to the front-end width — the
    // epoch contributes ~zero cycles anyway.
    result.ipc = static_cast<double>(core.dispatchWidth);
    result.branchResolution = static_cast<double>(core.frontendDepth);
    return result;
}

} // namespace rppm

/**
 * @file
 * ILP / base-component model (Eq. 1, term N/Deff).
 *
 * Following Van den Steen et al. [37], the effective dispatch rate Deff
 * is a function of the front-end width, the application's inherent ILP
 * and functional-unit contention. The profiler captures ILP at fine grain
 * in sampled 1000-uop micro-traces (op classes + dependence distances +
 * per-access reuse distances). The model replays each micro-trace through
 * an idealized window model — no branch mispredictions, no I-cache
 * misses, loads at their *expected* hit latency from the statistical
 * cache model — and reports the achieved IPC, which becomes Deff for the
 * surrounding epoch.
 */

#ifndef RPPM_RPPM_ILP_MODEL_HH
#define RPPM_RPPM_ILP_MODEL_HH

#include <functional>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"

namespace rppm {

/**
 * Returns the expected latency (cycles) of a memory micro-op given its
 * profiled reuse distances. Bound to the statistical cache model by the
 * caller; kept abstract so the ILP model is testable in isolation.
 */
using LoadLatencyFn =
    std::function<double(const MicroTraceOp &op)>;

/**
 * Indexed flavour: additionally receives the micro-trace index within
 * the epoch and the op index within the trace, so implementations can
 * serve precomputed per-op quantities (see EpochStacks::microSd) instead
 * of re-deriving them on every replay. Same contract otherwise.
 */
using IndexedLatencyFn = std::function<double(
    const MicroTraceOp &op, uint32_t trace, uint32_t idx)>;

/** Result of replaying one micro-trace. */
struct IlpResult
{
    double ipc = 1.0;              ///< effective dispatch rate Deff
    double branchResolution = 0.0; ///< mean dispatch->execute of branches
    /**
     * Mean front-end redirect cost of a misprediction: resolution plus
     * refill, minus the back-end slack already stalling dispatch (a
     * flush hiding behind a DRAM miss at the ROB head costs nothing
     * extra). This is what one misprediction adds to execution time.
     */
    double branchPenalty = 0.0;
};

/**
 * Replay @p mt through the idealized window model of @p core.
 *
 * @param mem_latency expected latency of each memory op (L1 hit latency
 *        at minimum; DRAM misses are modeled separately via the MLP
 *        term, so implementations typically cap at the LLC hit latency)
 * @param fetch_stall_per_op expected front-end stall per fetched op from
 *        the I-cache model; the in-order front end makes the smeared
 *        expectation throughput-exact, and the replay naturally overlaps
 *        it with back-end stalls
 * @param branch_miss_rate predicted misprediction probability from the
 *        entropy model; the replay emulates a front-end flush on every
 *        (1/rate)-th branch, capturing both the redirect latency and the
 *        window ramp-up that follows it
 */
IlpResult replayMicroTrace(const MicroTrace &mt, const CoreConfig &core,
                           const LoadLatencyFn &mem_latency,
                           double fetch_stall_per_op = 0.0,
                           double branch_miss_rate = 0.0);

/** Indexed variant: @p trace is the micro-trace's index within its
 *  epoch, forwarded (with each op's index) to @p mem_latency. */
IlpResult replayMicroTrace(const MicroTrace &mt, uint32_t trace,
                           const CoreConfig &core,
                           const IndexedLatencyFn &mem_latency,
                           double fetch_stall_per_op = 0.0,
                           double branch_miss_rate = 0.0);

/**
 * Effective dispatch rate of an epoch: micro-op-weighted average over the
 * epoch's micro-traces. Falls back to a mix/width heuristic when the
 * epoch carries no samples (only possible for empty epochs).
 */
IlpResult epochIlp(const EpochProfile &epoch, const CoreConfig &core,
                   const LoadLatencyFn &mem_latency,
                   double fetch_stall_per_op = 0.0,
                   double branch_miss_rate = 0.0);

/** Indexed variant (see IndexedLatencyFn). */
IlpResult epochIlp(const EpochProfile &epoch, const CoreConfig &core,
                   const IndexedLatencyFn &mem_latency,
                   double fetch_stall_per_op = 0.0,
                   double branch_miss_rate = 0.0);

} // namespace rppm

#endif // RPPM_RPPM_ILP_MODEL_HH

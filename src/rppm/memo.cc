#include "rppm/memo.hh"

#include <sstream>

#include "arch/component_key.hh"
#include "common/assert.hh"

namespace rppm {

namespace {

/** Eq1Options ablation switches, packed for the cache key. */
char
eq1OptionsBits(const Eq1Options &opts)
{
    return static_cast<char>(
        (opts.ilpReplay ? 1 : 0) | (opts.llcUsesGlobalRd ? 2 : 0) |
        (opts.mlpOverlap ? 4 : 0) | (opts.branch ? 8 : 0) |
        (opts.decompose ? 16 : 0));
}

void
appendU32(std::string &buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

} // namespace

// ------------------------------------------------------------ MemoStats ---

void
MemoStats::add(const MemoStats &other)
{
    predictions += other.predictions;
    threadEvals += other.threadEvals;
    threadHits += other.threadHits;
    syncRuns += other.syncRuns;
    syncHits += other.syncHits;
    stacksBuilt += other.stacksBuilt;
    curvePoints += other.curvePoints;
    curveHits += other.curveHits;
}

std::string
MemoStats::summary() const
{
    std::ostringstream os;
    os << predictions << " predictions: thread evals " << threadEvals
       << " performed / " << threadHits << " saved; sync " << syncRuns
       << " / " << syncHits << "; miss-curve points " << curvePoints
       << " / " << curveHits << "; stack bundles " << stacksBuilt;
    return os.str();
}

// ------------------------------------------------------- PredictionMemo ---

PredictionMemo::PredictionMemo(
    std::shared_ptr<const WorkloadProfile> profile)
    : profile_(std::move(profile))
{
    RPPM_REQUIRE(profile_ != nullptr, "null profile");
}

std::shared_ptr<const EpochStacks>
PredictionMemo::stacksFor(uint32_t thread, size_t epoch, bool llc_global)
{
    const uint64_t key = ((static_cast<uint64_t>(thread) << 32 |
                          static_cast<uint64_t>(epoch)) << 1) |
        (llc_global ? 1 : 0);
    {
        MutexLock lock(mutex_);
        const auto it = stacks_.find(key);
        if (it != stacks_.end())
            return it->second;
    }
    auto built = std::make_shared<const EpochStacks>(
        profile_->threads[thread].epochs[epoch], llc_global);
    MutexLock lock(mutex_);
    const auto [it, inserted] = stacks_.emplace(key, std::move(built));
    if (inserted)
        ++stats_.stacksBuilt;
    return it->second;
}

std::shared_ptr<const ThreadPrediction>
PredictionMemo::threadFor(uint32_t thread, const std::string &key,
                          const MulticoreConfig &cfg,
                          const CoreConfig &core, const Eq1Options &opts)
{
    {
        MutexLock lock(mutex_);
        const auto it = threads_.find(key);
        if (it != threads_.end()) {
            ++stats_.threadHits;
            return it->second;
        }
    }
    auto pred = std::make_shared<const ThreadPrediction>(predictThread(
        profile_->threads[thread], cfg, core, opts,
        [this, thread, &opts](size_t epoch) {
            return stacksFor(thread, epoch, opts.llcUsesGlobalRd);
        }));
    MutexLock lock(mutex_);
    const auto [it, inserted] = threads_.emplace(key, std::move(pred));
    ++stats_.threadEvals;
    return it->second;
}

RppmPrediction
PredictionMemo::predict(const MulticoreConfig &cfg, const RppmOptions &opts)
{
    cfg.validate();
    RppmPrediction pred;
    pred.workload = profile_->name;
    pred.config = cfg.name;

    // Phase 1 through the component cache: each distinct per-thread
    // sub-config (mapped core x shared LLC/bus x options) is evaluated
    // exactly once per grid, then copied into place.
    const char opt_bits = eq1OptionsBits(opts.eq1);
    std::string sync_key;
    pred.threads.reserve(profile_->numThreads);
    pred.threadCoreIds.reserve(profile_->numThreads);
    for (uint32_t t = 0; t < profile_->numThreads; ++t) {
        std::string key = threadComponentKey(cfg, t);
        key.push_back(opt_bits);
        appendU32(key, t);
        sync_key += key;
        appendKeyF64(sync_key, cfg.threadTimeScale(t));
        pred.threadCoreIds.push_back(cfg.coreOf(t));
        pred.threads.push_back(
            *threadFor(t, key, cfg, cfg.threadCore(t), opts.eq1));
    }
    appendKeyF64(sync_key, opts.sync.syncOpCost);

    // Phase 2: reused only when every input that feeds the symbolic
    // execution matches — the per-thread predictions (via their keys),
    // the per-thread reference time scales and the sync-op cost.
    std::shared_ptr<const SyncModelResult> sync;
    {
        MutexLock lock(mutex_);
        const auto it = sync_.find(sync_key);
        if (it != sync_.end()) {
            ++stats_.syncHits;
            sync = it->second;
        }
    }
    if (!sync) {
        auto run = std::make_shared<const SyncModelResult>(
            runSyncModel(*profile_, pred.threads, cfg, opts.sync));
        MutexLock lock(mutex_);
        const auto [it, inserted] = sync_.emplace(sync_key, std::move(run));
        ++stats_.syncRuns;
        sync = it->second;
    }

    pred.totalCycles = sync->totalCycles;
    pred.totalSeconds = cfg.refCyclesToSeconds(sync->totalCycles);
    pred.threadIdle = sync->threadIdle;
    pred.activity = sync->activity;
    pred.threadSeconds.reserve(profile_->numThreads);
    for (uint32_t t = 0; t < profile_->numThreads; ++t)
        pred.threadSeconds.push_back(
            cfg.refCyclesToSeconds(sync->threadFinish[t]));

    MutexLock lock(mutex_);
    ++stats_.predictions;
    return pred;
}

MemoStats
PredictionMemo::stats() const
{
    MutexLock lock(mutex_);
    MemoStats out = stats_;
    for (const auto &[key, stacks] : stacks_) {
        out.curvePoints += stacks->curvePoints();
        out.curveHits += stacks->curveHits();
    }
    return out;
}

uint64_t
PredictionMemo::approxResidentBytes() const
{
    MutexLock lock(mutex_);
    // The engine pins its profile; charge it here so the pool budget
    // sees the real cost of keeping the engine around.
    uint64_t bytes = profile_->approxResidentBytes();
    // One EpochStacks bundle ≈ five StatStacks (each a copied histogram
    // plus survival prefix sums over the bucket table) plus the lazily
    // built per-op stack distances of the epoch's micro-trace loads.
    const uint64_t per_stack =
        5 * 2 * LogHistogram::numBuckets() * sizeof(double);
    for (const auto &[key, stacks] : stacks_) {
        bytes += per_stack;
        for (const auto &mt : stacks->epoch().microTraces)
            bytes += mt.ops.size() * sizeof(EpochStacks::OpSd);
    }
    // Phase-1/2 entries are small next to the bundles; charge key +
    // payload envelopes.
    for (const auto &[key, pred] : threads_)
        bytes += key.size() + sizeof(ThreadPrediction) + 64;
    for (const auto &[key, sync] : sync_)
        bytes += key.size() + sizeof(SyncModelResult) + 64;
    return bytes;
}

// --------------------------------------------------- PredictionMemoPool ---

std::shared_ptr<PredictionMemo>
PredictionMemoPool::forProfile(std::shared_ptr<const WorkloadProfile> profile)
{
    RPPM_REQUIRE(profile != nullptr, "null profile");
    MutexLock lock(mutex_);
    auto it = engines_.find(profile.get());
    if (it == engines_.end()) {
        it = engines_
                 .emplace(profile.get(),
                          std::make_shared<PredictionMemo>(profile))
                 .first;
    }
    std::shared_ptr<PredictionMemo> engine = it->second;
    // Re-charge on every touch: engines grow as their memo tables fill,
    // and the recency bump is what makes the budget LRU rather than FIFO.
    lru_.add(profile.get(), engine->approxResidentBytes());
    enforceBudget();
    return engine;
}

void
PredictionMemoPool::setMaxResidentBytes(uint64_t bytes)
{
    MutexLock lock(mutex_);
    maxResidentBytes_ = bytes;
    enforceBudget();
}

uint64_t
PredictionMemoPool::shedBytes(uint64_t bytes)
{
    MutexLock lock(mutex_);
    const uint64_t before = lru_.bytes();
    const uint64_t target = before > bytes ? before - bytes : 0;
    for (const WorkloadProfile *victim : lru_.shrinkTo(target)) {
        engines_.erase(victim);
        ++evictions_;
    }
    return before - lru_.bytes();
}

void
PredictionMemoPool::enforceBudget()
{
    if (maxResidentBytes_ == 0)
        return;
    for (const WorkloadProfile *victim : lru_.shrinkTo(maxResidentBytes_)) {
        engines_.erase(victim);
        ++evictions_;
    }
}

PredictionMemoPool::PoolStats
PredictionMemoPool::poolStats() const
{
    MutexLock lock(mutex_);
    PoolStats out;
    out.engines = engines_.size();
    out.evictions = evictions_;
    out.residentBytes = lru_.bytes();
    return out;
}

MemoStats
PredictionMemoPool::stats() const
{
    MutexLock lock(mutex_);
    MemoStats out;
    for (const auto &[key, engine] : engines_)
        out.add(engine->stats());
    return out;
}

bool
PredictionMemoPool::empty() const
{
    MutexLock lock(mutex_);
    return engines_.empty();
}

// ----------------------------------------------------------- grid APIs ---

std::vector<RppmPrediction>
predictGrid(const WorkloadProfile &profile,
            const std::vector<MulticoreConfig> &configs,
            const RppmOptions &opts, MemoStats *stats)
{
    // Non-owning alias: the engine only lives for this call.
    PredictionMemo memo(std::shared_ptr<const WorkloadProfile>(
        std::shared_ptr<const WorkloadProfile>(), &profile));
    std::vector<RppmPrediction> out;
    out.reserve(configs.size());
    for (const MulticoreConfig &cfg : configs)
        out.push_back(memo.predict(cfg, opts));
    if (stats)
        *stats = memo.stats();
    return out;
}

std::vector<RppmPrediction>
predictLegacyGrid(const WorkloadProfile &profile,
                  const std::vector<MulticoreConfig> &configs,
                  const RppmOptions &opts)
{
    std::vector<RppmPrediction> out;
    out.reserve(configs.size());
    for (const MulticoreConfig &cfg : configs)
        out.push_back(predict(profile, cfg, opts));
    return out;
}

} // namespace rppm

/**
 * @file
 * Memoized component-level prediction engine — the "predict many" half
 * of profile-once-predict-many, made incremental.
 *
 * A naive design-space sweep re-runs the full Eq.-1 pipeline (StatStack
 * miss curves, window replays, branch model, sync model) for every grid
 * point, even when most of the configuration fields a component reads
 * are unchanged from a neighboring point. PredictionMemo caches each
 * component's result under its parameter-subset key (arch/component_key)
 * for the lifetime of a grid:
 *
 *  - per (thread, epoch): the config-independent EpochStacks bundle
 *    (StatStacks, per-op stack distances, memoized miss-rate curves) is
 *    built once and shared by every design point;
 *  - per (thread, phase-1 key): the full ThreadPrediction is evaluated
 *    once per distinct sub-config a thread actually runs on — a
 *    placement sweep over a big.LITTLE machine evaluates each thread
 *    once per core *kind*, not once per placement, and a DVFS axis with
 *    the bus off is free;
 *  - per (thread-key vector, time scales, sync cost): the phase-2
 *    symbolic synchronization execution.
 *
 * Every cached value is produced by the same code the naive path runs,
 * on the same inputs, so memoized predictions are bit-identical to
 * rppm::predict per design point (predictGrid vs predictLegacyGrid below
 * is the differential-testing pair, mirroring the fused/legacy profiler
 * split). All caches are thread-safe: one engine serves every worker of
 * a Study grid. Concurrent misses on one key may both evaluate (the
 * first insert wins), which is harmless — the evaluation is
 * deterministic, so both results are identical.
 */

#ifndef RPPM_RPPM_MEMO_HH
#define RPPM_RPPM_MEMO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru.hh"
#include "common/thread_annotations.hh"
#include "rppm/predictor.hh"

namespace rppm {

/** Cache-efficiency counters of one engine (or a whole pool). */
struct MemoStats
{
    uint64_t predictions = 0;  ///< predict() calls served
    uint64_t threadEvals = 0;  ///< phase-1 thread evaluations performed
    uint64_t threadHits = 0;   ///< phase-1 evaluations saved by the cache
    uint64_t syncRuns = 0;     ///< phase-2 symbolic executions performed
    uint64_t syncHits = 0;     ///< phase-2 executions saved
    uint64_t stacksBuilt = 0;  ///< EpochStacks bundles constructed
    uint64_t curvePoints = 0;  ///< distinct (stack, lines) CDF evaluations
    uint64_t curveHits = 0;    ///< miss-rate queries served from curves

    void add(const MemoStats &other);

    /** "thread evals 12 performed / 84 saved; sync 24/72; ..." */
    std::string summary() const;
};

/** Memoized prediction engine for one profile (see file comment). */
class PredictionMemo
{
  public:
    explicit PredictionMemo(std::shared_ptr<const WorkloadProfile> profile);

    const WorkloadProfile &profile() const { return *profile_; }

    /** Memoized equivalent of rppm::predict(profile, cfg, opts):
     *  bit-identical per design point, thread-safe. */
    RppmPrediction predict(const MulticoreConfig &cfg,
                           const RppmOptions &opts = {})
        RPPM_EXCLUDES(mutex_);

    MemoStats stats() const RPPM_EXCLUDES(mutex_);

    /** Approximate heap footprint of the engine *including* the profile
     *  it keeps alive — the unit the pool's byte budget evicts in. */
    uint64_t approxResidentBytes() const RPPM_EXCLUDES(mutex_);

  private:
    std::shared_ptr<const EpochStacks>
    stacksFor(uint32_t thread, size_t epoch, bool llc_global)
        RPPM_EXCLUDES(mutex_);

    std::shared_ptr<const ThreadPrediction>
    threadFor(uint32_t thread, const std::string &key,
              const MulticoreConfig &cfg, const CoreConfig &core,
              const Eq1Options &opts) RPPM_EXCLUDES(mutex_);

    std::shared_ptr<const WorkloadProfile> profile_;

    mutable Mutex mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<const EpochStacks>>
        stacks_ RPPM_GUARDED_BY(mutex_);
    std::unordered_map<std::string, std::shared_ptr<const ThreadPrediction>>
        threads_ RPPM_GUARDED_BY(mutex_);
    std::unordered_map<std::string, std::shared_ptr<const SyncModelResult>>
        sync_ RPPM_GUARDED_BY(mutex_);
    MemoStats stats_ RPPM_GUARDED_BY(mutex_);
};

/**
 * Engines for a whole study, one per distinct profile (evaluator
 * variants with profiler-option overrides get their own). Thread-safe.
 */
class PredictionMemoPool
{
  public:
    /** The engine for @p profile, created on first use. */
    std::shared_ptr<PredictionMemo>
    forProfile(std::shared_ptr<const WorkloadProfile> profile)
        RPPM_EXCLUDES(mutex_);

    /** Aggregate stats over all engines. */
    MemoStats stats() const RPPM_EXCLUDES(mutex_);

    bool empty() const RPPM_EXCLUDES(mutex_);

    /**
     * Cap the pool at roughly @p bytes of engines (profile + memo-table
     * footprint per PredictionMemo::approxResidentBytes); 0 = unlimited,
     * the default. Eviction drops whole least-recently-used engines —
     * callers holding a shared_ptr from forProfile keep using theirs
     * unaffected; the next forProfile for that profile just rebuilds.
     * Engines hold their profile's shared_ptr, so the pointer keys can
     * never alias a freed-and-reallocated profile.
     */
    void setMaxResidentBytes(uint64_t bytes) RPPM_EXCLUDES(mutex_);

    /**
     * Shed roughly @p bytes of least-recently-used engines right now,
     * independent of the configured budget — the server's graceful-
     * degradation hook (memory pressure relief on demand). Returns the
     * bytes actually freed (possibly less when the pool is smaller than
     * the ask). Semantics match budget eviction: outstanding shared_ptr
     * holders are unaffected, the next forProfile rebuilds.
     */
    uint64_t shedBytes(uint64_t bytes) RPPM_EXCLUDES(mutex_);

    /** Budget-tier counters (lastMemoStats-style snapshot). */
    struct PoolStats
    {
        uint64_t engines = 0;       ///< engines currently resident
        uint64_t evictions = 0;     ///< engines dropped by the budget
        uint64_t residentBytes = 0; ///< approx bytes currently charged
    };
    PoolStats poolStats() const RPPM_EXCLUDES(mutex_);

  private:
    void enforceBudget() RPPM_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::unordered_map<const WorkloadProfile *,
                       std::shared_ptr<PredictionMemo>>
        engines_ RPPM_GUARDED_BY(mutex_);
    LruBudget<const WorkloadProfile *> lru_ RPPM_GUARDED_BY(mutex_);
    uint64_t maxResidentBytes_ RPPM_GUARDED_BY(mutex_) = 0;
    uint64_t evictions_ RPPM_GUARDED_BY(mutex_) = 0;
};

/**
 * Evaluate every design point of @p configs through one shared
 * PredictionMemo. Bit-identical to predictLegacyGrid; @p stats (when
 * non-null) receives the engine's cache-efficiency counters.
 */
std::vector<RppmPrediction>
predictGrid(const WorkloadProfile &profile,
            const std::vector<MulticoreConfig> &configs,
            const RppmOptions &opts = {}, MemoStats *stats = nullptr);

/**
 * The naive per-point reference: rppm::predict once per design point,
 * no cross-point reuse. Kept for differential testing and as the
 * benchmark baseline the memoized engine is gated against.
 */
std::vector<RppmPrediction>
predictLegacyGrid(const WorkloadProfile &profile,
                  const std::vector<MulticoreConfig> &configs,
                  const RppmOptions &opts = {});

} // namespace rppm

#endif // RPPM_RPPM_MEMO_HH

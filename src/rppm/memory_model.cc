#include "rppm/memory_model.hh"

#include <algorithm>

#include "common/assert.hh"

namespace rppm {

EpochMemoryModel::EpochMemoryModel(const EpochProfile &epoch,
                                   const MulticoreConfig &cfg,
                                   const CoreConfig &core,
                                   bool llc_uses_global_rd)
    : EpochMemoryModel(epoch, cfg, core,
                       std::make_shared<const EpochStacks>(
                           epoch, llc_uses_global_rd))
{
}

EpochMemoryModel::EpochMemoryModel(const EpochProfile &epoch,
                                   const MulticoreConfig &cfg,
                                   const CoreConfig &core,
                                   std::shared_ptr<const EpochStacks> stacks)
    : epoch_(epoch), cfg_(cfg), core_(core), stacks_(std::move(stacks)),
      l1Lines_(core.l1d.numLines()),
      l2Lines_(core.l2.numLines()),
      llcLines_(cfg.llc.numLines())
{
    RPPM_REQUIRE(stacks_ != nullptr, "null EpochStacks bundle");
    RPPM_ASSERT(&stacks_->epoch() == &epoch_);

    // Private levels from the per-thread distribution; shared LLC from
    // the global interleaved distribution.
    using W = EpochStacks::Which;
    l1dMiss_ = stacks_->missRate(W::Local, l1Lines_);
    l2Miss_ = stacks_->missRate(W::Local, l2Lines_);
    llcMiss_ = stacks_->missRate(W::Global, llcLines_);

    // A load only reaches the LLC when it missed the private levels, so
    // mLLC is bounded by the private L2 load miss rate.
    const double load_l2_miss = stacks_->missRate(W::LoadLocal, l2Lines_);
    const double load_llc_miss = stacks_->missRate(W::LoadGlobal, llcLines_);
    llcLoadMissRate_ = std::min(load_l2_miss, load_llc_miss);
    llcLoadMisses_ =
        llcLoadMissRate_ * static_cast<double>(epoch.numLoads);

    // I-cache component: sum over levels of miss rate x next-level
    // latency (Eq. 1). The I-stream is private, so the per-thread
    // instruction reuse distances drive all levels.
    if (stacks_->hasInstr()) {
        const double l1i_miss =
            stacks_->missRate(W::Instr, core.l1i.numLines());
        const double l2i_miss = stacks_->missRate(W::Instr, l2Lines_);
        const double llci_miss = stacks_->missRate(W::Instr, llcLines_);
        const double per_fetch =
            l1i_miss * static_cast<double>(core.l2.latency) +
            l2i_miss * static_cast<double>(cfg.llc.latency) +
            llci_miss * static_cast<double>(core.memLatency);
        icacheCycles_ = per_fetch * static_cast<double>(epoch.numOps);
    }
}

uint64_t
EpochMemoryModel::llcRd(const MicroTraceOp &op) const
{
    return stacks_->llcUsesGlobalRd() ? op.globalRd : op.localRd;
}

double
EpochMemoryModel::hitLatency(double sd_local) const
{
    // Walk the hierarchy with per-access hit/miss decisions derived from
    // the access's own reuse distances (loads only — callers return the
    // store FU latency before reaching here). DRAM latency is excluded:
    // the long-latency load stall is Eq. 1's separate D-component.
    double latency = static_cast<double>(core_.l1d.latency);
    if (sd_local >= static_cast<double>(l1Lines_)) {
        latency += static_cast<double>(core_.l2.latency);
        if (sd_local >= static_cast<double>(l2Lines_))
            latency += static_cast<double>(cfg_.llc.latency);
    }
    return latency;
}

double
EpochMemoryModel::expectedLatency(const MicroTraceOp &op) const
{
    if (op.op == OpClass::Store)
        return static_cast<double>(
            core_.fus[static_cast<size_t>(OpClass::Store)].latency);
    return hitLatency(stacks_->stack(EpochStacks::Which::Local)
                          .stackDistance(op.localRd));
}

double
EpochMemoryModel::expectedLatencyFull(const MicroTraceOp &op) const
{
    double latency = expectedLatency(op);
    if (op.op == OpClass::Load) {
        const double sd_local = stacks_->stack(EpochStacks::Which::Local)
                                    .stackDistance(op.localRd);
        const double sd_global = stacks_->stack(EpochStacks::Which::Global)
                                     .stackDistance(llcRd(op));
        // A DRAM access requires missing the private levels and the
        // shared LLC (its interleaved reuse must exceed the LLC reach).
        if (sd_local >= static_cast<double>(l2Lines_) &&
            sd_global >= static_cast<double>(llcLines_)) {
            latency += static_cast<double>(core_.memLatency);
        }
    }
    return latency;
}

void
EpochMemoryModel::prepareReplay() const
{
    if (!microSd_)
        microSd_ = &stacks_->microSd();
}

double
EpochMemoryModel::expectedLatency(const MicroTraceOp &op, uint32_t trace,
                                  uint32_t idx) const
{
    if (op.op == OpClass::Store)
        return static_cast<double>(
            core_.fus[static_cast<size_t>(OpClass::Store)].latency);
    return hitLatency((*microSd_)[trace][idx].local);
}

double
EpochMemoryModel::expectedLatencyFull(const MicroTraceOp &op, uint32_t trace,
                                      uint32_t idx) const
{
    double latency = expectedLatency(op, trace, idx);
    if (op.op == OpClass::Load) {
        const EpochStacks::OpSd &sd = (*microSd_)[trace][idx];
        if (sd.local >= static_cast<double>(l2Lines_) &&
            sd.llc >= static_cast<double>(llcLines_)) {
            latency += static_cast<double>(core_.memLatency);
        }
    }
    return latency;
}

double
EpochMemoryModel::expectedLatencyL1Only(const MicroTraceOp &op) const
{
    if (op.op == OpClass::Store)
        return static_cast<double>(
            core_.fus[static_cast<size_t>(OpClass::Store)].latency);
    return static_cast<double>(core_.l1d.latency);
}

} // namespace rppm

#include "rppm/memory_model.hh"

#include <algorithm>

namespace rppm {

EpochMemoryModel::EpochMemoryModel(const EpochProfile &epoch,
                                   const MulticoreConfig &cfg,
                                   const CoreConfig &core,
                                   bool llc_uses_global_rd)
    : epoch_(epoch), cfg_(cfg), core_(core),
      localStack_(epoch.localRd),
      globalStack_(llc_uses_global_rd ? epoch.globalRd : epoch.localRd),
      loadLocalStack_(epoch.loadLocalRd),
      loadGlobalStack_(llc_uses_global_rd ? epoch.loadGlobalRd
                                          : epoch.loadLocalRd),
      llcUsesGlobalRd_(llc_uses_global_rd),
      l1Lines_(core.l1d.numLines()),
      l2Lines_(core.l2.numLines()),
      llcLines_(cfg.llc.numLines())
{
    // Private levels from the per-thread distribution; shared LLC from
    // the global interleaved distribution.
    l1dMiss_ = localStack_.missRate(l1Lines_);
    l2Miss_ = localStack_.missRate(l2Lines_);
    llcMiss_ = globalStack_.missRate(llcLines_);

    // A load only reaches the LLC when it missed the private levels, so
    // mLLC is bounded by the private L2 load miss rate.
    const double load_l2_miss = loadLocalStack_.missRate(l2Lines_);
    const double load_llc_miss = loadGlobalStack_.missRate(llcLines_);
    llcLoadMissRate_ = std::min(load_l2_miss, load_llc_miss);
    llcLoadMisses_ =
        llcLoadMissRate_ * static_cast<double>(epoch.numLoads);

    // I-cache component: sum over levels of miss rate x next-level
    // latency (Eq. 1). The I-stream is private, so the per-thread
    // instruction reuse distances drive all levels.
    if (epoch.numOps > 0 && epoch.instrRd.total() > 0) {
        StatStack istack(epoch.instrRd);
        const double l1i_miss = istack.missRate(core.l1i.numLines());
        const double l2i_miss = istack.missRate(l2Lines_);
        const double llci_miss = istack.missRate(llcLines_);
        const double per_fetch =
            l1i_miss * static_cast<double>(core.l2.latency) +
            l2i_miss * static_cast<double>(cfg.llc.latency) +
            llci_miss * static_cast<double>(core.memLatency);
        icacheCycles_ = per_fetch * static_cast<double>(epoch.numOps);
    }
}

uint64_t
EpochMemoryModel::llcRd(const MicroTraceOp &op) const
{
    return llcUsesGlobalRd_ ? op.globalRd : op.localRd;
}

double
EpochMemoryModel::expectedLatency(const MicroTraceOp &op) const
{
    // Walk the hierarchy with per-access hit/miss decisions derived from
    // the access's own reuse distances. DRAM latency is excluded: the
    // long-latency load stall is Eq. 1's separate D-component.
    const double l1 = static_cast<double>(core_.l1d.latency);
    if (op.op == OpClass::Store)
        return static_cast<double>(
            core_.fus[static_cast<size_t>(OpClass::Store)].latency);

    const double sd_local = localStack_.stackDistance(op.localRd);
    const double sd_global = globalStack_.stackDistance(llcRd(op));
    double latency = l1;
    if (sd_local >= static_cast<double>(l1Lines_)) {
        latency += static_cast<double>(core_.l2.latency);
        if (sd_local >= static_cast<double>(l2Lines_)) {
            latency += static_cast<double>(cfg_.llc.latency);
            (void)sd_global; // DRAM handled in expectedLatencyFull()
        }
    }
    return latency;
}

double
EpochMemoryModel::expectedLatencyFull(const MicroTraceOp &op) const
{
    double latency = expectedLatency(op);
    if (op.op == OpClass::Load) {
        const double sd_local = localStack_.stackDistance(op.localRd);
        const double sd_global = globalStack_.stackDistance(llcRd(op));
        // A DRAM access requires missing the private levels and the
        // shared LLC (its interleaved reuse must exceed the LLC reach).
        if (sd_local >= static_cast<double>(l2Lines_) &&
            sd_global >= static_cast<double>(llcLines_)) {
            latency += static_cast<double>(core_.memLatency);
        }
    }
    return latency;
}

double
EpochMemoryModel::expectedLatencyL1Only(const MicroTraceOp &op) const
{
    if (op.op == OpClass::Store)
        return static_cast<double>(
            core_.fus[static_cast<size_t>(OpClass::Store)].latency);
    return static_cast<double>(core_.l1d.latency);
}

} // namespace rppm

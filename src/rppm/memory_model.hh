/**
 * @file
 * Statistical memory-hierarchy model (paper Sec. III-A "Memory Behavior"
 * and III-B "Per-epoch active execution time").
 *
 * Per epoch, StatStack instances built from the per-thread reuse-distance
 * distribution predict the private L1D and L2 miss rates, and the global
 * (interleaved) distribution predicts the shared-LLC miss rate — thereby
 * capturing positive interference (sharing), negative interference
 * (capacity contention) and coherence (write-invalidation) effects. The
 * instruction-stream distribution predicts the I-cache component.
 */

#ifndef RPPM_RPPM_MEMORY_MODEL_HH
#define RPPM_RPPM_MEMORY_MODEL_HH

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "statstack/statstack.hh"

namespace rppm {

/** Predicted cache behaviour of one epoch on one configuration. */
struct EpochMemoryModel
{
    /**
     * Build the statistical cache model for @p epoch running on core
     * @p core of @p cfg (private levels and DRAM latency come from the
     * core, the shared LLC from the multicore). Holds references to the
     * epoch's histograms and both configs; they must outlive the model.
     *
     * @param llc_uses_global_rd predict the shared LLC from the global
     *        interleaved reuse distances (full model); false falls back
     *        to the per-thread distances (ablation: no interference)
     */
    EpochMemoryModel(const EpochProfile &epoch, const MulticoreConfig &cfg,
                     const CoreConfig &core,
                     bool llc_uses_global_rd = true);

    /** Convenience: model for core 0 (uniform machines). */
    EpochMemoryModel(const EpochProfile &epoch, const MulticoreConfig &cfg,
                     bool llc_uses_global_rd = true)
        : EpochMemoryModel(epoch, cfg, cfg.core(0), llc_uses_global_rd)
    {}

    /** Miss rates (per access) at each level. */
    double l1dMissRate() const { return l1dMiss_; }
    double l2MissRate() const { return l2Miss_; }   ///< of all accesses
    double llcMissRate() const { return llcMiss_; } ///< of all accesses

    /** Load-specific LLC miss count for the D-component (mLLC). */
    double llcLoadMisses() const { return llcLoadMisses_; }

    /** Load-specific LLC miss rate (per load). */
    double llcLoadMissRate() const { return llcLoadMissRate_; }

    /** Predicted DRAM transfers (loads + stores) in this epoch; drives
     *  the shared-bus contention model. */
    double dramTransfers() const
    {
        return llcMiss_ *
            static_cast<double>(epoch_.numLoads + epoch_.numStores);
    }

    /**
     * Expected latency of one memory micro-op given its profiled reuse
     * distances, capped at the LLC hit latency (the hit path only).
     */
    double expectedLatency(const MicroTraceOp &op) const;

    /**
     * Expected latency including the DRAM penalty for accesses whose
     * global reuse distance exceeds the LLC reach. Used by the
     * D-component replay, where the window model turns these per-access
     * latencies into overlapped (MLP-limited) stall time.
     */
    double expectedLatencyFull(const MicroTraceOp &op) const;

    /** Same access, but every level treated as an L1 hit; used to split
     *  the base component for CPI-stack reporting. */
    double expectedLatencyL1Only(const MicroTraceOp &op) const;

    /** Predicted I-cache component cycles for the whole epoch (additive
     *  Eq. 1 form; the replay-based path uses icachePerFetch instead). */
    double icacheCycles() const { return icacheCycles_; }

    /** Expected front-end stall per fetched micro-op. */
    double icachePerFetch() const
    {
        return epoch_.numOps > 0 ?
            icacheCycles_ / static_cast<double>(epoch_.numOps) : 0.0;
    }

  private:
    /** The reuse distance driving shared-LLC decisions for one op. */
    uint64_t llcRd(const MicroTraceOp &op) const;

    const EpochProfile &epoch_;
    const MulticoreConfig &cfg_;
    const CoreConfig &core_;
    StatStack localStack_;
    StatStack globalStack_;
    StatStack loadLocalStack_;
    StatStack loadGlobalStack_;
    bool llcUsesGlobalRd_;

    uint64_t l1Lines_, l2Lines_, llcLines_;
    double l1dMiss_ = 0.0;
    double l2Miss_ = 0.0;
    double llcMiss_ = 0.0;
    double llcLoadMisses_ = 0.0;
    double llcLoadMissRate_ = 0.0;
    double icacheCycles_ = 0.0;
};

} // namespace rppm

#endif // RPPM_RPPM_MEMORY_MODEL_HH

/**
 * @file
 * Statistical memory-hierarchy model (paper Sec. III-A "Memory Behavior"
 * and III-B "Per-epoch active execution time").
 *
 * Per epoch, StatStack instances built from the per-thread reuse-distance
 * distribution predict the private L1D and L2 miss rates, and the global
 * (interleaved) distribution predicts the shared-LLC miss rate — thereby
 * capturing positive interference (sharing), negative interference
 * (capacity contention) and coherence (write-invalidation) effects. The
 * instruction-stream distribution predicts the I-cache component.
 *
 * All StatStack-derived quantities are config-independent and live in an
 * EpochStacks bundle. The model either borrows a shared bundle (the
 * memoized grid engine builds one per epoch for a whole Study) or builds
 * its own (the naive per-point path); both produce bit-identical
 * predictions.
 */

#ifndef RPPM_RPPM_MEMORY_MODEL_HH
#define RPPM_RPPM_MEMORY_MODEL_HH

#include <memory>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "statstack/epoch_stacks.hh"
#include "statstack/statstack.hh"

namespace rppm {

/** Predicted cache behaviour of one epoch on one configuration. */
struct EpochMemoryModel
{
    /**
     * Build the statistical cache model for @p epoch running on core
     * @p core of @p cfg (private levels and DRAM latency come from the
     * core, the shared LLC from the multicore). Holds references to the
     * epoch's histograms and both configs; they must outlive the model.
     *
     * @param llc_uses_global_rd predict the shared LLC from the global
     *        interleaved reuse distances (full model); false falls back
     *        to the per-thread distances (ablation: no interference)
     */
    EpochMemoryModel(const EpochProfile &epoch, const MulticoreConfig &cfg,
                     const CoreConfig &core,
                     bool llc_uses_global_rd = true);

    /**
     * Same model over a pre-built (shared) stack bundle: no StatStack is
     * constructed and miss rates come from the bundle's memoized curves.
     * @p stacks must have been built from @p epoch (with the desired
     * llcUsesGlobalRd flavour) and must not be null.
     */
    EpochMemoryModel(const EpochProfile &epoch, const MulticoreConfig &cfg,
                     const CoreConfig &core,
                     std::shared_ptr<const EpochStacks> stacks);

    /** Convenience: model for core 0 (uniform machines). */
    EpochMemoryModel(const EpochProfile &epoch, const MulticoreConfig &cfg,
                     bool llc_uses_global_rd = true)
        : EpochMemoryModel(epoch, cfg, cfg.core(0), llc_uses_global_rd)
    {}

    /** Miss rates (per access) at each level. */
    double l1dMissRate() const { return l1dMiss_; }
    double l2MissRate() const { return l2Miss_; }   ///< of all accesses
    double llcMissRate() const { return llcMiss_; } ///< of all accesses

    /** Load-specific LLC miss count for the D-component (mLLC). */
    double llcLoadMisses() const { return llcLoadMisses_; }

    /** Load-specific LLC miss rate (per load). */
    double llcLoadMissRate() const { return llcLoadMissRate_; }

    /** Predicted DRAM transfers (loads + stores) in this epoch; drives
     *  the shared-bus contention model. */
    double dramTransfers() const
    {
        return llcMiss_ *
            static_cast<double>(epoch_.numLoads + epoch_.numStores);
    }

    /**
     * Expected latency of one memory micro-op given its profiled reuse
     * distances, capped at the LLC hit latency (the hit path only).
     */
    double expectedLatency(const MicroTraceOp &op) const;

    /**
     * Expected latency including the DRAM penalty for accesses whose
     * global reuse distance exceeds the LLC reach. Used by the
     * D-component replay, where the window model turns these per-access
     * latencies into overlapped (MLP-limited) stall time.
     */
    double expectedLatencyFull(const MicroTraceOp &op) const;

    /** Same access, but every level treated as an L1 hit; used to split
     *  the base component for CPI-stack reporting. */
    double expectedLatencyL1Only(const MicroTraceOp &op) const;

    /**
     * Bind the precomputed per-op stack distances of the micro-traces so
     * the indexed expectedLatency* overloads below can be used. Called
     * once before the Eq.-1 window replays; a no-op on repeat calls.
     */
    void prepareReplay() const;

    /** Indexed variants reading the precomputed stack distances of
     *  micro-trace op (@p trace, @p idx) — bit-identical to the
     *  unindexed forms, without re-deriving the stack distance per
     *  replay. prepareReplay() must have been called. */
    double expectedLatency(const MicroTraceOp &op, uint32_t trace,
                           uint32_t idx) const;
    double expectedLatencyFull(const MicroTraceOp &op, uint32_t trace,
                               uint32_t idx) const;

    /** Predicted I-cache component cycles for the whole epoch (additive
     *  Eq. 1 form; the replay-based path uses icachePerFetch instead). */
    double icacheCycles() const { return icacheCycles_; }

    /** Expected front-end stall per fetched micro-op. */
    double icachePerFetch() const
    {
        return epoch_.numOps > 0 ?
            icacheCycles_ / static_cast<double>(epoch_.numOps) : 0.0;
    }

  private:
    /** The reuse distance driving shared-LLC decisions for one op. */
    uint64_t llcRd(const MicroTraceOp &op) const;

    /** Hit-path latency of a load from its expected local stack
     *  distance (callers handle stores before reaching here). */
    double hitLatency(double sd_local) const;

    const EpochProfile &epoch_;
    const MulticoreConfig &cfg_;
    const CoreConfig &core_;
    std::shared_ptr<const EpochStacks> stacks_;
    mutable const std::vector<std::vector<EpochStacks::OpSd>> *microSd_ =
        nullptr;

    uint64_t l1Lines_, l2Lines_, llcLines_;
    double l1dMiss_ = 0.0;
    double l2Miss_ = 0.0;
    double llcMiss_ = 0.0;
    double llcLoadMisses_ = 0.0;
    double llcLoadMissRate_ = 0.0;
    double icacheCycles_ = 0.0;
};

} // namespace rppm

#endif // RPPM_RPPM_MEMORY_MODEL_HH

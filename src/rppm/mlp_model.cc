#include "rppm/mlp_model.hh"

#include <algorithm>
#include <cmath>

namespace rppm {

double
epochMlp(const EpochProfile &epoch, const CoreConfig &core,
         double llc_load_miss_rate)
{
    if (epoch.numLoads == 0 || llc_load_miss_rate <= 0.0)
        return 1.0;

    // Loads the ROB window can expose simultaneously: window size divided
    // by the mean micro-op spacing between loads.
    const double gap = std::max(1.0, epoch.meanLoadGap() + 1.0);
    const double loads_in_window =
        static_cast<double>(core.robSize) / gap;

    // Expected number of simultaneously outstanding misses: misses among
    // the exposed loads...
    double mlp = loads_in_window * llc_load_miss_rate;

    // ...minus the ones that cannot overlap because they are serialized
    // behind an earlier load (pointer chasing).
    const double serial_frac = static_cast<double>(
        epoch.loadsDependingOnLoad) /
        static_cast<double>(epoch.numLoads);
    mlp *= 1.0 - serial_frac;

    // MLP is "outstanding misses given at least one", so it cannot drop
    // below 1; the L1 MSHRs cap it from above.
    return std::clamp(mlp, 1.0, static_cast<double>(core.mshrs));
}

} // namespace rppm

/**
 * @file
 * Memory-level-parallelism model (Eq. 1 D-component divisor), in the
 * spirit of Van den Steen & Eeckhout, CAL 2018 [36].
 *
 * MLP is the average number of outstanding long-latency load misses when
 * at least one is outstanding. Microarchitecture-independent inputs: the
 * spacing of loads in the micro-op stream (loadGap) and the fraction of
 * loads serialized behind earlier loads (pointer chasing). Architecture
 * inputs: ROB size (how many micro-ops the window can expose) and MSHR
 * count (how many misses the L1 can track).
 */

#ifndef RPPM_RPPM_MLP_MODEL_HH
#define RPPM_RPPM_MLP_MODEL_HH

#include "arch/config.hh"
#include "profile/epoch_profile.hh"

namespace rppm {

/**
 * Predicted MLP of @p epoch on @p core.
 *
 * @param llc_load_miss_rate per-load LLC miss probability from the
 *        statistical cache model
 * @return MLP in [1, mshrs]
 */
double epochMlp(const EpochProfile &epoch, const CoreConfig &core,
                double llc_load_miss_rate);

} // namespace rppm

#endif // RPPM_RPPM_MLP_MODEL_HH

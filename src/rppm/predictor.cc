#include "rppm/predictor.hh"

namespace rppm {

CpiStack
RppmPrediction::averageCpiStack() const
{
    CpiStack avg;
    uint32_t counted = 0;
    for (size_t t = 0; t < threads.size(); ++t) {
        if (threads[t].instructions == 0)
            continue;
        CpiStack stack = threads[t].stack;
        stack[CpiComponent::Sync] += threadIdle[t];
        stack.scale(1.0 / static_cast<double>(threads[t].instructions));
        avg.add(stack);
        ++counted;
    }
    if (counted > 0)
        avg.scale(1.0 / static_cast<double>(counted));
    return avg;
}

Bottlegraph
RppmPrediction::bottlegraph() const
{
    return buildBottlegraph(activity, totalCycles);
}

RppmPrediction
predict(const WorkloadProfile &profile, const MulticoreConfig &cfg,
        const RppmOptions &opts)
{
    cfg.validate();
    RppmPrediction pred;
    pred.workload = profile.name;
    pred.config = cfg.name;

    // Phase 1: per-epoch active execution times for every thread.
    pred.threads.reserve(profile.numThreads);
    for (const ThreadProfile &thread : profile.threads)
        pred.threads.push_back(predictThread(thread, cfg, opts.eq1));

    // Phase 2: symbolic execution of the synchronization trace.
    const SyncModelResult sync =
        runSyncModel(profile, pred.threads, opts.sync);
    pred.totalCycles = sync.totalCycles;
    pred.totalSeconds = sync.totalCycles / (cfg.core.frequencyGHz * 1e9);
    pred.threadIdle = sync.threadIdle;
    pred.activity = sync.activity;
    return pred;
}

} // namespace rppm

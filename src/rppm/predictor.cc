#include "rppm/predictor.hh"

namespace rppm {

CpiStack
RppmPrediction::averageCpiStack() const
{
    CpiStack avg;
    uint32_t counted = 0;
    for (size_t t = 0; t < threads.size(); ++t) {
        if (threads[t].instructions == 0)
            continue;
        CpiStack stack = threads[t].stack;
        stack[CpiComponent::Sync] += threadIdle[t];
        stack.scale(1.0 / static_cast<double>(threads[t].instructions));
        avg.add(stack);
        ++counted;
    }
    if (counted > 0)
        avg.scale(1.0 / static_cast<double>(counted));
    return avg;
}

Bottlegraph
RppmPrediction::bottlegraph() const
{
    return buildBottlegraph(activity, totalCycles);
}

RppmPrediction
predict(const WorkloadProfile &profile, const MulticoreConfig &cfg,
        const RppmOptions &opts)
{
    cfg.validate();
    RppmPrediction pred;
    pred.workload = profile.name;
    pred.config = cfg.name;

    // Phase 1: per-epoch active execution times for every thread,
    // evaluated against the core the thread is mapped to.
    pred.threads.reserve(profile.numThreads);
    pred.threadCoreIds.reserve(profile.numThreads);
    for (uint32_t t = 0; t < profile.numThreads; ++t) {
        pred.threadCoreIds.push_back(cfg.coreOf(t));
        pred.threads.push_back(predictThread(profile.threads[t], cfg,
                                             cfg.threadCore(t), opts.eq1));
    }

    // Phase 2: symbolic execution of the synchronization trace on the
    // common reference time base.
    const SyncModelResult sync =
        runSyncModel(profile, pred.threads, cfg, opts.sync);
    pred.totalCycles = sync.totalCycles;
    pred.totalSeconds = cfg.refCyclesToSeconds(sync.totalCycles);
    pred.threadIdle = sync.threadIdle;
    pred.activity = sync.activity;
    pred.threadSeconds.reserve(profile.numThreads);
    for (uint32_t t = 0; t < profile.numThreads; ++t)
        pred.threadSeconds.push_back(
            cfg.refCyclesToSeconds(sync.threadFinish[t]));
    return pred;
}

} // namespace rppm

/**
 * @file
 * Top-level RPPM prediction API.
 *
 * Combines phase 1 (per-epoch active execution times via Eq. 1) with
 * phase 2 (Algorithm-2 symbolic synchronization execution) to predict a
 * multi-threaded workload's execution time, per-thread CPI stacks and
 * bottlegraph on any MulticoreConfig — all from a single profile.
 */

#ifndef RPPM_RPPM_PREDICTOR_HH
#define RPPM_RPPM_PREDICTOR_HH

#include <string>
#include <vector>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "rppm/sync_model.hh"
#include "rppm/thread_model.hh"
#include "sim/bottlegraph.hh"

namespace rppm {

/**
 * Full RPPM prediction for one configuration.
 *
 * totalCycles (and activity) are in reference cycles — core 0's clock
 * domain — so heterogeneous per-core frequencies share one time base;
 * per-thread phase-1 results are in each thread's mapped core's own
 * cycles (threadCoreIds records the mapping used).
 */
struct RppmPrediction
{
    std::string workload;
    std::string config;
    double totalCycles = 0.0;
    double totalSeconds = 0.0;
    std::vector<ThreadPrediction> threads; ///< phase-1 results
    std::vector<double> threadIdle;        ///< phase-2 sync idle/thread
    std::vector<std::vector<ActivityInterval>> activity;
    std::vector<uint32_t> threadCoreIds;   ///< core each thread ran on
    std::vector<double> threadSeconds;     ///< per-thread finish time (s)

    /**
     * Average per-thread CPI stack, normalized per instruction, with the
     * Sync component included — directly comparable to
     * SimResult::averageCpiStack() (paper Fig. 5).
     */
    CpiStack averageCpiStack() const;

    /** Predicted bottlegraph (paper Fig. 6). */
    Bottlegraph bottlegraph() const;
};

/** RPPM model tunables. */
struct RppmOptions
{
    SyncModelOptions sync;
    Eq1Options eq1;   ///< per-epoch model; defaults to the full model
};

/** Predict @p profile's execution on @p cfg. */
RppmPrediction predict(const WorkloadProfile &profile,
                       const MulticoreConfig &cfg,
                       const RppmOptions &opts = {});

} // namespace rppm

#endif // RPPM_RPPM_PREDICTOR_HH

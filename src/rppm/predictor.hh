/**
 * @file
 * Top-level RPPM prediction API.
 *
 * Combines phase 1 (per-epoch active execution times via Eq. 1) with
 * phase 2 (Algorithm-2 symbolic synchronization execution) to predict a
 * multi-threaded workload's execution time, per-thread CPI stacks and
 * bottlegraph on any MulticoreConfig — all from a single profile.
 */

#ifndef RPPM_RPPM_PREDICTOR_HH
#define RPPM_RPPM_PREDICTOR_HH

#include <string>
#include <vector>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "rppm/sync_model.hh"
#include "rppm/thread_model.hh"
#include "sim/bottlegraph.hh"

namespace rppm {

/** Full RPPM prediction for one configuration. */
struct RppmPrediction
{
    std::string workload;
    std::string config;
    double totalCycles = 0.0;
    double totalSeconds = 0.0;
    std::vector<ThreadPrediction> threads; ///< phase-1 results
    std::vector<double> threadIdle;        ///< phase-2 sync idle/thread
    std::vector<std::vector<ActivityInterval>> activity;

    /**
     * Average per-thread CPI stack, normalized per instruction, with the
     * Sync component included — directly comparable to
     * SimResult::averageCpiStack() (paper Fig. 5).
     */
    CpiStack averageCpiStack() const;

    /** Predicted bottlegraph (paper Fig. 6). */
    Bottlegraph bottlegraph() const;
};

/** RPPM model tunables. */
struct RppmOptions
{
    SyncModelOptions sync;
    Eq1Options eq1;   ///< per-epoch model; defaults to the full model
};

/** Predict @p profile's execution on @p cfg. */
RppmPrediction predict(const WorkloadProfile &profile,
                       const MulticoreConfig &cfg,
                       const RppmOptions &opts = {});

} // namespace rppm

#endif // RPPM_RPPM_PREDICTOR_HH

#include "rppm/sync_model.hh"

#include <limits>

#include "common/assert.hh"
#include "sim/sync_state.hh"

namespace rppm {

namespace detail {

/** Algorithm 2 with an explicit per-thread reference-cycles-per-own-
 *  cycle conversion factor (all 1.0 = single clock domain). */
SyncModelResult
runSyncModelScaled(const WorkloadProfile &profile,
                   const std::vector<ThreadPrediction> &threads,
                   const std::vector<double> &scales,
                   const SyncModelOptions &opts);

} // namespace detail

SyncModelResult
runSyncModel(const WorkloadProfile &profile,
             const std::vector<ThreadPrediction> &threads,
             const SyncModelOptions &opts)
{
    const std::vector<double> scales(profile.numThreads, 1.0);
    return detail::runSyncModelScaled(profile, threads, scales, opts);
}

SyncModelResult
runSyncModel(const WorkloadProfile &profile,
             const std::vector<ThreadPrediction> &threads,
             const MulticoreConfig &cfg, const SyncModelOptions &opts)
{
    std::vector<double> scales(profile.numThreads, 1.0);
    for (uint32_t t = 0; t < profile.numThreads; ++t)
        scales[t] = cfg.threadTimeScale(t);
    return detail::runSyncModelScaled(profile, threads, scales, opts);
}

namespace detail {

SyncModelResult
runSyncModelScaled(const WorkloadProfile &profile,
                   const std::vector<ThreadPrediction> &threads,
                   const std::vector<double> &scales,
                   const SyncModelOptions &opts)
{
    const uint32_t num_threads = profile.numThreads;
    RPPM_REQUIRE(threads.size() == num_threads,
                 "one ThreadPrediction required per profiled thread");

    // The symbolic execution reuses the runtime synchronization state
    // machine; only the notion of time differs (predicted epoch durations
    // rather than simulated cycles).
    SyncState sync(num_threads, profile.barrierPopulation);

    SyncModelResult result;
    result.threadFinish.assign(num_threads, 0.0);
    result.threadIdle.assign(num_threads, 0.0);
    result.activity.resize(num_threads);

    struct Cursor
    {
        size_t epoch = 0;      ///< next epoch to execute
        double time = 0.0;     ///< accumulated (active + idle) time
        double activeStart = 0.0;
        bool done = false;
    };
    std::vector<Cursor> cursors(num_threads);

    auto handle_releases = [&](const SyncOutcome &out) {
        for (const auto &[tid, when] : out.released) {
            Cursor &c = cursors[tid];
            if (when > c.time) {
                // Reference-cycle gap, booked in the thread's own clock
                // so it stacks onto the thread's CPI components.
                result.threadIdle[tid] += (when - c.time) / scales[tid];
                c.time = when;
            }
            c.activeStart = c.time;
        }
    };

    // Algorithm 2: while not finished, advance the unblocked thread with
    // the smallest accumulated time to its next synchronization event.
    uint32_t live = num_threads;
    while (live > 0) {
        uint32_t pick = num_threads;
        double best = std::numeric_limits<double>::infinity();
        for (uint32_t t = 0; t < num_threads; ++t) {
            if (cursors[t].done || sync.blocked(t))
                continue;
            if (cursors[t].time < best) {
                best = cursors[t].time;
                pick = t;
            }
        }
        RPPM_REQUIRE(pick < num_threads,
                     "deadlock in symbolic execution (profile mismatch)");

        Cursor &cur = cursors[pick];
        const ThreadProfile &tp = profile.threads[pick];
        const ThreadPrediction &pred = threads[pick];
        RPPM_ASSERT(cur.epoch < tp.epochs.size());

        // Advance through the epoch's active execution time (converted
        // from the thread's core cycles to the reference time base).
        cur.time += pred.epochs[cur.epoch].cycles * scales[pick];
        const EpochProfile &epoch = tp.epochs[cur.epoch];
        ++cur.epoch;

        if (epoch.endType == SyncType::None) {
            // Thread end.
            cur.done = true;
            --live;
            result.threadFinish[pick] = cur.time;
            if (cur.time > cur.activeStart)
                result.activity[pick].push_back(
                    {cur.activeStart, cur.time});
            handle_releases(sync.finish(pick, cur.time));
            continue;
        }

        // Synchronization operations cost real cycles on the thread's
        // own clock, mirroring the simulator's per-event overhead.
        cur.time += opts.syncOpCost * scales[pick];

        // Close the activity interval at every sync event: a release may
        // move this thread's activeStart (e.g. when it is the last
        // arrival opening a barrier), which would otherwise silently
        // drop the work accumulated since the previous event. Adjacent
        // intervals merge naturally in the bottlegraph sweep.
        if (cur.time > cur.activeStart)
            result.activity[pick].push_back({cur.activeStart, cur.time});
        cur.activeStart = cur.time;

        TraceRecord rec;
        rec.sync = epoch.endType;
        rec.syncArg = epoch.endArg;
        const SyncOutcome out = sync.apply(pick, rec, cur.time);
        handle_releases(out);
        // If blocked, idle runs until a release advances cur.time.
    }

    for (uint32_t t = 0; t < num_threads; ++t)
        result.totalCycles = std::max(result.totalCycles,
                                      result.threadFinish[t]);
    return result;
}

} // namespace detail

} // namespace rppm

/**
 * @file
 * Synchronization-overhead model — Algorithm 2 of the paper (phase 2,
 * Fig. 3c).
 *
 * Symbolic execution of the workload's synchronization structure: at each
 * step, the unblocked thread with the smallest accumulated time advances
 * to its next synchronization event (its next epoch boundary), with the
 * epoch's duration taken from the phase-1 prediction. Barriers (classic
 * and condvar-implemented, as recognized by the profiler), critical
 * sections, producer-consumer condvars and thread create/join are modeled
 * per the paper's descriptions. The slowest thread determines each
 * synchronization event's timing; faster threads accumulate idle time.
 */

#ifndef RPPM_RPPM_SYNC_MODEL_HH
#define RPPM_RPPM_SYNC_MODEL_HH

#include <vector>

#include "profile/epoch_profile.hh"
#include "rppm/thread_model.hh"
#include "sim/simulator.hh"

namespace rppm {

/** Options of the symbolic execution. */
struct SyncModelOptions
{
    /** Cycle cost per synchronization operation (matches SimOptions). */
    double syncOpCost = 40.0;
};

/**
 * Result of the phase-2 symbolic execution.
 *
 * Multicore-level times (totalCycles, threadFinish, activity) are in
 * reference cycles — cycles of core 0's clock when a MulticoreConfig
 * drives the execution, which coincide with plain cycles on homogeneous
 * machines. threadIdle is in each thread's *own* core cycles so it can
 * be stacked onto the thread's CPI components directly.
 */
struct SyncModelResult
{
    double totalCycles = 0.0;          ///< predicted execution time
    std::vector<double> threadFinish;  ///< per-thread completion times
    std::vector<double> threadIdle;    ///< sync idle, own-core cycles
    /** Per-thread busy intervals, for predicted bottlegraphs. */
    std::vector<std::vector<ActivityInterval>> activity;
};

/**
 * Run Algorithm 2 over @p profile with per-epoch durations from
 * @p threads (one ThreadPrediction per profiled thread), each thread's
 * cycles converted to the common reference time base through
 * @p cfg.threadTimeScale() — this is what lets threads on cores with
 * different clocks synchronize consistently.
 */
SyncModelResult runSyncModel(const WorkloadProfile &profile,
                             const std::vector<ThreadPrediction> &threads,
                             const MulticoreConfig &cfg,
                             const SyncModelOptions &opts = {});

/** Convenience: single clock domain (all time scales 1). */
SyncModelResult runSyncModel(const WorkloadProfile &profile,
                             const std::vector<ThreadPrediction> &threads,
                             const SyncModelOptions &opts = {});

} // namespace rppm

#endif // RPPM_RPPM_SYNC_MODEL_HH

#include "rppm/thread_model.hh"

#include <algorithm>

#include "rppm/branch_model.hh"
#include "rppm/ilp_model.hh"
#include "rppm/memory_model.hh"
#include "rppm/mlp_model.hh"

namespace rppm {

namespace {

/**
 * Shared-bus queueing inflation for the DRAM component. With
 * memBusCycles > 0, every core's misses compete for one bus; assuming
 * symmetric threads, the per-epoch DRAM stall grows by the expected
 * M/D/1 waiting time per transfer.
 *
 * @param misses predicted DRAM transfers in this epoch
 * @param cycles predicted epoch length (for the arrival rate)
 */
double
busAdjustedDram(const MulticoreConfig &cfg, const CoreConfig &core,
                double misses, double cycles, double dram_cycles)
{
    if (cfg.memBusCycles == 0 || misses <= 0.0 || cycles <= 0.0)
        return dram_cycles;
    // memBusCycles is defined on the reference (core 0) clock; this
    // epoch's quantities are in @p core's own cycles, so convert the
    // service time (exact /1.0 on a homogeneous machine).
    const double service = static_cast<double>(cfg.memBusCycles) /
        (cfg.referenceGHz() / core.frequencyGHz);
    const double cores = static_cast<double>(cfg.numCores());

    // Light/moderate load: M/D/1 queueing delay per transfer.
    const double rho = std::min(0.95, misses / cycles * cores * service);
    const double wait = 0.5 * service * rho / (1.0 - rho);
    const double inflated = dram_cycles *
        (1.0 + wait / static_cast<double>(core.memLatency));

    // Saturation: the bus serializes every core's transfers, so the
    // epoch cannot drain its misses faster than the aggregate service
    // time — a hard bandwidth lower bound.
    const double bound = misses * service * cores;
    return std::max(inflated, bound);
}

} // namespace

EpochPrediction
predictEpoch(const EpochProfile &epoch, const MulticoreConfig &cfg,
             const Eq1Options &opts)
{
    return predictEpoch(epoch, cfg, cfg.core(0), opts, nullptr);
}

EpochPrediction
predictEpoch(const EpochProfile &epoch, const MulticoreConfig &cfg,
             const CoreConfig &core, const Eq1Options &opts)
{
    return predictEpoch(epoch, cfg, core, opts, nullptr);
}

EpochPrediction
predictEpoch(const EpochProfile &epoch, const MulticoreConfig &cfg,
             const CoreConfig &core, const Eq1Options &opts,
             std::shared_ptr<const EpochStacks> stacks)
{
    EpochPrediction pred;
    if (epoch.numOps == 0)
        return pred;

    const double n = static_cast<double>(epoch.numOps);
    EpochMemoryModel mem =
        stacks ? EpochMemoryModel(epoch, cfg, core, std::move(stacks))
               : EpochMemoryModel(epoch, cfg, core, opts.llcUsesGlobalRd);

    if (!opts.ilpReplay) {
        // Ablation: no ILP modeling. Dispatch at full front-end width and
        // stack the miss components additively on top (the pre-interval-
        // model view of processor performance).
        const double width = static_cast<double>(core.dispatchWidth);
        pred.deff = width;
        pred.stack[CpiComponent::Base] = n / width;
        const double mem_accesses =
            static_cast<double>(epoch.numLoads + epoch.numStores);
        pred.stack[CpiComponent::MemL2] = mem_accesses *
            mem.l1dMissRate() * static_cast<double>(core.l2.latency);
        pred.stack[CpiComponent::MemLLC] = mem_accesses *
            mem.l2MissRate() * static_cast<double>(cfg.llc.latency);
        const double mlp = opts.mlpOverlap ?
            epochMlp(epoch, core, mem.llcLoadMissRate()) : 1.0;
        pred.mlp = mlp;
        pred.stack[CpiComponent::MemDram] = mem.llcLoadMisses() *
            static_cast<double>(core.memLatency) / mlp;
        pred.stack[CpiComponent::ICache] = mem.icacheCycles();
        if (opts.branch) {
            const BranchComponent branch = branchComponent(
                epoch, core,
                static_cast<double>(core.frontendDepth) + 10.0);
            pred.stack[CpiComponent::Branch] = branch.cycles;
        }
        pred.cycles = pred.stack.total();
        return pred;
    }

    // --- Base + memory components via three micro-trace replays of
    // increasing memory realism. The L1-only replay gives the pure-ILP
    // base (Eq. 1's N/Deff); the hit-path replay adds L2/LLC hit
    // latencies; the full replay adds per-access DRAM penalties, from
    // which the window model derives the overlapped (MLP-limited)
    // long-latency stall — Eq. 1's mLLC x cmem / MLP term, with the MLP
    // emerging from dependences, ROB occupancy and MSHR pressure.
    // Per-op expected stack distances are precomputed (and shared across
    // grid points through EpochStacks), so the replays read two doubles
    // per load instead of re-walking the survival sums.
    mem.prepareReplay();
    const auto full_latency_fn = [&mem, &opts](const MicroTraceOp &op,
                                               uint32_t trace,
                                               uint32_t idx) {
        return opts.mlpOverlap ? mem.expectedLatencyFull(op, trace, idx)
                               : mem.expectedLatency(op, trace, idx);
    };
    const double miss_rate_pred =
        opts.branch ? epochBranchMissRate(epoch, core) : 0.0;

    if (!opts.decompose) {
        // Fast path: only the final replay (full memory + I-cache
        // stalls + branch flushes). Identical total to the decomposed
        // path up to clamping; everything reported as Base.
        const IlpResult ilp = epochIlp(epoch, core,
                                       IndexedLatencyFn(full_latency_fn),
                                       mem.icachePerFetch(),
                                       miss_rate_pred);
        pred.deff = ilp.ipc;
        double cycles = n / ilp.ipc;
        if (!opts.mlpOverlap)
            cycles += mem.llcLoadMisses() *
                static_cast<double>(core.memLatency);
        // Bus contention: treat the whole epoch as the DRAM share for
        // the fast path (slightly conservative under moderate load).
        cycles = busAdjustedDram(cfg, core, mem.dramTransfers(), cycles, cycles);
        pred.stack[CpiComponent::Base] = cycles;
        pred.cycles = cycles;
        pred.mlp = epochMlp(epoch, core, mem.llcLoadMissRate());
        return pred;
    }

    const IlpResult ilp_l1 = epochIlp(
        epoch, core,
        IndexedLatencyFn([&mem](const MicroTraceOp &op, uint32_t,
                                uint32_t) {
            return mem.expectedLatencyL1Only(op);
        }));
    const IlpResult ilp_hit = epochIlp(
        epoch, core,
        IndexedLatencyFn([&mem](const MicroTraceOp &op, uint32_t trace,
                                uint32_t idx) {
            return mem.expectedLatency(op, trace, idx);
        }));
    const IlpResult ilp_full =
        epochIlp(epoch, core, IndexedLatencyFn(full_latency_fn));
    // Fourth replay: add the expected I-cache front-end stalls on top of
    // the full memory behaviour, so instruction misses only cost what
    // the back end does not hide.
    const IlpResult ilp_fetch =
        epochIlp(epoch, core, IndexedLatencyFn(full_latency_fn),
                 mem.icachePerFetch());
    // Fifth replay: emulate front-end flushes at the entropy-predicted
    // misprediction rate, capturing redirect latency plus window ramp-up
    // (Eq. 1's mbpred x (cres + cfr) term, evaluated mechanistically).
    const IlpResult ilp_flush = epochIlp(
        epoch, core, IndexedLatencyFn(full_latency_fn),
        mem.icachePerFetch(), miss_rate_pred);

    const double base_cycles = n / ilp_l1.ipc;
    const double hit_cycles = n / ilp_hit.ipc;
    const double full_cycles = n / ilp_full.ipc;
    const double fetch_cycles = n / ilp_fetch.ipc;
    const double flush_cycles = n / ilp_flush.ipc;
    const double near_mem_cycles = std::max(0.0, hit_cycles - base_cycles);
    // With MLP overlap disabled (ablation), the full replay equals the
    // hit replay and every DRAM access is charged serially: mLLC x cmem.
    double dram_cycles = opts.mlpOverlap ?
        std::max(0.0, full_cycles - hit_cycles) :
        mem.llcLoadMisses() * static_cast<double>(core.memLatency);
    // Shared-bus queueing (no-op unless memBusCycles > 0).
    dram_cycles = busAdjustedDram(cfg, core, mem.dramTransfers(),
                                  flush_cycles, dram_cycles);
    pred.deff = ilp_full.ipc;

    // Effective MLP implied by the window model, reported for analysis:
    // raw miss latency over the overlapped stall it produced.
    const double raw_dram =
        mem.llcLoadMisses() * static_cast<double>(core.memLatency);
    pred.mlp = dram_cycles > 0.0 ?
        std::max(1.0, raw_dram / dram_cycles) :
        epochMlp(epoch, core, mem.llcLoadMissRate());

    // Split the near-memory cycles between L2 and LLC by their predicted
    // extra-latency contributions.
    const double l2_weight = mem.l1dMissRate() *
        static_cast<double>(core.l2.latency);
    const double llc_weight = mem.l2MissRate() *
        static_cast<double>(cfg.llc.latency);
    const double weight_sum = l2_weight + llc_weight;
    const double l2_share =
        weight_sum > 0.0 ? l2_weight / weight_sum : 1.0;

    // --- Branch component: the flush-replay difference, i.e. the extra
    // cycles mispredictions add on top of everything else the window is
    // already paying for.
    const double branch_cycles = std::max(0.0, flush_cycles - fetch_cycles);

    // --- I-cache component: the replay difference (overlapped stalls).
    const double icache_cycles = std::max(0.0, fetch_cycles - full_cycles);

    pred.stack[CpiComponent::Base] = base_cycles;
    pred.stack[CpiComponent::MemL2] = near_mem_cycles * l2_share;
    pred.stack[CpiComponent::MemLLC] = near_mem_cycles * (1.0 - l2_share);
    pred.stack[CpiComponent::Branch] = branch_cycles;
    pred.stack[CpiComponent::ICache] = icache_cycles;
    pred.stack[CpiComponent::MemDram] = dram_cycles;
    pred.cycles = pred.stack.total();
    return pred;
}

ThreadPrediction
predictThread(const ThreadProfile &thread, const MulticoreConfig &cfg,
              const Eq1Options &opts)
{
    return predictThread(thread, cfg, cfg.core(0), opts, {});
}

ThreadPrediction
predictThread(const ThreadProfile &thread, const MulticoreConfig &cfg,
              const CoreConfig &core, const Eq1Options &opts)
{
    return predictThread(thread, cfg, core, opts, {});
}

ThreadPrediction
predictThread(const ThreadProfile &thread, const MulticoreConfig &cfg,
              const CoreConfig &core, const Eq1Options &opts,
              const EpochStacksFn &stacks)
{
    ThreadPrediction result;
    result.epochs.reserve(thread.epochs.size());
    for (size_t e = 0; e < thread.epochs.size(); ++e) {
        EpochPrediction pred =
            predictEpoch(thread.epochs[e], cfg, core, opts,
                         stacks ? stacks(e) : nullptr);
        result.activeCycles += pred.cycles;
        result.stack.add(pred.stack);
        result.instructions += thread.epochs[e].numOps;
        result.epochs.push_back(std::move(pred));
    }
    return result;
}

} // namespace rppm

/**
 * @file
 * Per-epoch active execution time model — Eq. 1 of the paper:
 *
 *   C = N/Deff                                   (base / ILP)
 *     + mbpred x (cres + cfr)                    (branch)
 *     + sum_i mILi x cL(i+1)                     (I-cache)
 *     + mLLC x cmem / MLP                        (D-cache)
 *
 * evaluated entirely from the microarchitecture-independent epoch profile
 * plus a target MulticoreConfig. This is phase 1 of the RPPM prediction
 * (Fig. 3b): per-thread, per-epoch active times, before synchronization
 * overhead is added in phase 2.
 */

#ifndef RPPM_RPPM_THREAD_MODEL_HH
#define RPPM_RPPM_THREAD_MODEL_HH

#include <functional>
#include <memory>

#include "arch/config.hh"
#include "profile/epoch_profile.hh"
#include "simcore/core_model.hh"
#include "statstack/epoch_stacks.hh"

namespace rppm {

/**
 * Ablation switches for Eq. 1. All default to the full model; each
 * switch removes one mechanism so its contribution to accuracy can be
 * quantified (see bench/ablation_model_components).
 */
struct Eq1Options
{
    /** Deff from micro-trace window replay; off = front-end width. */
    bool ilpReplay = true;

    /** Shared-LLC miss rates from the global interleaved reuse
     *  distances; off = per-thread distances (no interference). */
    bool llcUsesGlobalRd = true;

    /** Overlap long-latency loads in the window (MLP); off = serialize
     *  every DRAM access (MLP = 1). */
    bool mlpOverlap = true;

    /** Model branch mispredictions; off = perfect branch prediction. */
    bool branch = true;

    /**
     * Decompose the prediction into CPI-stack components (five replays
     * per epoch). The components telescope, so turning this off runs
     * only the final replay: same total prediction, ~5x cheaper, but the
     * stack collapses into Base. Use for large design-space sweeps where
     * only execution times matter.
     */
    bool decompose = true;
};

/** Predicted timing of one epoch. */
struct EpochPrediction
{
    double cycles = 0.0;   ///< predicted active execution time
    CpiStack stack;        ///< component breakdown (absolute cycles)
    double deff = 1.0;     ///< effective dispatch rate used
    double mlp = 1.0;      ///< memory-level parallelism used
};

/**
 * Evaluate Eq. 1 for @p epoch running on core @p core of @p cfg. The
 * core supplies width/ROB/IQ/FU/branch/private-cache parameters; the
 * multicore supplies the shared LLC and bus. Resulting cycles are in
 * @p core's own clock domain.
 */
EpochPrediction predictEpoch(const EpochProfile &epoch,
                             const MulticoreConfig &cfg,
                             const CoreConfig &core,
                             const Eq1Options &opts = {});

/**
 * Same evaluation over a pre-built (shared) StatStack bundle for the
 * epoch — the memoized grid engine's entry point. @p stacks must match
 * @p epoch and opts.llcUsesGlobalRd; nullptr builds a private bundle
 * (equivalent to the overload above). Bit-identical either way.
 */
EpochPrediction predictEpoch(const EpochProfile &epoch,
                             const MulticoreConfig &cfg,
                             const CoreConfig &core,
                             const Eq1Options &opts,
                             std::shared_ptr<const EpochStacks> stacks);

/** Convenience: evaluate on core 0 (uniform machines). */
EpochPrediction predictEpoch(const EpochProfile &epoch,
                             const MulticoreConfig &cfg,
                             const Eq1Options &opts = {});

/** Predicted per-thread results across all epochs. */
struct ThreadPrediction
{
    std::vector<EpochPrediction> epochs;
    double activeCycles = 0.0; ///< sum of epoch times (no sync)
    CpiStack stack;
    uint64_t instructions = 0;
};

/** Supplies the shared StatStack bundle for epoch @p epochIdx of the
 *  thread being predicted (may return nullptr to build privately). */
using EpochStacksFn =
    std::function<std::shared_ptr<const EpochStacks>(size_t epochIdx)>;

/** Phase 1 for a whole thread on core @p core: predict every epoch
 *  independently. Cycles are in @p core's own clock domain. */
ThreadPrediction predictThread(const ThreadProfile &thread,
                               const MulticoreConfig &cfg,
                               const CoreConfig &core,
                               const Eq1Options &opts = {});

/** Same, drawing per-epoch StatStack bundles from @p stacks (the
 *  memoized engine's cache); an empty function builds privately. */
ThreadPrediction predictThread(const ThreadProfile &thread,
                               const MulticoreConfig &cfg,
                               const CoreConfig &core,
                               const Eq1Options &opts,
                               const EpochStacksFn &stacks);

/** Convenience: predict on core 0 (uniform machines). */
ThreadPrediction predictThread(const ThreadProfile &thread,
                               const MulticoreConfig &cfg,
                               const Eq1Options &opts = {});

} // namespace rppm

#endif // RPPM_RPPM_THREAD_MODEL_HH

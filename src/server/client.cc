#include "server/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace rppm {
namespace server {

namespace {

void
sysFail(const std::string &what)
{
    throw std::runtime_error("rppm client: " + what + ": " +
                             std::strerror(errno));
}

} // namespace

RppmClient::~RppmClient()
{
    close();
}

void
RppmClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    serverName_.clear();
}

void
RppmClient::connect(const std::string &socketPath,
                    const std::string &clientName)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("rppm client: socket path too long: " +
                                 socketPath);
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        sysFail("socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        errno = err;
        sysFail("connect " + socketPath);
    }

    try {
        writeFrame(fd_, MsgType::Hello, encodeHello({clientName}));
        Frame frame;
        if (!readFrame(fd_, frame))
            throw ProtocolError("server closed during negotiation");
        if (frame.type == MsgType::Error)
            throw std::runtime_error("rppm client: server rejected us: " +
                                     decodeError(frame.payload).message);
        if (frame.type != MsgType::HelloOk)
            throw ProtocolError("expected HelloOk");
        serverName_ = decodeHelloOk(frame.payload).serverName;
    } catch (...) {
        close();
        throw;
    }
}

std::vector<CellResult>
RppmClient::evaluate(const Query &query,
                     const std::function<void(const CellResult &)> &onResult)
{
    if (fd_ < 0)
        throw std::logic_error("rppm client: not connected");

    RequestMsg req;
    req.id = nextId_++;
    if (nextId_ == 0) // id 0 is reserved for connection-level errors
        nextId_ = 1;
    req.kind = query.kind;
    req.workload = query.workload;
    req.profiler = query.profiler;
    req.rppm = query.rppm;
    req.configs = query.configs;
    writeFrame(fd_, MsgType::Request, encodeRequest(req));

    std::vector<CellResult> results;
    results.reserve(query.configs.size());
    Frame frame;
    for (;;) {
        if (!readFrame(fd_, frame))
            throw ProtocolError("server closed mid-request");
        switch (frame.type) {
        case MsgType::Result: {
            const ResultMsg res = decodeResult(frame.payload);
            if (res.id != req.id)
                throw ProtocolError("Result for unknown request id");
            if (res.cell >= query.configs.size())
                throw ProtocolError("Result cell out of range");
            CellResult cell;
            cell.cell = res.cell;
            cell.config = res.config;
            cell.cycles = res.cycles;
            cell.seconds = res.seconds;
            cell.threadSeconds = res.threadSeconds;
            if (onResult)
                onResult(cell);
            results.push_back(std::move(cell));
            break;
        }
        case MsgType::Done: {
            const DoneMsg done = decodeDone(frame.payload);
            if (done.id != req.id)
                throw ProtocolError("Done for unknown request id");
            if (done.cells != results.size() ||
                results.size() != query.configs.size())
                throw ProtocolError("request completed with missing cells");
            std::sort(results.begin(), results.end(),
                      [](const CellResult &a, const CellResult &b) {
                          return a.cell < b.cell;
                      });
            for (size_t i = 0; i < results.size(); ++i)
                if (results[i].cell != i)
                    throw ProtocolError("duplicate or missing result cell");
            return results;
        }
        case MsgType::Error: {
            const ErrorMsg err = decodeError(frame.payload);
            throw std::runtime_error("rppm server error: " + err.message);
        }
        default:
            throw ProtocolError("unexpected message type from server");
        }
    }
}

void
RppmClient::shutdownServer()
{
    if (fd_ < 0)
        throw std::logic_error("rppm client: not connected");
    writeFrame(fd_, MsgType::Shutdown, encodeShutdown());
}

} // namespace server
} // namespace rppm

#include "server/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace rppm {
namespace server {

namespace {

void
sysFail(const std::string &what)
{
    throw std::runtime_error("rppm client: " + what + ": " +
                             std::strerror(errno));
}

} // namespace

RppmClient::~RppmClient()
{
    close();
}

void
RppmClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    serverName_.clear();
}

void
RppmClient::connect(const std::string &socketPath,
                    const std::string &clientName)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("rppm client: socket path too long: " +
                                 socketPath);
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        sysFail("socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        errno = err;
        sysFail("connect " + socketPath);
    }

    try {
        writeFrame(fd_, MsgType::Hello, encodeHello({clientName}));
        Frame frame;
        if (!readFrame(fd_, frame))
            throw ProtocolError("server closed during negotiation");
        if (frame.type == MsgType::Error)
            throw std::runtime_error("rppm client: server rejected us: " +
                                     decodeError(frame.payload).message);
        if (frame.type != MsgType::HelloOk)
            throw ProtocolError("expected HelloOk");
        serverName_ = decodeHelloOk(frame.payload).serverName;
    } catch (...) {
        close();
        throw;
    }
}

std::vector<CellResult>
RppmClient::evaluate(const Query &query,
                     const std::function<void(const CellResult &)> &onResult)
{
    if (fd_ < 0)
        throw std::logic_error("rppm client: not connected");

    const unsigned maxAttempts =
        backoff_.maxAttempts == 0 ? 1 : backoff_.maxAttempts;
    for (unsigned attempt = 0;; ++attempt) {
        RequestMsg req;
        req.id = nextId_++;
        if (nextId_ == 0) // id 0 is reserved for connection-level errors
            nextId_ = 1;
        req.kind = query.kind;
        req.workload = query.workload;
        req.profiler = query.profiler;
        req.rppm = query.rppm;
        req.deadlineMs = query.deadlineMs;
        req.configs = query.configs;
        writeFrame(fd_, MsgType::Request, encodeRequest(req));

        std::vector<CellResult> results;
        results.reserve(query.configs.size());
        uint32_t retryAfterMs = 0;
        bool busy = false;
        Frame frame;
        while (!busy) {
            if (!readFrame(fd_, frame))
                throw ProtocolError("server closed mid-request");
            // Frames for other ids are leftovers of an earlier aborted
            // request on this connection (the server may still have had
            // cells in flight when we gave up on it). Discard them —
            // they must not poison this request.
            switch (frame.type) {
            case MsgType::Result: {
                const ResultMsg res = decodeResult(frame.payload);
                if (res.id != req.id)
                    break; // stale
                if (res.cell >= query.configs.size())
                    throw ProtocolError("Result cell out of range");
                CellResult cell;
                cell.cell = res.cell;
                cell.config = res.config;
                cell.cycles = res.cycles;
                cell.seconds = res.seconds;
                cell.threadSeconds = res.threadSeconds;
                if (onResult)
                    onResult(cell);
                results.push_back(std::move(cell));
                break;
            }
            case MsgType::Done: {
                const DoneMsg done = decodeDone(frame.payload);
                if (done.id != req.id)
                    break; // stale
                if (done.cells != results.size() ||
                    results.size() != query.configs.size())
                    throw ProtocolError(
                        "request completed with missing cells");
                std::sort(results.begin(), results.end(),
                          [](const CellResult &a, const CellResult &b) {
                              return a.cell < b.cell;
                          });
                for (size_t i = 0; i < results.size(); ++i)
                    if (results[i].cell != i)
                        throw ProtocolError(
                            "duplicate or missing result cell");
                return results;
            }
            case MsgType::Busy: {
                const BusyMsg b = decodeBusy(frame.payload);
                if (b.id != req.id)
                    break; // stale
                retryAfterMs = b.retryAfterMs;
                busy = true;
                break;
            }
            case MsgType::Error: {
                const ErrorMsg err = decodeError(frame.payload);
                if (err.id != 0 && err.id != req.id)
                    break; // stale abort of an earlier request
                throw std::runtime_error("rppm server error: " +
                                         err.message);
            }
            default:
                throw ProtocolError("unexpected message type from server");
            }
        }

        // Shed by the server: back off and retry. Capped exponential
        // schedule on the server's hint, with deterministic seeded
        // jitter (half the delay) so a herd of shed clients spreads out
        // instead of re-stampeding in lockstep.
        if (attempt + 1 >= maxAttempts)
            throw std::runtime_error(
                "rppm server busy: gave up after " +
                std::to_string(maxAttempts) + " attempts");
        uint64_t delayMs = retryAfterMs == 0 ? 1 : retryAfterMs;
        delayMs = std::min<uint64_t>(backoff_.capMs, delayMs << attempt);
        if (delayMs == 0)
            delayMs = 1;
        const uint64_t half = delayMs / 2;
        delayMs = delayMs - half + jitter_.nextBounded(half + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    }
}

void
RppmClient::shutdownServer()
{
    if (fd_ < 0)
        throw std::logic_error("rppm client: not connected");
    writeFrame(fd_, MsgType::Shutdown, encodeShutdown());
}

} // namespace server
} // namespace rppm

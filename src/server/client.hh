/**
 * @file
 * Client library for the rppmd prediction daemon.
 *
 * RppmClient wraps one connection: connect() performs the
 * Hello/HelloOk version negotiation, evaluate() submits a (workload,
 * config-grid) query and collects the streamed per-cell results, and
 * shutdownServer() asks the daemon to drain and exit. One client is one
 * connection and is not thread-safe; concurrent queries take one client
 * each (the daemon multiplexes them server-side).
 *
 * The daemon runs the same evaluation pipeline as an in-process
 * Study::run(), so evaluate() results are bit-identical to a local
 * study of the same workload/options/grid — at warm-daemon latency,
 * because profiles and prediction memos persist across queries and
 * clients.
 */

#ifndef RPPM_SERVER_CLIENT_HH
#define RPPM_SERVER_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "server/protocol.hh"

namespace rppm {
namespace server {

/** One completed grid cell of a query, in config-grid order. */
struct CellResult
{
    uint64_t cell = 0; ///< index into Query::configs
    std::string config;
    double cycles = 0.0;
    double seconds = 0.0;
    std::vector<double> threadSeconds;
};

/** One prediction query: a workload reference plus the options and
 *  config grid a Study would carry. */
struct Query
{
    WorkloadRefKind kind = WorkloadRefKind::SuiteName;
    std::string workload;
    ProfilerOptions profiler;
    RppmOptions rppm;
    /** Per-request deadline forwarded to the server (0 = none). An
     *  expired deadline fails this query with std::runtime_error; the
     *  connection stays usable for the next evaluate(). */
    uint32_t deadlineMs = 0;
    std::vector<MulticoreConfig> configs;
};

/** Retry policy for Busy (load-shed) replies: capped exponential
 *  backoff seeded deterministically, so test runs are reproducible. */
struct BackoffOptions
{
    unsigned maxAttempts = 8; ///< total tries before giving up
    uint32_t capMs = 2000;    ///< upper bound on one backoff sleep
    uint64_t seed = 0x52d7a11e; ///< jitter RNG seed (deterministic)
};

class RppmClient
{
  public:
    RppmClient() = default;
    ~RppmClient();

    RppmClient(const RppmClient &) = delete;
    RppmClient &operator=(const RppmClient &) = delete;

    /**
     * Connect to the daemon at @p socketPath and negotiate the protocol
     * version. Throws std::runtime_error on connection failure and
     * ProtocolError / std::invalid_argument when negotiation fails.
     */
    void connect(const std::string &socketPath,
                 const std::string &clientName = "rppm_client");

    bool connected() const { return fd_ >= 0; }

    /** The daemon's HelloOk name (empty before connect). */
    const std::string &serverName() const { return serverName_; }

    /**
     * Submit @p query and block until the daemon delivers every cell.
     * Returns one CellResult per config, sorted into config-grid order
     * (the daemon streams them in completion order). @p onResult, when
     * set, observes each result as it arrives. A Busy (load-shed) reply
     * is retried under the configured backoff policy before giving up.
     * Throws std::runtime_error on a server-reported Error (including a
     * missed deadline or backoff exhaustion) and ProtocolError on a
     * broken stream. Frames belonging to an earlier aborted request on
     * this connection are discarded silently — an abandoned query never
     * poisons the next one.
     */
    std::vector<CellResult>
    evaluate(const Query &query,
             const std::function<void(const CellResult &)> &onResult = {});

    /** Replace the Busy retry policy (applies to later evaluate calls);
     *  reseeds the jitter RNG for reproducible retry schedules. */
    void
    setBackoff(const BackoffOptions &opts)
    {
        backoff_ = opts;
        jitter_ = Rng(opts.seed);
    }

    /** Ask the daemon to drain and exit (connection stays usable until
     *  the daemon closes it). */
    void shutdownServer();

    void close();

  private:
    int fd_ = -1;
    uint32_t nextId_ = 1;
    std::string serverName_;
    BackoffOptions backoff_;
    Rng jitter_{BackoffOptions{}.seed};
};

} // namespace server
} // namespace rppm

#endif // RPPM_SERVER_CLIENT_HH

/**
 * @file
 * Client library for the rppmd prediction daemon.
 *
 * RppmClient wraps one connection: connect() performs the
 * Hello/HelloOk version negotiation, evaluate() submits a (workload,
 * config-grid) query and collects the streamed per-cell results, and
 * shutdownServer() asks the daemon to drain and exit. One client is one
 * connection and is not thread-safe; concurrent queries take one client
 * each (the daemon multiplexes them server-side).
 *
 * The daemon runs the same evaluation pipeline as an in-process
 * Study::run(), so evaluate() results are bit-identical to a local
 * study of the same workload/options/grid — at warm-daemon latency,
 * because profiles and prediction memos persist across queries and
 * clients.
 */

#ifndef RPPM_SERVER_CLIENT_HH
#define RPPM_SERVER_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "server/protocol.hh"

namespace rppm {
namespace server {

/** One completed grid cell of a query, in config-grid order. */
struct CellResult
{
    uint64_t cell = 0; ///< index into Query::configs
    std::string config;
    double cycles = 0.0;
    double seconds = 0.0;
    std::vector<double> threadSeconds;
};

/** One prediction query: a workload reference plus the options and
 *  config grid a Study would carry. */
struct Query
{
    WorkloadRefKind kind = WorkloadRefKind::SuiteName;
    std::string workload;
    ProfilerOptions profiler;
    RppmOptions rppm;
    std::vector<MulticoreConfig> configs;
};

class RppmClient
{
  public:
    RppmClient() = default;
    ~RppmClient();

    RppmClient(const RppmClient &) = delete;
    RppmClient &operator=(const RppmClient &) = delete;

    /**
     * Connect to the daemon at @p socketPath and negotiate the protocol
     * version. Throws std::runtime_error on connection failure and
     * ProtocolError / std::invalid_argument when negotiation fails.
     */
    void connect(const std::string &socketPath,
                 const std::string &clientName = "rppm_client");

    bool connected() const { return fd_ >= 0; }

    /** The daemon's HelloOk name (empty before connect). */
    const std::string &serverName() const { return serverName_; }

    /**
     * Submit @p query and block until the daemon delivers every cell.
     * Returns one CellResult per config, sorted into config-grid order
     * (the daemon streams them in completion order). @p onResult, when
     * set, observes each result as it arrives. Throws std::runtime_error
     * on a server-reported Error and ProtocolError on a broken stream.
     */
    std::vector<CellResult>
    evaluate(const Query &query,
             const std::function<void(const CellResult &)> &onResult = {});

    /** Ask the daemon to drain and exit (connection stays usable until
     *  the daemon closes it). */
    void shutdownServer();

    void close();

  private:
    int fd_ = -1;
    uint32_t nextId_ = 1;
    std::string serverName_;
};

} // namespace server
} // namespace rppm

#endif // RPPM_SERVER_CLIENT_HH

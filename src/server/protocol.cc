#include "server/protocol.hh"

#include <cerrno>
#include <cstring>

#include "common/fault.hh"

namespace rppm {
namespace server {

namespace {

/** Write all of @p n bytes via the fault-aware transfer helper
 *  (common/fault.hh: EINTR retry, partial-write resumption,
 *  MSG_NOSIGNAL, net.send.partial injection point). */
void
writeAll(int fd, const void *data, size_t n)
{
    const io::XferResult r = io::sendFull(fd, data, n);
    if (r.status != io::XferResult::Ok)
        throw ProtocolError(std::string("write failed: ") +
                            std::strerror(r.error));
}

/** Read exactly @p n bytes. Returns false on EOF before the first byte
 *  when @p eof_ok; EOF mid-read always throws (a torn frame). */
bool
readAll(int fd, void *out, size_t n, bool eof_ok)
{
    const io::XferResult r = io::recvFull(fd, out, n);
    switch (r.status) {
    case io::XferResult::Ok:
        return true;
    case io::XferResult::Eof:
        if (eof_ok)
            return false;
        throw ProtocolError("connection closed mid-frame (short read)");
    case io::XferResult::Err:
        if (r.error == ECONNRESET)
            throw ProtocolError("connection closed mid-frame (short read)");
        throw ProtocolError(std::string("read failed: ") +
                            std::strerror(r.error));
    }
    throw ProtocolError("unreachable");
}

/** Begin a message payload container. */
BinWriter
payloadWriter()
{
    return BinWriter(kWireMagic, kWireVersion);
}

/** Bind a reader to a message payload, validating magic + version. */
BinReader
payloadReader(std::string_view payload)
{
    return BinReader(payload, kWireMagic, kWireVersion);
}

void
expectEnd(BinReader &in)
{
    if (!in.atEnd())
        in.fail("trailing bytes in message payload");
}

void
encodeCache(BinWriter &out, const CacheConfig &c)
{
    out.str(c.name);
    out.u32(c.sizeBytes);
    out.u32(c.assoc);
    out.u32(c.lineBytes);
    out.u32(c.latency);
}

CacheConfig
decodeCache(BinReader &in)
{
    CacheConfig c;
    c.name = in.str("cache name");
    c.sizeBytes = in.u32("cache size");
    c.assoc = in.u32("cache assoc");
    c.lineBytes = in.u32("cache line bytes");
    c.latency = in.u32("cache latency");
    return c;
}

char
packEq1(const Eq1Options &e)
{
    return static_cast<char>((e.ilpReplay ? 1 : 0) |
                             (e.llcUsesGlobalRd ? 2 : 0) |
                             (e.mlpOverlap ? 4 : 0) | (e.branch ? 8 : 0) |
                             (e.decompose ? 16 : 0));
}

Eq1Options
unpackEq1(uint8_t bits)
{
    Eq1Options e;
    e.ilpReplay = (bits & 1) != 0;
    e.llcUsesGlobalRd = (bits & 2) != 0;
    e.mlpOverlap = (bits & 4) != 0;
    e.branch = (bits & 8) != 0;
    e.decompose = (bits & 16) != 0;
    return e;
}

} // namespace

void
writeFrame(int fd, MsgType type, std::string_view payload)
{
    if (payload.size() > kMaxFramePayload)
        throw ProtocolError("payload exceeds kMaxFramePayload");
    char header[16];
    const uint32_t magic = kFrameMagic;
    const uint32_t t = static_cast<uint32_t>(type);
    const uint64_t len = payload.size();
    std::memcpy(header, &magic, 4);
    std::memcpy(header + 4, &t, 4);
    std::memcpy(header + 8, &len, 8);
    writeAll(fd, header, sizeof(header));
    if (!payload.empty())
        writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, Frame &out)
{
    char header[16];
    if (!readAll(fd, header, sizeof(header), /*eof_ok=*/true))
        return false;
    uint32_t magic = 0, type = 0;
    uint64_t len = 0;
    std::memcpy(&magic, header, 4);
    std::memcpy(&type, header + 4, 4);
    std::memcpy(&len, header + 8, 8);
    if (magic != kFrameMagic)
        throw ProtocolError("bad frame magic");
    if (len > kMaxFramePayload)
        throw ProtocolError("frame payload exceeds kMaxFramePayload");
    out.type = static_cast<MsgType>(type);
    out.payload.resize(static_cast<size_t>(len));
    if (len > 0)
        readAll(fd, out.payload.data(), out.payload.size(),
                /*eof_ok=*/false);
    return true;
}

// ------------------------------------------------------------- messages ---

std::string
encodeHello(const HelloMsg &msg)
{
    BinWriter out = payloadWriter();
    out.str(msg.clientName);
    return out.data();
}

HelloMsg
decodeHello(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    HelloMsg msg;
    msg.clientName = in.str("client name");
    expectEnd(in);
    return msg;
}

std::string
encodeHelloOk(const HelloOkMsg &msg)
{
    BinWriter out = payloadWriter();
    out.str(msg.serverName);
    out.u32(msg.version);
    return out.data();
}

HelloOkMsg
decodeHelloOk(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    HelloOkMsg msg;
    msg.serverName = in.str("server name");
    msg.version = in.u32("server version");
    expectEnd(in);
    return msg;
}

void
encodeConfig(BinWriter &out, const MulticoreConfig &cfg)
{
    out.str(cfg.name);
    out.u64(cfg.cores.size());
    for (const CoreConfig &core : cfg.cores) {
        out.f64(core.frequencyGHz);
        out.u32(core.dispatchWidth);
        out.u32(core.robSize);
        out.u32(core.issueQueueSize);
        out.u32(core.frontendDepth);
        out.u32(core.mshrs);
        out.u32(core.memLatency);
        out.u32(core.branch.totalBytes);
        out.u32(core.branch.historyBits);
        encodeCache(out, core.l1i);
        encodeCache(out, core.l1d);
        encodeCache(out, core.l2);
        out.u64(core.fus.size());
        for (const FuConfig &fu : core.fus) {
            out.u32(fu.latency);
            out.u32(fu.count);
            out.u32(fu.interval);
        }
    }
    out.u64(cfg.mapping.threadToCore.size());
    for (uint32_t c : cfg.mapping.threadToCore)
        out.u32(c);
    encodeCache(out, cfg.llc);
    out.u32(cfg.memBusCycles);
}

MulticoreConfig
decodeConfig(BinReader &in)
{
    MulticoreConfig cfg;
    cfg.name = in.str("config name");
    const uint64_t num_cores = in.u64("core count");
    if (num_cores > in.remainingBytes())
        in.fail("core count exceeds payload size");
    cfg.cores.resize(num_cores);
    for (uint64_t i = 0; i < num_cores; ++i) {
        CoreConfig &core = cfg.cores[i];
        core.frequencyGHz = in.f64("core frequency");
        core.dispatchWidth = in.u32("dispatch width");
        core.robSize = in.u32("rob size");
        core.issueQueueSize = in.u32("issue queue size");
        core.frontendDepth = in.u32("frontend depth");
        core.mshrs = in.u32("mshrs");
        core.memLatency = in.u32("mem latency");
        core.branch.totalBytes = in.u32("branch bytes");
        core.branch.historyBits = in.u32("branch history bits");
        core.l1i = decodeCache(in);
        core.l1d = decodeCache(in);
        core.l2 = decodeCache(in);
        const uint64_t fus = in.u64("fu count");
        if (fus != core.fus.size())
            in.fail("fu table size mismatch");
        for (FuConfig &fu : core.fus) {
            fu.latency = in.u32("fu latency");
            fu.count = in.u32("fu unit count");
            fu.interval = in.u32("fu issue interval");
        }
    }
    const uint64_t mapping = in.u64("mapping size");
    if (mapping > in.remainingBytes())
        in.fail("mapping size exceeds payload size");
    cfg.mapping.threadToCore.resize(mapping);
    for (uint64_t i = 0; i < mapping; ++i)
        cfg.mapping.threadToCore[i] = in.u32("mapping entry");
    cfg.llc = decodeCache(in);
    cfg.memBusCycles = in.u32("mem bus cycles");
    return cfg;
}

std::string
encodeRequest(const RequestMsg &msg)
{
    BinWriter out = payloadWriter();
    out.u32(msg.id);
    out.u8(static_cast<uint8_t>(msg.kind));
    out.str(msg.workload);
    out.str(msg.evaluator);
    out.u32(msg.profiler.microTraceLength);
    out.u64(msg.profiler.microTraceInterval);
    out.u32(msg.profiler.quantum);
    out.u32(msg.profiler.lineBytes);
    out.u8(msg.profiler.detectInvalidation ? 1 : 0);
    out.f64(msg.rppm.sync.syncOpCost);
    out.u8(static_cast<uint8_t>(packEq1(msg.rppm.eq1)));
    out.u32(msg.deadlineMs); // v2
    out.u64(msg.configs.size());
    for (const MulticoreConfig &cfg : msg.configs)
        encodeConfig(out, cfg);
    return out.data();
}

RequestMsg
decodeRequest(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    RequestMsg msg;
    msg.id = in.u32("request id");
    const uint8_t kind = in.u8("workload ref kind");
    if (kind > static_cast<uint8_t>(WorkloadRefKind::TracePath))
        in.fail("unknown workload ref kind");
    msg.kind = static_cast<WorkloadRefKind>(kind);
    msg.workload = in.str("workload ref");
    msg.evaluator = in.str("evaluator");
    msg.profiler.microTraceLength = in.u32("micro-trace length");
    msg.profiler.microTraceInterval = in.u64("micro-trace interval");
    msg.profiler.quantum = in.u32("quantum");
    msg.profiler.lineBytes = in.u32("line bytes");
    msg.profiler.detectInvalidation = in.u8("detect invalidation") != 0;
    msg.rppm.sync.syncOpCost = in.f64("sync op cost");
    msg.rppm.eq1 = unpackEq1(in.u8("eq1 bits"));
    msg.deadlineMs = in.u32("deadline ms"); // v2
    const uint64_t configs = in.u64("config count");
    if (configs > in.remainingBytes())
        in.fail("config count exceeds payload size");
    msg.configs.reserve(configs);
    for (uint64_t i = 0; i < configs; ++i)
        msg.configs.push_back(decodeConfig(in));
    expectEnd(in);
    return msg;
}

std::string
encodeResult(const ResultMsg &msg)
{
    BinWriter out = payloadWriter();
    out.u32(msg.id);
    out.u64(msg.cell);
    out.str(msg.config);
    out.f64(msg.cycles);
    out.f64(msg.seconds);
    out.u64(msg.threadSeconds.size());
    for (double v : msg.threadSeconds)
        out.f64(v);
    return out.data();
}

ResultMsg
decodeResult(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    ResultMsg msg;
    msg.id = in.u32("request id");
    msg.cell = in.u64("cell index");
    msg.config = in.str("config name");
    msg.cycles = in.f64("cycles");
    msg.seconds = in.f64("seconds");
    const uint64_t threads = in.u64("thread count");
    if (threads > in.remainingBytes())
        in.fail("thread count exceeds payload size");
    msg.threadSeconds.reserve(threads);
    for (uint64_t i = 0; i < threads; ++i)
        msg.threadSeconds.push_back(in.f64("thread seconds"));
    expectEnd(in);
    return msg;
}

std::string
encodeDone(const DoneMsg &msg)
{
    BinWriter out = payloadWriter();
    out.u32(msg.id);
    out.u64(msg.cells);
    return out.data();
}

DoneMsg
decodeDone(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    DoneMsg msg;
    msg.id = in.u32("request id");
    msg.cells = in.u64("cell count");
    expectEnd(in);
    return msg;
}

std::string
encodeError(const ErrorMsg &msg)
{
    BinWriter out = payloadWriter();
    out.u32(msg.id);
    out.str(msg.message);
    return out.data();
}

ErrorMsg
decodeError(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    ErrorMsg msg;
    msg.id = in.u32("request id");
    msg.message = in.str("error message");
    expectEnd(in);
    return msg;
}

std::string
encodeBusy(const BusyMsg &msg)
{
    BinWriter out = payloadWriter();
    out.u32(msg.id);
    out.u32(msg.retryAfterMs);
    return out.data();
}

BusyMsg
decodeBusy(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    BusyMsg msg;
    msg.id = in.u32("request id");
    msg.retryAfterMs = in.u32("retry-after ms");
    expectEnd(in);
    return msg;
}

std::string
encodeShutdown()
{
    return payloadWriter().data();
}

void
decodeShutdown(std::string_view payload)
{
    BinReader in = payloadReader(payload);
    expectEnd(in);
}

} // namespace server
} // namespace rppm

/**
 * @file
 * Wire protocol of the rppmd prediction daemon.
 *
 * Transport: a Unix-domain stream socket carrying length-prefixed
 * *frames*. Each frame is a fixed 16-byte header — u32 frame magic,
 * u32 message type, u64 payload length — followed by the payload. The
 * payload of every message is an RPPM binary container
 * (common/binio.hh) with magic "RPPMNET" and the protocol version in
 * the container header, so version negotiation and malformed-payload
 * rejection reuse exactly the discipline the on-disk RPPMTRC/RPPMPRF
 * formats already have: a reader either understands a payload
 * completely or rejects it loudly, never half-decodes it.
 *
 * Session lifecycle:
 *
 *   client                          server
 *     | -- Hello (version in hdr) --> |
 *     | <-- HelloOk | Error --------- |
 *     | -- Request (id, workload,     |
 *     |      options, config grid) -> |
 *     | <-- Result (id, cell, ...) -- |   streamed as cells complete,
 *     | <-- Result ... -------------- |   in no particular order
 *     | <-- Done (id, count) -------- |
 *     | -- Shutdown ----------------> |   (optional, drains the daemon)
 *
 * Multiple Requests may be in flight on one connection; Results carry
 * the request id and cell index so the client can scatter them. Errors
 * carry the offending request id (0 = connection-level, e.g. a bad
 * frame or failed version negotiation; connection-level errors close
 * the connection).
 *
 * Extending the protocol: add new message types (never renumber
 * existing ones) and new *trailing* fields to payloads only together
 * with a version bump; see CONTRIBUTING.md. kMaxFramePayload bounds
 * untrusted lengths before any allocation.
 */

#ifndef RPPM_SERVER_PROTOCOL_HH
#define RPPM_SERVER_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "arch/config.hh"
#include "common/binio.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"

namespace rppm {
namespace server {

/** Frame header magic ("RPMF", little-endian). */
constexpr uint32_t kFrameMagic = 0x464d5052u;

/** Container magic of every message payload. */
constexpr char kWireMagic[8] = {'R', 'P', 'P', 'M', 'N', 'E', 'T', '\0'};

/** Protocol version; negotiated via the Hello payload's container
 *  header. Bump on any incompatible payload change.
 *  Version 2: Request carries a per-request deadline (deadlineMs) and
 *  the server may answer with Busy (load shedding). */
constexpr uint32_t kWireVersion = 2;

/** Upper bound on a frame payload; larger lengths are rejected before
 *  allocation (a corrupt or hostile header must not OOM the daemon). */
constexpr uint64_t kMaxFramePayload = 256ull * 1024 * 1024;

enum class MsgType : uint32_t
{
    Hello = 1,    ///< client → server: version negotiation
    HelloOk = 2,  ///< server → client: negotiation accepted
    Request = 3,  ///< client → server: (workload, options, config grid)
    Result = 4,   ///< server → client: one completed grid cell
    Done = 5,     ///< server → client: all cells of a request delivered
    Error = 6,    ///< server → client: request- or connection-level error
    Shutdown = 7, ///< client → server: drain and exit
    Busy = 8,     ///< server → client: request shed, retry after hint
};

/** Malformed frame or payload (the wire analogue of
 *  std::invalid_argument from the file loaders). */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &msg)
        : std::runtime_error("rppm protocol: " + msg)
    {}
};

/** Peer closed the connection at a frame boundary (clean EOF). */
struct Frame
{
    MsgType type = MsgType::Error;
    std::string payload;
};

// --- Frame transport over a connected stream socket fd.

/** Write one frame; throws ProtocolError on a short or failed write. */
void writeFrame(int fd, MsgType type, std::string_view payload);

/**
 * Read one frame. Returns false on clean EOF (peer closed between
 * frames); throws ProtocolError on a bad magic, an oversized payload,
 * or EOF mid-frame (short read).
 */
bool readFrame(int fd, Frame &out);

// --- Message payload codecs. Encoders return the container image;
// --- decoders throw std::invalid_argument (from BinReader) or
// --- ProtocolError on malformed input.

struct HelloMsg
{
    std::string clientName;
};

struct HelloOkMsg
{
    std::string serverName;
    uint32_t version = kWireVersion;
};

/** How a Request names its workload. */
enum class WorkloadRefKind : uint8_t
{
    SuiteName = 0, ///< a benchmark of the built-in suite (suite.hh)
    TracePath = 1, ///< an RPPMTRC file on the *server's* filesystem,
                   ///< mmap'd and shared zero-copy across requests
};

struct RequestMsg
{
    uint32_t id = 0; ///< client-chosen, echoed in Result/Done/Error
    WorkloadRefKind kind = WorkloadRefKind::SuiteName;
    std::string workload;
    std::string evaluator = "rppm"; ///< reserved for future backends
    ProfilerOptions profiler;
    RppmOptions rppm;
    /** Per-request deadline in milliseconds, measured from the moment
     *  the server admits the request; 0 = none. Cells still queued when
     *  it expires are abandoned and the request fails with a
     *  request-level Error — the connection stays usable. */
    uint32_t deadlineMs = 0;
    std::vector<MulticoreConfig> configs;
};

struct ResultMsg
{
    uint32_t id = 0;
    uint64_t cell = 0; ///< index into RequestMsg::configs
    std::string config;
    double cycles = 0.0;
    double seconds = 0.0;
    std::vector<double> threadSeconds;
};

struct DoneMsg
{
    uint32_t id = 0;
    uint64_t cells = 0;
};

struct ErrorMsg
{
    uint32_t id = 0; ///< 0 = connection-level (connection closes)
    std::string message;
};

/** Load-shed reply: the request was NOT admitted (no cells will
 *  arrive); the client should back off and retry. */
struct BusyMsg
{
    uint32_t id = 0;
    uint32_t retryAfterMs = 0; ///< server's backoff hint
};

std::string encodeHello(const HelloMsg &msg);
HelloMsg decodeHello(std::string_view payload);

std::string encodeHelloOk(const HelloOkMsg &msg);
HelloOkMsg decodeHelloOk(std::string_view payload);

std::string encodeRequest(const RequestMsg &msg);
RequestMsg decodeRequest(std::string_view payload);

std::string encodeResult(const ResultMsg &msg);
ResultMsg decodeResult(std::string_view payload);

std::string encodeDone(const DoneMsg &msg);
DoneMsg decodeDone(std::string_view payload);

std::string encodeError(const ErrorMsg &msg);
ErrorMsg decodeError(std::string_view payload);

std::string encodeShutdown();
void decodeShutdown(std::string_view payload);

std::string encodeBusy(const BusyMsg &msg);
BusyMsg decodeBusy(std::string_view payload);

/** Config codec shared by Request encode/decode (exposed for tests). */
void encodeConfig(BinWriter &out, const MulticoreConfig &cfg);
MulticoreConfig decodeConfig(BinReader &in);

} // namespace server
} // namespace rppm

#endif // RPPM_SERVER_PROTOCOL_HH

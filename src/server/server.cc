#include "server/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "arch/component_key.hh"
#include "common/assert.hh"
#include "workload/suite.hh"

namespace rppm {
namespace server {

// ------------------------------------------------------ connection state ---

/** One accepted socket. Writes are serialized by writeMutex; the first
 *  failed write marks the peer dead and later sends become no-ops (a
 *  vanished client must not take the daemon down with it). */
struct RppmServer::Connection
{
    int fd = -1;
    std::mutex writeMutex;
    std::atomic<bool> dead{false};
    /** Admitted requests whose Done/Error has not been delivered yet.
     *  The idle reaper only closes a connection when this is zero, so
     *  in-flight results are never orphaned by an idle timeout. */
    std::atomic<uint64_t> outstanding{0};

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void send(MsgType type, std::string_view payload)
    {
        if (dead.load(std::memory_order_relaxed))
            return;
        std::lock_guard<std::mutex> lock(writeMutex);
        if (dead.load(std::memory_order_relaxed))
            return;
        try {
            writeFrame(fd, type, payload);
        } catch (const std::exception &) {
            dead.store(true, std::memory_order_relaxed);
        }
    }
};

/** One admitted Request: its engine, options and config grid, plus the
 *  countdown that triggers the Done frame. Immutable after enqueue
 *  except for `remaining`. */
struct RppmServer::RequestState
{
    std::shared_ptr<Connection> conn;
    uint32_t id = 0;
    std::shared_ptr<PredictionMemo> engine;
    RppmOptions opts;
    std::vector<MulticoreConfig> configs;
    std::atomic<uint64_t> remaining{0};
    /** Deadline (steady clock) after which queued cells are abandoned;
     *  meaningful only when hasDeadline. */
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;
    /** Set by the first cell that fails (deadline or predict error);
     *  exactly one Error frame is sent, later cells are skipped, and no
     *  Done follows. The shared memo/cache state is untouched — only
     *  this request's delivery is abandoned. */
    std::atomic<bool> failed{false};
};

namespace {

/** Eq1Options ablation switches, packed for the batch key (mirrors the
 *  fingerprint PredictionMemo folds into its phase-1 keys). */
char
eq1OptionsBits(const Eq1Options &opts)
{
    return static_cast<char>(
        (opts.ilpReplay ? 1 : 0) | (opts.llcUsesGlobalRd ? 2 : 0) |
        (opts.mlpOverlap ? 4 : 0) | (opts.branch ? 8 : 0) |
        (opts.decompose ? 16 : 0));
}

/** Cells coalesce across requests (and clients) when they share the
 *  engine, the component key of their design point and the rppm-option
 *  fingerprint — exactly the inputs a memo hit needs to match. */
std::string
batchKey(const PredictionMemo *engine, const MulticoreConfig &cfg,
         const RppmOptions &opts)
{
    std::string key = configComponentKey(cfg);
    key.push_back(eq1OptionsBits(opts.eq1));
    appendKeyF64(key, opts.sync.syncOpCost);
    const void *p = engine;
    key.append(reinterpret_cast<const char *>(&p), sizeof(p));
    return key;
}

void
sysFail(const std::string &what)
{
    throw std::runtime_error("rppm server: " + what + ": " +
                             std::strerror(errno));
}

} // namespace

// ------------------------------------------------------------- lifecycle ---

RppmServer::RppmServer(ServerOptions opts) : opts_(std::move(opts))
{
    RPPM_REQUIRE(!opts_.socketPath.empty(), "empty socket path");
    if (!opts_.profileDirectory.empty())
        cache_.setDirectory(opts_.profileDirectory);
    cache_.setMaxResidentBytes(opts_.maxProfileBytes);
    pool_.setMaxResidentBytes(opts_.maxMemoBytes);
}

RppmServer::~RppmServer()
{
    stop();
}

void
RppmServer::start()
{
    RPPM_REQUIRE(!started_, "server already started");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("rppm server: socket path too long: " +
                                 opts_.socketPath);
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        sysFail("socket");
    ::unlink(opts_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        sysFail("bind " + opts_.socketPath);
    }
    if (::listen(listenFd_, 64) < 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        sysFail("listen");
    }
    if (::pipe(stopPipe_) < 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        sysFail("pipe");
    }

    started_ = true;
    running_ = true;

    unsigned n = opts_.workers;
    if (n == 0)
        n = std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
RppmServer::stop()
{
    if (!started_ || !running_.exchange(false))
        return;

    // 1. Wake the accept loop and every reader poll; no new work enters.
    {
        const char byte = 'x';
        ssize_t rc;
        do {
            rc = ::write(stopPipe_[1], &byte, 1);
        } while (rc < 0 && errno == EINTR);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        readers.swap(readers_);
    }
    for (std::thread &t : readers)
        t.join();

    // 2. Drain: every admitted cell completes and its frames flush.
    {
        std::unique_lock<std::mutex> lock(qMutex_);
        drainCv_.wait(lock, [this] { return pendingCells_ == 0; });
        workersStop_ = true;
    }
    qCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();

    // 3. Tear down sockets.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.clear();
    }
    ::close(listenFd_);
    listenFd_ = -1;
    ::close(stopPipe_[0]);
    ::close(stopPipe_[1]);
    stopPipe_[0] = stopPipe_[1] = -1;
    ::unlink(opts_.socketPath.c_str());
}

RppmServer::Stats
RppmServer::stats() const
{
    Stats out;
    out.connections = connections_.load();
    out.requests = requests_.load();
    out.cells = cells_.load();
    out.batches = batches_.load();
    out.shed = shed_.load();
    out.deadlineExpired = deadlineExpired_.load();
    out.idleReaped = idleReaped_.load();
    out.profile = cache_.stats();
    out.memo = pool_.poolStats();
    return out;
}

// ------------------------------------------------------------ accept/read ---

/** Block until @p fd is readable, stop is signalled, or @p timeoutMs
 *  elapses (-1 = no timeout). */
RppmServer::Wait
RppmServer::waitReadable(int fd, int timeoutMs) const
{
    for (;;) {
        pollfd fds[2] = {{fd, POLLIN, 0}, {stopPipe_[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, timeoutMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return Wait::Stop;
        }
        if (rc == 0)
            return Wait::Timeout;
        if (fds[1].revents != 0)
            return Wait::Stop;
        if (fds[0].revents != 0)
            return Wait::Readable;
    }
}

void
RppmServer::acceptLoop()
{
    while (waitReadable(listenFd_, -1) == Wait::Readable) {
        const int fd =
            ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        ++connections_;
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.push_back(conn);
        readers_.emplace_back([this, conn] { serveConnection(conn); });
    }
}

void
RppmServer::serveConnection(const std::shared_ptr<Connection> &conn)
{
    // Idle policy: poll with a bounded timeout instead of forever. A
    // connection with nothing readable for idleTimeoutSec and no
    // outstanding requests is reaped — abandoned clients must not pin
    // reader threads and fds for the life of the daemon. While results
    // are still being delivered the timer just re-arms.
    const int idleMs = opts_.idleTimeoutSec == 0
                           ? -1
                           : static_cast<int>(opts_.idleTimeoutSec) * 1000;
    const auto waitOrReap = [&]() -> bool {
        for (;;) {
            switch (waitReadable(conn->fd, idleMs)) {
            case Wait::Readable:
                return true;
            case Wait::Stop:
                return false;
            case Wait::Timeout:
                if (conn->outstanding.load(std::memory_order_acquire) ==
                    0) {
                    ++idleReaped_;
                    conn->send(MsgType::Error,
                               encodeError({0, "idle timeout"}));
                    conn->dead = true;
                    return false;
                }
                break; // results in flight; keep waiting
            }
        }
    };

    try {
        // Handshake: the first frame must be a Hello whose payload
        // container carries a version we understand.
        Frame frame;
        if (!waitOrReap() || !readFrame(conn->fd, frame))
            return;
        if (frame.type != MsgType::Hello) {
            conn->send(MsgType::Error,
                       encodeError({0, "expected Hello"}));
            return;
        }
        decodeHello(frame.payload);
        conn->send(MsgType::HelloOk,
                   encodeHelloOk({opts_.serverName, kWireVersion}));

        while (waitOrReap() && readFrame(conn->fd, frame)) {
            switch (frame.type) {
            case MsgType::Request:
                handleRequest(conn, frame.payload);
                break;
            case MsgType::Shutdown:
                decodeShutdown(frame.payload);
                if (opts_.onShutdownRequest)
                    opts_.onShutdownRequest();
                break;
            default:
                conn->send(MsgType::Error,
                           encodeError({0, "unexpected message type"}));
                conn->dead = true;
                return;
            }
        }
    } catch (const std::exception &e) {
        // Malformed frame or payload: connection-level error, close.
        conn->send(MsgType::Error, encodeError({0, e.what()}));
        conn->dead = true;
    }
}

// --------------------------------------------------------------- requests ---

WorkloadSource
RppmServer::resolveWorkload(WorkloadRefKind kind, const std::string &name)
{
    const std::string key =
        (kind == WorkloadRefKind::SuiteName ? "name:" : "path:") + name;
    std::lock_guard<std::mutex> lock(artMutex_);
    const auto it = artifacts_.find(key);
    if (it != artifacts_.end())
        return it->second;
    if (kind == WorkloadRefKind::SuiteName) {
        const auto entry = findBenchmark(name);
        if (!entry)
            throw std::invalid_argument("unknown suite benchmark '" +
                                        name + "'");
        return artifacts_.emplace(key, WorkloadSource(entry->spec))
            .first->second;
    }
    // Trace path: register the file without loading it. The source
    // indexes the container up front (structural defects fail the first
    // request), streams large files out-of-core at profile time, and
    // mmaps a zero-copy view only if an in-memory consumer asks; every
    // later request (from any client) shares the same source and the
    // profiles it feeds.
    return artifacts_.emplace(key, WorkloadSource::fromTraceFile(name))
        .first->second;
}

void
RppmServer::handleRequest(const std::shared_ptr<Connection> &conn,
                          const std::string &payload)
{
    // A decode failure here is a connection-level protocol error (we
    // may not even know the request id) and propagates to the caller.
    const RequestMsg req = decodeRequest(payload);

    // Load shedding: admission control happens before the expensive
    // profile step, against the bound on enqueued-but-unfinished cells.
    // A shed request costs the server almost nothing and tells the
    // client exactly how to behave (Busy + retry hint) instead of
    // letting the queue — and every client's latency — grow unbounded.
    if (opts_.maxQueuedCells > 0) {
        std::lock_guard<std::mutex> lock(qMutex_);
        if (pendingCells_ + req.configs.size() > opts_.maxQueuedCells) {
            ++shed_;
            conn->send(MsgType::Busy,
                       encodeBusy({req.id, opts_.busyRetryMs}));
            return;
        }
    }

    // From here on, failures are request-level: report them under the
    // request's id and keep the connection serving.
    try {
        if (req.evaluator != "rppm")
            throw std::invalid_argument("unknown evaluator '" +
                                        req.evaluator + "'");
        for (const MulticoreConfig &cfg : req.configs)
            cfg.validate();

        const WorkloadSource source =
            resolveWorkload(req.kind, req.workload);
        ProfilerOptions popts = req.profiler;
        popts.jobs = opts_.jobs;
        if (opts_.streamChunkRecords > 0)
            popts.streamChunkRecords = opts_.streamChunkRecords;
        // Heavy on a cold cache; the per-key future inside the cache
        // dedupes concurrent clients asking for the same profile.
        const auto profile = source.profile(popts, cache_);
        const auto engine = pool_.forProfile(profile);
        ++requests_;

        if (req.configs.empty()) {
            conn->send(MsgType::Done, encodeDone({req.id, 0}));
            return;
        }
        auto state = std::make_shared<RequestState>();
        state->conn = conn;
        state->id = req.id;
        state->engine = engine;
        state->opts = req.rppm;
        state->configs = req.configs;
        state->remaining = req.configs.size();
        if (req.deadlineMs > 0) {
            state->hasDeadline = true;
            state->deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(req.deadlineMs);
        }
        conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
        enqueue(state);
        enforceResidentBudget();
    } catch (const std::exception &e) {
        conn->send(MsgType::Error, encodeError({req.id, e.what()}));
    }
}

void
RppmServer::enqueue(const std::shared_ptr<RequestState> &req)
{
    std::lock_guard<std::mutex> lock(qMutex_);
    pendingCells_ += req->configs.size();
    for (uint64_t i = 0; i < req->configs.size(); ++i) {
        std::string key =
            batchKey(req->engine.get(), req->configs[i], req->opts);
        auto [it, fresh] = groups_.try_emplace(std::move(key));
        if (it->second.empty())
            groupOrder_.push_back(it->first);
        it->second.push_back(Cell{req, i});
    }
    qCv_.notify_all();
}

// ---------------------------------------------------------------- workers ---

void
RppmServer::workerLoop()
{
    for (;;) {
        std::vector<Cell> batch;
        {
            std::unique_lock<std::mutex> lock(qMutex_);
            qCv_.wait(lock, [this] {
                return workersStop_ || !groupOrder_.empty();
            });
            if (groupOrder_.empty())
                return; // workersStop_ and the queue is drained
            const std::string key = std::move(groupOrder_.front());
            groupOrder_.pop_front();
            const auto it = groups_.find(key);
            batch = std::move(it->second);
            groups_.erase(it);
        }
        ++batches_;
        // Whole-batch execution: every cell shares the engine and the
        // component key, so after the first cell the rest are memo hits.
        for (const Cell &cell : batch)
            runCell(cell);
        {
            std::lock_guard<std::mutex> lock(qMutex_);
            pendingCells_ -= batch.size();
            if (pendingCells_ == 0)
                drainCv_.notify_all();
        }
        enforceResidentBudget();
    }
}

void
RppmServer::enforceResidentBudget()
{
    if (opts_.maxResidentBytes == 0)
        return;
    const uint64_t profile = cache_.stats().residentBytes;
    const uint64_t memo = pool_.poolStats().residentBytes;
    const uint64_t total = profile + memo;
    if (total <= opts_.maxResidentBytes)
        return;
    // Graceful degradation order: shed the profile tier first — a
    // profile reloads from its serialized artifact (or recomputes via
    // the self-healing miss path), while a dropped memo engine forfeits
    // every phase-1/phase-2 reuse it had accumulated. Only if profiles
    // alone cannot cover the overshoot does the memo tier shrink.
    uint64_t want = total - opts_.maxResidentBytes;
    const uint64_t freed = cache_.shedBytes(want);
    if (freed < want)
        pool_.shedBytes(want - freed);
}

void
RppmServer::runCell(const Cell &cell)
{
    RequestState &req = *cell.req;
    const MulticoreConfig &cfg = req.configs[cell.index];
    // A failed request's remaining cells are skipped, not evaluated:
    // exactly one Error frame is delivered (the exchange below ensures
    // that) and no Result/Done follows it, so the client never sees
    // frames for a request it already aborted. Crucially nothing here
    // touches the shared memo pool or profile cache on failure — an
    // expired deadline abandons delivery, never state.
    if (!req.failed.load(std::memory_order_acquire)) {
        const bool expired =
            req.hasDeadline &&
            std::chrono::steady_clock::now() >= req.deadline;
        if (expired) {
            if (!req.failed.exchange(true, std::memory_order_acq_rel)) {
                ++deadlineExpired_;
                req.conn->send(
                    MsgType::Error,
                    encodeError({req.id, "deadline exceeded"}));
            }
        } else {
            try {
                const RppmPrediction pred =
                    req.engine->predict(cfg, req.opts);
                ResultMsg res;
                res.id = req.id;
                res.cell = cell.index;
                res.config = cfg.name;
                res.cycles = pred.totalCycles;
                res.seconds = pred.totalSeconds;
                res.threadSeconds = pred.threadSeconds;
                ++cells_;
                if (!req.failed.load(std::memory_order_acquire))
                    req.conn->send(MsgType::Result, encodeResult(res));
            } catch (const std::exception &e) {
                // Configs were validated at admission, so this is
                // exceptional; the client aborts on the Error frame.
                if (!req.failed.exchange(true,
                                         std::memory_order_acq_rel))
                    req.conn->send(MsgType::Error,
                                   encodeError({req.id, e.what()}));
            }
        }
    }
    if (req.remaining.fetch_sub(1) == 1) {
        if (!req.failed.load(std::memory_order_acquire))
            req.conn->send(MsgType::Done,
                           encodeDone({req.id, req.configs.size()}));
        req.conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
    }
}

} // namespace server
} // namespace rppm

/**
 * @file
 * rppmd — the prediction-as-a-service daemon core.
 *
 * RppmServer listens on a Unix-domain socket, speaks the framed wire
 * protocol of server/protocol.hh, and serves (workload x config-grid)
 * prediction requests from a warm in-process state that a one-shot
 * `rppm_study` run has to rebuild every time:
 *
 *  - an *artifact store* of WorkloadSources keyed by suite name or
 *    trace path. Trace files are mmap'd through loadTraceViewFromFile,
 *    so a cold request against a profiled-elsewhere RPPMTRC costs no
 *    read I/O and every request shares one page-cache image;
 *  - the two-tier ProfileCache (memory + optional serialized artifacts
 *    on disk), optionally byte-budgeted via maxProfileBytes;
 *  - a cross-request PredictionMemoPool, optionally byte-budgeted via
 *    maxMemoBytes, so repeat queries reuse StatStack bundles, phase-1
 *    thread evaluations and phase-2 sync executions across clients.
 *
 * Scheduling: each request's grid cells are split into batches keyed by
 * (engine, configComponentKey, rppm-option fingerprint) and the worker
 * pool pops *whole batches* in FIFO key-arrival order. Cells of
 * concurrent requests that share a component key land in one batch and
 * run back to back on one worker, maximizing memo-table locality — the
 * cross-client analogue of Study's component-key sharding. Results are
 * streamed to each client as cells complete.
 *
 * Predictions are produced by exactly the code path Study::run() uses
 * (WorkloadSource::profile through the cache, then
 * PredictionMemo::predict), so daemon results are bit-identical to an
 * in-process study of the same request — asserted by tests/test_server
 * and the CI smoke job.
 *
 * Threading: one accept thread, one reader thread per connection
 * (decodes, resolves workloads and profiles — the profile cache's
 * per-key future dedupes concurrent profiling), N prediction workers,
 * and writes to a connection serialized by a per-connection mutex.
 * stop() drains: no new connections, readers wind down, every enqueued
 * cell completes and is delivered, then workers exit. All shared state
 * is either immutable-after-publish (sources, profiles) or
 * mutex-guarded; tests/test_server runs this machinery under
 * ThreadSanitizer.
 */

#ifndef RPPM_SERVER_SERVER_HH
#define RPPM_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rppm/memo.hh"
#include "server/protocol.hh"
#include "study/profile_cache.hh"
#include "study/source.hh"

namespace rppm {
namespace server {

struct ServerOptions
{
    /** Filesystem path of the listening socket (required; an existing
     *  socket file at this path is replaced). */
    std::string socketPath;

    /** Name reported in HelloOk. */
    std::string serverName = "rppmd";

    /** Serialized-profile directory ("" = memory-only cache). */
    std::string profileDirectory;

    /** Byte budget of the in-memory profile tier (0 = unlimited). */
    uint64_t maxProfileBytes = 0;

    /** Byte budget of the prediction memo pool (0 = unlimited). */
    uint64_t maxMemoBytes = 0;

    /** Prediction worker threads (0 = all hardware threads). */
    unsigned workers = 1;

    /** Trace-synthesis / profiler jobs per profiling run (0 = all
     *  hardware threads). */
    unsigned jobs = 1;

    /** When > 0, file-backed workloads are profiled out-of-core with
     *  this chunk size (records per thread per chunk) regardless of
     *  file size; 0 keeps the automatic size-based routing. Execution
     *  policy only — profile bytes and cache artifacts are identical
     *  either way. */
    uint64_t streamChunkRecords = 0;

    /** Reap a connection after this many seconds with no readable data
     *  and no outstanding requests (0 = never). Keeps abandoned clients
     *  from pinning reader threads and fds forever. */
    unsigned idleTimeoutSec = 300;

    /** Admission bound on enqueued-but-unfinished grid cells. A Request
     *  that would push the queue beyond this is refused with Busy
     *  (carrying busyRetryMs) instead of being admitted — bounded queue,
     *  bounded latency. 0 = unbounded. */
    uint64_t maxQueuedCells = 0;

    /** Retry hint carried in Busy replies. */
    uint32_t busyRetryMs = 50;

    /** Combined byte budget over the profile cache and the memo pool
     *  (0 = none). When exceeded, the server degrades gracefully:
     *  profile-cache residency is shed first (profiles reload from the
     *  serialized tier or recompute), then memo residency — dropping
     *  speed, never results. */
    uint64_t maxResidentBytes = 0;

    /** Invoked (from a reader thread) when a client sends Shutdown.
     *  The daemon main loop typically wakes itself here and calls
     *  stop(); the server never stops itself mid-callback. */
    std::function<void()> onShutdownRequest;
};

class RppmServer
{
  public:
    explicit RppmServer(ServerOptions opts);
    ~RppmServer();

    RppmServer(const RppmServer &) = delete;
    RppmServer &operator=(const RppmServer &) = delete;

    /** Bind, listen and spin up the accept/worker threads. Throws
     *  std::runtime_error on socket errors (path too long, bind
     *  failure). */
    void start();

    /**
     * Drain and shut down: stop accepting, wind down connection
     * readers, complete and deliver every already-enqueued cell, then
     * stop the workers and close all sockets. Idempotent; called by
     * the destructor if needed.
     */
    void stop();

    bool running() const { return running_; }

    const ServerOptions &options() const { return opts_; }

    /** Aggregate service counters (all monotonic except the nested
     *  resident-bytes gauges). */
    struct Stats
    {
        uint64_t connections = 0; ///< connections accepted
        uint64_t requests = 0;    ///< Request messages admitted
        uint64_t cells = 0;       ///< grid cells evaluated
        uint64_t batches = 0;     ///< component-key batches executed
        uint64_t shed = 0;        ///< requests refused with Busy
        uint64_t deadlineExpired = 0; ///< requests failed on deadline
        uint64_t idleReaped = 0;  ///< connections closed for idleness
        ProfileCache::Stats profile;
        PredictionMemoPool::PoolStats memo;
    };
    Stats stats() const;

  private:
    struct Connection;
    struct RequestState;
    struct Cell
    {
        std::shared_ptr<RequestState> req;
        uint64_t index = 0; ///< into RequestState::configs
    };

    /** Outcome of waiting for socket readability. */
    enum class Wait
    {
        Readable,
        Stop,
        Timeout,
    };

    void acceptLoop();
    void serveConnection(const std::shared_ptr<Connection> &conn);
    void handleRequest(const std::shared_ptr<Connection> &conn,
                       const std::string &payload);
    WorkloadSource resolveWorkload(WorkloadRefKind kind,
                                   const std::string &name);
    void enqueue(const std::shared_ptr<RequestState> &req);
    void workerLoop();
    void runCell(const Cell &cell);
    Wait waitReadable(int fd, int timeoutMs) const;
    void enforceResidentBudget();

    ServerOptions opts_;
    ProfileCache cache_;
    PredictionMemoPool pool_;

    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> running_{false};
    bool started_ = false;

    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    mutable std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> conns_;
    std::vector<std::thread> readers_;

    mutable std::mutex artMutex_;
    std::map<std::string, WorkloadSource> artifacts_;

    // --- Batch queue. groups_ holds the pending cells of each
    // component-key batch; groupOrder_ fixes FIFO pop order by first
    // arrival. pendingCells_ counts enqueued-but-unfinished cells so
    // stop() can drain.
    mutable std::mutex qMutex_;
    std::condition_variable qCv_;
    std::condition_variable drainCv_;
    std::map<std::string, std::vector<Cell>> groups_;
    std::deque<std::string> groupOrder_;
    uint64_t pendingCells_ = 0;
    bool workersStop_ = false;

    std::atomic<uint64_t> connections_{0};
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> cells_{0};
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> deadlineExpired_{0};
    std::atomic<uint64_t> idleReaped_{0};
};

} // namespace server
} // namespace rppm

#endif // RPPM_SERVER_SERVER_HH

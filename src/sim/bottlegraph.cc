#include "sim/bottlegraph.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/assert.hh"
#include "common/table.hh"

namespace rppm {

double
Bottlegraph::normalizedHeight(uint32_t thread) const
{
    if (totalCycles <= 0.0)
        return 0.0;
    for (const auto &box : boxes) {
        if (box.thread == thread)
            return box.height / totalCycles;
    }
    return 0.0;
}

Bottlegraph
buildBottlegraph(const std::vector<std::vector<ActivityInterval>> &activity,
                 double total_cycles)
{
    const size_t num_threads = activity.size();

    // Sweep-line over interval endpoints: at every elementary interval,
    // each active thread accrues dt / parallelism of height.
    struct Edge
    {
        double time;
        uint32_t thread;
        int delta;
    };
    std::vector<Edge> edges;
    for (uint32_t t = 0; t < num_threads; ++t) {
        for (const auto &iv : activity[t]) {
            if (iv.end > iv.begin) {
                edges.push_back({iv.begin, t, +1});
                edges.push_back({iv.end, t, -1});
            }
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) { return a.time < b.time; });

    std::vector<double> height(num_threads, 0.0);
    std::vector<double> active_time(num_threads, 0.0);
    std::vector<int> active(num_threads, 0);
    int parallelism = 0;
    double prev = edges.empty() ? 0.0 : edges.front().time;

    size_t i = 0;
    while (i < edges.size()) {
        const double now = edges[i].time;
        const double dt = now - prev;
        if (dt > 0.0 && parallelism > 0) {
            const double share = dt / static_cast<double>(parallelism);
            for (uint32_t t = 0; t < num_threads; ++t) {
                if (active[t]) {
                    height[t] += share;
                    active_time[t] += dt;
                }
            }
        }
        while (i < edges.size() && edges[i].time == now) {
            active[edges[i].thread] += edges[i].delta;
            parallelism += edges[i].delta;
            ++i;
        }
        prev = now;
    }

    Bottlegraph graph;
    graph.totalCycles = total_cycles;
    for (uint32_t t = 0; t < num_threads; ++t) {
        BottlegraphBox box;
        box.thread = t;
        box.height = height[t];
        box.parallelism =
            height[t] > 0.0 ? active_time[t] / height[t] : 1.0;
        graph.boxes.push_back(box);
    }
    // Widest box at the bottom, as in the paper's rendering.
    std::sort(graph.boxes.begin(), graph.boxes.end(),
              [](const BottlegraphBox &a, const BottlegraphBox &b) {
                  return a.parallelism > b.parallelism;
              });
    return graph;
}

Bottlegraph
buildBottlegraph(const SimResult &result)
{
    std::vector<std::vector<ActivityInterval>> activity;
    for (const auto &thread : result.threads)
        activity.push_back(thread.activity);
    return buildBottlegraph(activity, result.totalCycles);
}

std::string
Bottlegraph::render(const std::string &title) const
{
    std::ostringstream os;
    os << title << " (total " << fmt(totalCycles / 1e6, 2)
       << " Mcycles)\n";
    // Stack from bottom (widest) to top; print top-first like the figure.
    for (auto it = boxes.rbegin(); it != boxes.rend(); ++it) {
        const double share = totalCycles > 0.0 ?
            it->height / totalCycles : 0.0;
        const int half_width = static_cast<int>(it->parallelism * 4 + 0.5);
        os << "  T" << it->thread << "  "
           << std::string(static_cast<size_t>(half_width), '=')
           << "  height " << fmtPct(share)
           << ", parallelism " << fmt(it->parallelism, 2) << '\n';
    }
    return os.str();
}

double
bottlegraphSimilarity(const Bottlegraph &a, const Bottlegraph &b)
{
    std::map<uint32_t, std::pair<double, double>> shares;
    for (const auto &box : a.boxes) {
        shares[box.thread].first =
            a.totalCycles > 0.0 ? box.height / a.totalCycles : 0.0;
    }
    for (const auto &box : b.boxes) {
        shares[box.thread].second =
            b.totalCycles > 0.0 ? box.height / b.totalCycles : 0.0;
    }
    double l1 = 0.0;
    for (const auto &[tid, pair] : shares)
        l1 += std::fabs(pair.first - pair.second);
    return 1.0 - 0.5 * l1;
}

} // namespace rppm

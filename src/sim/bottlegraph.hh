/**
 * @file
 * Bottlegraph construction (Du Bois et al., OOPSLA 2013), used by the
 * paper's second case study (Fig. 6).
 *
 * A bottlegraph represents each thread as a box whose height is the
 * thread's share of total execution time — the integral of 1/parallelism
 * over the intervals the thread is active — and whose width is the average
 * parallelism while the thread runs. Heights of all threads sum to the
 * total execution time; dividing by it gives the normalized criticality
 * shares the paper plots.
 */

#ifndef RPPM_SIM_BOTTLEGRAPH_HH
#define RPPM_SIM_BOTTLEGRAPH_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace rppm {

/** One thread's box in a bottlegraph. */
struct BottlegraphBox
{
    uint32_t thread = 0;
    double height = 0.0;       ///< criticality share in cycles
    double parallelism = 1.0;  ///< average parallelism while active
};

/** A full bottlegraph. */
struct Bottlegraph
{
    double totalCycles = 0.0;
    std::vector<BottlegraphBox> boxes; ///< sorted widest-first (bottom-up)

    /** Normalized height (share of execution time) of @p thread. */
    double normalizedHeight(uint32_t thread) const;

    /** Render as ASCII art mirroring the paper's Fig. 6 layout. */
    std::string render(const std::string &title) const;
};

/**
 * Build a bottlegraph from per-thread activity intervals.
 *
 * @param activity one interval list per thread (busy periods)
 * @param total_cycles the workload's total execution time
 */
Bottlegraph
buildBottlegraph(const std::vector<std::vector<ActivityInterval>> &activity,
                 double total_cycles);

/** Convenience: bottlegraph of a simulation result. */
Bottlegraph buildBottlegraph(const SimResult &result);

/**
 * Similarity score in [0,1] between two bottlegraphs: 1 minus half the L1
 * distance between their normalized per-thread height vectors. Used to
 * quantify how well RPPM reproduces the simulated bottlegraph.
 */
double bottlegraphSimilarity(const Bottlegraph &a, const Bottlegraph &b);

} // namespace rppm

#endif // RPPM_SIM_BOTTLEGRAPH_HH

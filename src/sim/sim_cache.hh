/**
 * @file
 * Compact set-associative cache replica for the simulator's hot engines.
 *
 * Functionally identical to cache/cache.hh's Cache — the same hit/miss
 * outcomes, the same victim selection (first invalid way, else true
 * LRU), the same statistics — restructured for the simulator's access
 * rate:
 *
 *  - SoA layout: one contiguous tag array and one LRU-stamp array
 *    instead of 24-byte Way structs, so a probe touches one cache line
 *    of tags instead of striding through padding.
 *  - The valid and dirty bits are gone. Validity is encoded as LRU
 *    stamp 0 (the pre-incremented clock never assigns 0 to a live way,
 *    and invalidation resets the stamp), which keeps the probe loop to
 *    two parallel array reads. The dirty bit of the legacy Cache is
 *    write-only state — no writeback is modeled and nothing ever reads
 *    it back — so dropping it changes no observable behavior.
 *  - Set index and tag use shift/mask when the geometry is a power of
 *    two (the common case) instead of 64-bit division, with an exact
 *    division fallback otherwise. Callers that already know the line
 *    number (the hierarchy computes it once per access for the
 *    directory; every level shares one line size, which
 *    MulticoreConfig::validate() enforces) use the *Line entry points
 *    and skip the address-to-line division entirely.
 *
 * Equivalence of the victim policy: the legacy loop prefers the first
 * invalid way and otherwise the strictly smallest LRU stamp in way
 * order; here `victim` only ever moves to an invalid way (stamp 0,
 * where it then sticks) or to a strictly smaller stamp, which is the
 * same choice because live stamps are distinct.
 * tests/test_sim_parallel.cc pins the equivalence on the whole workload
 * suite through the byte-identity of the simulator engines.
 */

#ifndef RPPM_SIM_SIM_CACHE_HH
#define RPPM_SIM_SIM_CACHE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "cache/cache.hh"
#include "common/assert.hh"

namespace rppm {

/** Set-associative LRU tag store, decision-identical to Cache. */
class SimCache
{
  public:
    explicit SimCache(const CacheConfig &cfg)
        : cfg_(cfg), numSets_(cfg.numSets()), assoc_(cfg.assoc)
    {
        RPPM_REQUIRE(numSets_ > 0, "cache must have at least one set");
        tags_.resize(static_cast<size_t>(numSets_) * assoc_);
        lru_.resize(static_cast<size_t>(numSets_) * assoc_);
        lineShift_ = std::has_single_bit(cfg_.lineBytes) ?
            static_cast<uint32_t>(std::countr_zero(cfg_.lineBytes)) :
            kNoShift;
        setShift_ = std::has_single_bit(numSets_) ?
            static_cast<uint32_t>(std::countr_zero(numSets_)) : kNoShift;
    }

    /** Line number for a byte address under this config. */
    uint64_t
    lineOf(uint64_t addr) const
    {
        return lineShift_ != kNoShift ? addr >> lineShift_ :
                                        addr / cfg_.lineBytes;
    }

    /** As Cache::access, taking the precomputed line number. */
    bool
    accessLine(uint64_t line, bool is_write)
    {
        (void)is_write; // the legacy dirty bit is unobservable state
        ++stats_.accesses;
        size_t set;
        uint64_t tag;
        split(line, set, tag);
        uint64_t *tags = &tags_[set * assoc_];
        uint64_t *lru = &lru_[set * assoc_];
        uint32_t victim = 0;
        for (uint32_t w = 0; w < assoc_; ++w) {
            if (lru[w] != 0 && tags[w] == tag) {
                lru[w] = ++lruClock_;
                return true;
            }
            if (lru[victim] != 0 &&
                (lru[w] == 0 || lru[w] < lru[victim])) {
                victim = w;
            }
        }
        ++stats_.misses;
        tags[victim] = tag;
        lru[victim] = ++lruClock_;
        return false;
    }

    /** As Cache::access (by byte address). */
    bool
    access(uint64_t addr, bool is_write)
    {
        return accessLine(lineOf(addr), is_write);
    }

    /**
     * Software-prefetch the tag/LRU rows a future accessLine(line) will
     * probe. No architectural effect — pure latency hiding for callers
     * that know their access stream ahead of time (the columnar engines
     * read addresses straight out of the trace's addr column).
     */
    void
    prefetchLine(uint64_t line) const
    {
        size_t set;
        uint64_t tag;
        split(line, set, tag);
        __builtin_prefetch(&tags_[set * assoc_]);
        __builtin_prefetch(&lru_[set * assoc_]);
    }

    /** As Cache::invalidate, taking the precomputed line number. */
    bool
    invalidateLine(uint64_t line)
    {
        size_t set;
        uint64_t tag;
        split(line, set, tag);
        uint64_t *tags = &tags_[set * assoc_];
        uint64_t *lru = &lru_[set * assoc_];
        for (uint32_t w = 0; w < assoc_; ++w) {
            if (lru[w] != 0 && tags[w] == tag) {
                lru[w] = 0;
                ++stats_.invalidations;
                return true;
            }
        }
        return false;
    }

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }

  private:
    static constexpr uint32_t kNoShift = UINT32_MAX;

    void
    split(uint64_t line, size_t &set, uint64_t &tag) const
    {
        if (setShift_ != kNoShift) {
            set = static_cast<size_t>(line & (numSets_ - 1));
            tag = line >> setShift_;
        } else {
            set = static_cast<size_t>(line % numSets_);
            tag = line / numSets_;
        }
    }

    CacheConfig cfg_;
    uint32_t numSets_;
    uint32_t assoc_;
    uint32_t lineShift_ = kNoShift;
    uint32_t setShift_ = kNoShift;
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> lru_; ///< recency stamp; 0 = way invalid
    uint64_t lruClock_ = 0;
    CacheStats stats_;
};

} // namespace rppm

#endif // RPPM_SIM_SIM_CACHE_HH

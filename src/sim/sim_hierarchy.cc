#include "sim/sim_hierarchy.hh"

#include <algorithm>
#include <bit>

#include "common/assert.hh"

namespace rppm {

SimHierarchy::SimHierarchy(const MulticoreConfig &cfg,
                           uint64_t expected_lines)
    : cfg_(cfg), stats_(cfg.numCores()), wide_(cfg.numCores() > 64)
{
    cfg_.validate();
    if (expected_lines > 0)
        dir_.reserve(static_cast<size_t>(expected_lines));
    l1i_.reserve(cfg_.numCores());
    l1d_.reserve(cfg_.numCores());
    l2_.reserve(cfg_.numCores());
    for (uint32_t c = 0; c < cfg_.numCores(); ++c) {
        const CoreConfig &core = cfg_.core(c);
        l1i_.emplace_back(core.l1i);
        l1d_.emplace_back(core.l1d);
        l2_.emplace_back(core.l2);
    }
    llc_ = std::make_unique<SimCache>(cfg_.llc);
}

void
SimHierarchy::lowerWalk(uint32_t core, uint64_t line, bool is_write,
                        bool remote_written, double now,
                        AccessResult &result)
{
    const CoreConfig &cc = cfg_.core(core);
    CoreMemStats &st = stats_[core];

    ++st.l2Accesses;
    if (l2_[core].accessLine(line, is_write)) {
        result.level = HitLevel::L2;
        result.latency = cc.l1d.latency + cc.l2.latency;
        return;
    }
    ++st.l2Misses;

    ++st.llcAccesses;
    if (llc_->accessLine(line, is_write)) {
        result.level = HitLevel::LLC;
        result.latency =
            cc.l1d.latency + cc.l2.latency + cfg_.llc.latency;
        result.coherenceMiss = remote_written;
    } else {
        ++st.llcMisses;
        result.level = HitLevel::Memory;
        result.latency = cc.l1d.latency + cc.l2.latency +
            cfg_.llc.latency + cc.memLatency;
        result.coherenceMiss = remote_written;
        // Shared memory bus backlog, identical to the legacy hierarchy
        // (see cache/hierarchy.cc). The parallel engine never reaches
        // this with memBusCycles > 0 — bus queueing is time-dependent,
        // so the dispatcher routes such configs to a sequential engine.
        if (cfg_.memBusCycles > 0) {
            const double scale = cfg_.timeScale(core);
            const double now_ref = now * scale;
            if (now_ref > busLastNow_) {
                busBacklog_ = std::max(0.0, busBacklog_ -
                                       (now_ref - busLastNow_));
                busLastNow_ = now_ref;
            }
            result.latency += static_cast<uint32_t>(busBacklog_ / scale);
            busBacklog_ += static_cast<double>(cfg_.memBusCycles);
        }
    }
    if (result.coherenceMiss)
        ++st.coherenceMisses;
}

AccessResult
SimHierarchy::dataAccess(uint32_t core, uint64_t addr, bool is_write,
                         double now)
{
    RPPM_ASSERT(core < cfg_.numCores());
    const CoreConfig &cc = cfg_.core(core);
    CoreMemStats &st = stats_[core];
    AccessResult result;
    // One division serves every level and the directory: validate()
    // enforces a single line size across the whole hierarchy.
    const uint64_t line = llc_->lineOf(addr);

    if (!is_write) {
        // Fast path: a read that hits L1D needs no directory work at
        // all (the legacy hierarchy only consults lastWriter_ after an
        // L1 miss). The core's sharer bit is necessarily already set:
        // it was set when the line was filled, and the only thing that
        // clears it is a remote write — which would also have
        // invalidated this copy and made the hit impossible.
        ++st.l1dAccesses;
        if (l1d_[core].accessLine(line, false)) {
            result.level = HitLevel::L1;
            result.latency = cc.l1d.latency;
            return result;
        }
        ++st.l1dMisses;

        bool inserted = false;
        DirEntry &e = dir_.lookup(line, inserted);
        if (!wide_)
            e.sharers |= uint64_t{1} << core;
        // Classify before we touch lower levels: if another core wrote
        // this line since our last access, the private-cache miss is a
        // coherence miss (the copy we once had was invalidated).
        const bool remote_written =
            e.lastWriter != 0 && e.lastWriter != core + 1;
        lowerWalk(core, line, false, remote_written, now, result);
        return result;
    }

    bool inserted = false;
    DirEntry &e = dir_.lookup(line, inserted);

    // A write must invalidate every remote private copy before this core
    // can own the line. The sharer mask is a superset of the cores that
    // may hold it, so probing only those is exactly equivalent to the
    // legacy all-core loop (invalidating an absent line is a no-op and
    // charges no stats); afterwards the writer is the only sharer.
    if (wide_) {
        for (uint32_t c = 0; c < cfg_.numCores(); ++c) {
            if (c == core)
                continue;
            bool inv = l1d_[c].invalidateLine(line);
            inv |= l2_[c].invalidateLine(line);
            if (inv)
                ++stats_[c].invalidationsReceived;
        }
    } else {
        uint64_t others = e.sharers & ~(uint64_t{1} << core);
        while (others != 0) {
            const uint32_t c = static_cast<uint32_t>(
                std::countr_zero(others));
            others &= others - 1;
            bool inv = l1d_[c].invalidateLine(line);
            inv |= l2_[c].invalidateLine(line);
            if (inv)
                ++stats_[c].invalidationsReceived;
        }
        e.sharers = uint64_t{1} << core;
    }

    ++st.l1dAccesses;
    if (l1d_[core].accessLine(line, true)) {
        result.level = HitLevel::L1;
        result.latency = cc.l1d.latency;
        e.lastWriter = core + 1;
        return result;
    }
    ++st.l1dMisses;

    const bool remote_written =
        e.lastWriter != 0 && e.lastWriter != core + 1;
    lowerWalk(core, line, true, remote_written, now, result);
    e.lastWriter = core + 1;
    return result;
}

uint32_t
SimHierarchy::instrFetch(uint32_t core, uint64_t pc)
{
    RPPM_ASSERT(core < cfg_.numCores());
    CoreMemStats &st = stats_[core];
    ++st.l1iAccesses;
    if (l1i_[core].accessLine(llc_->lineOf(pc), false))
        return 0;
    ++st.l1iMisses;
    return instrMissFill(core, pc);
}

uint32_t
SimHierarchy::instrMissFill(uint32_t core, uint64_t pc)
{
    RPPM_ASSERT(core < cfg_.numCores());
    const CoreConfig &cc = cfg_.core(core);
    const uint64_t line = llc_->lineOf(pc);
    // The fill allocates into this core's private L2, which a later
    // remote write must be able to invalidate: record the sharer bit.
    if (!wide_) {
        bool inserted = false;
        DirEntry &e = dir_.lookup(line, inserted);
        e.sharers |= uint64_t{1} << core;
    }
    if (l2_[core].accessLine(line, false))
        return cc.l2.latency;
    if (llc_->accessLine(line, false))
        return cc.l2.latency + cfg_.llc.latency;
    return cc.l2.latency + cfg_.llc.latency + cc.memLatency;
}

} // namespace rppm

/**
 * @file
 * Flat-table cache hierarchy for the columnar simulator engines.
 *
 * Semantically identical to CacheHierarchy (cache/hierarchy.hh) — same
 * cache walks, same stats, same coherence classification, same shared-bus
 * backlog — but engineered for the simulator's hot loop:
 *
 *  - The last-writer directory lives in an open-addressing lazy-zero
 *    OpenTable (common/open_table.hh, extracted from the profiler's
 *    reuse tables) instead of std::unordered_map nodes; at most one
 *    probe serves the whole access (invalidation filter + coherence
 *    classify + last-writer update), and a read that hits L1D skips the
 *    directory entirely — its sharer bit is necessarily already set,
 *    because the only event that clears it (a remote write) would also
 *    have invalidated the copy and made the hit impossible.
 *  - The caches are SimCache replicas (sim_cache.hh): SoA tag stores
 *    with shift/mask set indexing, decision-identical to Cache. Every
 *    level shares one line size (MulticoreConfig::validate() enforces
 *    it), so the address-to-line division happens once per access and
 *    the line number feeds every level and the directory.
 *  - Each directory entry carries a sharer bit mask — a conservative
 *    superset of the cores whose private L1D/L2 may hold the line. A
 *    write only probes the caches of cores in the mask instead of every
 *    core; since invalidating an absent line is a no-op (and charges no
 *    stats), filtering by a superset is exact, and after a write the
 *    writer is the only possible sharer. Machines with more than 64
 *    cores fall back to probing every core, which is what the legacy
 *    hierarchy always does.
 *
 * The fetch path is split so the parallel engine can replay it in two
 * phases: instrFetch() is the full L1I probe + miss fill (sequential
 * engine), instrMissFill() is only the shared L2/LLC walk of a known L1I
 * miss (the parallel engine resolves L1I hits thread-locally — L1I is
 * never invalidated — and replays just the misses in global order).
 *
 * Not internally synchronized: one instance is owned by one thread at a
 * time (the parallel engine gives each cache-set shard its own replica).
 */

#ifndef RPPM_SIM_SIM_HIERARCHY_HH
#define RPPM_SIM_SIM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/config.hh"
#include "cache/hierarchy.hh"
#include "common/open_table.hh"
#include "sim/sim_cache.hh"

namespace rppm {

/** Drop-in CacheHierarchy replacement for the columnar simulator. */
class SimHierarchy
{
  public:
    /**
     * @p expected_lines pre-sizes the coherence directory (an upper
     * bound on distinct lines — the engines pass the trace's data-access
     * count, this hierarchy's share of it in the sharded replay). 0
     * keeps the default small table and relies on geometric growth;
     * streaming traces then rehash the whole directory on every
     * doubling, so the engines always pass a bound.
     */
    explicit SimHierarchy(const MulticoreConfig &cfg,
                          uint64_t expected_lines = 0);

    /** Data access; mirrors CacheHierarchy::dataAccess exactly. */
    AccessResult dataAccess(uint32_t core, uint64_t addr, bool is_write,
                            double now = 0.0);

    /** Full instruction fetch (L1I probe, then miss fill). */
    uint32_t instrFetch(uint32_t core, uint64_t pc);

    /**
     * Serve a known L1I miss from the unified L2 / LLC path without
     * touching L1I or its stats; returns the extra front-end stall.
     */
    uint32_t instrMissFill(uint32_t core, uint64_t pc);

    /**
     * Software-prefetch every table row a dataAccess(core, addr) will
     * touch (L1D tags, coherence-directory slot, L2/LLC tags for the
     * miss path). No architectural effect; the columnar engines call
     * this a few entries ahead of their position in the addr column to
     * hide the random-probe latency that dominates streaming traces.
     */
    void
    prefetchData(uint32_t core, uint64_t addr) const
    {
        const uint64_t line = llc_->lineOf(addr);
        l1d_[core].prefetchLine(line);
        dir_.prefetch(line);
        l2_[core].prefetchLine(line);
        llc_->prefetchLine(line);
    }

    /** Credit externally replayed L1I probes into @p core's stats. */
    void
    addL1iStats(uint32_t core, uint64_t accesses, uint64_t misses)
    {
        stats_[core].l1iAccesses += accesses;
        stats_[core].l1iMisses += misses;
    }

    const CoreMemStats &coreStats(uint32_t core) const
    {
        return stats_[core];
    }

    const MulticoreConfig &config() const { return cfg_; }

  private:
    /** Shared L2 → LLC → memory walk of a known L1D miss. */
    void lowerWalk(uint32_t core, uint64_t line, bool is_write,
                   bool remote_written, double now, AccessResult &result);

    /**
     * Last writer (core+1; 0 = never written) and sharer superset.
     * Deliberately trivial (no member initializers): OpenTable keeps
     * its value store raw and value-initializes a slot on first insert.
     */
    struct DirEntry
    {
        uint64_t sharers;
        uint32_t lastWriter;
    };

    MulticoreConfig cfg_;
    std::vector<SimCache> l1i_, l1d_, l2_;
    std::unique_ptr<SimCache> llc_;
    std::vector<CoreMemStats> stats_;
    OpenTable<DirEntry> dir_;
    bool wide_ = false; ///< > 64 cores: sharer mask unusable, probe all
    double busBacklog_ = 0.0;
    double busLastNow_ = 0.0;
};

} // namespace rppm

#endif // RPPM_SIM_SIM_HIERARCHY_HH

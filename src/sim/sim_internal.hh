/**
 * @file
 * Shared internals of the simulator engines (internal header).
 *
 * simulate() has three engines that must stay byte-identical (see
 * simulator.hh): the legacy AoS reference, the sequential columnar
 * engine and the phased parallel engine. The pieces whose float
 * operation sequences define that identity live here so all engines
 * compile the exact same code: the expanded per-thread hierarchy
 * configuration, the branch-predictor adapter, the columnar micro-op
 * run executor and the result assembly.
 */

#ifndef RPPM_SIM_SIM_INTERNAL_HH
#define RPPM_SIM_SIM_INTERNAL_HH

#include <algorithm>
#include <cstdint>

#include "arch/config.hh"
#include "branch/tournament.hh"
#include "sim/simulator.hh"
#include "simcore/core_model.hh"
#include "trace/columnar.hh"

namespace rppm::sim_detail {

/**
 * Hierarchy configuration with one private-cache slot per thread.
 *
 * Each thread gets a private cache set; workloads may have more threads
 * than cores (e.g. main + numCores workers) as long as the *concurrently
 * active* thread count stays at numCores, which the paper's setups
 * guarantee (the main thread blocks in join while the workers run). Each
 * slot carries the *mapped* core's parameters, so heterogeneous machines
 * give each thread the caches of the core it is placed on.
 */
inline MulticoreConfig
expandedHierConfig(const MulticoreConfig &cfg, uint32_t num_threads)
{
    MulticoreConfig hier_cfg = cfg;
    const uint32_t slots = std::max(cfg.numCores(), num_threads);
    hier_cfg.cores.clear();
    hier_cfg.cores.reserve(slots);
    for (uint32_t t = 0; t < slots; ++t)
        hier_cfg.cores.push_back(cfg.threadCore(t));
    hier_cfg.mapping = ThreadMapping();
    // memBusCycles is defined on the *original* config's reference
    // (core 0) clock, but the hierarchy's internal bus clock is its own
    // slot 0 = threadCore(0); rescale the service time into that domain
    // (factor exactly 1.0 unless thread 0 sits on a different clock).
    hier_cfg.memBusCycles = static_cast<uint32_t>(
        cfg.memBusCycles *
            (hier_cfg.cores.front().frequencyGHz / cfg.referenceGHz()) +
        0.5);
    return hier_cfg;
}

/** Adapts TournamentPredictor to the CoreModel interface. Marked final
 *  so CoreModelT instantiations holding a BranchAdapter& devirtualize
 *  the per-branch call. */
class BranchAdapter final : public BranchPredictorIf
{
  public:
    explicit BranchAdapter(TournamentPredictor &pred) : pred_(pred) {}

    bool
    predictAndUpdate(uint64_t pc, bool taken) override
    {
        return pred_.predictAndUpdate(pc, taken);
    }

  private:
    TournamentPredictor &pred_;
};

/**
 * Execute the micro-op records [cur.index(), end) through @p core — any
 * CoreModelT instantiation — materializing each record from the columns.
 * @p pre(i) runs before each execute — the parallel engine points its
 * replay memory at record i, the sequential engine passes a no-op. The
 * caller guarantees the range contains no sync records.
 */
template <typename Core, typename PreExec>
inline void
executeRange(ColumnCursor &cur, Core &core, size_t end, PreExec pre)
{
    while (cur.index() < end) {
        TraceRecord rec;
        rec.op = cur.op();
        rec.pc = cur.pc();
        rec.dep1 = cur.dep1();
        rec.dep2 = cur.dep2();
        if (isMemory(rec.op))
            rec.addr = cur.addr();
        else if (rec.op == OpClass::Branch)
            rec.taken = cur.taken();
        pre(cur.index());
        core.execute(rec);
        cur.advance();
    }
}

/**
 * Assemble the per-thread results, totals and averages. @p coreOf /
 * @p branchOf / @p memOf map a thread id to its CoreModelT (any
 * instantiation), branch stats and memory stats; finishTime and activity
 * must already be filled in.
 */
template <typename CoreOf, typename BranchOf, typename MemOf>
inline void
finalizeResult(SimResult &result, const MulticoreConfig &cfg,
               uint32_t num_threads, CoreOf coreOf, BranchOf branchOf,
               MemOf memOf)
{
    double total = 0.0;
    for (uint32_t t = 0; t < num_threads; ++t) {
        ThreadResult &tr = result.threads[t];
        auto &core = coreOf(t);
        tr.core = cfg.coreOf(t);
        tr.instructions = core.instructions();
        tr.cpi = core.cpiStack();
        tr.activeCycles = core.activeCycles();
        tr.syncCycles = tr.cpi[CpiComponent::Sync];
        tr.finishSeconds = cfg.refCyclesToSeconds(tr.finishTime);
        total = std::max(total, tr.finishTime);
        result.mem.push_back(memOf(t));
        result.branch.push_back(branchOf(t));
    }
    result.totalCycles = total;
    result.totalSeconds = cfg.refCyclesToSeconds(total);
}

/** Parallel phased engine (simulator_parallel.cc); requires
 *  memBusCycles == 0 and is byte-identical to the sequential engines. */
SimResult simulateParallelImpl(const ColumnarTrace &trace,
                               const MulticoreConfig &cfg,
                               const SimOptions &opts, unsigned jobs);

} // namespace rppm::sim_detail

#endif // RPPM_SIM_SIM_INTERNAL_HH

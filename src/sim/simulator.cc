#include "sim/simulator.hh"

#include <algorithm>
#include <limits>

#include "common/assert.hh"

namespace rppm {

CpiStack
SimResult::averageCpiStack() const
{
    // Paper Fig. 5: compute each thread's CPI stack separately, then
    // average the per-thread stacks (normalized per instruction).
    CpiStack avg;
    uint32_t counted = 0;
    for (const ThreadResult &t : threads) {
        if (t.instructions == 0)
            continue;
        CpiStack per_insn = t.cpi;
        per_insn.scale(1.0 / static_cast<double>(t.instructions));
        avg.add(per_insn);
        ++counted;
    }
    if (counted > 0)
        avg.scale(1.0 / static_cast<double>(counted));
    return avg;
}

namespace {

/** Binds a CacheHierarchy to one core for the CoreModel interface. */
class CoreMemoryAdapter : public MemorySystemIf
{
  public:
    CoreMemoryAdapter(CacheHierarchy &hier, uint32_t core)
        : hier_(hier), core_(core)
    {}

    AccessResult
    dataAccess(uint64_t addr, bool is_write, double now) override
    {
        return hier_.dataAccess(core_, addr, is_write, now);
    }

    uint32_t
    instrFetch(uint64_t pc) override
    {
        return hier_.instrFetch(core_, pc);
    }

  private:
    CacheHierarchy &hier_;
    uint32_t core_;
};

/** Adapts TournamentPredictor to the CoreModel interface. */
class BranchAdapter : public BranchPredictorIf
{
  public:
    explicit BranchAdapter(TournamentPredictor &pred) : pred_(pred) {}

    bool
    predictAndUpdate(uint64_t pc, bool taken) override
    {
        return pred_.predictAndUpdate(pc, taken);
    }

  private:
    TournamentPredictor &pred_;
};

/** Per-thread execution cursor. */
struct ThreadCursor
{
    size_t next = 0;           ///< next record index
    bool done = false;
    double activeStart = 0.0;  ///< begin of the current active interval
};

} // namespace

SimResult
simulate(const WorkloadTrace &trace, const MulticoreConfig &cfg,
         const SimOptions &opts)
{
    trace.validate();
    cfg.validate();
    const uint32_t num_threads =
        static_cast<uint32_t>(trace.numThreads());

    // Each thread gets a private cache set; workloads may have more
    // threads than cores (e.g. main + numCores workers) as long as the
    // *concurrently active* thread count stays at numCores, which the
    // paper's setups guarantee (the main thread blocks in join while the
    // workers run). The expanded hierarchy config has one slot per
    // thread carrying the *mapped* core's parameters, so heterogeneous
    // machines give each thread the caches of the core it is placed on.
    MulticoreConfig hier_cfg = cfg;
    const uint32_t slots = std::max(cfg.numCores(), num_threads);
    hier_cfg.cores.clear();
    hier_cfg.cores.reserve(slots);
    for (uint32_t t = 0; t < slots; ++t)
        hier_cfg.cores.push_back(cfg.threadCore(t));
    hier_cfg.mapping = ThreadMapping();
    // memBusCycles is defined on the *original* config's reference
    // (core 0) clock, but the hierarchy's internal bus clock is its own
    // slot 0 = threadCore(0); rescale the service time into that domain
    // (factor exactly 1.0 unless thread 0 sits on a different clock).
    hier_cfg.memBusCycles = static_cast<uint32_t>(
        cfg.memBusCycles *
            (hier_cfg.cores.front().frequencyGHz / cfg.referenceGHz()) +
        0.5);
    CacheHierarchy hierarchy(hier_cfg);

    // Per-thread conversion to the common time base (reference cycles,
    // i.e. cycles of the *original* config's core 0); exactly 1.0
    // everywhere on a homogeneous machine.
    std::vector<double> scale(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
        scale[t] = cfg.threadTimeScale(t);

    std::vector<std::unique_ptr<CoreMemoryAdapter>> mems;
    std::vector<std::unique_ptr<TournamentPredictor>> preds;
    std::vector<std::unique_ptr<BranchAdapter>> branch_adapters;
    std::vector<std::unique_ptr<CoreModel>> cores;
    for (uint32_t t = 0; t < num_threads; ++t) {
        const CoreConfig &tc = cfg.threadCore(t);
        mems.push_back(std::make_unique<CoreMemoryAdapter>(hierarchy, t));
        preds.push_back(std::make_unique<TournamentPredictor>(tc.branch));
        branch_adapters.push_back(std::make_unique<BranchAdapter>(*preds[t]));
        cores.push_back(std::make_unique<CoreModel>(tc, *mems[t],
                                                    *branch_adapters[t]));
    }

    SyncState sync(num_threads, barrierPopulations(trace));
    std::vector<ThreadCursor> cursors(num_threads);
    SimResult result;
    result.workload = trace.name;
    result.config = cfg.name;
    result.threads.resize(num_threads);

    auto close_activity = [&](uint32_t tid, double at) {
        ThreadResult &tr = result.threads[tid];
        ThreadCursor &cur = cursors[tid];
        if (at > cur.activeStart)
            tr.activity.push_back({cur.activeStart, at});
    };

    auto handle_releases = [&](const SyncOutcome &out) {
        for (const auto &[tid, when] : out.released) {
            // @p when is reference cycles; the core idles on its own
            // clock.
            cores[tid]->idleUntil(when / scale[tid]);
            cursors[tid].activeStart = when;
        }
    };

    // Main loop: advance the runnable thread with the smallest global
    // (reference-cycle) time by a batch of records (up to its next sync
    // event).
    constexpr size_t kBatch = 64;
    uint32_t live = num_threads;
    while (live > 0) {
        // Pick the unblocked, unfinished thread with the smallest clock.
        uint32_t pick = num_threads;
        double best = std::numeric_limits<double>::infinity();
        for (uint32_t t = 0; t < num_threads; ++t) {
            if (cursors[t].done || sync.blocked(t))
                continue;
            if (cores[t]->now() * scale[t] < best) {
                best = cores[t]->now() * scale[t];
                pick = t;
            }
        }
        RPPM_REQUIRE(pick < num_threads,
                     "deadlock: no runnable thread (malformed trace)");

        ThreadCursor &cur = cursors[pick];
        const auto &records = trace.threads[pick].records;
        size_t steps = 0;
        while (cur.next < records.size() && steps < kBatch) {
            const TraceRecord &rec = records[cur.next];
            if (rec.isSync()) {
                // Sync ops cost real cycles (atomics, futex path) on the
                // thread's own clock before their semantic effect
                // happens.
                if (rec.sync != SyncType::CondMarker)
                    cores[pick]->syncOverhead(opts.syncOpCost);
                const double now = cores[pick]->now() * scale[pick];
                // Close this thread's activity interval before applying
                // the event: a release may advance its activeStart (last
                // arrival at a barrier), which would drop the interval.
                close_activity(pick, now);
                cur.activeStart = now;
                const SyncOutcome out = sync.apply(pick, rec, now);
                ++cur.next;
                handle_releases(out);
                if (out.blocks)
                    break;
                // Re-enter the scheduler after any sync event so global
                // time order is maintained around interactions.
                ++steps;
                break;
            }
            cores[pick]->execute(rec);
            ++cur.next;
            ++steps;
        }

        // A thread is only finished once it has exhausted its records AND
        // is not blocked (its last record may be a blocking sync event;
        // the release will reschedule it here with an up-to-date clock).
        if (cur.next >= records.size() && !cur.done && !sync.blocked(pick)) {
            cur.done = true;
            --live;
            const double now = cores[pick]->now() * scale[pick];
            close_activity(pick, now);
            result.threads[pick].finishTime = now;
            handle_releases(sync.finish(pick, now));
        }
    }

    double total = 0.0;
    for (uint32_t t = 0; t < num_threads; ++t) {
        ThreadResult &tr = result.threads[t];
        tr.core = cfg.coreOf(t);
        tr.instructions = cores[t]->instructions();
        tr.cpi = cores[t]->cpiStack();
        tr.activeCycles = cores[t]->activeCycles();
        tr.syncCycles = tr.cpi[CpiComponent::Sync];
        tr.finishSeconds = cfg.refCyclesToSeconds(tr.finishTime);
        total = std::max(total, tr.finishTime);
        result.mem.push_back(hierarchy.coreStats(t));
        result.branch.push_back(preds[t]->stats());
    }
    result.totalCycles = total;
    result.totalSeconds = cfg.refCyclesToSeconds(total);
    return result;
}

} // namespace rppm

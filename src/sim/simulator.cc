#include "sim/simulator.hh"

#include <algorithm>

#include "common/assert.hh"
#include "sim/sim_internal.hh"

namespace rppm {

CpiStack
SimResult::averageCpiStack() const
{
    // Paper Fig. 5: compute each thread's CPI stack separately, then
    // average the per-thread stacks (normalized per instruction).
    CpiStack avg;
    uint32_t counted = 0;
    for (const ThreadResult &t : threads) {
        if (t.instructions == 0)
            continue;
        CpiStack per_insn = t.cpi;
        per_insn.scale(1.0 / static_cast<double>(t.instructions));
        avg.add(per_insn);
        ++counted;
    }
    if (counted > 0)
        avg.scale(1.0 / static_cast<double>(counted));
    return avg;
}

namespace {

/** Binds a CacheHierarchy to one core for the CoreModel interface. */
class CoreMemoryAdapter : public MemorySystemIf
{
  public:
    CoreMemoryAdapter(CacheHierarchy &hier, uint32_t core)
        : hier_(hier), core_(core)
    {}

    AccessResult
    dataAccess(uint64_t addr, bool is_write, double now) override
    {
        return hier_.dataAccess(core_, addr, is_write, now);
    }

    uint32_t
    instrFetch(uint64_t pc) override
    {
        return hier_.instrFetch(core_, pc);
    }

  private:
    CacheHierarchy &hier_;
    uint32_t core_;
};

/** Per-thread execution cursor. */
struct ThreadCursor
{
    size_t next = 0;           ///< next record index
    bool done = false;
    double activeStart = 0.0;  ///< begin of the current active interval
};

} // namespace

SimResult
simulateLegacy(const WorkloadTrace &trace, const MulticoreConfig &cfg,
               const SimOptions &opts)
{
    trace.validate();
    cfg.validate();
    RPPM_REQUIRE(opts.quantum > 0, "scheduler quantum must be positive");
    const uint32_t num_threads =
        static_cast<uint32_t>(trace.numThreads());

    const MulticoreConfig hier_cfg =
        sim_detail::expandedHierConfig(cfg, num_threads);
    CacheHierarchy hierarchy(hier_cfg);

    // Per-thread conversion to the common time base (reference cycles,
    // i.e. cycles of the *original* config's core 0); exactly 1.0
    // everywhere on a homogeneous machine.
    std::vector<double> scale(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
        scale[t] = cfg.threadTimeScale(t);

    std::vector<std::unique_ptr<CoreMemoryAdapter>> mems;
    std::vector<std::unique_ptr<TournamentPredictor>> preds;
    std::vector<std::unique_ptr<sim_detail::BranchAdapter>> branch_adapters;
    std::vector<std::unique_ptr<CoreModel>> cores;
    for (uint32_t t = 0; t < num_threads; ++t) {
        const CoreConfig &tc = cfg.threadCore(t);
        mems.push_back(std::make_unique<CoreMemoryAdapter>(hierarchy, t));
        preds.push_back(std::make_unique<TournamentPredictor>(tc.branch));
        branch_adapters.push_back(
            std::make_unique<sim_detail::BranchAdapter>(*preds[t]));
        cores.push_back(std::make_unique<CoreModel>(tc, *mems[t],
                                                    *branch_adapters[t]));
    }

    SyncState sync(num_threads, barrierPopulations(trace));
    std::vector<ThreadCursor> cursors(num_threads);
    SimResult result;
    result.workload = trace.name;
    result.config = cfg.name;
    result.threads.resize(num_threads);

    auto close_activity = [&](uint32_t tid, double at) {
        ThreadResult &tr = result.threads[tid];
        ThreadCursor &cur = cursors[tid];
        if (at > cur.activeStart)
            tr.activity.push_back({cur.activeStart, at});
    };

    auto handle_releases = [&](const SyncOutcome &out) {
        for (const auto &[tid, when] : out.released) {
            // @p when is reference cycles; the core idles on its own
            // clock.
            cores[tid]->idleUntil(when / scale[tid]);
            cursors[tid].activeStart = when;
        }
    };

    // Main loop: the round-robin quantum scheduler (the exact discipline
    // the profiler uses, so the parallel engine can replay the schedule
    // from the sync columns alone). Each turn picks the next runnable
    // thread after the rotating cursor and advances it by up to
    // opts.quantum records; sync events consume one quantum slot, and a
    // blocking event ends the turn. Source markers (CondMarker) consume
    // their slot but have no runtime effect or cost.
    uint32_t live = num_threads;
    uint32_t cursor = 0;
    while (live > 0) {
        uint32_t pick = UINT32_MAX;
        for (uint32_t i = 0; i < num_threads; ++i) {
            const uint32_t t = (cursor + i) % num_threads;
            if (!cursors[t].done && !sync.blocked(t)) {
                pick = t;
                break;
            }
        }
        RPPM_REQUIRE(pick != UINT32_MAX,
                     "deadlock: no runnable thread (malformed trace)");
        cursor = (pick + 1) % num_threads;

        ThreadCursor &cur = cursors[pick];
        const auto &records = trace.threads[pick].records;
        uint32_t executed = 0;
        while (cur.next < records.size() && executed < opts.quantum) {
            const TraceRecord &rec = records[cur.next];
            if (rec.isSync()) {
                ++cur.next;
                ++executed;
                if (rec.sync == SyncType::CondMarker)
                    continue;
                // Sync ops cost real cycles (atomics, futex path) on the
                // thread's own clock before their semantic effect
                // happens.
                cores[pick]->syncOverhead(opts.syncOpCost);
                const double now = cores[pick]->now() * scale[pick];
                // Close this thread's activity interval before applying
                // the event: a release may advance its activeStart (last
                // arrival at a barrier), which would drop the interval.
                close_activity(pick, now);
                cur.activeStart = now;
                const SyncOutcome out = sync.apply(pick, rec, now);
                handle_releases(out);
                if (out.blocks)
                    break;
                continue;
            }
            cores[pick]->execute(rec);
            ++cur.next;
            ++executed;
        }

        // A thread is only finished once it has exhausted its records AND
        // is not blocked (its last record may be a blocking sync event;
        // the release will reschedule it here with an up-to-date clock).
        if (cur.next >= records.size() && !cur.done && !sync.blocked(pick)) {
            cur.done = true;
            --live;
            const double now = cores[pick]->now() * scale[pick];
            close_activity(pick, now);
            result.threads[pick].finishTime = now;
            handle_releases(sync.finish(pick, now));
        }
    }

    sim_detail::finalizeResult(
        result, cfg, num_threads,
        [&](uint32_t t) -> CoreModel & { return *cores[t]; },
        [&](uint32_t t) { return preds[t]->stats(); },
        [&](uint32_t t) { return hierarchy.coreStats(t); });
    return result;
}

SimResult
simulate(const WorkloadTrace &trace, const MulticoreConfig &cfg,
         const SimOptions &opts)
{
    return simulate(ColumnarTrace::fromWorkload(trace), cfg, opts);
}

} // namespace rppm

/**
 * @file
 * Multicore golden-reference simulator.
 *
 * Interleaves the per-thread traces of a workload with the same
 * deterministic round-robin quantum scheduler the profiler uses: each
 * turn, the next runnable thread (rotating cursor) advances by up to
 * `quantum` records through its CoreModel, and synchronization records
 * go through SyncState, giving them their dynamic
 * (arrival-order-dependent) semantics. Memory accesses therefore hit the
 * shared hierarchy in a deterministic, interleaved global order, which
 * is what makes cache sharing and coherence effects realistic.
 *
 * Three engines produce byte-identical results:
 *  - simulateLegacy(): the AoS reference implementation on the classic
 *    CacheHierarchy — the differential baseline.
 *  - simulate() on a ColumnarTrace with jobs == 1: the columnar engine
 *    on the flat-table SimHierarchy (sim_hierarchy.hh).
 *  - simulate() with jobs > 1 (and memBusCycles == 0): the phased
 *    parallel engine (simulator_parallel.cc), which pins the global
 *    interleaving with the same sequential sync-column schedule replay
 *    the parallel profiler uses, then replays core models and cache
 *    shards concurrently.
 *
 * Plays the role Sniper plays in the paper: its execution times are the
 * golden reference RPPM's predictions are scored against.
 */

#ifndef RPPM_SIM_SIMULATOR_HH
#define RPPM_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "branch/tournament.hh"
#include "cache/hierarchy.hh"
#include "sim/sync_state.hh"
#include "simcore/core_model.hh"
#include "trace/columnar.hh"
#include "trace/trace.hh"

namespace rppm {

/** Active-interval record used for bottlegraphs. */
struct ActivityInterval
{
    double begin = 0.0;
    double end = 0.0;
};

/**
 * Per-thread simulation results.
 *
 * finishTime and activity are in reference cycles (core 0's clock
 * domain) so threads on cores with different frequencies share one time
 * base; activeCycles, syncCycles and the CPI stack are in the thread's
 * own core's cycles. On a homogeneous machine the two coincide.
 */
struct ThreadResult
{
    double finishTime = 0.0;       ///< cycle the thread exhausted its trace
    double finishSeconds = 0.0;    ///< finishTime in wall-clock seconds
    double activeCycles = 0.0;     ///< busy (non-idle) cycles
    double syncCycles = 0.0;       ///< idle cycles waiting on sync
    uint32_t core = 0;             ///< core this thread was mapped to
    uint64_t instructions = 0;
    CpiStack cpi;                  ///< absolute cycle budget by component
    std::vector<ActivityInterval> activity; ///< for bottlegraphs
};

/** Whole-workload simulation results. */
struct SimResult
{
    std::string workload;
    std::string config;
    double totalCycles = 0.0;      ///< execution time (reference cycles)
    double totalSeconds = 0.0;     ///< at the reference clock frequency
    std::vector<ThreadResult> threads;
    std::vector<CoreMemStats> mem; ///< per-core cache statistics
    std::vector<BranchStats> branch;

    /** Average per-thread CPI stack normalized per instruction. */
    CpiStack averageCpiStack() const;
};

/** Tunables of the simulator that are not architecture parameters. */
struct SimOptions
{
    /** Cycle cost charged for executing one sync operation. */
    double syncOpCost = 40.0;

    /** Scheduler quantum in records per turn (matches the profiler's
     *  default). Execution-order policy: it changes the simulated
     *  interleaving, so it is an explicit, deterministic knob. */
    uint32_t quantum = 64;

    /**
     * Worker threads for the parallel engine (0 = all hardware
     * threads). Pure execution policy — every job count yields the same
     * result bits. Configurations with memBusCycles > 0 fall back to
     * the sequential engine (bus queueing is time-dependent and cannot
     * be sharded).
     */
    unsigned jobs = 1;
};

/**
 * Execute @p trace on @p cfg and return the golden-reference timing.
 *
 * The simulation is deterministic: same trace + config => same result,
 * for every SimOptions::jobs value. Throws on deadlock (which indicates
 * a malformed trace). The AoS overload converts to the columnar view
 * first; callers that already hold one (e.g. WorkloadSource::columnar())
 * should pass it directly.
 */
SimResult simulate(const WorkloadTrace &trace, const MulticoreConfig &cfg,
                   const SimOptions &opts = {});

/** As above, driving fetch directly from the columnar view. */
SimResult simulate(const ColumnarTrace &trace, const MulticoreConfig &cfg,
                   const SimOptions &opts = {});

/**
 * The legacy AoS record-by-record implementation on the classic
 * CacheHierarchy. Kept as the differential reference for the columnar
 * engines (tests/test_sim_parallel.cc pins all engines byte-identical);
 * not a performance path.
 */
SimResult simulateLegacy(const WorkloadTrace &trace,
                         const MulticoreConfig &cfg,
                         const SimOptions &opts = {});

} // namespace rppm

#endif // RPPM_SIM_SIMULATOR_HH

/**
 * @file
 * Multicore golden-reference simulator.
 *
 * Interleaves the per-thread traces of a workload on a timestamp-ordered
 * global clock: at each step the runnable thread with the smallest local
 * time advances by one trace record through its CoreModel. Memory accesses
 * therefore hit the shared hierarchy in (approximate) global time order,
 * which is what makes cache sharing and coherence effects realistic.
 * Synchronization records go through SyncState, giving them their dynamic
 * (arrival-order-dependent) semantics.
 *
 * Plays the role Sniper plays in the paper: its execution times are the
 * golden reference RPPM's predictions are scored against.
 */

#ifndef RPPM_SIM_SIMULATOR_HH
#define RPPM_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "branch/tournament.hh"
#include "cache/hierarchy.hh"
#include "sim/sync_state.hh"
#include "simcore/core_model.hh"
#include "trace/trace.hh"

namespace rppm {

/** Active-interval record used for bottlegraphs. */
struct ActivityInterval
{
    double begin = 0.0;
    double end = 0.0;
};

/**
 * Per-thread simulation results.
 *
 * finishTime and activity are in reference cycles (core 0's clock
 * domain) so threads on cores with different frequencies share one time
 * base; activeCycles, syncCycles and the CPI stack are in the thread's
 * own core's cycles. On a homogeneous machine the two coincide.
 */
struct ThreadResult
{
    double finishTime = 0.0;       ///< cycle the thread exhausted its trace
    double finishSeconds = 0.0;    ///< finishTime in wall-clock seconds
    double activeCycles = 0.0;     ///< busy (non-idle) cycles
    double syncCycles = 0.0;       ///< idle cycles waiting on sync
    uint32_t core = 0;             ///< core this thread was mapped to
    uint64_t instructions = 0;
    CpiStack cpi;                  ///< absolute cycle budget by component
    std::vector<ActivityInterval> activity; ///< for bottlegraphs
};

/** Whole-workload simulation results. */
struct SimResult
{
    std::string workload;
    std::string config;
    double totalCycles = 0.0;      ///< execution time (reference cycles)
    double totalSeconds = 0.0;     ///< at the reference clock frequency
    std::vector<ThreadResult> threads;
    std::vector<CoreMemStats> mem; ///< per-core cache statistics
    std::vector<BranchStats> branch;

    /** Average per-thread CPI stack normalized per instruction. */
    CpiStack averageCpiStack() const;
};

/** Tunables of the simulator that are not architecture parameters. */
struct SimOptions
{
    /** Cycle cost charged for executing one sync operation. */
    double syncOpCost = 40.0;
};

/**
 * Execute @p trace on @p cfg and return the golden-reference timing.
 *
 * The simulation is deterministic: same trace + config => same result.
 * Throws on deadlock (which indicates a malformed trace).
 */
SimResult simulate(const WorkloadTrace &trace, const MulticoreConfig &cfg,
                   const SimOptions &opts = {});

} // namespace rppm

#endif // RPPM_SIM_SIMULATOR_HH

/**
 * @file
 * Sequential columnar simulator engine + engine dispatch.
 *
 * Byte-identical to simulateLegacy(): the same round-robin quantum
 * scheduler, the same CoreModel call sequence, the same SyncState
 * machine. What changes is the data plumbing — fetch is driven from the
 * ColumnarTrace columns (runs of micro-ops between sync events execute
 * without per-record sync tests), and cache/coherence state lives on the
 * flat-table SimHierarchy instead of the unordered_map-backed legacy
 * hierarchy. tests/test_sim_parallel.cc pins the identity on the whole
 * workload suite.
 */

#include <algorithm>

#include "common/assert.hh"
#include "common/parallel.hh"
#include "sim/sim_hierarchy.hh"
#include "sim/sim_internal.hh"
#include "sim/simulator.hh"
#include "sim/sync_state.hh"

namespace rppm {

namespace {

/**
 * How many memory records ahead of the execution point the engines
 * software-prefetch the hierarchy's table rows. Far enough to cover a
 * DRAM round trip under the work between two memory ops, near enough
 * that the prefetched rows are still resident when reached.
 */
constexpr size_t kPrefetchDistance = 8;

/**
 * Binds a SimHierarchy to one core for the CoreModel memory interface.
 * A concrete (non-virtual) type: the engine instantiates CoreModelT on
 * it so every data access and instruction fetch is a direct call.
 */
class SimMemoryAdapter
{
  public:
    SimMemoryAdapter(SimHierarchy &hier, const ColumnCursor &cur,
                     uint32_t core)
        : hier_(hier), cur_(cur), core_(core)
    {}

    AccessResult
    dataAccess(uint64_t addr, bool is_write, double now)
    {
        // The cursor still points at the record being executed, so this
        // reaches kPrefetchDistance memory records past it (and a line
        // number of 0 once the column runs out — a harmless touch of
        // resident rows). Prefetch has no architectural effect, so the
        // byte-identity with the other engines is untouched.
        hier_.prefetchData(core_, cur_.peekAddr(kPrefetchDistance));
        return hier_.dataAccess(core_, addr, is_write, now);
    }

    uint32_t
    instrFetch(uint64_t pc)
    {
        return hier_.instrFetch(core_, pc);
    }

  private:
    SimHierarchy &hier_;
    const ColumnCursor &cur_;
    uint32_t core_;
};

/** Statically-dispatched core model used by this engine. */
using ColumnarCore = CoreModelT<SimMemoryAdapter, sim_detail::BranchAdapter>;

SimResult
simulateColumnarSequential(const ColumnarTrace &trace,
                           const MulticoreConfig &cfg,
                           const SimOptions &opts)
{
    const uint32_t num_threads =
        static_cast<uint32_t>(trace.numThreads());

    const MulticoreConfig hier_cfg =
        sim_detail::expandedHierConfig(cfg, num_threads);
    // The data-access count bounds the distinct-line count; pre-sizing
    // the coherence directory avoids rehash-on-doubling on streaming
    // traces where nearly every access touches a fresh line.
    uint64_t data_accesses = 0;
    for (const ThreadColumns &cols : trace.threads)
        data_accesses += cols.addr.size();
    SimHierarchy hierarchy(hier_cfg, data_accesses);

    std::vector<double> scale(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
        scale[t] = cfg.threadTimeScale(t);

    struct Cursor
    {
        ColumnCursor cur;
        bool done = false;
        double activeStart = 0.0;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
        cursors.push_back({ColumnCursor(trace.threads[t]), false, 0.0});

    std::vector<std::unique_ptr<SimMemoryAdapter>> mems;
    std::vector<std::unique_ptr<TournamentPredictor>> preds;
    std::vector<std::unique_ptr<sim_detail::BranchAdapter>> branch_adapters;
    std::vector<std::unique_ptr<ColumnarCore>> cores;
    for (uint32_t t = 0; t < num_threads; ++t) {
        const CoreConfig &tc = cfg.threadCore(t);
        mems.push_back(std::make_unique<SimMemoryAdapter>(
            hierarchy, cursors[t].cur, t));
        preds.push_back(std::make_unique<TournamentPredictor>(tc.branch));
        branch_adapters.push_back(
            std::make_unique<sim_detail::BranchAdapter>(*preds[t]));
        cores.push_back(std::make_unique<ColumnarCore>(tc, *mems[t],
                                                       *branch_adapters[t]));
    }

    SyncState sync(num_threads, trace.validateAndBarrierPopulations());

    SimResult result;
    result.workload = trace.name;
    result.config = cfg.name;
    result.threads.resize(num_threads);

    auto close_activity = [&](uint32_t tid, double at) {
        if (at > cursors[tid].activeStart)
            result.threads[tid].activity.push_back(
                {cursors[tid].activeStart, at});
    };

    auto handle_releases = [&](const SyncOutcome &out) {
        for (const auto &[tid, when] : out.released) {
            cores[tid]->idleUntil(when / scale[tid]);
            cursors[tid].activeStart = when;
        }
    };

    // The same round-robin quantum scheduler as simulateLegacy(); runs
    // of micro-ops between sync events execute as one batch with no
    // per-record sync test.
    uint32_t live = num_threads;
    uint32_t cursor = 0;
    while (live > 0) {
        uint32_t pick = UINT32_MAX;
        for (uint32_t i = 0; i < num_threads; ++i) {
            const uint32_t t = (cursor + i) % num_threads;
            if (!cursors[t].done && !sync.blocked(t)) {
                pick = t;
                break;
            }
        }
        RPPM_REQUIRE(pick != UINT32_MAX,
                     "deadlock: no runnable thread (malformed trace)");
        cursor = (pick + 1) % num_threads;

        Cursor &cur = cursors[pick];
        uint32_t executed = 0;
        while (!cur.cur.atEnd() && executed < opts.quantum) {
            if (cur.cur.atSync()) {
                const SyncType type = cur.cur.syncType();
                const uint32_t arg = cur.cur.syncArg();
                cur.cur.advance();
                ++executed;
                if (type == SyncType::CondMarker)
                    continue;
                cores[pick]->syncOverhead(opts.syncOpCost);
                const double now = cores[pick]->now() * scale[pick];
                close_activity(pick, now);
                cur.activeStart = now;
                TraceRecord rec;
                rec.sync = type;
                rec.syncArg = arg;
                const SyncOutcome out = sync.apply(pick, rec, now);
                handle_releases(out);
                if (out.blocks)
                    break;
                continue;
            }
            const size_t run_end =
                std::min(cur.cur.nextSyncPos(),
                         cur.cur.index() + (opts.quantum - executed));
            executed += static_cast<uint32_t>(run_end - cur.cur.index());
            sim_detail::executeRange(cur.cur, *cores[pick], run_end,
                                     [](size_t) {});
        }

        if (cur.cur.atEnd() && !cur.done && !sync.blocked(pick)) {
            cur.done = true;
            --live;
            const double now = cores[pick]->now() * scale[pick];
            close_activity(pick, now);
            result.threads[pick].finishTime = now;
            handle_releases(sync.finish(pick, now));
        }
    }

    sim_detail::finalizeResult(
        result, cfg, num_threads,
        [&](uint32_t t) -> ColumnarCore & { return *cores[t]; },
        [&](uint32_t t) { return preds[t]->stats(); },
        [&](uint32_t t) { return hierarchy.coreStats(t); });
    return result;
}

} // namespace

SimResult
simulate(const ColumnarTrace &trace, const MulticoreConfig &cfg,
         const SimOptions &opts)
{
    trace.validateColumnConsistency();
    cfg.validate();
    RPPM_REQUIRE(opts.quantum > 0, "scheduler quantum must be positive");
    const unsigned jobs = resolveJobs(opts.jobs);
    // The parallel engine shards cache replay by line, which requires
    // the hierarchy to be time-free: bus queueing (memBusCycles > 0)
    // couples access latency to global time, so those configs stay on
    // the sequential engine. Single-threaded traces have nothing to
    // overlap either.
    if (jobs > 1 && trace.numThreads() > 1 && cfg.memBusCycles == 0)
        return sim_detail::simulateParallelImpl(trace, cfg, opts, jobs);
    return simulateColumnarSequential(trace, cfg, opts);
}

} // namespace rppm

/**
 * @file
 * Parallel epoch-sharded simulator engine — bit-identical to the
 * sequential engines for every job count.
 *
 * The sequential simulator interleaves threads with a round-robin
 * quantum scheduler whose blocking decisions depend only on event
 * *order*, never on event times (SyncState blocks on "is the child
 * finished", "have all barrier participants arrived", "is the mutex
 * held", "is the queue empty" — all order-determined); only release
 * *times* carry clock values. That makes the whole global interleaving
 * replayable from the sparse sync columns alone, exactly like the
 * parallel profiler (profile/profiler_parallel.cc), and the engine
 * decomposes into phases whose parallel grains are independent by
 * construction:
 *
 *  A. Index    (parallel, one task per thread) Memory and L1I-miss
 *              prefix counts per record, plus the exact list of L1I
 *              miss positions: private L1I state depends only on the
 *              thread's own fetch stream (it is never invalidated and
 *              data accesses never touch it), so it replays
 *              thread-locally on a private Cache replica.
 *  B. Schedule (sequential, cheap) The sync-column replay of the
 *              round-robin quantum scheduler: the same SyncState
 *              machine as the real engines on a step clock, emitting
 *              the global run list (with the global hierarchy-op
 *              sequence number each run starts at), the global event
 *              list, and per-thread pause flags for phase D.
 *  C. Resolve  (parallel) Each thread converts its runs into entries
 *              (data access or L1I miss fill) bucketed by cache-set
 *              shard; each shard then merges its entries by global
 *              sequence number and replays them through a full-size
 *              private SimHierarchy replica. Set index = line mod sets,
 *              and the shard count divides every cache's set count, so
 *              lines of different shards never share a cache set — each
 *              replica computes exactly the hits, latencies and stats
 *              the sequential hierarchy would. (This requires the
 *              hierarchy to be time-free, hence the memBusCycles == 0
 *              dispatch gate.) Results scatter into per-thread arrays
 *              by access ordinal; stats sum across shards.
 *  D. Execute  (parallel waves) Each thread's CoreModel consumes its
 *              records with memory results served from the phase-C
 *              arrays, running free through every event whose
 *              continuation depends only on its own clock and pausing
 *              at events that may need cross-thread release times
 *              (blocking events, barriers, joins, queue pops). A
 *              sequential driver applies the recorded event times to a
 *              real SyncState in phase-B global order and routes
 *              release times back, waking threads in waves.
 *
 * Nothing is approximated: phase B pins the exact interleaving, phase C
 * replays the exact hierarchy access sequence, and phase D issues the
 * exact per-thread call sequence of the sequential engine — so results
 * are byte-identical, which tests/test_sim_parallel.cc asserts against
 * simulateLegacy() on the whole workload suite for several job counts.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/assert.hh"
#include "common/parallel.hh"
#include "sim/sim_hierarchy.hh"
#include "sim/sim_internal.hh"
#include "sim/simulator.hh"
#include "sim/sync_state.hh"

namespace rppm {

namespace {

/** One scheduled run of micro-ops with at least one hierarchy op:
 *  records [start, end) of one thread, whose hierarchy accesses (L1I
 *  miss fills + data accesses) receive sequence numbers opSeqBase.. */
struct SchedRun
{
    uint64_t start;
    uint64_t end;
    uint64_t opSeqBase;
};

/** One global-order event: a non-marker sync record or a thread finish. */
struct SchedEvent
{
    uint32_t tid;
    uint32_t arg;
    SyncType type;
    uint8_t isFinish;
    uint8_t blocks;
};

/** Phase-B output: the pinned global interleaving. */
struct Schedule
{
    std::vector<std::vector<SchedRun>> runs;  ///< per thread, ascending
    std::vector<SchedEvent> events;           ///< global apply order
    /** Per thread, per non-marker sync event: must the phase-D worker
     *  pause there and wait for the driver? True for blocking events and
     *  for every event type whose continuation time can depend on other
     *  threads (barrier release, join return, queue-pop item time). */
    std::vector<std::vector<uint8_t>> pause;
};

/** Event types whose *non-blocking* outcome can still carry a release
 *  time computed from other threads' clocks. */
bool
mayPauseType(SyncType type)
{
    return type == SyncType::BarrierWait ||
        type == SyncType::CondBarrier || type == SyncType::ThreadJoin ||
        type == SyncType::QueuePop;
}

/** One hierarchy access routed to a cache-set shard (phase C). */
struct ReplayEntry
{
    uint64_t opSeq;   ///< global hierarchy-op sequence number
    uint64_t addr;    ///< byte address (data) or PC (miss fill)
    uint32_t ordinal; ///< index into the thread's result array
    uint8_t kind;     ///< 0 = load, 1 = store, 2 = L1I miss fill
};

constexpr uint8_t kLoad = 0;
constexpr uint8_t kStore = 1;
constexpr uint8_t kFetchFill = 2;

/**
 * Phase B: replay the engines' round-robin quantum scheduler from the
 * sync columns and the phase-A prefix counts. Mirrors the sequential
 * loop exactly (same pick rotation, same quantum accounting, same
 * blocking machine, same finish rule) minus all per-record work; the
 * step clock stands in for real time, which is sound because SyncState's
 * blocking decisions are order-only.
 */
Schedule
replaySchedule(const ColumnarTrace &trace, const SimOptions &opts,
               const std::vector<std::vector<uint32_t>> &memPrefix,
               const std::vector<std::vector<uint32_t>> &missPrefix,
               const std::unordered_map<uint32_t, uint32_t> &barriers)
{
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());
    SyncState sync(num_threads, barriers);

    struct Cur
    {
        size_t next = 0;
        size_t syncIdx = 0;
        bool done = false;
    };
    std::vector<Cur> cur(num_threads);
    Schedule sched;
    sched.runs.resize(num_threads);
    sched.pause.resize(num_threads);

    uint64_t op_seq = 0;
    uint64_t step = 0;
    uint32_t live = num_threads;
    uint32_t cursor = 0;
    while (live > 0) {
        uint32_t pick = UINT32_MAX;
        for (uint32_t i = 0; i < num_threads; ++i) {
            const uint32_t t = (cursor + i) % num_threads;
            if (!cur[t].done && !sync.blocked(t)) {
                pick = t;
                break;
            }
        }
        RPPM_REQUIRE(pick != UINT32_MAX,
                     "deadlock: no runnable thread (malformed trace)");
        cursor = (pick + 1) % num_threads;

        Cur &ts = cur[pick];
        const ThreadColumns &cols = trace.threads[pick];
        const size_t num_records = cols.numRecords();
        uint32_t executed = 0;
        while (ts.next < num_records && executed < opts.quantum) {
            const size_t next_sync = ts.syncIdx < cols.syncPos.size() ?
                static_cast<size_t>(cols.syncPos[ts.syncIdx]) : num_records;
            if (ts.next == next_sync) {
                const SyncType type = cols.syncType[ts.syncIdx];
                const uint32_t arg = cols.syncArg[ts.syncIdx];
                ++ts.syncIdx;
                ++ts.next;
                ++executed;
                ++step;
                if (type == SyncType::CondMarker)
                    continue;
                TraceRecord rec;
                rec.sync = type;
                rec.syncArg = arg;
                const SyncOutcome out =
                    sync.apply(pick, rec, static_cast<double>(step));
                sched.events.push_back(SchedEvent{
                    pick, arg, type, 0,
                    static_cast<uint8_t>(out.blocks ? 1 : 0)});
                sched.pause[pick].push_back(
                    out.blocks || mayPauseType(type) ? 1 : 0);
                if (out.blocks)
                    break;
                continue;
            }
            const size_t run_end = std::min(
                next_sync, ts.next + (opts.quantum - executed));
            const size_t run = run_end - ts.next;
            const uint64_t ops =
                (memPrefix[pick][run_end] - memPrefix[pick][ts.next]) +
                (missPrefix[pick][run_end] - missPrefix[pick][ts.next]);
            if (ops > 0) {
                sched.runs[pick].push_back(
                    SchedRun{ts.next, run_end, op_seq});
                op_seq += ops;
            }
            ts.next = run_end;
            step += run;
            executed += static_cast<uint32_t>(run);
        }
        if (ts.next >= num_records && !ts.done && !sync.blocked(pick)) {
            ts.done = true;
            --live;
            sched.events.push_back(
                SchedEvent{pick, 0, SyncType::None, 1, 0});
            sync.finish(pick, static_cast<double>(step));
        }
    }
    return sched;
}

/**
 * Memory system replaying pre-resolved results (phase D). Data accesses
 * consume the thread's AccessResult array in record order; instruction
 * fetches return the pre-resolved stall exactly at the recorded L1I
 * miss positions (the walker announces the current record index, since
 * execute-call counts do not align with record indices across sync
 * slots) and 0 everywhere else. A concrete (non-virtual) type so the
 * phase-D CoreModelT instantiation dispatches to it directly.
 */
class ArrayMemory
{
  public:
    ArrayMemory(const std::vector<AccessResult> &data_res,
                const std::vector<uint64_t> &miss_rec_idx,
                const std::vector<uint32_t> &miss_stalls)
        : dataRes_(data_res), missRecIdx_(miss_rec_idx),
          missStalls_(miss_stalls)
    {}

    AccessResult
    dataAccess(uint64_t /*addr*/, bool /*is_write*/, double /*now*/)
    {
        return dataRes_[memIdx_++];
    }

    uint32_t
    instrFetch(uint64_t /*pc*/)
    {
        if (missCursor_ < missRecIdx_.size() &&
            missRecIdx_[missCursor_] == recIdx_) {
            return missStalls_[missCursor_++];
        }
        return 0;
    }

    void atRecord(size_t i) { recIdx_ = i; }

  private:
    const std::vector<AccessResult> &dataRes_;
    const std::vector<uint64_t> &missRecIdx_;
    const std::vector<uint32_t> &missStalls_;
    size_t memIdx_ = 0;
    size_t missCursor_ = 0;
    uint64_t recIdx_ = 0;
};

/** Statically-dispatched core model used by phase D. */
using ParallelCore = CoreModelT<ArrayMemory, sim_detail::BranchAdapter>;

/** Largest power of two dividing @p x (x > 0). */
uint32_t
lowPow2(uint32_t x)
{
    return x & (~x + 1);
}

void
addMemStats(CoreMemStats &into, const CoreMemStats &from)
{
    into.l1iAccesses += from.l1iAccesses;
    into.l1iMisses += from.l1iMisses;
    into.l1dAccesses += from.l1dAccesses;
    into.l1dMisses += from.l1dMisses;
    into.l2Accesses += from.l2Accesses;
    into.l2Misses += from.l2Misses;
    into.llcAccesses += from.llcAccesses;
    into.llcMisses += from.llcMisses;
    into.coherenceMisses += from.coherenceMisses;
    into.invalidationsReceived += from.invalidationsReceived;
}

} // namespace

SimResult
sim_detail::simulateParallelImpl(const ColumnarTrace &trace,
                                 const MulticoreConfig &cfg,
                                 const SimOptions &opts, unsigned jobs)
{
    const uint32_t num_threads = static_cast<uint32_t>(trace.numThreads());
    const ParallelExecutor pool(jobs);
    const MulticoreConfig hier_cfg =
        sim_detail::expandedHierConfig(cfg, num_threads);
    RPPM_ASSERT(hier_cfg.memBusCycles == 0);
    const std::unordered_map<uint32_t, uint32_t> barriers =
        trace.validateAndBarrierPopulations();

    std::vector<double> scale(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
        scale[t] = cfg.threadTimeScale(t);

    // --- Phase A: per-thread prefix counts and private L1I replay.
    std::vector<std::vector<uint32_t>> memPrefix(num_threads);
    std::vector<std::vector<uint32_t>> missPrefix(num_threads);
    std::vector<std::vector<uint64_t>> missRecIdx(num_threads);
    pool.forEach(num_threads, [&](size_t t) {
        const ThreadColumns &cols = trace.threads[t];
        const size_t num_records = cols.numRecords();
        RPPM_REQUIRE(num_records < UINT32_MAX,
                     "trace thread exceeds 2^32 records");
        SimCache l1i(hier_cfg.cores[t].l1i);
        std::vector<uint32_t> &mem = memPrefix[t];
        std::vector<uint32_t> &miss = missPrefix[t];
        mem.resize(num_records + 1);
        miss.resize(num_records + 1);
        uint32_t mem_count = 0;
        uint32_t miss_count = 0;
        size_t sync_idx = 0;
        for (size_t i = 0; i < num_records; ++i) {
            mem[i] = mem_count;
            miss[i] = miss_count;
            const size_t next_sync = sync_idx < cols.syncPos.size() ?
                static_cast<size_t>(cols.syncPos[sync_idx]) : num_records;
            if (i == next_sync) {
                ++sync_idx;
                continue;
            }
            if (!l1i.access(cols.pc[i], false)) {
                missRecIdx[t].push_back(i);
                ++miss_count;
            }
            if (isMemory(cols.op[i]))
                ++mem_count;
        }
        mem[num_records] = mem_count;
        miss[num_records] = miss_count;
    });

    // --- Phase B: schedule replay (sequential, O(#runs + #sync)).
    const Schedule sched =
        replaySchedule(trace, opts, memPrefix, missPrefix, barriers);

    // --- Phase C: shard-bucketed hierarchy replay.
    // The shard count must divide every cache's set count so that lines
    // of different shards can never share a set (set index = line mod
    // sets); under that condition a full-size replica replaying only its
    // shard's entries is exactly the sequential hierarchy restricted to
    // those sets. The count itself is pure execution policy.
    uint32_t shardable = lowPow2(hier_cfg.llc.numSets());
    for (const CoreConfig &core : hier_cfg.cores) {
        shardable = std::min(shardable, lowPow2(core.l1d.numSets()));
        shardable = std::min(shardable, lowPow2(core.l2.numSets()));
    }
    uint32_t target = 1;
    while (target < 4 * jobs && target < 16)
        target *= 2;
    const uint32_t num_shards = std::min(shardable, target);
    const uint64_t line_bytes = hier_cfg.llc.lineBytes;

    std::vector<std::vector<std::vector<ReplayEntry>>> buckets(num_threads);
    pool.forEach(num_threads, [&](size_t t) {
        const ThreadColumns &cols = trace.threads[t];
        auto &mine = buckets[t];
        mine.resize(num_shards);
        const size_t expect =
            (cols.addr.size() + missRecIdx[t].size()) / num_shards + 16;
        for (auto &bucket : mine)
            bucket.reserve(expect);
        size_t miss_ptr = 0;
        for (const SchedRun &run : sched.runs[t]) {
            while (miss_ptr < missRecIdx[t].size() &&
                   missRecIdx[t][miss_ptr] < run.start) {
                ++miss_ptr;
            }
            uint32_t mem_idx = memPrefix[t][run.start];
            uint64_t op_seq = run.opSeqBase;
            for (size_t i = run.start; i < run.end; ++i) {
                // The core fetches before it issues the data access.
                if (miss_ptr < missRecIdx[t].size() &&
                    missRecIdx[t][miss_ptr] == i) {
                    const uint64_t pc = cols.pc[i];
                    mine[(pc / line_bytes) & (num_shards - 1)].push_back(
                        ReplayEntry{op_seq++, pc,
                                    static_cast<uint32_t>(miss_ptr),
                                    kFetchFill});
                    ++miss_ptr;
                }
                const OpClass op = cols.op[i];
                if (!isMemory(op))
                    continue;
                const uint64_t a = cols.addr[mem_idx];
                mine[(a / line_bytes) & (num_shards - 1)].push_back(
                    ReplayEntry{op_seq++, a, mem_idx,
                                op == OpClass::Store ? kStore : kLoad});
                ++mem_idx;
            }
        }
    });

    std::vector<std::vector<AccessResult>> dataRes(num_threads);
    std::vector<std::vector<uint32_t>> missStalls(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
        dataRes[t].resize(trace.threads[t].addr.size());
        missStalls[t].resize(missRecIdx[t].size());
    }
    std::vector<std::unique_ptr<SimHierarchy>> shardHiers(num_shards);
    pool.forEach(num_shards, [&](size_t s) {
        uint64_t shard_total = 0;
        for (uint32_t t = 0; t < num_threads; ++t)
            shard_total += buckets[t][s].size();
        if (shard_total == 0)
            return;
        // shard_total counts this shard's hierarchy operations — an
        // upper bound on its distinct lines, pre-sizing the directory.
        shardHiers[s] = std::make_unique<SimHierarchy>(hier_cfg,
                                                       shard_total);
        SimHierarchy &hier = *shardHiers[s];

        // Deterministic merge of the per-thread entry lists by global
        // sequence number (each list is already ascending; opSeq values
        // are globally unique): exactly the order in which the
        // sequential engine performs these hierarchy operations.
        std::vector<size_t> at(num_threads, 0);
        for (uint64_t n = 0; n < shard_total; ++n) {
            uint32_t tid = UINT32_MAX;
            uint64_t best = UINT64_MAX;
            for (uint32_t t = 0; t < num_threads; ++t) {
                if (at[t] < buckets[t][s].size() &&
                    buckets[t][s][at[t]].opSeq < best) {
                    best = buckets[t][s][at[t]].opSeq;
                    tid = t;
                }
            }
            const ReplayEntry &e = buckets[tid][s][at[tid]++];
            // Software-prefetch a few entries down the winning thread's
            // list — the likeliest near-future probes of this shard's
            // replica. No architectural effect.
            if (at[tid] + 7 < buckets[tid][s].size())
                hier.prefetchData(tid, buckets[tid][s][at[tid] + 7].addr);
            if (e.kind == kFetchFill) {
                missStalls[tid][e.ordinal] =
                    hier.instrMissFill(tid, e.addr);
            } else {
                dataRes[tid][e.ordinal] =
                    hier.dataAccess(tid, e.addr, e.kind == kStore, 0.0);
            }
        }
    });
    buckets.clear();
    buckets.shrink_to_fit();

    // --- Phase D: per-thread core models in waves.
    SimResult result;
    result.workload = trace.name;
    result.config = cfg.name;
    result.threads.resize(num_threads);

    struct ThreadSim
    {
        explicit ThreadSim(const ThreadColumns &cols) : cur(cols) {}

        ColumnCursor cur;
        std::unique_ptr<TournamentPredictor> pred;
        std::unique_ptr<sim_detail::BranchAdapter> ba;
        std::unique_ptr<ArrayMemory> mem;
        std::unique_ptr<ParallelCore> core;
        double activeStart = 0.0;
        std::vector<double> eventNow;
        bool done = false;
        bool hasResume = false;
        double resumeAt = 0.0;
    };
    std::vector<ThreadSim> sims;
    sims.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
        ThreadSim ts(trace.threads[t]);
        const CoreConfig &tc = cfg.threadCore(t);
        ts.pred = std::make_unique<TournamentPredictor>(tc.branch);
        ts.ba = std::make_unique<sim_detail::BranchAdapter>(*ts.pred);
        ts.mem = std::make_unique<ArrayMemory>(dataRes[t], missRecIdx[t],
                                               missStalls[t]);
        ts.core = std::make_unique<ParallelCore>(tc, *ts.mem, *ts.ba);
        sims.push_back(std::move(ts));
    }

    // Run one thread until it finishes or reaches an event where it must
    // wait for the driver. Each wave's workers touch only their own
    // ThreadSim and result.threads slot (index-disjoint), and the driver
    // runs strictly between waves (forEach joins its workers), so no
    // state is concurrently shared.
    auto advanceThread = [&](uint32_t t) {
        ThreadSim &ts = sims[t];
        ParallelCore &core = *ts.core;
        if (ts.hasResume) {
            core.idleUntil(ts.resumeAt / scale[t]);
            ts.activeStart = ts.resumeAt;
            ts.hasResume = false;
        }
        while (true) {
            if (ts.cur.atEnd()) {
                const double now = core.now() * scale[t];
                if (now > ts.activeStart) {
                    result.threads[t].activity.push_back(
                        {ts.activeStart, now});
                }
                result.threads[t].finishTime = now;
                ts.eventNow.push_back(now);
                ts.done = true;
                return;
            }
            if (ts.cur.atSync()) {
                const SyncType type = ts.cur.syncType();
                ts.cur.advance();
                if (type == SyncType::CondMarker)
                    continue;
                core.syncOverhead(opts.syncOpCost);
                const double now = core.now() * scale[t];
                if (now > ts.activeStart) {
                    result.threads[t].activity.push_back(
                        {ts.activeStart, now});
                }
                ts.activeStart = now;
                const size_t idx = ts.eventNow.size();
                ts.eventNow.push_back(now);
                if (sched.pause[t][idx])
                    return;
                continue;
            }
            sim_detail::executeRange(
                ts.cur, core, ts.cur.nextSyncPos(),
                [&](size_t i) { ts.mem->atRecord(i); });
        }
    };

    // The driver: apply the recorded event times to a real SyncState in
    // phase-B global order, routing release times back to the waiting
    // workers. An event can be applied once its owner has recorded its
    // time; a wave ends when the next event's owner still has to run.
    SyncState syncD(num_threads, barriers);
    std::vector<size_t> ownApplied(num_threads, 0);
    size_t applied = 0;
    std::vector<uint32_t> runnable;
    runnable.push_back(0); // all other threads block until created
    while (applied < sched.events.size()) {
        RPPM_ASSERT(!runnable.empty());
        pool.forEach(runnable.size(),
                     [&](size_t i) { advanceThread(runnable[i]); });
        runnable.clear();
        while (applied < sched.events.size()) {
            const SchedEvent &e = sched.events[applied];
            ThreadSim &ts = sims[e.tid];
            if (ownApplied[e.tid] >= ts.eventNow.size())
                break;
            const double now = ts.eventNow[ownApplied[e.tid]];
            SyncOutcome out;
            if (e.isFinish != 0) {
                out = syncD.finish(e.tid, now);
            } else {
                TraceRecord rec;
                rec.sync = e.type;
                rec.syncArg = e.arg;
                out = syncD.apply(e.tid, rec, now);
                RPPM_ASSERT(out.blocks == (e.blocks != 0));
            }
            bool self_released = false;
            for (const auto &[tid2, when] : out.released) {
                ThreadSim &os = sims[tid2];
                os.hasResume = true;
                os.resumeAt = when;
                if (tid2 == e.tid)
                    self_released = true;
                runnable.push_back(tid2);
            }
            // A thread paused at a non-blocking event with no release
            // (join of an already-past child, pop of an already-pushed
            // item) just continues with its own clock.
            if (e.isFinish == 0 && e.blocks == 0 && !self_released &&
                sched.pause[e.tid][ownApplied[e.tid]] != 0) {
                runnable.push_back(e.tid);
            }
            ++ownApplied[e.tid];
            ++applied;
        }
    }

    // --- Assembly: shard stats summed per thread, L1I stats from the
    // phase-A replay (order-free integer sums).
    std::vector<CoreMemStats> memStats(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
        for (uint32_t s = 0; s < num_shards; ++s) {
            if (shardHiers[s])
                addMemStats(memStats[t], shardHiers[s]->coreStats(t));
        }
        memStats[t].l1iAccesses = trace.threads[t].numOps();
        memStats[t].l1iMisses = missRecIdx[t].size();
    }

    sim_detail::finalizeResult(
        result, cfg, num_threads,
        [&](uint32_t t) -> ParallelCore & { return *sims[t].core; },
        [&](uint32_t t) { return sims[t].pred->stats(); },
        [&](uint32_t t) { return memStats[t]; });
    return result;
}

} // namespace rppm

#include "sim/sync_state.hh"

#include <algorithm>
#include <set>

#include "common/assert.hh"

namespace rppm {

std::unordered_map<uint32_t, uint32_t>
barrierPopulations(const WorkloadTrace &trace)
{
    // Map: barrier id -> set of threads referencing it. Classic barriers
    // and condvar-implemented barriers share one id space with queues and
    // mutexes kept separate, so only count the barrier-like types.
    std::unordered_map<uint32_t, std::set<uint32_t>> users;
    for (uint32_t tid = 0; tid < trace.numThreads(); ++tid) {
        for (const auto &rec : trace.threads[tid].records) {
            if (rec.sync == SyncType::BarrierWait ||
                rec.sync == SyncType::CondBarrier) {
                users[rec.syncArg].insert(tid);
            }
        }
    }
    std::unordered_map<uint32_t, uint32_t> population;
    // rppm-lint: ordered-ok(distinct key per id; content order-free)
    for (const auto &[id, tids] : users)
        population[id] = static_cast<uint32_t>(tids.size());
    return population;
}

SyncState::SyncState(uint32_t num_threads,
                     std::unordered_map<uint32_t, uint32_t> barrier_population)
    : numThreads_(num_threads),
      barrierPopulation_(std::move(barrier_population)),
      finished_(num_threads, false),
      blocked_(num_threads, false),
      finishTime_(num_threads, 0.0)
{
    // All threads except main start blocked until created.
    for (uint32_t t = 1; t < num_threads; ++t)
        blocked_[t] = true;
}

uint32_t
SyncState::barrierPopulation(uint32_t id) const
{
    auto it = barrierPopulation_.find(id);
    RPPM_ASSERT(it != barrierPopulation_.end());
    return it->second;
}

SyncOutcome
SyncState::apply(uint32_t tid, const TraceRecord &rec, double now)
{
    RPPM_ASSERT(tid < numThreads_);
    SyncOutcome out;

    switch (rec.sync) {
      case SyncType::ThreadCreate: {
        const uint32_t child = rec.syncArg;
        RPPM_ASSERT(child < numThreads_ && blocked_[child]);
        blocked_[child] = false;
        out.released.emplace_back(child, now);
        break;
      }

      case SyncType::ThreadJoin: {
        const uint32_t child = rec.syncArg;
        RPPM_ASSERT(child < numThreads_);
        if (!finished_[child]) {
            out.blocks = true;
            blocked_[tid] = true;
            pendingJoins_[tid] = child;
            joinWaiters_[child].push_back(tid);
        } else if (finishTime_[child] > now) {
            // The child's symbolic timeline already ran to completion,
            // but in wall-clock time it finishes later than the joiner's
            // arrival: the join returns at the child's finish time.
            out.released.emplace_back(tid, finishTime_[child]);
        }
        break;
      }

      case SyncType::BarrierWait:
      case SyncType::CondBarrier: {
        auto &table = rec.sync == SyncType::BarrierWait ?
            barriers_ : condBarriers_;
        Barrier &bar = table[rec.syncArg];
        const uint32_t population = barrierPopulation(rec.syncArg);
        ++bar.arrived;
        bar.maxArrival = std::max(bar.maxArrival, now);
        if (bar.arrived < population) {
            out.blocks = true;
            blocked_[tid] = true;
            bar.waiters.push_back(tid);
        } else {
            // All participants have arrived. The barrier opens at the
            // *latest arrival time* — with coarse symbolic time steps the
            // final apply() is not necessarily the latest arrival, so the
            // release time must be the max. The arriving thread is
            // included in the release list so the caller advances it too.
            const double release = bar.maxArrival;
            for (uint32_t w : bar.waiters) {
                blocked_[w] = false;
                out.released.emplace_back(w, release);
            }
            out.released.emplace_back(tid, release);
            bar.arrived = 0;
            bar.maxArrival = 0.0;
            bar.waiters.clear();
        }
        break;
      }

      case SyncType::MutexLock: {
        Mutex &mtx = mutexes_[rec.syncArg];
        if (mtx.held) {
            out.blocks = true;
            blocked_[tid] = true;
            mtx.waiters.push_back(tid);
        } else {
            mtx.held = true;
            mtx.owner = tid;
        }
        break;
      }

      case SyncType::MutexUnlock: {
        Mutex &mtx = mutexes_[rec.syncArg];
        RPPM_ASSERT(mtx.held && mtx.owner == tid);
        if (mtx.waiters.empty()) {
            mtx.held = false;
        } else {
            // Hand the lock to the first waiter (arrival order).
            const uint32_t next = mtx.waiters.front();
            mtx.waiters.pop_front();
            mtx.owner = next;
            blocked_[next] = false;
            out.released.emplace_back(next, now);
        }
        break;
      }

      case SyncType::QueuePush: {
        Queue &q = queues_[rec.syncArg];
        if (!q.waiters.empty()) {
            const uint32_t consumer = q.waiters.front();
            q.waiters.pop_front();
            blocked_[consumer] = false;
            out.released.emplace_back(consumer, now);
        } else {
            q.itemTimes.push_back(now);
        }
        break;
      }

      case SyncType::QueuePop: {
        Queue &q = queues_[rec.syncArg];
        if (q.itemTimes.empty()) {
            out.blocks = true;
            blocked_[tid] = true;
            q.waiters.push_back(tid);
        } else {
            // Consume the oldest item; the caller advances this thread
            // to the item's push time if that lies in its future.
            const double produced = q.itemTimes.front();
            q.itemTimes.pop_front();
            if (produced > now)
                out.released.emplace_back(tid, produced);
        }
        break;
      }

      case SyncType::CondMarker:
        // Profiling-only marker; no runtime effect.
        break;

      default:
        RPPM_PANIC("unhandled sync type in SyncState::apply");
    }
    return out;
}

SyncOutcome
SyncState::finish(uint32_t tid, double now)
{
    RPPM_ASSERT(tid < numThreads_ && !finished_[tid]);
    SyncOutcome out;
    finished_[tid] = true;
    finishTime_[tid] = now;
    auto it = joinWaiters_.find(tid);
    if (it != joinWaiters_.end()) {
        for (uint32_t joiner : it->second) {
            blocked_[joiner] = false;
            pendingJoins_.erase(joiner);
            out.released.emplace_back(joiner, now);
        }
        joinWaiters_.erase(it);
    }
    return out;
}

} // namespace rppm

/**
 * @file
 * Dynamic synchronization semantics shared by the simulator.
 *
 * SyncState tracks barriers, mutexes, condvar-implemented barriers,
 * producer-consumer queues and thread create/join at runtime. The
 * simulator consults it while interleaving threads; who blocks depends on
 * dynamic arrival order, which is exactly the microarchitecture-dependent
 * behaviour RPPM has to predict from a microarchitecture-independent
 * profile.
 */

#ifndef RPPM_SIM_SYNC_STATE_HH
#define RPPM_SIM_SYNC_STATE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "trace/trace.hh"

namespace rppm {

/** Result of presenting a sync event to SyncState. */
struct SyncOutcome
{
    bool blocks = false;         ///< thread must wait
    /** Threads released by this event (tid, release time). */
    std::vector<std::pair<uint32_t, double>> released;
};

/**
 * Runtime synchronization state machine.
 *
 * All times are global simulated cycles. The caller (simulator or model)
 * is responsible for advancing thread clocks; SyncState only decides who
 * blocks and who wakes when.
 */
class SyncState
{
  public:
    /**
     * @param num_threads total thread count
     * @param barrier_population participants per barrier id (both classic
     *        and condvar-implemented barriers), precomputed from the trace
     */
    SyncState(uint32_t num_threads,
              std::unordered_map<uint32_t, uint32_t> barrier_population);

    /**
     * Present sync event @p rec by thread @p tid at time @p now.
     * The outcome lists any threads released at their release times.
     */
    SyncOutcome apply(uint32_t tid, const TraceRecord &rec, double now);

    /** Mark thread @p tid finished at @p now; may release joiners. */
    SyncOutcome finish(uint32_t tid, double now);

    /** True if @p tid has finished its trace. */
    bool finished(uint32_t tid) const { return finished_[tid]; }

    /** True if @p tid currently blocked. */
    bool blocked(uint32_t tid) const { return blocked_[tid]; }

    /** Number of participants for barrier/condbarrier @p id. */
    uint32_t barrierPopulation(uint32_t id) const;

  private:
    struct Barrier
    {
        uint32_t arrived = 0;
        double maxArrival = 0.0;
        std::vector<uint32_t> waiters;
    };
    struct Mutex
    {
        bool held = false;
        uint32_t owner = 0;
        std::deque<uint32_t> waiters;
    };
    struct Queue
    {
        /** Push time of each buffered item: a consumer cannot observe an
         *  item before it was produced, even when coarse symbolic time
         *  steps apply the pop "earlier" than the push. */
        std::deque<double> itemTimes;
        std::deque<uint32_t> waiters;
    };

    uint32_t numThreads_;
    std::unordered_map<uint32_t, uint32_t> barrierPopulation_;
    std::unordered_map<uint32_t, Barrier> barriers_;
    std::unordered_map<uint32_t, Barrier> condBarriers_;
    std::unordered_map<uint32_t, Mutex> mutexes_;
    std::unordered_map<uint32_t, Queue> queues_;
    std::vector<bool> finished_;
    std::vector<bool> blocked_;
    std::vector<double> finishTime_;
    /** joiner tid -> joined tid for threads blocked in join. */
    std::unordered_map<uint32_t, uint32_t> pendingJoins_;
    /** joined tid -> waiting joiners. */
    std::unordered_map<uint32_t, std::vector<uint32_t>> joinWaiters_;
};

/**
 * Scan a trace and count, per barrier-like object id, how many threads
 * reference it. Used to size barrier populations for both the simulator
 * and the model's symbolic execution.
 */
std::unordered_map<uint32_t, uint32_t>
barrierPopulations(const WorkloadTrace &trace);

} // namespace rppm

#endif // RPPM_SIM_SYNC_STATE_HH

#include "simcore/core_model.hh"

#include <algorithm>
#include <cmath>

#include "common/assert.hh"

namespace rppm {

const char *
cpiComponentName(CpiComponent comp)
{
    switch (comp) {
      case CpiComponent::Base:    return "base";
      case CpiComponent::Branch:  return "branch";
      case CpiComponent::ICache:  return "icache";
      case CpiComponent::MemL2:   return "mem-L2";
      case CpiComponent::MemLLC:  return "mem-LLC";
      case CpiComponent::MemDram: return "mem-dram";
      case CpiComponent::Sync:    return "sync";
      default:                    return "unknown";
    }
}

double
CpiStack::total() const
{
    double sum = 0.0;
    for (double c : cycles)
        sum += c;
    return sum;
}

double
CpiStack::memTotal() const
{
    return (*this)[CpiComponent::MemL2] + (*this)[CpiComponent::MemLLC] +
        (*this)[CpiComponent::MemDram];
}

void
CpiStack::add(const CpiStack &other)
{
    for (size_t i = 0; i < cycles.size(); ++i)
        cycles[i] += other.cycles[i];
}

void
CpiStack::scale(double f)
{
    for (double &c : cycles)
        c *= f;
}

namespace {

/** History depth for dependence lookups; deps are capped to this range. */
constexpr uint64_t kHistory = 1024;

} // namespace

CoreModel::CoreModel(const CoreConfig &cfg, MemorySystemIf &mem,
                     BranchPredictorIf &branch)
    : cfg_(cfg), mem_(mem), branch_(branch)
{
    RPPM_REQUIRE(cfg_.robSize <= kHistory,
                 "ROB larger than the model's history window");
    completion_.assign(kHistory, 0.0);
    issue_.assign(kHistory, 0.0);
    retire_.assign(kHistory, 0.0);
    mshrFree_.assign(std::max<uint32_t>(cfg_.mshrs, 1), 0.0);
    for (size_t c = 0; c < kNumOpClasses; ++c) {
        fuFree_[c].assign(std::max<uint32_t>(cfg_.fus[c].count, 1), 0.0);
    }
}

double
CoreModel::completionOf(uint64_t idx) const
{
    return completion_[idx % kHistory];
}

double
CoreModel::dispatchOne(double earliest)
{
    // Dispatch groups of up to dispatchWidth ops per front-end cycle.
    earliest = std::ceil(earliest);
    if (earliest > dispatchCycle_) {
        dispatchCycle_ = earliest;
        dispatchedInCycle_ = 0;
    }
    if (dispatchedInCycle_ >= cfg_.dispatchWidth) {
        dispatchCycle_ += 1.0;
        dispatchedInCycle_ = 0;
    }
    ++dispatchedInCycle_;
    return dispatchCycle_;
}

void
CoreModel::execute(const TraceRecord &rec)
{
    RPPM_ASSERT(!rec.isSync());
    const uint64_t i = numOps_;

    // --- Front end: I-cache, then dispatch constraints. ---
    const uint32_t fetch_stall = mem_.instrFetch(rec.pc);
    if (fetch_stall > 0) {
        dispatchCycle_ += static_cast<double>(fetch_stall);
        dispatchedInCycle_ = 0;
        stack_[CpiComponent::ICache] += static_cast<double>(fetch_stall);
    }

    double earliest = 0.0;
    // ROB: the op robSize back must have retired.
    if (i >= cfg_.robSize)
        earliest = std::max(earliest, retire_[(i - cfg_.robSize) % kHistory]);
    // Issue queue: the op issueQueueSize back must have issued.
    if (i >= cfg_.issueQueueSize) {
        earliest =
            std::max(earliest, issue_[(i - cfg_.issueQueueSize) % kHistory]);
    }
    const double dispatch = dispatchOne(earliest);

    // --- Issue: dependences, FU contention, MSHRs. ---
    double ready = dispatch + 1.0; // minimum dispatch-to-issue delay
    if (rec.dep1 > 0 && rec.dep1 <= i && rec.dep1 < kHistory)
        ready = std::max(ready, completionOf(i - rec.dep1));
    if (rec.dep2 > 0 && rec.dep2 <= i && rec.dep2 < kHistory)
        ready = std::max(ready, completionOf(i - rec.dep2));

    const size_t cls = static_cast<size_t>(rec.op);
    auto &fus = fuFree_[cls];
    auto unit = std::min_element(fus.begin(), fus.end());
    double issue = std::max(ready, *unit);

    const FuConfig &fu = cfg_.fus[cls];
    double latency = static_cast<double>(fu.latency);

    if (rec.op == OpClass::Load) {
        // MSHR limit: a new miss cannot issue before the oldest of the
        // last `mshrs` loads completed.
        const size_t slot = numLoads_ % mshrFree_.size();
        issue = std::max(issue, mshrFree_[slot]);
        const AccessResult res = mem_.dataAccess(rec.addr, false, issue);
        latency = static_cast<double>(res.latency);
        mshrFree_[slot] = issue + latency;
        ++numLoads_;

        // Interval-union accounting of load-miss stall so overlapping
        // misses (MLP) are not double counted.
        if (res.level != HitLevel::L1) {
            const double start = std::max(issue, memStallEnd_);
            const double end = issue + latency;
            if (end > start) {
                CpiComponent comp = CpiComponent::MemL2;
                if (res.level == HitLevel::LLC)
                    comp = CpiComponent::MemLLC;
                else if (res.level == HitLevel::Memory)
                    comp = CpiComponent::MemDram;
                stack_[comp] += end - start;
                memStallEnd_ = end;
            }
        }
    } else if (rec.op == OpClass::Store) {
        // Stores update cache state but retire through the store buffer;
        // they do not stall the window in this model.
        mem_.dataAccess(rec.addr, true, issue);
        latency = static_cast<double>(fu.latency);
    }

    *unit = issue + static_cast<double>(fu.interval);
    const double complete = issue + latency;

    // --- Branch resolution. ---
    if (rec.op == OpClass::Branch) {
        const bool correct = branch_.predictAndUpdate(rec.pc, rec.taken);
        if (!correct) {
            // Front end restarts after the branch executes plus the
            // pipeline refill time.
            const double redirect =
                complete + static_cast<double>(cfg_.frontendDepth);
            if (redirect > dispatchCycle_) {
                // Attribute only the time lost beyond what the back end
                // had already stalled anyway (e.g. a DRAM load at the
                // ROB head): cycles before lastRetire_ are charged to
                // their own cause by the memory accounting.
                const double lost =
                    redirect - std::max(dispatchCycle_, lastRetire_);
                if (lost > 0.0)
                    stack_[CpiComponent::Branch] += lost;
                dispatchCycle_ = redirect;
                dispatchedInCycle_ = 0;
            }
        }
    }

    // --- In-order retirement. ---
    const double retire = std::max(lastRetire_, complete);
    completion_[i % kHistory] = complete;
    issue_[i % kHistory] = issue;
    retire_[i % kHistory] = retire;
    lastRetire_ = retire;
    ++numOps_;
}

void
CoreModel::idleUntil(double t)
{
    if (t <= lastRetire_)
        return;
    const double gap = t - lastRetire_;
    stack_[CpiComponent::Sync] += gap;
    idleCycles_ += gap;
    lastRetire_ = t;
    dispatchCycle_ = std::max(dispatchCycle_, t);
    dispatchedInCycle_ = 0;
    // The window drains while blocked: all in-flight state resolves by t.
    for (auto &fus : fuFree_)
        for (double &f : fus)
            f = std::max(f, 0.0); // FUs are free once we resume
}

void
CoreModel::syncOverhead(double cycles)
{
    if (cycles <= 0.0)
        return;
    lastRetire_ += cycles;
    dispatchCycle_ = std::max(dispatchCycle_, lastRetire_);
    dispatchedInCycle_ = 0;
    // Synchronization instructions (atomics, futexes) are real work: they
    // appear in neither the base ILP stream nor the miss components, so
    // give them their own share of the base component.
    stack_[CpiComponent::Base] += cycles;
}

CpiStack
CoreModel::cpiStack() const
{
    CpiStack result = stack_;
    // Base is the remainder: total busy time not attributed to any miss
    // component. Attribution is approximate (branch penalties can overlap
    // memory stalls), so when the attributed components exceed the real
    // busy time, scale the non-sync components down to fit.
    const double sync = stack_[CpiComponent::Sync];
    const double attributed = stack_.total() - sync;
    const double busy = lastRetire_ - sync;
    if (attributed > busy && attributed > 0.0) {
        const double factor = std::max(0.0, busy) / attributed;
        for (size_t c = 0; c < kNumCpiComponents; ++c) {
            if (c != static_cast<size_t>(CpiComponent::Sync))
                result.cycles[c] *= factor;
        }
    } else {
        result[CpiComponent::Base] += busy - attributed;
    }
    return result;
}

double
CoreModel::activeCycles() const
{
    return lastRetire_ - idleCycles_;
}

} // namespace rppm

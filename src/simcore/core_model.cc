#include "simcore/core_model.hh"

namespace rppm {

const char *
cpiComponentName(CpiComponent comp)
{
    switch (comp) {
      case CpiComponent::Base:    return "base";
      case CpiComponent::Branch:  return "branch";
      case CpiComponent::ICache:  return "icache";
      case CpiComponent::MemL2:   return "mem-L2";
      case CpiComponent::MemLLC:  return "mem-LLC";
      case CpiComponent::MemDram: return "mem-dram";
      case CpiComponent::Sync:    return "sync";
      default:                    return "unknown";
    }
}

double
CpiStack::total() const
{
    double sum = 0.0;
    for (double c : cycles)
        sum += c;
    return sum;
}

double
CpiStack::memTotal() const
{
    return (*this)[CpiComponent::MemL2] + (*this)[CpiComponent::MemLLC] +
        (*this)[CpiComponent::MemDram];
}

void
CpiStack::add(const CpiStack &other)
{
    for (size_t i = 0; i < cycles.size(); ++i)
        cycles[i] += other.cycles[i];
}

void
CpiStack::scale(double f)
{
    for (double &c : cycles)
        c *= f;
}

} // namespace rppm

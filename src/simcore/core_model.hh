/**
 * @file
 * Instruction-window-centric out-of-order core timing model.
 *
 * This is the per-core timing engine of the golden-reference simulator —
 * the same model family as Sniper's hardware-validated core model the
 * paper simulates against. Every micro-op flows through dispatch (width,
 * ROB and issue-queue occupancy limits), issue (dependences, functional
 * unit contention, MSHR limits) and in-order retirement. Branch
 * mispredictions redirect the front end after the branch resolves plus a
 * refill penalty; I-cache misses stall the front end; load latencies come
 * from the real cache hierarchy, so memory-level parallelism emerges
 * naturally from the window.
 *
 * The model also attributes retired cycles to CPI-stack components
 * (base / branch / I-cache / memory levels) using interval-union
 * accounting for overlapping load misses.
 */

#ifndef RPPM_SIMCORE_CORE_MODEL_HH
#define RPPM_SIMCORE_CORE_MODEL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "cache/hierarchy.hh"
#include "trace/trace.hh"

namespace rppm {

/** CPI stack components used by both the simulator and the RPPM model. */
enum class CpiComponent : uint8_t
{
    Base,
    Branch,
    ICache,
    MemL2,     ///< load stall serviced by private L2
    MemLLC,    ///< load stall serviced by shared LLC
    MemDram,   ///< load stall serviced by main memory
    Sync,      ///< idle waiting on synchronization
    NumComponents,
};

constexpr size_t kNumCpiComponents =
    static_cast<size_t>(CpiComponent::NumComponents);

/** Human-readable CPI component name. */
const char *cpiComponentName(CpiComponent comp);

/** A cycle budget per CPI component. */
struct CpiStack
{
    std::array<double, kNumCpiComponents> cycles{};

    double &operator[](CpiComponent c)
    {
        return cycles[static_cast<size_t>(c)];
    }
    double operator[](CpiComponent c) const
    {
        return cycles[static_cast<size_t>(c)];
    }

    /** Sum of all components. */
    double total() const;

    /** Sum of the three memory components. */
    double memTotal() const;

    /** Element-wise accumulate. */
    void add(const CpiStack &other);

    /** Scale all components by @p f. */
    void scale(double f);
};

/** Memory-system interface so cores can be unit-tested with stubs. */
class MemorySystemIf
{
  public:
    virtual ~MemorySystemIf() = default;

    /** Data access at time @p now; returns level and total latency. */
    virtual AccessResult dataAccess(uint64_t addr, bool is_write,
                                    double now) = 0;

    /** Instruction fetch; returns extra front-end stall cycles. */
    virtual uint32_t instrFetch(uint64_t pc) = 0;
};

/** Branch predictor interface (stubbed in unit tests). */
class BranchPredictorIf
{
  public:
    virtual ~BranchPredictorIf() = default;

    /** @return true when the prediction was correct. */
    virtual bool predictAndUpdate(uint64_t pc, bool taken) = 0;
};

/**
 * Timing model for a single hardware thread/core.
 *
 * Times are in *this core's own* clock cycles, represented as double so
 * the multicore scheduler can merge them with sync idle times; all
 * intra-core schedule decisions happen on integral cycles. On
 * heterogeneous machines the multicore scheduler converts between this
 * core-local domain and the shared reference time base via
 * MulticoreConfig::timeScale(); the core model itself is clock-agnostic.
 */
class CoreModel
{
  public:
    CoreModel(const CoreConfig &cfg, MemorySystemIf &mem,
              BranchPredictorIf &branch);

    /** Execute one micro-op (must not be a sync record). */
    void execute(const TraceRecord &rec);

    /**
     * Current thread-local time: the retire time of the newest op, i.e.
     * the earliest cycle at which a subsequent sync event could happen.
     */
    double now() const { return lastRetire_; }

    /**
     * Jump the core's clocks forward to @p t (resuming after blocking
     * synchronization) and account the skipped span to the Sync bucket.
     */
    void idleUntil(double t);

    /**
     * Charge @p cycles of synchronization-operation overhead (atomic RMW,
     * futex syscall, ...) advancing time without executing ops.
     */
    void syncOverhead(double cycles);

    /** Retired micro-op count. */
    uint64_t instructions() const { return numOps_; }

    /** CPI stack accumulated so far; Base is derived as the remainder. */
    CpiStack cpiStack() const;

    /** Cycles this core was busy (now() minus idle gaps). */
    double activeCycles() const;

  private:
    double dispatchOne(double earliest);

    const CoreConfig cfg_;
    MemorySystemIf &mem_;
    BranchPredictorIf &branch_;

    // Ring buffers sized at construction.
    std::vector<double> completion_;   ///< completion time by op index
    std::vector<double> issue_;        ///< issue time by op index
    std::vector<double> retire_;       ///< retire time by op index
    std::vector<double> mshrFree_;     ///< completion of outstanding loads

    uint64_t numOps_ = 0;
    uint64_t numLoads_ = 0;
    double dispatchCycle_ = 0.0;       ///< front-end next dispatch cycle
    uint32_t dispatchedInCycle_ = 0;
    double lastRetire_ = 0.0;
    double memStallEnd_ = 0.0;         ///< union accounting for load misses
    double idleCycles_ = 0.0;
    CpiStack stack_;

    std::array<std::vector<double>, kNumOpClasses> fuFree_;

    double completionOf(uint64_t idx) const;
};

} // namespace rppm

#endif // RPPM_SIMCORE_CORE_MODEL_HH

/**
 * @file
 * Instruction-window-centric out-of-order core timing model.
 *
 * This is the per-core timing engine of the golden-reference simulator —
 * the same model family as Sniper's hardware-validated core model the
 * paper simulates against. Every micro-op flows through dispatch (width,
 * ROB and issue-queue occupancy limits), issue (dependences, functional
 * unit contention, MSHR limits) and in-order retirement. Branch
 * mispredictions redirect the front end after the branch resolves plus a
 * refill penalty; I-cache misses stall the front end; load latencies come
 * from the real cache hierarchy, so memory-level parallelism emerges
 * naturally from the window.
 *
 * The model also attributes retired cycles to CPI-stack components
 * (base / branch / I-cache / memory levels) using interval-union
 * accounting for overlapping load misses.
 */

#ifndef RPPM_SIMCORE_CORE_MODEL_HH
#define RPPM_SIMCORE_CORE_MODEL_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "cache/hierarchy.hh"
#include "common/assert.hh"
#include "trace/trace.hh"

namespace rppm {

/** CPI stack components used by both the simulator and the RPPM model. */
enum class CpiComponent : uint8_t
{
    Base,
    Branch,
    ICache,
    MemL2,     ///< load stall serviced by private L2
    MemLLC,    ///< load stall serviced by shared LLC
    MemDram,   ///< load stall serviced by main memory
    Sync,      ///< idle waiting on synchronization
    NumComponents,
};

constexpr size_t kNumCpiComponents =
    static_cast<size_t>(CpiComponent::NumComponents);

/** Human-readable CPI component name. */
const char *cpiComponentName(CpiComponent comp);

/** A cycle budget per CPI component. */
struct CpiStack
{
    std::array<double, kNumCpiComponents> cycles{};

    double &operator[](CpiComponent c)
    {
        return cycles[static_cast<size_t>(c)];
    }
    double operator[](CpiComponent c) const
    {
        return cycles[static_cast<size_t>(c)];
    }

    /** Sum of all components. */
    double total() const;

    /** Sum of the three memory components. */
    double memTotal() const;

    /** Element-wise accumulate. */
    void add(const CpiStack &other);

    /** Scale all components by @p f. */
    void scale(double f);
};

/** Memory-system interface so cores can be unit-tested with stubs. */
class MemorySystemIf
{
  public:
    virtual ~MemorySystemIf() = default;

    /** Data access at time @p now; returns level and total latency. */
    virtual AccessResult dataAccess(uint64_t addr, bool is_write,
                                    double now) = 0;

    /** Instruction fetch; returns extra front-end stall cycles. */
    virtual uint32_t instrFetch(uint64_t pc) = 0;
};

/** Branch predictor interface (stubbed in unit tests). */
class BranchPredictorIf
{
  public:
    virtual ~BranchPredictorIf() = default;

    /** @return true when the prediction was correct. */
    virtual bool predictAndUpdate(uint64_t pc, bool taken) = 0;
};

/**
 * Timing model for a single hardware thread/core.
 *
 * Times are in *this core's own* clock cycles, represented as double so
 * the multicore scheduler can merge them with sync idle times; all
 * intra-core schedule decisions happen on integral cycles. On
 * heterogeneous machines the multicore scheduler converts between this
 * core-local domain and the shared reference time base via
 * MulticoreConfig::timeScale(); the core model itself is clock-agnostic.
 *
 * The model is a template on its memory-system and branch-predictor
 * types. The default instantiation (the CoreModel alias below) binds the
 * virtual interfaces and behaves exactly as the historical class — this
 * is what simulateLegacy() and unit-test stubs use. The columnar
 * simulator engines instantiate it with their concrete adapter types
 * instead, turning the three per-record indirect calls (instruction
 * fetch, data access, branch prediction) into direct, inlinable ones.
 * Identical source, identical IEEE arithmetic — the engines stay
 * byte-identical (pinned by tests/test_sim_parallel.cc); only the
 * dispatch mechanics change.
 */
template <typename MemT = MemorySystemIf, typename BranchT = BranchPredictorIf>
class CoreModelT
{
  public:
    CoreModelT(const CoreConfig &cfg, MemT &mem, BranchT &branch)
        : cfg_(cfg), mem_(mem), branch_(branch)
    {
        RPPM_REQUIRE(cfg_.robSize <= kHistory,
                     "ROB larger than the model's history window");
        completion_.assign(kHistory, 0.0);
        issue_.assign(kHistory, 0.0);
        retire_.assign(kHistory, 0.0);
        mshrFree_.assign(std::max<uint32_t>(cfg_.mshrs, 1), 0.0);
        for (size_t c = 0; c < kNumOpClasses; ++c) {
            fuFree_[c].assign(std::max<uint32_t>(cfg_.fus[c].count, 1),
                              0.0);
        }
    }

    /** Execute one micro-op (must not be a sync record). */
    void
    execute(const TraceRecord &rec)
    {
        RPPM_ASSERT(!rec.isSync());
        const uint64_t i = numOps_;

        // --- Front end: I-cache, then dispatch constraints. ---
        const uint32_t fetch_stall = mem_.instrFetch(rec.pc);
        if (fetch_stall > 0) {
            dispatchCycle_ += static_cast<double>(fetch_stall);
            dispatchedInCycle_ = 0;
            stack_[CpiComponent::ICache] +=
                static_cast<double>(fetch_stall);
        }

        double earliest = 0.0;
        // ROB: the op robSize back must have retired.
        if (i >= cfg_.robSize) {
            earliest =
                std::max(earliest, retire_[(i - cfg_.robSize) % kHistory]);
        }
        // Issue queue: the op issueQueueSize back must have issued.
        if (i >= cfg_.issueQueueSize) {
            earliest = std::max(
                earliest, issue_[(i - cfg_.issueQueueSize) % kHistory]);
        }
        const double dispatch = dispatchOne(earliest);

        // --- Issue: dependences, FU contention, MSHRs. ---
        double ready = dispatch + 1.0; // minimum dispatch-to-issue delay
        if (rec.dep1 > 0 && rec.dep1 <= i && rec.dep1 < kHistory)
            ready = std::max(ready, completionOf(i - rec.dep1));
        if (rec.dep2 > 0 && rec.dep2 <= i && rec.dep2 < kHistory)
            ready = std::max(ready, completionOf(i - rec.dep2));

        const size_t cls = static_cast<size_t>(rec.op);
        auto &fus = fuFree_[cls];
        auto unit = std::min_element(fus.begin(), fus.end());
        double issue = std::max(ready, *unit);

        const FuConfig &fu = cfg_.fus[cls];
        double latency = static_cast<double>(fu.latency);

        if (rec.op == OpClass::Load) {
            // MSHR limit: a new miss cannot issue before the oldest of
            // the last `mshrs` loads completed.
            const size_t slot = numLoads_ % mshrFree_.size();
            issue = std::max(issue, mshrFree_[slot]);
            const AccessResult res = mem_.dataAccess(rec.addr, false,
                                                     issue);
            latency = static_cast<double>(res.latency);
            mshrFree_[slot] = issue + latency;
            ++numLoads_;

            // Interval-union accounting of load-miss stall so
            // overlapping misses (MLP) are not double counted.
            if (res.level != HitLevel::L1) {
                const double start = std::max(issue, memStallEnd_);
                const double end = issue + latency;
                if (end > start) {
                    CpiComponent comp = CpiComponent::MemL2;
                    if (res.level == HitLevel::LLC)
                        comp = CpiComponent::MemLLC;
                    else if (res.level == HitLevel::Memory)
                        comp = CpiComponent::MemDram;
                    stack_[comp] += end - start;
                    memStallEnd_ = end;
                }
            }
        } else if (rec.op == OpClass::Store) {
            // Stores update cache state but retire through the store
            // buffer; they do not stall the window in this model.
            mem_.dataAccess(rec.addr, true, issue);
            latency = static_cast<double>(fu.latency);
        }

        *unit = issue + static_cast<double>(fu.interval);
        const double complete = issue + latency;

        // --- Branch resolution. ---
        if (rec.op == OpClass::Branch) {
            const bool correct = branch_.predictAndUpdate(rec.pc,
                                                          rec.taken);
            if (!correct) {
                // Front end restarts after the branch executes plus the
                // pipeline refill time.
                const double redirect =
                    complete + static_cast<double>(cfg_.frontendDepth);
                if (redirect > dispatchCycle_) {
                    // Attribute only the time lost beyond what the back
                    // end had already stalled anyway (e.g. a DRAM load
                    // at the ROB head): cycles before lastRetire_ are
                    // charged to their own cause by the memory
                    // accounting.
                    const double lost =
                        redirect - std::max(dispatchCycle_, lastRetire_);
                    if (lost > 0.0)
                        stack_[CpiComponent::Branch] += lost;
                    dispatchCycle_ = redirect;
                    dispatchedInCycle_ = 0;
                }
            }
        }

        // --- In-order retirement. ---
        const double retire = std::max(lastRetire_, complete);
        completion_[i % kHistory] = complete;
        issue_[i % kHistory] = issue;
        retire_[i % kHistory] = retire;
        lastRetire_ = retire;
        ++numOps_;
    }

    /**
     * Current thread-local time: the retire time of the newest op, i.e.
     * the earliest cycle at which a subsequent sync event could happen.
     */
    double now() const { return lastRetire_; }

    /**
     * Jump the core's clocks forward to @p t (resuming after blocking
     * synchronization) and account the skipped span to the Sync bucket.
     */
    void
    idleUntil(double t)
    {
        if (t <= lastRetire_)
            return;
        const double gap = t - lastRetire_;
        stack_[CpiComponent::Sync] += gap;
        idleCycles_ += gap;
        lastRetire_ = t;
        dispatchCycle_ = std::max(dispatchCycle_, t);
        dispatchedInCycle_ = 0;
        // The window drains while blocked: all in-flight state resolves
        // by t.
        for (auto &fus : fuFree_)
            for (double &f : fus)
                f = std::max(f, 0.0); // FUs are free once we resume
    }

    /**
     * Charge @p cycles of synchronization-operation overhead (atomic RMW,
     * futex syscall, ...) advancing time without executing ops.
     */
    void
    syncOverhead(double cycles)
    {
        if (cycles <= 0.0)
            return;
        lastRetire_ += cycles;
        dispatchCycle_ = std::max(dispatchCycle_, lastRetire_);
        dispatchedInCycle_ = 0;
        // Synchronization instructions (atomics, futexes) are real work:
        // they appear in neither the base ILP stream nor the miss
        // components, so give them their own share of the base
        // component.
        stack_[CpiComponent::Base] += cycles;
    }

    /** Retired micro-op count. */
    uint64_t instructions() const { return numOps_; }

    /** CPI stack accumulated so far; Base is derived as the remainder. */
    CpiStack
    cpiStack() const
    {
        CpiStack result = stack_;
        // Base is the remainder: total busy time not attributed to any
        // miss component. Attribution is approximate (branch penalties
        // can overlap memory stalls), so when the attributed components
        // exceed the real busy time, scale the non-sync components down
        // to fit.
        const double sync = stack_[CpiComponent::Sync];
        const double attributed = stack_.total() - sync;
        const double busy = lastRetire_ - sync;
        if (attributed > busy && attributed > 0.0) {
            const double factor = std::max(0.0, busy) / attributed;
            for (size_t c = 0; c < kNumCpiComponents; ++c) {
                if (c != static_cast<size_t>(CpiComponent::Sync))
                    result.cycles[c] *= factor;
            }
        } else {
            result[CpiComponent::Base] += busy - attributed;
        }
        return result;
    }

    /** Cycles this core was busy (now() minus idle gaps). */
    double activeCycles() const { return lastRetire_ - idleCycles_; }

  private:
    /** History depth for dependence lookups; deps are capped to it. */
    static constexpr uint64_t kHistory = 1024;

    double
    completionOf(uint64_t idx) const
    {
        return completion_[idx % kHistory];
    }

    double
    dispatchOne(double earliest)
    {
        // Dispatch groups of up to dispatchWidth ops per front-end
        // cycle.
        earliest = std::ceil(earliest);
        if (earliest > dispatchCycle_) {
            dispatchCycle_ = earliest;
            dispatchedInCycle_ = 0;
        }
        if (dispatchedInCycle_ >= cfg_.dispatchWidth) {
            dispatchCycle_ += 1.0;
            dispatchedInCycle_ = 0;
        }
        ++dispatchedInCycle_;
        return dispatchCycle_;
    }

    const CoreConfig cfg_;
    MemT &mem_;
    BranchT &branch_;

    // Ring buffers sized at construction.
    std::vector<double> completion_;   ///< completion time by op index
    std::vector<double> issue_;        ///< issue time by op index
    std::vector<double> retire_;       ///< retire time by op index
    std::vector<double> mshrFree_;     ///< completion of outstanding loads

    uint64_t numOps_ = 0;
    uint64_t numLoads_ = 0;
    double dispatchCycle_ = 0.0;       ///< front-end next dispatch cycle
    uint32_t dispatchedInCycle_ = 0;
    double lastRetire_ = 0.0;
    double memStallEnd_ = 0.0;         ///< union accounting for load misses
    double idleCycles_ = 0.0;
    CpiStack stack_;

    std::array<std::vector<double>, kNumOpClasses> fuFree_;
};

/** The historical dynamic-dispatch instantiation (legacy engine, stubs). */
using CoreModel = CoreModelT<>;

} // namespace rppm

#endif // RPPM_SIMCORE_CORE_MODEL_HH

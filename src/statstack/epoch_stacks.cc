#include "statstack/epoch_stacks.hh"

#include "common/assert.hh"

namespace rppm {

EpochStacks::EpochStacks(const EpochProfile &epoch, bool llc_uses_global_rd)
    : epoch_(epoch), llcGlobal_(llc_uses_global_rd),
      hasInstr_(epoch.numOps > 0 && epoch.instrRd.total() > 0),
      local_(epoch.localRd),
      global_(llc_uses_global_rd ? epoch.globalRd : epoch.localRd),
      loadLocal_(epoch.loadLocalRd),
      loadGlobal_(llc_uses_global_rd ? epoch.loadGlobalRd
                                     : epoch.loadLocalRd),
      instr_(hasInstr_ ? epoch.instrRd : LogHistogram())
{
}

const StatStack &
EpochStacks::stack(Which w) const
{
    switch (w) {
    case Which::Local: return local_;
    case Which::Global: return global_;
    case Which::LoadLocal: return loadLocal_;
    case Which::LoadGlobal: return loadGlobal_;
    case Which::Instr: break;
    }
    RPPM_ASSERT(hasInstr_);
    return instr_;
}

double
EpochStacks::missRate(Which w, uint64_t cache_lines) const
{
    const std::pair<uint8_t, uint64_t> key(static_cast<uint8_t>(w),
                                           cache_lines);
    MutexLock lock(curveMutex_);
    const auto it = curve_.find(key);
    if (it != curve_.end()) {
        curveHits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    const double rate = stack(w).missRate(cache_lines);
    curve_.emplace(key, rate);
    curvePoints_.fetch_add(1, std::memory_order_relaxed);
    return rate;
}

const std::vector<std::vector<EpochStacks::OpSd>> &
EpochStacks::microSd() const
{
    std::call_once(microOnce_, [this] {
        // The latency model queries stack distances only for loads
        // (stores take the FU latency, non-memory ops never reach it),
        // with the LLC decision driven by the interleaved distance when
        // interference modeling is on — mirror both choices exactly.
        microSd_.resize(epoch_.microTraces.size());
        for (size_t t = 0; t < epoch_.microTraces.size(); ++t) {
            const MicroTrace &mt = epoch_.microTraces[t];
            microSd_[t].resize(mt.ops.size());
            for (size_t i = 0; i < mt.ops.size(); ++i) {
                const MicroTraceOp &op = mt.ops[i];
                if (op.op != OpClass::Load)
                    continue;
                microSd_[t][i].local = local_.stackDistance(op.localRd);
                microSd_[t][i].llc = global_.stackDistance(
                    llcGlobal_ ? op.globalRd : op.localRd);
            }
        }
    });
    return microSd_;
}

} // namespace rppm

/**
 * @file
 * Config-independent StatStack bundle of one epoch — the "profile once"
 * half of the memoized prediction engine.
 *
 * Every quantity StatStack derives from an epoch's reuse-distance
 * histograms is a pure function of the profile: the survival prefix sums
 * (StatStack construction), the expected stack distance of each sampled
 * micro-trace load, and — for a given cache size — the miss rate. None
 * of it depends on a MulticoreConfig. The naive per-point predictor
 * nevertheless rebuilt all of it for every design point of a grid.
 *
 * EpochStacks hoists this work out of the per-point path:
 *
 *  - the four data stacks (per-thread / interleaved, all-accesses /
 *    loads-only) and the instruction stack are built exactly once per
 *    (epoch, llcUsesGlobalRd flavour);
 *  - per-op expected stack distances of the micro-trace loads are
 *    precomputed lazily on first replay, so the five Eq.-1 window
 *    replays read two doubles per load instead of re-walking the
 *    survival sums;
 *  - missRate() is memoized per (stack, line count): a grid axis with
 *    ten cache sizes evaluates each CDF ten times total, not once per
 *    grid point.
 *
 * All cached values are produced by calling the same StatStack methods
 * the naive path calls, on stacks built from the same histograms, so
 * predictions through EpochStacks are bit-identical to the per-point
 * path. Instances are immutable after construction apart from the
 * internal memo tables, which are thread-safe: one EpochStacks may be
 * shared by every worker of a Study grid.
 */

#ifndef RPPM_STATSTACK_EPOCH_STACKS_HH
#define RPPM_STATSTACK_EPOCH_STACKS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/thread_annotations.hh"
#include "profile/epoch_profile.hh"
#include "statstack/statstack.hh"

namespace rppm {

class EpochStacks
{
  public:
    /** The reuse-distance flavours the memory model queries. */
    enum class Which : uint8_t
    {
        Local,      ///< per-thread, all accesses (private L1D/L2)
        Global,     ///< interleaved, all accesses (shared LLC)
        LoadLocal,  ///< per-thread, loads only
        LoadGlobal, ///< interleaved, loads only
        Instr,      ///< instruction stream (I-cache, all levels)
    };

    /**
     * Build all stacks for @p epoch. With @p llc_uses_global_rd false
     * (the no-interference ablation) the Global/LoadGlobal slots hold
     * stacks over the per-thread distributions, mirroring what the
     * memory model would have built. The epoch must outlive the bundle.
     */
    EpochStacks(const EpochProfile &epoch, bool llc_uses_global_rd);

    const EpochProfile &epoch() const { return epoch_; }
    bool llcUsesGlobalRd() const { return llcGlobal_; }

    /** True when the epoch carries instruction-stream samples (the
     *  condition under which the memory model prices I-cache stalls). */
    bool hasInstr() const { return hasInstr_; }

    const StatStack &stack(Which w) const;

    /**
     * Memoized StatStack::missRate: the survival CDF of @p w is
     * evaluated once per distinct @p cache_lines and served from the
     * curve table afterwards. Thread-safe; bit-identical to calling the
     * stack directly.
     */
    double missRate(Which w, uint64_t cache_lines) const
        RPPM_EXCLUDES(curveMutex_);

    /** Expected stack distances of one sampled micro-trace load. */
    struct OpSd
    {
        double local = 0.0; ///< vs the per-thread distribution
        double llc = 0.0;   ///< vs the LLC-deciding distribution
    };

    /**
     * Per-op expected stack distances of every micro-trace load,
     * parallel to epoch().microTraces (non-loads hold zeros — the
     * latency model never reads them). Built on first call; subsequent
     * calls are a fenced pointer read. Thread-safe.
     */
    const std::vector<std::vector<OpSd>> &microSd() const;

    /** Distinct (stack, line count) CDF evaluations performed. */
    uint64_t curvePoints() const { return curvePoints_.load(); }
    /** missRate() calls served from the curve table. */
    uint64_t curveHits() const { return curveHits_.load(); }

  private:
    const EpochProfile &epoch_;
    bool llcGlobal_;
    bool hasInstr_;
    StatStack local_, global_, loadLocal_, loadGlobal_, instr_;

    mutable std::once_flag microOnce_;
    mutable std::vector<std::vector<OpSd>> microSd_;

    mutable Mutex curveMutex_;
    mutable std::map<std::pair<uint8_t, uint64_t>, double> curve_
        RPPM_GUARDED_BY(curveMutex_);
    mutable std::atomic<uint64_t> curvePoints_{0};
    mutable std::atomic<uint64_t> curveHits_{0};
};

} // namespace rppm

#endif // RPPM_STATSTACK_EPOCH_STACKS_HH

#include "statstack/statstack.hh"

#include <algorithm>
#include <utility>
#include <cmath>

namespace rppm {

StatStack::StatStack(LogHistogram reuse_distances)
    : hist_(std::move(reuse_distances))
{
    const size_t buckets = LogHistogram::numBuckets();

    // Suffix counts first: suffixCounts_[i] holds the infinite samples
    // plus every finite sample in buckets > i. This is the "samples
    // whose reuse extends past here" count that survival() would
    // otherwise re-accumulate per query, turning the constructor from
    // O(#buckets^2) into O(#buckets). Integer sums are exact, so the
    // survival values derived from them are bit-identical to
    // LogHistogram::survival().
    std::vector<uint64_t> counts(buckets, 0);
    hist_.forEach([&counts](uint64_t value, uint64_t count) {
        if (value != LogHistogram::kInfinity)
            counts[LogHistogram::bucketIndex(value)] = count;
    });
    suffixCounts_.assign(buckets, 0);
    uint64_t above = hist_.totalInfinite();
    for (size_t i = buckets; i-- > 0;) {
        suffixCounts_[i] = above;
        above += counts[i];
    }

    // Precompute expected stack distance at each bucket boundary:
    //   sd(D) = sum_{j=1..D} survival(j).
    // Within a bucket the survival function is (piecewise) constant in
    // our representation, so the prefix sum advances linearly and can be
    // interpolated exactly on query.
    survivalPrefix_.resize(buckets);
    double prefix = 0.0;
    for (size_t i = 0; i < buckets; ++i) {
        const uint64_t lo = LogHistogram::bucketLo(i);
        const uint64_t hi = LogHistogram::bucketHi(i);
        // Representative survival within this bucket, evaluated at the
        // bucket midpoint.
        const double surv = survivalAtBucketMid(i);
        prefix += surv * static_cast<double>(hi - lo + 1);
        survivalPrefix_[i] = prefix;
    }
}

double
StatStack::survivalAtBucketMid(size_t idx) const
{
    // Mirrors LogHistogram::survival(bucketMid(idx)) branch for branch,
    // with the bucket scan replaced by the precomputed suffix counts.
    const uint64_t tot = hist_.total();
    if (tot == 0)
        return 0.0;
    if (hist_.totalFinite() == 0)
        return static_cast<double>(hist_.totalInfinite()) /
            static_cast<double>(tot);

    const uint64_t above = suffixCounts_[idx];
    const uint64_t count = idx == 0 ?
        tot - suffixCounts_[0] :
        suffixCounts_[idx - 1] - suffixCounts_[idx];
    const uint64_t value = LogHistogram::bucketMid(idx);
    const uint64_t lo = LogHistogram::bucketLo(idx);
    const uint64_t hi = LogHistogram::bucketHi(idx);
    const double width = static_cast<double>(hi - lo) + 1.0;
    const double frac_above = static_cast<double>(hi - value) / width;
    const double partial = static_cast<double>(count) * frac_above;
    return (static_cast<double>(above) + partial) /
        static_cast<double>(tot);
}

double
StatStack::stackDistance(uint64_t rd) const
{
    if (rd == LogHistogram::kInfinity)
        return static_cast<double>(LogHistogram::kInfinity);
    if (hist_.total() == 0)
        return static_cast<double>(rd);
    const size_t idx = LogHistogram::bucketIndex(rd);
    const uint64_t lo = LogHistogram::bucketLo(idx);
    const double below = idx > 0 ? survivalPrefix_[idx - 1] : 0.0;
    const double surv = survivalAtBucketMid(idx);
    return below + surv * static_cast<double>(rd - lo + 1);
}

uint64_t
StatStack::criticalReuseDistance(uint64_t cache_lines) const
{
    // Binary search over bucket boundaries for the first reuse distance
    // whose expected stack distance reaches cache_lines.
    const double target = static_cast<double>(cache_lines);
    const size_t buckets = LogHistogram::numBuckets();
    size_t lo = 0, hi = buckets;
    while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (survivalPrefix_[mid] < target)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo >= buckets)
        return LogHistogram::kInfinity;
    // Interpolate within the bucket.
    const uint64_t blo = LogHistogram::bucketLo(lo);
    const uint64_t bhi = LogHistogram::bucketHi(lo);
    const double below = lo > 0 ? survivalPrefix_[lo - 1] : 0.0;
    const double surv = survivalAtBucketMid(lo);
    if (surv <= 0.0)
        return bhi;
    const double offset = (target - below) / surv;
    const uint64_t rd = blo + static_cast<uint64_t>(std::max(0.0, offset));
    return std::min(rd, bhi);
}

double
StatStack::missRate(uint64_t cache_lines) const
{
    const uint64_t total = hist_.total();
    if (total == 0)
        return 0.0;
    // An access misses when its expected stack distance exceeds the
    // cache's line count; cold accesses (infinite reuse distance) always
    // miss. survival() interpolates within the critical bucket, so this
    // directly yields the miss fraction.
    const uint64_t critical = criticalReuseDistance(cache_lines);
    if (critical == LogHistogram::kInfinity) {
        return static_cast<double>(hist_.totalInfinite()) /
            static_cast<double>(total);
    }
    return hist_.survival(critical);
}

} // namespace rppm

/**
 * @file
 * StatStack: statistical LRU cache modeling from reuse distances
 * (Eklov & Hagersten, ISPASS 2010), including the multi-threaded
 * extension the paper uses (Ahlman's thesis [1]).
 *
 * Reuse distance (accesses between two touches of the same line) is cheap
 * to collect; stack distance (unique lines in between, which determines
 * LRU hits) is expensive. StatStack converts between them statistically:
 * for an access with reuse distance D, the expected stack distance is
 *
 *     sd(D) = sum_{j=1..D} P(reuse distance of an interior access > j)
 *           = sum_{j=1..D} survival(j)
 *
 * i.e. the expected number of interior accesses whose own reuse extends
 * past the window end — exactly the accesses contributing unique lines.
 * The miss rate of a fully-associative LRU cache with L lines is then the
 * fraction of accesses whose expected stack distance exceeds L, plus cold
 * misses (infinite reuse distances).
 *
 * For multi-threaded workloads the same machinery runs on two reuse
 * distance flavours (paper Fig. 2): per-thread distributions predict the
 * private L1/L2, and global interleaved distributions predict the shared
 * LLC, capturing both positive (sharing) and negative (capacity)
 * interference. Coherence write-invalidations appear as infinite
 * per-thread reuse distances and therefore as guaranteed misses.
 */

#ifndef RPPM_STATSTACK_STATSTACK_HH
#define RPPM_STATSTACK_STATSTACK_HH

#include <cstdint>

#include "common/histogram.hh"

namespace rppm {

/**
 * StatStack model built from one reuse-distance distribution.
 *
 * Construction precomputes the survival prefix sums over the histogram's
 * log buckets so stackDistance() and missRate() are O(#buckets).
 */
class StatStack
{
  public:
    /**
     * Build from a reuse-distance histogram (may be empty). The
     * histogram is copied so the model owns its inputs.
     */
    explicit StatStack(LogHistogram reuse_distances);

    /** Expected stack distance for an access with reuse distance @p rd. */
    double stackDistance(uint64_t rd) const;

    /**
     * Predicted miss rate of a fully-associative LRU cache with
     * @p cache_lines lines, including cold misses.
     */
    double missRate(uint64_t cache_lines) const;

    /**
     * Smallest reuse distance whose expected stack distance reaches
     * @p cache_lines — accesses with larger reuse distances miss.
     */
    uint64_t criticalReuseDistance(uint64_t cache_lines) const;

    /** True when no finite samples were available. */
    bool empty() const { return hist_.totalFinite() == 0; }

  private:
    /**
     * survival() restricted to bucket midpoints, computed from the
     * precomputed suffix counts in O(1) instead of re-walking the
     * histogram — this is what makes construction O(#buckets) rather
     * than O(#buckets^2). Produces bit-identical values to
     * LogHistogram::survival(bucketMid(idx)): the suffix sums are exact
     * integer arithmetic in the same association order.
     */
    double survivalAtBucketMid(size_t idx) const;

    LogHistogram hist_;
    // suffixCounts_[i]: infinite samples plus all finite samples in
    // buckets strictly after i.
    std::vector<uint64_t> suffixCounts_;
    // survivalPrefix_[i]: sum over j in [0, bucketHi(i)] of survival(j),
    // i.e. the expected stack distance of a reuse distance at the end of
    // bucket i. Interpolated within buckets on query.
    std::vector<double> survivalPrefix_;
};

} // namespace rppm

#endif // RPPM_STATSTACK_STATSTACK_HH

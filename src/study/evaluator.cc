#include "study/evaluator.hh"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "common/thread_annotations.hh"
#include "rppm/baselines.hh"
#include "rppm/memo.hh"

namespace rppm {

namespace {

double
cyclesToSeconds(double cycles, const MulticoreConfig &cfg)
{
    return cfg.refCyclesToSeconds(cycles);
}

} // namespace

Evaluation
Evaluator::makeResult(const EvalContext &ctx,
                      const MulticoreConfig &cfg) const
{
    Evaluation result;
    result.workload = ctx.workload.name();
    result.config = cfg.name;
    result.evaluator = label_;
    return result;
}

Evaluation
RppmEvaluator::evaluate(const EvalContext &ctx,
                        const MulticoreConfig &cfg) const
{
    Evaluation result = makeResult(ctx, cfg);
    const auto profile = ctx.profile(profiler_);
    const RppmOptions &opts = rppm_ ? *rppm_ : ctx.options.rppm;
    if (ctx.memos) {
        // Grid mode: share component evaluations with every other design
        // point of this profile (bit-identical to the per-point path).
        result.prediction =
            ctx.memos->forProfile(profile)->predict(cfg, opts);
    } else {
        result.prediction = predict(*profile, cfg, opts);
    }
    result.cycles = result.prediction->totalCycles;
    result.seconds = result.prediction->totalSeconds;
    result.threadSeconds = result.prediction->threadSeconds;
    return result;
}

Evaluation
SimEvaluator::evaluate(const EvalContext &ctx,
                       const MulticoreConfig &cfg) const
{
    Evaluation result = makeResult(ctx, cfg);
    // The cached columnar view feeds the simulator's hot engines
    // directly (and SimOptions::jobs selects the parallel one); results
    // are byte-identical to the legacy AoS path.
    result.sim = simulate(ctx.workload.columnar(), cfg, ctx.options.sim);
    result.cycles = result.sim->totalCycles;
    result.seconds = result.sim->totalSeconds;
    result.threadSeconds.reserve(result.sim->threads.size());
    for (const ThreadResult &t : result.sim->threads)
        result.threadSeconds.push_back(t.finishSeconds);
    return result;
}

Evaluation
MainEvaluator::evaluate(const EvalContext &ctx,
                        const MulticoreConfig &cfg) const
{
    Evaluation result = makeResult(ctx, cfg);
    result.cycles = predictMain(*ctx.profile(), cfg);
    result.seconds = cyclesToSeconds(result.cycles, cfg);
    return result;
}

Evaluation
CritEvaluator::evaluate(const EvalContext &ctx,
                        const MulticoreConfig &cfg) const
{
    Evaluation result = makeResult(ctx, cfg);
    result.cycles = predictCrit(*ctx.profile(), cfg);
    result.seconds = cyclesToSeconds(result.cycles, cfg);
    return result;
}

// ----------------------------------------------------------- registry ---

namespace {

std::unordered_map<std::string, EvaluatorFactory>
builtinFactories()
{
    std::unordered_map<std::string, EvaluatorFactory> factories;
    factories["rppm"] = [] { return std::make_unique<RppmEvaluator>(); };
    factories["sim"] = [] { return std::make_unique<SimEvaluator>(); };
    factories["main"] = [] { return std::make_unique<MainEvaluator>(); };
    factories["crit"] = [] { return std::make_unique<CritEvaluator>(); };
    return factories;
}

struct Registry
{
    Mutex mutex;
    std::unordered_map<std::string, EvaluatorFactory> factories
        RPPM_GUARDED_BY(mutex) = builtinFactories();
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

void
registerEvaluator(const std::string &name, EvaluatorFactory factory)
{
    Registry &r = registry();
    MutexLock lock(r.mutex);
    r.factories[name] = std::move(factory);
}

std::unique_ptr<Evaluator>
makeEvaluator(const std::string &name)
{
    Registry &r = registry();
    EvaluatorFactory factory;
    {
        MutexLock lock(r.mutex);
        auto it = r.factories.find(name);
        if (it == r.factories.end()) {
            throw std::invalid_argument(
                "unknown evaluator backend '" + name + "'");
        }
        factory = it->second;
    }
    return factory();
}

std::vector<std::string>
registeredEvaluators()
{
    Registry &r = registry();
    std::vector<std::string> names;
    {
        MutexLock lock(r.mutex);
        names.reserve(r.factories.size());
        for (const auto &[name, factory] : r.factories)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace rppm

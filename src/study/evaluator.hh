/**
 * @file
 * Pluggable evaluator backends for the Study facade.
 *
 * An Evaluator answers one question — "how long does workload W take on
 * configuration C?" — by whatever means it implements:
 *
 *   - RppmEvaluator  the paper's analytical model (rppm::predict)
 *   - SimEvaluator   the golden-reference cycle-level simulator (oracle)
 *   - MainEvaluator  the MAIN naive baseline (main thread only)
 *   - CritEvaluator  the CRIT naive baseline (slowest thread)
 *
 * All backends consume the same EvalContext, which hands out the
 * workload's trace and (cached) profile on demand; that is what lets the
 * design-space-exploration driver request oracle times through the same
 * interface as model predictions, and what lets a Study mix backends in
 * one grid. Custom backends register by name via registerEvaluator() or
 * are handed to Study::addEvaluator directly.
 *
 * Evaluators must be stateless with respect to evaluate() calls: one
 * instance is invoked concurrently from all worker threads.
 */

#ifndef RPPM_STUDY_EVALUATOR_HH
#define RPPM_STUDY_EVALUATOR_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "study/profile_cache.hh"
#include "study/source.hh"

namespace rppm {

class PredictionMemoPool;

/** Knobs shared by every evaluation in a study. */
struct StudyOptions
{
    ProfilerOptions profiler;
    RppmOptions rppm;
    SimOptions sim;
};

/** Everything an evaluator may ask for about one workload. */
struct EvalContext
{
    const WorkloadSource &workload;
    const StudyOptions &options;
    ProfileCache &profiles;

    /** Shared memoized prediction engines for the running grid; null
     *  when the study evaluates points independently (legacy mode). */
    PredictionMemoPool *memos = nullptr;

    /** The workload's profile under the study's (or @p override's)
     *  profiler options, through the cache. */
    std::shared_ptr<const WorkloadProfile>
    profile(const std::optional<ProfilerOptions> &override = {}) const
    {
        return workload.profile(override ? *override : options.profiler,
                                profiles);
    }
};

/** One cell of a study grid: an evaluator's verdict on (W, C). */
struct Evaluation
{
    std::string workload;
    std::string config;
    std::string evaluator;
    double cycles = 0.0;    ///< reference cycles (core 0's clock)
    double seconds = 0.0;

    /** Per-thread finish time in seconds on the thread's mapped core
     *  (heterogeneity-aware backends: rppm, sim; empty otherwise). */
    std::vector<double> threadSeconds;

    /** Backend detail, populated by the evaluators that produce it. */
    std::optional<RppmPrediction> prediction; ///< RppmEvaluator
    std::optional<SimResult> sim;             ///< SimEvaluator
};

/** Abstract evaluation backend. */
class Evaluator
{
  public:
    explicit Evaluator(std::string label) : label_(std::move(label)) {}
    virtual ~Evaluator() = default;

    /** Grid axis label ("rppm", "sim", ...). Unique within a study. */
    const std::string &label() const { return label_; }

    /** True for golden-reference backends usable as DSE oracles. */
    virtual bool isOracle() const { return false; }

    /** True when the backend replays the trace (profile-only workload
     *  sources cannot serve it). */
    virtual bool needsTrace() const { return false; }

    /** True when the backend exploits a shared PredictionMemoPool; the
     *  Study sorts and shards such a backend's design points by
     *  component key so cache neighbours run back to back. */
    virtual bool usesComponentMemo() const { return false; }

    /** Evaluate @p ctx's workload on @p cfg. Must be thread-safe. */
    virtual Evaluation evaluate(const EvalContext &ctx,
                                const MulticoreConfig &cfg) const = 0;

  protected:
    /** Start a result cell with the axis labels filled in. */
    Evaluation makeResult(const EvalContext &ctx,
                          const MulticoreConfig &cfg) const;

    std::string label_;
};

/** Analytical-model backend; options can override the study's. */
class RppmEvaluator : public Evaluator
{
  public:
    RppmEvaluator() : Evaluator("rppm") {}

    /** Variant backend (ablation etc.): custom label, optional RPPM and
     *  profiler option overrides. */
    explicit RppmEvaluator(std::string label,
                           std::optional<RppmOptions> rppm = {},
                           std::optional<ProfilerOptions> profiler = {})
        : Evaluator(std::move(label)), rppm_(std::move(rppm)),
          profiler_(std::move(profiler))
    {}

    bool usesComponentMemo() const override { return true; }

    Evaluation evaluate(const EvalContext &ctx,
                        const MulticoreConfig &cfg) const override;

  private:
    std::optional<RppmOptions> rppm_;
    std::optional<ProfilerOptions> profiler_;
};

/** Golden-reference simulator backend (the oracle). */
class SimEvaluator : public Evaluator
{
  public:
    SimEvaluator() : Evaluator("sim") {}

    bool isOracle() const override { return true; }
    bool needsTrace() const override { return true; }

    Evaluation evaluate(const EvalContext &ctx,
                        const MulticoreConfig &cfg) const override;
};

/** MAIN naive baseline (paper Sec. II-C). */
class MainEvaluator : public Evaluator
{
  public:
    explicit MainEvaluator(std::string label = "main")
        : Evaluator(std::move(label))
    {}

    Evaluation evaluate(const EvalContext &ctx,
                        const MulticoreConfig &cfg) const override;
};

/** CRIT naive baseline (paper Sec. II-C). */
class CritEvaluator : public Evaluator
{
  public:
    explicit CritEvaluator(std::string label = "crit")
        : Evaluator(std::move(label))
    {}

    Evaluation evaluate(const EvalContext &ctx,
                        const MulticoreConfig &cfg) const override;
};

// ----------------------------------------------------------- registry ---

using EvaluatorFactory = std::function<std::unique_ptr<Evaluator>()>;

/**
 * Register @p factory under @p name (replacing any previous entry).
 * "rppm", "sim", "main" and "crit" are pre-registered.
 */
void registerEvaluator(const std::string &name, EvaluatorFactory factory);

/** Instantiate a registered backend; throws std::invalid_argument on an
 *  unknown name. */
std::unique_ptr<Evaluator> makeEvaluator(const std::string &name);

/** Registered backend names, sorted. */
std::vector<std::string> registeredEvaluators();

} // namespace rppm

#endif // RPPM_STUDY_EVALUATOR_HH

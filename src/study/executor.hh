/**
 * @file
 * Historical home of the Study grid executor.
 *
 * The worker pool outgrew the study layer — the parallel profiler and
 * parallel trace synthesis fan out on the same primitive — so the class
 * now lives in common/parallel.hh. This header remains so existing
 * includes keep working; new code should include common/parallel.hh
 * directly.
 */

#ifndef RPPM_STUDY_EXECUTOR_HH
#define RPPM_STUDY_EXECUTOR_HH

#include "common/parallel.hh"

#endif // RPPM_STUDY_EXECUTOR_HH

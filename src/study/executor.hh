/**
 * @file
 * Minimal worker-pool executor for grid evaluation.
 *
 * Runs `count` index-addressed tasks on up to `jobs` std::threads.
 * Because tasks are identified by index and write their results into
 * pre-sized slots, the output ordering is deterministic regardless of
 * scheduling: a Study evaluated with 1 worker and with 16 workers yields
 * byte-identical result registries.
 */

#ifndef RPPM_STUDY_EXECUTOR_HH
#define RPPM_STUDY_EXECUTOR_HH

#include <cstddef>
#include <functional>

namespace rppm {

class ParallelExecutor
{
  public:
    /** @p jobs worker threads; 0 picks std::thread::hardware_concurrency. */
    explicit ParallelExecutor(unsigned jobs = 1);

    /** The resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Invoke @p fn(i) for every i in [0, count). With jobs() == 1 the
     * calls happen inline, in order; otherwise worker threads pull
     * indices from a shared counter. The first exception thrown by any
     * task is rethrown here after all workers have stopped (remaining
     * tasks are abandoned).
     */
    void forEach(size_t count, const std::function<void(size_t)> &fn) const;

  private:
    unsigned jobs_;
};

} // namespace rppm

#endif // RPPM_STUDY_EXECUTOR_HH

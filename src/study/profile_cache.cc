#include "study/profile_cache.hh"

#include <unistd.h>

#include <filesystem>
#include <sstream>

#include "common/fault.hh"
#include "profile/serialize.hh"

namespace rppm {

std::string
profilerOptionsKey(const ProfilerOptions &opts)
{
    // Only the options that shape profile *content* enter the key.
    // opts.jobs and opts.streamChunkRecords are deliberately absent:
    // the parallel and streaming engines are bit-identical to the fused
    // sweep for every job count and chunk size, so a cached artifact
    // must serve all of them — profiling with 8 workers and re-reading
    // with 1, or streaming out-of-core and re-reading in-memory, is the
    // same profile, same key, same bytes (asserted by
    // tests/test_profile_parallel.cc and test_profile_streaming.cc).
    std::ostringstream key;
    key << "mtl" << opts.microTraceLength
        << "-mti" << opts.microTraceInterval
        << "-q" << opts.quantum
        << "-lb" << opts.lineBytes
        << "-inv" << (opts.detectInvalidation ? 1 : 0);
    return key.str();
}

namespace {

/** Filesystem-safe rendering of an arbitrary workload name. */
std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                        c == '.';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
cacheKey(const std::string &workload, const ProfilerOptions &opts)
{
    return workload + '\x1f' + profilerOptionsKey(opts);
}

/** Serialized-artifact path; "" when the disk tier is disabled. */
std::string
diskPath(const std::string &dir, const std::string &workload,
         const ProfilerOptions &opts)
{
    if (dir.empty())
        return {};
    return dir + "/" + sanitize(workload) + "." + profilerOptionsKey(opts) +
           ".rppmprof";
}

} // namespace

void
ProfileCache::setDirectory(std::string dir)
{
    MutexLock lock(mutex_);
    dir_ = std::move(dir);
}

void
ProfileCache::setMaxResidentBytes(uint64_t bytes)
{
    MutexLock lock(mutex_);
    maxResidentBytes_ = bytes;
    if (maxResidentBytes_ != 0) {
        for (const std::string &victim : lru_.shrinkTo(maxResidentBytes_)) {
            entries_.erase(victim);
            ++stats_.evictions;
        }
    }
}

std::string
ProfileCache::pathFor(const std::string &workload,
                      const ProfilerOptions &opts) const
{
    MutexLock lock(mutex_);
    return diskPath(dir_, workload, opts);
}

ProfileCache::ProfilePtr
ProfileCache::getOrCompute(const std::string &workload,
                           const ProfilerOptions &opts,
                           const std::function<WorkloadProfile()> &compute)
{
    const std::string key = cacheKey(workload, opts);

    std::promise<ProfilePtr> promise;
    std::shared_future<ProfilePtr> waitOn;
    std::string dir;
    bool owner = false;
    {
        MutexLock lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.memoryHits;
            lru_.touch(key);
            waitOn = it->second;
        } else {
            entries_.emplace(key, promise.get_future().share());
            owner = true;
            dir = dir_;
        }
    }
    // Wait outside the lock: the computing thread needs the map.
    if (!owner)
        return waitOn.get();

    // This thread owns the computation for this key.
    const std::string path = diskPath(dir, workload, opts);

    try {
        ProfilePtr profile;
        bool from_disk = false;
        if (!path.empty() && std::filesystem::exists(path)) {
            try {
                auto loaded = std::make_shared<const WorkloadProfile>(
                    loadProfileBinaryFromFile(path));
                // Guard against sanitized-name collisions (distinct
                // workloads mapping to one file): the artifact must
                // actually be the requested workload's profile.
                if (loaded->name == workload) {
                    profile = std::move(loaded);
                    from_disk = true;
                }
            } catch (const std::exception &) {
                // Corrupt, old-version or legacy text-format artifact:
                // treat as a miss and recompute (self-healing). Set the
                // bad bytes aside as *.corrupt rather than overwriting
                // blind — a checksum failure is evidence of storage
                // trouble worth post-morteming, and the quarantine also
                // guarantees the rewrite below starts from a clean slate.
                std::error_code ec;
                std::filesystem::rename(path, path + ".corrupt", ec);
                if (!ec) {
                    MutexLock lock(mutex_);
                    ++stats_.quarantined;
                }
            }
        }
        if (!profile) {
            profile =
                std::make_shared<const WorkloadProfile>(compute());
            if (!path.empty()) {
                try {
                    std::filesystem::create_directories(dir);
                    // Crash-safe publication: serialize to memory, then
                    // write-tmp + fsync + rename (common/fault.hh). The
                    // fsync closes the rename-before-data crash window;
                    // concurrent processes sharing the directory never
                    // observe a torn artifact.
                    std::ostringstream bytes;
                    saveProfileBinary(*profile, bytes);
                    io::writeFileAtomic(path, bytes.str());
                } catch (const std::exception &) {
                    // The disk tier is an optimization: a write failure
                    // (read-only or full filesystem) must not poison a
                    // study that already has its profile in memory.
                }
            }
        }
        {
            MutexLock lock(mutex_);
            if (from_disk)
                ++stats_.diskHits;
            else
                ++stats_.misses;
            // The entry is complete: start charging it to the budget and
            // evict LRU completed entries that no longer fit. In-flight
            // computations are never in lru_, so they are never evicted;
            // waiters on an evicted key hold their shared_future, so
            // results are never lost, only forgotten.
            lru_.add(key, profile->approxResidentBytes());
            if (maxResidentBytes_ != 0) {
                for (const std::string &victim :
                     lru_.shrinkTo(maxResidentBytes_)) {
                    entries_.erase(victim);
                    ++stats_.evictions;
                }
            }
        }
        promise.set_value(profile);
        return profile;
    } catch (...) {
        // Un-cache the failed entry so a later request can retry, then
        // propagate to this caller and to any waiters.
        {
            MutexLock lock(mutex_);
            entries_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

uint64_t
ProfileCache::shedBytes(uint64_t bytes)
{
    MutexLock lock(mutex_);
    const uint64_t before = lru_.bytes();
    const uint64_t target = before > bytes ? before - bytes : 0;
    for (const std::string &victim : lru_.shrinkTo(target)) {
        entries_.erase(victim);
        ++stats_.evictions;
    }
    return before - lru_.bytes();
}

void
ProfileCache::clearMemory()
{
    MutexLock lock(mutex_);
    entries_.clear();
    lru_.shrinkTo(0);
}

ProfileCache::Stats
ProfileCache::stats() const
{
    MutexLock lock(mutex_);
    Stats out = stats_;
    out.residentBytes = lru_.bytes();
    return out;
}

} // namespace rppm

/**
 * @file
 * Two-tier profile cache: in-memory and (optionally) serialized on disk.
 *
 * RPPM's economics rest on "profile once, predict many"; the cache is
 * what enforces the "once". Entries are keyed by (workload name,
 * profiler options) — the two inputs that determine a profile — so the
 * same workload profiled under different sampling policies (e.g. the
 * ablation study's no-invalidation variant) occupies distinct entries.
 *
 * When a directory is configured, misses first try to load a previously
 * serialized profile (binary "RPPMPRF" container, see
 * profile/serialize.hh) and freshly computed profiles are written back,
 * making profiles durable across processes. Serialization round-trips
 * exactly with respect to predictions, so a disk hit yields bit-identical
 * results to an in-memory one. Corrupt artifacts, artifacts from an
 * older/newer format version, and pre-binary text-format artifacts are
 * all treated as misses and overwritten in place (self-healing); write
 * failures degrade silently to memory-only caching.
 *
 * Caveat: the key carries no fingerprint of the workload's *content*.
 * If a workload changes but keeps its name, delete its artifacts (or
 * point the cache at a fresh directory), or stale profiles will be
 * reused silently.
 *
 * Thread-safe: concurrent requests for the same key block on a single
 * computation (per-key future), everything else proceeds in parallel.
 */

#ifndef RPPM_STUDY_PROFILE_CACHE_HH
#define RPPM_STUDY_PROFILE_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/lru.hh"
#include "common/thread_annotations.hh"
#include "profile/epoch_profile.hh"
#include "profile/profiler.hh"

namespace rppm {

/** Stable fingerprint of the profiler options that shape a profile. */
std::string profilerOptionsKey(const ProfilerOptions &opts);

class ProfileCache
{
  public:
    using ProfilePtr = std::shared_ptr<const WorkloadProfile>;

    ProfileCache() = default;

    /**
     * Enable the serialized tier rooted at @p dir (created on demand).
     * Pass an empty string to disable.
     */
    void setDirectory(std::string dir) RPPM_EXCLUDES(mutex_);

    /** The serialized tier's directory ("" = memory only). */
    std::string directory() const RPPM_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return dir_;
    }

    /**
     * Return the profile for (@p workload, @p opts), computing it with
     * @p compute on a miss. On a miss with a directory configured, a
     * serialized profile is tried first and fresh computations are
     * written back. @p compute may run concurrently for different keys
     * but never twice for the same key.
     */
    ProfilePtr getOrCompute(const std::string &workload,
                            const ProfilerOptions &opts,
                            const std::function<WorkloadProfile()> &compute)
        RPPM_EXCLUDES(mutex_);

    /** Drop the in-memory tier (serialized profiles stay). */
    void clearMemory() RPPM_EXCLUDES(mutex_);

    /**
     * Cap the in-memory tier at roughly @p bytes
     * (WorkloadProfile::approxResidentBytes accounting); 0 = unlimited,
     * the default — behavior is then bit-identical to the pre-eviction
     * cache. When a completed profile pushes the tier over budget, the
     * least-recently-used *completed* entries are dropped (in-flight
     * computations are never evicted; outstanding shared_ptr holders
     * keep evicted profiles alive). Long-running daemons set this;
     * one-shot studies should not bother.
     */
    void setMaxResidentBytes(uint64_t bytes) RPPM_EXCLUDES(mutex_);

    uint64_t maxResidentBytes() const RPPM_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return maxResidentBytes_;
    }

    /** Hit/miss counters (memory hits include waiting on in-flight
     *  computations of the same key). */
    struct Stats
    {
        uint64_t memoryHits = 0;
        uint64_t diskHits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;     ///< entries dropped by the budget
        uint64_t residentBytes = 0; ///< approx bytes currently resident
        uint64_t quarantined = 0;   ///< corrupt artifacts set aside
    };
    Stats stats() const RPPM_EXCLUDES(mutex_);

    /**
     * Shed roughly @p bytes of least-recently-used *completed* entries
     * right now, independent of the configured budget — the server's
     * graceful-degradation hook. Returns the bytes actually freed.
     * In-flight computations are never shed, outstanding shared_ptr
     * holders keep their profiles, and serialized artifacts stay on
     * disk, so a shed profile reloads cheaply on its next request.
     */
    uint64_t shedBytes(uint64_t bytes) RPPM_EXCLUDES(mutex_);

    /** Path the serialized tier uses for a key (for tests/tools). */
    std::string pathFor(const std::string &workload,
                        const ProfilerOptions &opts) const
        RPPM_EXCLUDES(mutex_);

  private:
    mutable Mutex mutex_;
    std::unordered_map<std::string, std::shared_future<ProfilePtr>> entries_
        RPPM_GUARDED_BY(mutex_);
    std::string dir_ RPPM_GUARDED_BY(mutex_);
    Stats stats_ RPPM_GUARDED_BY(mutex_);
    /** Recency/bytes bookkeeping for *completed* entries only. */
    LruBudget<std::string> lru_ RPPM_GUARDED_BY(mutex_);
    uint64_t maxResidentBytes_ RPPM_GUARDED_BY(mutex_) = 0;
};

} // namespace rppm

#endif // RPPM_STUDY_PROFILE_CACHE_HH

#include "study/source.hh"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/mmap.hh"
#include "study/profile_cache.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stream.hh"
#include "workload/workload.hh"

namespace rppm {

/**
 * Immutable-after-publish state. Each lazily built member (trace,
 * columnar view) is initialized exactly once inside its std::once_flag
 * and never written again; std::call_once makes the completed write
 * visible to every subsequent caller, after which reads are lock-free.
 * With profile and trace-build of *distinct* workloads overlapping
 * inside one Study — and the parallel profiler's own pool reading the
 * columnar view from several threads — this is what keeps the source
 * data-race-free without serializing readers behind a mutex
 * (tests/test_profile_parallel.cc hammers it under TSan).
 */
struct WorkloadSource::State
{
    // Shared-state discipline (thread_annotations.hh has no vocabulary
    // for once_flag publication, so it is spelled out here instead):
    // name/spec/fixedProfile are set in the constructor and const
    // afterwards; trace and columnar are written exactly once, inside
    // their std::call_once, and are immutable after it returns. Nothing
    // here may ever be guarded by a mutex — lock-free reads after
    // publication are the point (see file comment in source.hh).
    std::string name;
    std::optional<WorkloadSpec> spec;
    std::shared_ptr<const WorkloadProfile> fixedProfile;
    std::string tracePath; ///< file-backed source; empty otherwise
    uint64_t fileBytes = 0;

    std::once_flag traceOnce;
    std::once_flag columnarOnce;
    std::optional<WorkloadTrace> trace;    ///< written once in traceOnce
    std::optional<ColumnarTrace> columnar; ///< written once in columnarOnce
};

WorkloadSource::WorkloadSource(WorkloadSpec spec)
    : state_(std::make_shared<State>())
{
    state_->name = spec.name;
    state_->spec = std::move(spec);
}

WorkloadSource::WorkloadSource(WorkloadTrace trace)
    : state_(std::make_shared<State>())
{
    state_->name = trace.name;
    state_->trace = std::move(trace);
}

WorkloadSource::WorkloadSource(ColumnarTrace trace)
    : state_(std::make_shared<State>())
{
    state_->name = trace.name;
    state_->columnar = std::move(trace);
}

WorkloadSource::WorkloadSource(WorkloadProfile profile)
    : state_(std::make_shared<State>())
{
    state_->name = profile.name;
    state_->fixedProfile =
        std::make_shared<const WorkloadProfile>(std::move(profile));
}

WorkloadSource::WorkloadSource(std::shared_ptr<State> state)
    : state_(std::move(state))
{
}

WorkloadSource
WorkloadSource::fromTraceFile(const std::string &path)
{
    auto state = std::make_shared<State>();
    // Index the container now: the workload name and file size come out
    // of the header walk, and a truncated or corrupt file is rejected at
    // registration instead of at first profile request.
    FdFile file(path);
    const TraceFileLayout layout = indexTraceFile(file);
    state->name = layout.name;
    state->tracePath = path;
    state->fileBytes = layout.fileSize;
    return WorkloadSource(std::move(state));
}

const std::string &
WorkloadSource::name() const
{
    return state_->name;
}

bool
WorkloadSource::hasTrace() const
{
    return state_->spec.has_value() || state_->trace.has_value() ||
        state_->columnar.has_value() || !state_->tracePath.empty();
}

const WorkloadTrace &
WorkloadSource::trace(unsigned jobs) const
{
    State &s = *state_;
    // An exception inside call_once (profile-only source) leaves the
    // flag unset, so every caller observes the same failure.
    std::call_once(s.traceOnce, [&] {
        if (s.trace)
            return; // trace-backed source: published at construction
        if (s.columnar || !s.tracePath.empty()) {
            // Columnar- or file-backed source: reconstruct the AoS form
            // from the columnar view (the conversion is lossless in
            // both directions; columnar() maps the file if needed).
            s.trace = columnar(jobs).toWorkload();
            return;
        }
        if (!s.spec) {
            throw std::logic_error(
                "WorkloadSource '" + s.name +
                "' is profile-only: no trace available");
        }
        s.trace = generateWorkload(*s.spec, jobs);
    });
    return *s.trace;
}

const ColumnarTrace &
WorkloadSource::columnar(unsigned jobs) const
{
    // Both members are immutable once their call_once returns, so the
    // references stay valid forever.
    State &s = *state_;
    std::call_once(s.columnarOnce, [&] {
        if (s.columnar)
            return; // columnar-backed source: published at construction
        if (!s.tracePath.empty()) {
            // File-backed source whose consumer needs the in-memory
            // view: a zero-copy mmap view keeps the page cache as the
            // backing store.
            s.columnar = loadTraceViewFromFile(s.tracePath);
            return;
        }
        s.columnar = ColumnarTrace::fromWorkload(trace(jobs), jobs);
    });
    return *s.columnar;
}

std::shared_ptr<const WorkloadProfile>
WorkloadSource::profile(const ProfilerOptions &opts,
                        ProfileCache &cache) const
{
    if (state_->fixedProfile)
        return state_->fixedProfile;
    return cache.getOrCompute(name(), opts, [this, &opts] {
        const State &s = *state_;
        if (!s.tracePath.empty() &&
            (opts.streamChunkRecords > 0 ||
             s.fileBytes >= kStreamFileBytesThreshold)) {
            // Big file, or an explicit chunk size: profile out-of-core
            // straight from the container, never materializing the
            // trace. Bit-identical to the in-memory engines, so cache
            // artifacts are interchangeable either way.
            return profileWorkloadStreamingFile(s.tracePath, opts);
        }
        return profileWorkload(columnar(opts.jobs), opts);
    });
}

} // namespace rppm

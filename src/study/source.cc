#include "study/source.hh"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "study/profile_cache.hh"
#include "workload/workload.hh"

namespace rppm {

struct WorkloadSource::State
{
    std::string name;
    std::optional<WorkloadSpec> spec;
    std::shared_ptr<const WorkloadProfile> fixedProfile;

    std::mutex mutex;
    std::optional<WorkloadTrace> trace;    ///< guarded by mutex until set
    std::optional<ColumnarTrace> columnar; ///< guarded by mutex until set
};

WorkloadSource::WorkloadSource(WorkloadSpec spec)
    : state_(std::make_shared<State>())
{
    state_->name = spec.name;
    state_->spec = std::move(spec);
}

WorkloadSource::WorkloadSource(WorkloadTrace trace)
    : state_(std::make_shared<State>())
{
    state_->name = trace.name;
    state_->trace = std::move(trace);
}

WorkloadSource::WorkloadSource(WorkloadProfile profile)
    : state_(std::make_shared<State>())
{
    state_->name = profile.name;
    state_->fixedProfile =
        std::make_shared<const WorkloadProfile>(std::move(profile));
}

const std::string &
WorkloadSource::name() const
{
    return state_->name;
}

bool
WorkloadSource::hasTrace() const
{
    return state_->spec.has_value() || state_->trace.has_value();
}

const WorkloadTrace &
WorkloadSource::trace() const
{
    State &s = *state_;
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.trace) {
        if (!s.spec) {
            throw std::logic_error(
                "WorkloadSource '" + s.name +
                "' is profile-only: no trace available");
        }
        s.trace = generateWorkload(*s.spec);
    }
    return *s.trace;
}

const ColumnarTrace &
WorkloadSource::columnar() const
{
    // Ensure the AoS trace exists first (takes and releases the mutex),
    // then build the columnar view under the lock. Both optionals are
    // write-once, so returning references is safe.
    const WorkloadTrace &aos = trace();
    State &s = *state_;
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.columnar)
        s.columnar = ColumnarTrace::fromWorkload(aos);
    return *s.columnar;
}

std::shared_ptr<const WorkloadProfile>
WorkloadSource::profile(const ProfilerOptions &opts,
                        ProfileCache &cache) const
{
    if (state_->fixedProfile)
        return state_->fixedProfile;
    return cache.getOrCompute(name(), opts, [this, &opts] {
        return profileWorkload(columnar(), opts);
    });
}

} // namespace rppm

#include "study/source.hh"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "study/profile_cache.hh"
#include "workload/workload.hh"

namespace rppm {

/**
 * Immutable-after-publish state. Each lazily built member (trace,
 * columnar view) is initialized exactly once inside its std::once_flag
 * and never written again; std::call_once makes the completed write
 * visible to every subsequent caller, after which reads are lock-free.
 * With profile and trace-build of *distinct* workloads overlapping
 * inside one Study — and the parallel profiler's own pool reading the
 * columnar view from several threads — this is what keeps the source
 * data-race-free without serializing readers behind a mutex
 * (tests/test_profile_parallel.cc hammers it under TSan).
 */
struct WorkloadSource::State
{
    // Shared-state discipline (thread_annotations.hh has no vocabulary
    // for once_flag publication, so it is spelled out here instead):
    // name/spec/fixedProfile are set in the constructor and const
    // afterwards; trace and columnar are written exactly once, inside
    // their std::call_once, and are immutable after it returns. Nothing
    // here may ever be guarded by a mutex — lock-free reads after
    // publication are the point (see file comment in source.hh).
    std::string name;
    std::optional<WorkloadSpec> spec;
    std::shared_ptr<const WorkloadProfile> fixedProfile;

    std::once_flag traceOnce;
    std::once_flag columnarOnce;
    std::optional<WorkloadTrace> trace;    ///< written once in traceOnce
    std::optional<ColumnarTrace> columnar; ///< written once in columnarOnce
};

WorkloadSource::WorkloadSource(WorkloadSpec spec)
    : state_(std::make_shared<State>())
{
    state_->name = spec.name;
    state_->spec = std::move(spec);
}

WorkloadSource::WorkloadSource(WorkloadTrace trace)
    : state_(std::make_shared<State>())
{
    state_->name = trace.name;
    state_->trace = std::move(trace);
}

WorkloadSource::WorkloadSource(ColumnarTrace trace)
    : state_(std::make_shared<State>())
{
    state_->name = trace.name;
    state_->columnar = std::move(trace);
}

WorkloadSource::WorkloadSource(WorkloadProfile profile)
    : state_(std::make_shared<State>())
{
    state_->name = profile.name;
    state_->fixedProfile =
        std::make_shared<const WorkloadProfile>(std::move(profile));
}

const std::string &
WorkloadSource::name() const
{
    return state_->name;
}

bool
WorkloadSource::hasTrace() const
{
    return state_->spec.has_value() || state_->trace.has_value() ||
        state_->columnar.has_value();
}

const WorkloadTrace &
WorkloadSource::trace(unsigned jobs) const
{
    State &s = *state_;
    // An exception inside call_once (profile-only source) leaves the
    // flag unset, so every caller observes the same failure.
    std::call_once(s.traceOnce, [&] {
        if (s.trace)
            return; // trace-backed source: published at construction
        if (s.columnar) {
            // Columnar-backed source: reconstruct the AoS form (the
            // conversion is lossless in both directions).
            s.trace = s.columnar->toWorkload();
            return;
        }
        if (!s.spec) {
            throw std::logic_error(
                "WorkloadSource '" + s.name +
                "' is profile-only: no trace available");
        }
        s.trace = generateWorkload(*s.spec, jobs);
    });
    return *s.trace;
}

const ColumnarTrace &
WorkloadSource::columnar(unsigned jobs) const
{
    // Both members are immutable once their call_once returns, so the
    // references stay valid forever.
    State &s = *state_;
    std::call_once(s.columnarOnce, [&] {
        if (s.columnar)
            return; // columnar-backed source: published at construction
        s.columnar = ColumnarTrace::fromWorkload(trace(jobs), jobs);
    });
    return *s.columnar;
}

std::shared_ptr<const WorkloadProfile>
WorkloadSource::profile(const ProfilerOptions &opts,
                        ProfileCache &cache) const
{
    if (state_->fixedProfile)
        return state_->fixedProfile;
    return cache.getOrCompute(name(), opts, [this, &opts] {
        return profileWorkload(columnar(opts.jobs), opts);
    });
}

} // namespace rppm

/**
 * @file
 * Workload sources for Study evaluation.
 *
 * A WorkloadSource is the facade's handle on "one workload", however it
 * was described: a synthetic WorkloadSpec (trace generated lazily), a
 * ready-made WorkloadTrace (e.g. hand-built or imported), or a bare
 * WorkloadProfile (profile-only — the analytical evaluators work, the
 * trace-consuming ones don't). Sources are cheap copyable handles onto
 * shared state with *immutable-after-publish* semantics: the trace and
 * its columnar view are each built exactly once under a std::once_flag
 * and never mutated afterwards, so any number of Study workers (and the
 * parallel profiler's own worker pool) can read them concurrently
 * without locks — ThreadSanitizer-clean by test. Profiles are produced
 * through the study's ProfileCache.
 */

#ifndef RPPM_STUDY_SOURCE_HH
#define RPPM_STUDY_SOURCE_HH

#include <memory>
#include <optional>
#include <string>

#include "profile/epoch_profile.hh"
#include "profile/profiler.hh"
#include "trace/columnar.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

namespace rppm {

class ProfileCache;

/**
 * File-backed sources at or above this size are profiled out-of-core by
 * default (profile() routes to the streaming engine with the default
 * chunk size unless the caller pinned streamChunkRecords). 256 MiB of
 * columns is where materializing the whole trace starts to contend with
 * the profiler's own working set on small machines; below it the fused
 * and parallel engines win on constant factors.
 */
constexpr uint64_t kStreamFileBytesThreshold = uint64_t{256} << 20;

/** Shared immutable-after-creation handle on one workload. */
class WorkloadSource
{
  public:
    /** Source backed by a spec; the trace is generated on first use. */
    explicit WorkloadSource(WorkloadSpec spec);

    /** Source backed by an existing trace. */
    explicit WorkloadSource(WorkloadTrace trace);

    /**
     * Source backed by an existing columnar trace — e.g. a zero-copy
     * mmap view from loadTraceView(); borrowed storage stays borrowed
     * (the trace carries its own file-image keepalive), so profiling
     * such a source reads straight out of the page cache. The AoS view
     * is reconstructed lazily only if a consumer asks for trace().
     */
    explicit WorkloadSource(ColumnarTrace trace);

    /** Profile-only source: analytical evaluators only. */
    explicit WorkloadSource(WorkloadProfile profile);

    /**
     * Source backed by an RPPMTRC file that is *not* loaded up front:
     * construction only indexes the container (so structural defects
     * surface immediately) and records its size. profile() streams the
     * file out-of-core when it is large (>= kStreamFileBytesThreshold)
     * or when opts.streamChunkRecords asks for it; only consumers that
     * need the in-memory views (trace()/columnar()) materialize the
     * trace, lazily. Throws std::invalid_argument on a malformed file.
     */
    static WorkloadSource fromTraceFile(const std::string &path);

    /** The workload's name (grid axis label). */
    const std::string &name() const;

    /** True when a trace is available (spec- or trace-backed). */
    bool hasTrace() const;

    /**
     * The workload trace, generating it from the spec on first call
     * (on up to @p jobs synthesis workers; 0 = all hardware threads —
     * the trace is bit-identical for every job count, so concurrent
     * callers with different values are fine). Thread-safe,
     * immutable-after-publish; throws std::logic_error on a
     * profile-only source.
     */
    const WorkloadTrace &trace(unsigned jobs = 1) const;

    /**
     * The columnar view of the trace, built (and cached) on first call —
     * the representation the fused profiler consumes, so a Study grid
     * converts each workload at most once. Thread-safe,
     * immutable-after-publish; throws std::logic_error on a
     * profile-only source.
     */
    const ColumnarTrace &columnar(unsigned jobs = 1) const;

    /**
     * The workload profile for @p opts, produced through @p cache.
     * opts.jobs drives both trace synthesis and the profiler's worker
     * pool (the profile content is identical for every job count).
     * File-backed sources stream the file out-of-core when
     * opts.streamChunkRecords > 0 or the file is at least
     * kStreamFileBytesThreshold bytes; the resulting profile (and its
     * cache artifact) is bit-identical to the in-memory engines', so
     * the routing is invisible to the cache. Profile-only sources
     * return their fixed profile regardless of @p opts. Thread-safe.
     */
    std::shared_ptr<const WorkloadProfile>
    profile(const ProfilerOptions &opts, ProfileCache &cache) const;

  private:
    struct State;
    explicit WorkloadSource(std::shared_ptr<State> state);
    std::shared_ptr<State> state_;
};

} // namespace rppm

#endif // RPPM_STUDY_SOURCE_HH

#include "study/study.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "arch/component_key.hh"
#include "common/stats.hh"
#include "study/executor.hh"

namespace rppm {

// ---------------------------------------------------------- StudyResult ---

StudyResult::StudyResult(std::vector<std::string> workloads,
                         std::vector<std::string> configs,
                         std::vector<std::string> evaluators,
                         std::vector<Evaluation> cells)
    : workloads_(std::move(workloads)), configs_(std::move(configs)),
      evaluators_(std::move(evaluators)), cells_(std::move(cells))
{
}

namespace {

size_t
indexOf(const std::vector<std::string> &axis, const std::string &label)
{
    for (size_t i = 0; i < axis.size(); ++i) {
        if (axis[i] == label)
            return i;
    }
    return axis.size();
}

/** Minimal JSON string escaping for names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

/** CSV-escape a field (quote when it contains a separator). */
std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += '"';
    return out;
}

} // namespace

const Evaluation *
StudyResult::find(const std::string &workload, const std::string &config,
                  const std::string &evaluator) const
{
    const size_t w = indexOf(workloads_, workload);
    const size_t c = indexOf(configs_, config);
    const size_t e = indexOf(evaluators_, evaluator);
    if (w == workloads_.size() || c == configs_.size() ||
        e == evaluators_.size()) {
        return nullptr;
    }
    const size_t idx =
        (w * configs_.size() + c) * evaluators_.size() + e;
    return &cells_[idx];
}

const Evaluation &
StudyResult::at(const std::string &workload, const std::string &config,
                const std::string &evaluator) const
{
    const Evaluation *cell = find(workload, config, evaluator);
    if (!cell) {
        throw std::out_of_range("no study cell (" + workload + ", " +
                                config + ", " + evaluator + ")");
    }
    return *cell;
}

std::vector<const Evaluation *>
StudyResult::sweep(const std::string &workload,
                   const std::string &evaluator) const
{
    std::vector<const Evaluation *> cells;
    cells.reserve(configs_.size());
    for (const std::string &config : configs_)
        cells.push_back(&at(workload, config, evaluator));
    return cells;
}

double
StudyResult::errorVs(const std::string &workload, const std::string &config,
                     const std::string &evaluator,
                     const std::string &oracle) const
{
    const double oracleCycles = at(workload, config, oracle).cycles;
    if (oracleCycles == 0.0) {
        throw std::domain_error(
            "errorVs: oracle cell (" + workload + ", " + config + ", " +
            oracle + ") has zero cycles; relative error is undefined");
    }
    return absRelativeError(at(workload, config, evaluator).cycles,
                            oracleCycles);
}

std::string
StudyResult::csv() const
{
    std::ostringstream os;
    os.precision(17);
    os << "workload,config,evaluator,cycles,seconds\n";
    for (const Evaluation &cell : cells_) {
        os << csvEscape(cell.workload) << ',' << csvEscape(cell.config)
           << ',' << csvEscape(cell.evaluator) << ',' << cell.cycles << ','
           << cell.seconds << '\n';
    }
    return os.str();
}

std::string
StudyResult::json() const
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"cells\": [\n";
    for (size_t i = 0; i < cells_.size(); ++i) {
        const Evaluation &cell = cells_[i];
        os << "    {\"workload\": \"" << jsonEscape(cell.workload)
           << "\", \"config\": \"" << jsonEscape(cell.config)
           << "\", \"evaluator\": \"" << jsonEscape(cell.evaluator)
           << "\", \"cycles\": " << cell.cycles
           << ", \"seconds\": " << cell.seconds;
        if (!cell.threadSeconds.empty()) {
            os << ", \"thread_seconds\": [";
            for (size_t t = 0; t < cell.threadSeconds.size(); ++t) {
                os << (t > 0 ? ", " : "") << cell.threadSeconds[t];
            }
            os << ']';
        }
        os << '}' << (i + 1 < cells_.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
    return os.str();
}

namespace {

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open '" + path + "' for writing");
    os << content;
    if (!os)
        throw std::runtime_error("error writing '" + path + "'");
}

} // namespace

void
StudyResult::saveCsv(const std::string &path) const
{
    writeFile(path, csv());
}

void
StudyResult::saveJson(const std::string &path) const
{
    writeFile(path, json());
}

// ---------------------------------------------------------------- Study ---

Study::Study() = default;

namespace {

/** Names are registry keys; a duplicate would silently shadow the
 *  earlier axis entry in every name-keyed StudyResult lookup. */
void
requireFresh(const std::vector<std::string> &names, const std::string &name,
             const char *axis)
{
    for (const std::string &existing : names) {
        if (existing == name) {
            throw std::invalid_argument(
                std::string("duplicate ") + axis + " label '" + name +
                "' in study");
        }
    }
}

} // namespace

Study &
Study::add(WorkloadSource source)
{
    std::vector<std::string> names;
    for (const WorkloadSource &existing : sources_)
        names.push_back(existing.name());
    requireFresh(names, source.name(), "workload");
    sources_.push_back(std::move(source));
    return *this;
}

Study &
Study::addWorkload(const WorkloadSpec &spec)
{
    return add(WorkloadSource(spec));
}

Study &
Study::addWorkload(const SuiteEntry &entry)
{
    return add(WorkloadSource(entry.spec));
}

Study &
Study::addWorkload(WorkloadTrace trace)
{
    return add(WorkloadSource(std::move(trace)));
}

Study &
Study::addWorkload(WorkloadProfile profile)
{
    return add(WorkloadSource(std::move(profile)));
}

Study &
Study::addSuite(const std::vector<SuiteEntry> &entries)
{
    for (const SuiteEntry &entry : entries)
        addWorkload(entry);
    return *this;
}

Study &
Study::addConfig(MulticoreConfig cfg)
{
    std::vector<std::string> names;
    for (const MulticoreConfig &existing : configs_)
        names.push_back(existing.name);
    requireFresh(names, cfg.name, "config");
    configs_.push_back(std::move(cfg));
    return *this;
}

Study &
Study::addConfigs(const std::vector<MulticoreConfig> &cfgs)
{
    for (const MulticoreConfig &cfg : cfgs)
        addConfig(cfg);
    return *this;
}

Study &
Study::addEvaluator(const std::string &registeredName)
{
    return addEvaluator(makeEvaluator(registeredName));
}

Study &
Study::addEvaluator(std::unique_ptr<Evaluator> evaluator)
{
    if (!evaluator)
        throw std::invalid_argument("null evaluator");
    std::vector<std::string> names;
    for (const auto &existing : evaluators_)
        names.push_back(existing->label());
    requireFresh(names, evaluator->label(), "evaluator");
    evaluators_.push_back(std::move(evaluator));
    return *this;
}

Study &
Study::jobs(unsigned n)
{
    jobs_ = n;
    return *this;
}

Study &
Study::profileDirectory(std::string dir)
{
    cache_.setDirectory(std::move(dir));
    return *this;
}

Study &
Study::profilerOptions(const ProfilerOptions &opts)
{
    options_.profiler = opts;
    return *this;
}

Study &
Study::rppmOptions(const RppmOptions &opts)
{
    options_.rppm = opts;
    return *this;
}

Study &
Study::simOptions(const SimOptions &opts)
{
    options_.sim = opts;
    return *this;
}

Study &
Study::memoization(bool on)
{
    memoize_ = on;
    return *this;
}

const WorkloadSource &
Study::sourceByName(const std::string &name) const
{
    for (const WorkloadSource &source : sources_) {
        if (source.name() == name)
            return source;
    }
    throw std::invalid_argument("no workload '" + name + "' in study");
}

std::shared_ptr<const WorkloadProfile>
Study::profile(const std::string &workload)
{
    return sourceByName(workload).profile(options_.profiler, cache_);
}

StudyResult
Study::run()
{
    if (sources_.empty())
        throw std::invalid_argument("study has no workloads");
    if (configs_.empty())
        throw std::invalid_argument("study has no configurations");
    if (evaluators_.empty())
        throw std::invalid_argument("study has no evaluators");

    // Duplicate axis labels are rejected at insertion time (add,
    // addConfig, addEvaluator), so the axes are unique by construction
    // here.
    std::vector<std::string> workloadNames, configNames, evaluatorNames;
    for (const WorkloadSource &source : sources_)
        workloadNames.push_back(source.name());
    for (const MulticoreConfig &cfg : configs_)
        configNames.push_back(cfg.name);
    for (const auto &evaluator : evaluators_)
        evaluatorNames.push_back(evaluator->label());

    // Trace-consuming backends cannot serve profile-only sources.
    for (const auto &evaluator : evaluators_) {
        if (!evaluator->needsTrace())
            continue;
        for (const WorkloadSource &source : sources_) {
            if (!source.hasTrace()) {
                throw std::invalid_argument(
                    "evaluator '" + evaluator->label() +
                    "' needs a trace but workload '" + source.name() +
                    "' is profile-only");
            }
        }
    }

    for (const MulticoreConfig &cfg : configs_)
        cfg.validate();

    // Cold-start pipeline: synthesize the trace and compute the profile
    // of every trace-backed workload on the worker pool *before* grid
    // evaluation. Without this, the cell shards of the first workload
    // are claimed by all workers at once and every one of them blocks
    // on the same in-flight ProfileCache future while the remaining
    // workloads' builds sit idle — a cold multi-kernel Study would
    // serialize its profile phase. With it, distinct workloads' trace
    // synthesis and profiling overlap (and each profile may itself fan
    // out further when options().profiler.jobs > 1). Traces are only
    // forced eagerly when some evaluator replays them: profile() pulls
    // the trace lazily on a cache miss, so a warm run against a
    // serialized profile tier still skips trace synthesis entirely.
    ParallelExecutor executor(jobs_);
    const bool anyProfileUser =
        std::any_of(evaluators_.begin(), evaluators_.end(),
                    [](const auto &e) { return !e->needsTrace(); });
    const bool anyTraceUser =
        std::any_of(evaluators_.begin(), evaluators_.end(),
                    [](const auto &e) { return e->needsTrace(); });
    executor.forEach(sources_.size(), [&](size_t w) {
        const WorkloadSource &source = sources_[w];
        if (!source.hasTrace())
            return;
        if (anyTraceUser)
            source.trace(options_.profiler.jobs);
        if (anyProfileUser)
            source.profile(options_.profiler, cache_);
    });

    const size_t numCells =
        sources_.size() * configs_.size() * evaluators_.size();
    std::vector<Evaluation> cells(numCells);
    const auto cellIndex = [&](size_t w, size_t c, size_t e) {
        return (w * configs_.size() + c) * evaluators_.size() + e;
    };

    // Batched grid execution: the worker pool's unit of work is a shard
    // of cells rather than one cell. For memo-backed evaluators the
    // shard plan orders each (workload, evaluator) row's design points
    // by component key — points sharing sub-configs run adjacently, so
    // the second of two cache neighbours hits the component caches the
    // first just filled — and groups points with *equal* keys (identical
    // in every field any component reads) into one shard so they never
    // race to evaluate the same components on two workers. Other
    // backends keep one cell per shard. Results still land by cell
    // index: the registry is deterministic for any job count and any
    // shard schedule.
    PredictionMemoPool pool;
    const bool anyMemoEvaluator =
        memoize_ && std::any_of(evaluators_.begin(), evaluators_.end(),
                                [](const auto &e) {
                                    return e->usesComponentMemo();
                                });
    std::vector<size_t> order(configs_.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::string> cfgKeys;
    if (anyMemoEvaluator) {
        cfgKeys.reserve(configs_.size());
        for (const MulticoreConfig &cfg : configs_)
            cfgKeys.push_back(configComponentKey(cfg));
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return cfgKeys[a] != cfgKeys[b] ? cfgKeys[a] < cfgKeys[b]
                                            : a < b;
        });
    }

    std::vector<std::vector<size_t>> shards;
    shards.reserve(numCells);
    for (size_t w = 0; w < sources_.size(); ++w) {
        for (size_t e = 0; e < evaluators_.size(); ++e) {
            const bool sharded =
                anyMemoEvaluator && evaluators_[e]->usesComponentMemo();
            if (!sharded) {
                for (size_t c = 0; c < configs_.size(); ++c)
                    shards.push_back({cellIndex(w, c, e)});
                continue;
            }
            for (size_t i = 0; i < order.size(); ++i) {
                if (i == 0 || cfgKeys[order[i]] != cfgKeys[order[i - 1]])
                    shards.emplace_back();
                shards.back().push_back(cellIndex(w, order[i], e));
            }
        }
    }

    // Result-registry discipline: `cells` is pre-sized and each shard
    // writes only its own cell indices, so workers never alias a slot
    // and the vector needs no lock (the executor's joins publish the
    // writes). The shard plan guarantees index-disjointness; anything
    // that breaks it is a data race, not just a determinism bug.
    executor.forEach(shards.size(), [&](size_t s) {
        for (const size_t idx : shards[s]) {
            const size_t e = idx % evaluators_.size();
            const size_t c = (idx / evaluators_.size()) % configs_.size();
            const size_t w = idx / (evaluators_.size() * configs_.size());
            const EvalContext ctx{sources_[w], options_, cache_,
                                  memoize_ ? &pool : nullptr};
            cells[idx] = evaluators_[e]->evaluate(ctx, configs_[c]);
        }
    });

    lastMemoStats_.reset();
    if (!pool.empty()) {
        // One-line cache-efficiency summary so memoization wins (or
        // their absence) are visible per study; RPPM_STUDY_QUIET=1
        // silences it for embedders (the data stays available via
        // lastMemoStats()).
        lastMemoStats_ = pool.stats();
        // rppm-lint: rng-ok(gates the stderr summary line only)
        const char *quiet = std::getenv("RPPM_STUDY_QUIET");
        if (!quiet || quiet[0] == '\0' || quiet[0] == '0') {
            std::fprintf(stderr, "Study: component memo: %s\n",
                         lastMemoStats_->summary().c_str());
        }
    }

    return StudyResult(std::move(workloadNames), std::move(configNames),
                       std::move(evaluatorNames), std::move(cells));
}

} // namespace rppm

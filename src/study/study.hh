/**
 * @file
 * The Study facade: the single front door for all evaluation.
 *
 * A Study owns a set of workloads (specs, traces or bare profiles), a
 * set of multicore configurations and a set of evaluator backends, and
 * evaluates the full (workload x config x evaluator) grid:
 *
 *     StudyResult r = Study()
 *         .addSuite(parsecSuite())
 *         .addConfigs(tableIvConfigs())
 *         .addEvaluator("rppm")
 *         .addEvaluator("sim")
 *         .jobs(8)
 *         .run();
 *     double err = r.errorVs("Vips", "Base", "rppm", "sim");
 *
 * Profiles are produced at most once per (workload, profiler options)
 * through a two-tier ProfileCache (in-memory, plus serialized on disk
 * when profileDirectory() is set), and grid cells are evaluated on a
 * worker pool with deterministic result ordering: jobs(1) and jobs(16)
 * return identical registries. The result is a queryable registry with
 * CSV and JSON export.
 *
 * This replaces the hand-wired generate/simulate/profile/predict chains
 * that bench/ and examples/ used to carry; rppm::predict and friends
 * remain available for single evaluations.
 */

#ifndef RPPM_STUDY_STUDY_HH
#define RPPM_STUDY_STUDY_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "rppm/memo.hh"
#include "study/evaluator.hh"
#include "study/profile_cache.hh"
#include "study/source.hh"
#include "workload/suite.hh"

namespace rppm {

/** Queryable registry of a completed study grid. */
class StudyResult
{
  public:
    StudyResult() = default;
    StudyResult(std::vector<std::string> workloads,
                std::vector<std::string> configs,
                std::vector<std::string> evaluators,
                std::vector<Evaluation> cells);

    /** Axis labels, in insertion order. */
    const std::vector<std::string> &workloads() const { return workloads_; }
    const std::vector<std::string> &configs() const { return configs_; }
    const std::vector<std::string> &evaluators() const
    {
        return evaluators_;
    }

    /** All cells, ordered workload-major, then config, then evaluator. */
    const std::vector<Evaluation> &cells() const { return cells_; }

    /** Cell lookup; find() returns nullptr / at() throws
     *  std::out_of_range when absent. */
    const Evaluation *find(const std::string &workload,
                           const std::string &config,
                           const std::string &evaluator) const;
    const Evaluation &at(const std::string &workload,
                         const std::string &config,
                         const std::string &evaluator) const;

    /** All cells of one (workload, evaluator) pair, per config. */
    std::vector<const Evaluation *>
    sweep(const std::string &workload, const std::string &evaluator) const;

    /**
     * Absolute relative cycle error of @p evaluator versus @p oracle on
     * one grid point: |eval - oracle| / oracle. Throws std::domain_error
     * when the oracle cell reports zero cycles (the error is undefined).
     */
    double errorVs(const std::string &workload, const std::string &config,
                   const std::string &evaluator,
                   const std::string &oracle = "sim") const;

    /** Export: one row per cell (workload, config, evaluator, cycles,
     *  seconds). */
    std::string csv() const;
    std::string json() const;
    void saveCsv(const std::string &path) const;
    void saveJson(const std::string &path) const;

  private:
    std::vector<std::string> workloads_;
    std::vector<std::string> configs_;
    std::vector<std::string> evaluators_;
    std::vector<Evaluation> cells_;
};

/** Builder/executor for evaluation grids (see file comment). */
class Study
{
  public:
    Study();

    // --- Workload axis. Axis entries are keyed by name in StudyResult
    // lookups, so every add* overload (and addConfig/addEvaluator below)
    // throws std::invalid_argument on a duplicate name instead of
    // silently shadowing the earlier entry.
    Study &add(WorkloadSource source);
    Study &addWorkload(const WorkloadSpec &spec);
    Study &addWorkload(const SuiteEntry &entry);
    Study &addWorkload(WorkloadTrace trace);
    Study &addWorkload(WorkloadProfile profile);
    Study &addSuite(const std::vector<SuiteEntry> &entries);

    // --- Configuration axis.
    Study &addConfig(MulticoreConfig cfg);
    Study &addConfigs(const std::vector<MulticoreConfig> &cfgs);

    // --- Evaluator axis.
    Study &addEvaluator(const std::string &registeredName);
    Study &addEvaluator(std::unique_ptr<Evaluator> evaluator);

    // --- Knobs.
    /** Worker pool size; 1 = serial (default), 0 = all hardware threads. */
    Study &jobs(unsigned n);
    /** Enable the serialized profile tier rooted at @p dir. */
    Study &profileDirectory(std::string dir);
    Study &profilerOptions(const ProfilerOptions &opts);
    Study &rppmOptions(const RppmOptions &opts);
    Study &simOptions(const SimOptions &opts);

    /**
     * Share component evaluations (StatStack bundles, per-thread Eq.-1
     * results, sync executions) across the grid's design points through
     * a PredictionMemoPool, with design points sorted and sharded by
     * component key. On by default; predictions are bit-identical either
     * way — disable only to time or differentially test the naive
     * per-point path.
     */
    Study &memoization(bool on);

    // --- Introspection.
    const std::vector<WorkloadSource> &sources() const { return sources_; }
    const StudyOptions &options() const { return options_; }
    ProfileCache &profiles() { return cache_; }

    /** Cache-efficiency counters of the last run() (empty before the
     *  first run or when memoization was off / never engaged). */
    const std::optional<MemoStats> &lastMemoStats() const
    {
        return lastMemoStats_;
    }

    /** One workload's profile under the study's profiler options,
     *  through the cache (profiling it now if needed). */
    std::shared_ptr<const WorkloadProfile>
    profile(const std::string &workload);

    /**
     * Evaluate the full grid. Requires at least one workload, one config
     * and one evaluator; throws std::invalid_argument otherwise, or when
     * a trace-consuming evaluator meets a profile-only workload.
     * Evaluation errors propagate (first one wins).
     */
    StudyResult run();

  private:
    const WorkloadSource &sourceByName(const std::string &name) const;

    std::vector<WorkloadSource> sources_;
    std::vector<MulticoreConfig> configs_;
    std::vector<std::unique_ptr<Evaluator>> evaluators_;
    StudyOptions options_;
    ProfileCache cache_;
    unsigned jobs_ = 1;
    bool memoize_ = true;
    std::optional<MemoStats> lastMemoStats_;
};

} // namespace rppm

#endif // RPPM_STUDY_STUDY_HH

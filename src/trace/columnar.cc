#include "trace/columnar.hh"

#include <map>

#include "common/assert.hh"
#include "common/parallel.hh"

namespace rppm {

namespace {

template <typename T>
std::vector<T>
copyOut(const Column<T> &col)
{
    return std::vector<T>(col.begin(), col.end());
}

} // namespace

bool
ColumnarTrace::isBorrowed() const
{
    for (const ThreadColumns &t : threads) {
        if (t.op.isBorrowed() || t.pc.isBorrowed() ||
            t.dep1.isBorrowed() || t.dep2.isBorrowed() ||
            t.addr.isBorrowed() || t.taken.isBorrowed() ||
            t.syncPos.isBorrowed() || t.syncType.isBorrowed() ||
            t.syncArg.isBorrowed()) {
            return true;
        }
    }
    return false;
}

ColumnarTrace
ColumnarTrace::toOwned() const
{
    ColumnarTrace out;
    out.name = name;
    out.threads.resize(threads.size());
    for (size_t t = 0; t < threads.size(); ++t) {
        const ThreadColumns &src = threads[t];
        ThreadColumns &dst = out.threads[t];
        dst.op = copyOut(src.op);
        dst.pc = copyOut(src.pc);
        dst.dep1 = copyOut(src.dep1);
        dst.dep2 = copyOut(src.dep2);
        dst.addr = copyOut(src.addr);
        dst.taken = copyOut(src.taken);
        dst.syncPos = copyOut(src.syncPos);
        dst.syncType = copyOut(src.syncType);
        dst.syncArg = copyOut(src.syncArg);
    }
    return out;
}

uint64_t
ColumnarTrace::totalOps() const
{
    uint64_t n = 0;
    for (const ThreadColumns &t : threads)
        n += t.numOps();
    return n;
}

uint64_t
ColumnarTrace::countSync(SyncType type) const
{
    uint64_t n = 0;
    for (const ThreadColumns &t : threads) {
        for (SyncType s : t.syncType) {
            if (s == type)
                ++n;
        }
    }
    return n;
}

ColumnarTrace
ColumnarTrace::fromWorkload(const WorkloadTrace &trace)
{
    return fromWorkload(trace, 1);
}

ColumnarTrace
ColumnarTrace::fromWorkload(const WorkloadTrace &trace, unsigned jobs)
{
    ColumnarTrace out;
    out.name = trace.name;
    out.threads.resize(trace.threads.size());
    // Each thread's columns derive only from its own record stream, so
    // conversion fans out one task per thread; the output is identical
    // for every job count.
    ParallelExecutor pool(jobs);
    pool.forEach(trace.threads.size(), [&](size_t tid) {
        const auto &records = trace.threads[tid].records;
        ThreadColumns &cols = out.threads[tid];
        cols.op.reserve(records.size());
        cols.pc.reserve(records.size());
        cols.dep1.reserve(records.size());
        cols.dep2.reserve(records.size());
        for (size_t i = 0; i < records.size(); ++i) {
            const TraceRecord &rec = records[i];
            if (rec.isSync()) {
                cols.op.push_back(OpClass::IntAlu);
                cols.pc.push_back(0);
                cols.dep1.push_back(0);
                cols.dep2.push_back(0);
                cols.syncPos.push_back(i);
                cols.syncType.push_back(rec.sync);
                cols.syncArg.push_back(rec.syncArg);
                continue;
            }
            cols.op.push_back(rec.op);
            cols.pc.push_back(rec.pc);
            cols.dep1.push_back(rec.dep1);
            cols.dep2.push_back(rec.dep2);
            if (isMemory(rec.op))
                cols.addr.push_back(rec.addr);
            else if (rec.op == OpClass::Branch)
                cols.taken.push_back(rec.taken ? 1 : 0);
        }
    });
    return out;
}

WorkloadTrace
ColumnarTrace::toWorkload() const
{
    WorkloadTrace out;
    out.name = name;
    out.threads.resize(threads.size());
    for (size_t tid = 0; tid < threads.size(); ++tid) {
        ColumnCursor cur(threads[tid]);
        auto &records = out.threads[tid].records;
        records.reserve(threads[tid].numRecords());
        while (!cur.atEnd()) {
            TraceRecord rec;
            if (cur.atSync()) {
                rec.sync = cur.syncType();
                rec.syncArg = cur.syncArg();
            } else {
                rec.op = cur.op();
                rec.pc = cur.pc();
                rec.dep1 = cur.dep1();
                rec.dep2 = cur.dep2();
                if (isMemory(rec.op))
                    rec.addr = cur.addr();
                else if (rec.op == OpClass::Branch)
                    rec.taken = cur.taken();
            }
            records.push_back(rec);
            cur.advance();
        }
    }
    return out;
}

void
ColumnarTrace::validateColumnConsistency() const
{
    if (columnsValidated_->load(std::memory_order_acquire))
        return;
    for (const ThreadColumns &cols : threads) {
        const size_t records = cols.op.size();
        RPPM_REQUIRE(cols.pc.size() == records &&
                         cols.dep1.size() == records &&
                         cols.dep2.size() == records,
                     "dense column lengths disagree");
        RPPM_REQUIRE(cols.syncType.size() == cols.syncPos.size() &&
                         cols.syncArg.size() == cols.syncPos.size(),
                     "sync column lengths disagree");

        size_t mems = 0, branches = 0, syncIdx = 0;
        for (size_t i = 0; i < records; ++i) {
            const bool is_sync = syncIdx < cols.syncPos.size() &&
                cols.syncPos[syncIdx] == i;
            if (is_sync) {
                RPPM_REQUIRE(cols.op[i] == OpClass::IntAlu &&
                                 cols.pc[i] == 0 && cols.dep1[i] == 0 &&
                                 cols.dep2[i] == 0,
                             "sync slot carries micro-op data");
                const auto type =
                    static_cast<uint8_t>(cols.syncType[syncIdx]);
                RPPM_REQUIRE(
                    type != static_cast<uint8_t>(SyncType::None) &&
                        type < static_cast<uint8_t>(SyncType::NumTypes),
                    "sync type out of range");
                ++syncIdx;
                continue;
            }
            const auto op = static_cast<uint8_t>(cols.op[i]);
            RPPM_REQUIRE(op < static_cast<uint8_t>(OpClass::NumClasses),
                         "op class out of range");
            if (isMemory(cols.op[i]))
                ++mems;
            else if (cols.op[i] == OpClass::Branch)
                ++branches;
        }
        // Positions are matched in ascending record order, so any
        // duplicate, descending or out-of-range entry leaves syncIdx
        // short of the column length.
        RPPM_REQUIRE(syncIdx == cols.syncPos.size(),
                     "sync positions not ascending record indices");
        RPPM_REQUIRE(cols.addr.size() == mems,
                     "addr column length does not match memory op count");
        RPPM_REQUIRE(cols.taken.size() == branches,
                     "taken column length does not match branch count");
        for (uint8_t t : cols.taken)
            RPPM_REQUIRE(t <= 1, "branch outcome out of range");
    }
    columnsValidated_->store(true, std::memory_order_release);
}

std::unordered_map<uint32_t, uint32_t>
ColumnarTrace::validateAndBarrierPopulations() const
{
    std::vector<SyncSpan> spans;
    spans.reserve(threads.size());
    for (const ThreadColumns &cols : threads) {
        spans.push_back(SyncSpan{cols.syncType.data(), cols.syncArg.data(),
                                 cols.syncType.size(), cols.numRecords()});
    }
    return validateSyncAndBarrierPopulations(spans);
}

std::unordered_map<uint32_t, uint32_t>
validateSyncAndBarrierPopulations(const std::vector<SyncSpan> &threads)
{
    // One sweep over the sparse sync columns replaces what used to be two
    // full passes over the AoS records (WorkloadTrace::validate() plus
    // barrierPopulations()): structural invariants and barrier sizing
    // only ever depended on the sync events.
    RPPM_REQUIRE(!threads.empty(), "workload has no threads");

    std::vector<int> created(threads.size(), 0);
    std::vector<int> joined(threads.size(), 0);
    created[0] = 1; // main thread exists at startup

    // Barrier id -> bitmask-free set of referencing threads, kept as a
    // sorted map only long enough to count distinct users.
    std::unordered_map<uint32_t, std::vector<bool>> users;

    for (size_t tid = 0; tid < threads.size(); ++tid) {
        const SyncSpan &cols = threads[tid];
        std::map<uint32_t, int> lock_depth;
        for (size_t k = 0; k < cols.count; ++k) {
            const SyncType type = cols.type[k];
            const uint32_t arg = cols.arg[k];
            switch (type) {
              case SyncType::ThreadCreate:
                RPPM_REQUIRE(arg < threads.size(),
                             "create of unknown thread");
                RPPM_REQUIRE(arg != 0, "cannot create main thread");
                ++created[arg];
                break;
              case SyncType::ThreadJoin:
                RPPM_REQUIRE(arg < threads.size(), "join of unknown thread");
                ++joined[arg];
                break;
              case SyncType::MutexLock:
                ++lock_depth[arg];
                RPPM_REQUIRE(lock_depth[arg] == 1, "recursive mutex lock");
                break;
              case SyncType::MutexUnlock:
                --lock_depth[arg];
                RPPM_REQUIRE(lock_depth[arg] == 0,
                             "unlock of unheld mutex");
                break;
              case SyncType::BarrierWait:
              case SyncType::CondBarrier: {
                auto &tids = users[arg];
                if (tids.size() < threads.size())
                    tids.resize(threads.size(), false);
                tids[tid] = true;
                break;
              }
              default:
                break;
            }
        }
        for (const auto &[id, depth] : lock_depth) {
            RPPM_REQUIRE(depth == 0, "mutex held at thread exit");
        }
    }

    for (size_t tid = 1; tid < threads.size(); ++tid) {
        if (threads[tid].numRecords > 0) {
            RPPM_REQUIRE(created[tid] == 1,
                         "thread with records must be created exactly once");
        }
        RPPM_REQUIRE(joined[tid] <= 1, "thread joined more than once");
    }

    std::unordered_map<uint32_t, uint32_t> population;
    for (const auto &[id, tids] : users) {
        uint32_t n = 0;
        for (bool used : tids)
            n += used ? 1 : 0;
        population[id] = n;
    }
    return population;
}

} // namespace rppm

/**
 * @file
 * Columnar (structure-of-arrays) trace representation.
 *
 * The AoS TraceRecord is convenient for authoring (trace_builder) and for
 * the cycle-level simulator, but it is a poor fit for the profiler — the
 * hottest loop in the repository — which streams through billions of
 * records touching only a couple of fields per record kind. ColumnarTrace
 * stores each field as its own column, and the fields that only exist for
 * a subset of records are stored *sparsely*:
 *
 *   dense  (one entry per record):  op, pc, dep1, dep2
 *   sparse (one entry per subset):  addr  (memory records, in order)
 *                                   taken (branch records, in order)
 *                                   syncPos/syncType/syncArg (sync records)
 *
 * Sync record slots carry neutral dense values (IntAlu, pc 0, deps 0);
 * whether record i is a sync event is answered by syncPos, which also
 * lets a sequential consumer process the run of micro-ops up to the next
 * sync event without any per-record branching. A typical record costs
 * ~9 bytes here versus 24 in the AoS form, and structural validation plus
 * barrier-population discovery read only the sparse sync columns instead
 * of re-walking the whole trace.
 *
 * ColumnCursor provides the sequential view (the only access pattern the
 * profiler needs); toWorkload()/fromWorkload() convert to and from the
 * AoS form losslessly.
 */

#ifndef RPPM_TRACE_COLUMNAR_HH
#define RPPM_TRACE_COLUMNAR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/column.hh"
#include "common/mmap.hh"
#include "trace/trace.hh"

namespace rppm {

/**
 * One thread's trace as per-field columns (see file comment).
 *
 * Each column is a Column<T> (common/column.hh): the read API of a const
 * vector, but the storage may be *borrowed* from an mmap'd RPPMTRC image
 * instead of owned — loadTraceView() builds such zero-copy traces. The
 * enclosing ColumnarTrace keeps the backing file image alive.
 */
struct ThreadColumns
{
    // --- Dense columns, one entry per record.
    Column<OpClass> op;    ///< sync slots hold OpClass::IntAlu
    Column<uint32_t> pc;   ///< sync slots hold 0
    Column<uint16_t> dep1; ///< sync slots hold 0
    Column<uint16_t> dep2; ///< sync slots hold 0

    // --- Sparse columns.
    Column<uint64_t> addr;     ///< per memory record, in record order
    Column<uint8_t> taken;     ///< per branch record, 0/1
    Column<uint64_t> syncPos;  ///< record index of each sync record
    Column<SyncType> syncType; ///< parallel to syncPos
    Column<uint32_t> syncArg;  ///< parallel to syncPos

    size_t numRecords() const { return op.size(); }

    /** Micro-ops (sync records excluded). */
    uint64_t
    numOps() const
    {
        return static_cast<uint64_t>(op.size() - syncPos.size());
    }

    bool operator==(const ThreadColumns &) const = default;
};

/** Sequential reader over one thread's columns. */
class ColumnCursor
{
  public:
    explicit ColumnCursor(const ThreadColumns &cols) : cols_(&cols) {}

    /** Next record index to be consumed. */
    size_t index() const { return i_; }

    bool atEnd() const { return i_ >= cols_->numRecords(); }

    /** Record index of the next sync record at or after index(), or
     *  numRecords() when none remain. */
    size_t
    nextSyncPos() const
    {
        return syncIdx_ < cols_->syncPos.size() ?
            static_cast<size_t>(cols_->syncPos[syncIdx_]) :
            cols_->numRecords();
    }

    /** True when the record at index() is a sync event. */
    bool atSync() const { return i_ == nextSyncPos(); }

    // --- Micro-op fields at index() (only valid when !atSync()).
    OpClass op() const { return cols_->op[i_]; }
    uint32_t pc() const { return cols_->pc[i_]; }
    uint16_t dep1() const { return cols_->dep1[i_]; }
    uint16_t dep2() const { return cols_->dep2[i_]; }
    /** Memory address; only valid when op() is Load/Store. */
    uint64_t addr() const { return cols_->addr[memIdx_]; }
    /** Branch outcome; only valid when op() is Branch. */
    bool taken() const { return cols_->taken[brIdx_] != 0; }

    // --- Sync fields at index() (only valid when atSync()).
    SyncType syncType() const { return cols_->syncType[syncIdx_]; }
    uint32_t syncArg() const { return cols_->syncArg[syncIdx_]; }

    /**
     * Address of the @p k-th memory record at or after index(), or 0
     * when fewer remain. Lookahead for software prefetch: the sparse
     * addr column lists upcoming data addresses contiguously, something
     * the AoS record stream cannot offer without scanning.
     */
    uint64_t
    peekAddr(size_t k) const
    {
        const size_t j = memIdx_ + k;
        return j < cols_->addr.size() ? cols_->addr[j] : 0;
    }

    /** Advance past the current record, maintaining the sparse cursors. */
    void
    advance()
    {
        if (atSync()) {
            ++syncIdx_;
        } else {
            const OpClass cls = cols_->op[i_];
            if (isMemory(cls))
                ++memIdx_;
            else if (cls == OpClass::Branch)
                ++brIdx_;
        }
        ++i_;
    }

  private:
    const ThreadColumns *cols_;
    size_t i_ = 0;
    size_t memIdx_ = 0;
    size_t brIdx_ = 0;
    size_t syncIdx_ = 0;
};

/**
 * A complete multi-threaded workload trace in columnar form. Semantically
 * identical to WorkloadTrace (thread 0 is main, etc.); see trace.hh.
 */
struct ColumnarTrace
{
    std::string name;
    std::vector<ThreadColumns> threads;

    /**
     * Backing storage for borrowed columns. loadTraceView() points the
     * thread columns into this mmap'd image; it must outlive them, so it
     * rides along inside the trace (copies of the trace share it).
     * Null for fully-owned traces.
     */
    std::shared_ptr<const MappedFile> storage;

    size_t numThreads() const { return threads.size(); }

    /**
     * True when any column borrows storage it does not own (i.e. the
     * trace is a zero-copy view over an mmap'd file). Borrowed traces
     * are immutable; consumers that need to mutate must deep-copy via
     * toOwned().
     */
    bool isBorrowed() const;

    /** Deep copy with every column in owned (vector) storage. */
    ColumnarTrace toOwned() const;

    /** Total micro-ops across all threads. */
    uint64_t totalOps() const;

    /** Count of dynamic sync events of @p type across all threads. */
    uint64_t countSync(SyncType type) const;

    /** Lossless conversion from the AoS form. */
    static ColumnarTrace fromWorkload(const WorkloadTrace &trace);

    /** Convert on up to @p jobs worker threads (0 = all hardware
     *  threads), one task per trace thread; the columnar view is
     *  identical for every job count. */
    static ColumnarTrace fromWorkload(const WorkloadTrace &trace,
                                      unsigned jobs);

    /** Lossless conversion back to the AoS form. */
    WorkloadTrace toWorkload() const;

    /**
     * Validate the same structural invariants as WorkloadTrace::validate()
     * and return the barrier populations, in one sweep over the *sparse
     * sync columns only* — O(sync events), not O(records). Throws
     * std::invalid_argument on violation.
     */
    std::unordered_map<uint32_t, uint32_t> validateAndBarrierPopulations()
        const;

    /**
     * Cross-check that the dense and sparse columns are mutually
     * consistent (equal dense lengths; sync positions strictly ascending,
     * in range and carrying neutral dense values; addr/taken lengths
     * matching the memory-op/branch counts; enums in range). Sequential
     * consumers index the sparse columns blindly, so this must hold
     * before a hand-assembled or deserialized trace is walked. Throws
     * std::invalid_argument on violation. O(records), but touches only
     * the 1-byte op column and the sparse sync columns.
     *
     * Success is cached: repeated calls on the same trace (the simulator
     * dispatcher validates on every simulate() call) are O(1) after the
     * first pass. The cache lives behind a shared handle, so copies of a
     * validated trace — the Study framework and the profile cache pass
     * traces by value — inherit the cached success instead of re-walking
     * the op column per copy. Mutating `threads` after a successful
     * validation is not detected.
     */
    void validateColumnConsistency() const;

    /** Columns compare by content; the validation cache is ignored. */
    bool
    operator==(const ColumnarTrace &o) const
    {
        return threads == o.threads;
    }

  private:
    /** Shared across copies (see validateColumnConsistency); atomic so
     *  concurrent first validations of the same trace are a benign race
     *  instead of a data race. */
    std::shared_ptr<std::atomic<bool>> columnsValidated_ =
        std::make_shared<std::atomic<bool>>(false);
};

/** One thread's sync columns plus its record count — the entire input of
 *  structural workload validation (see validateSyncAndBarrierPopulations). */
struct SyncSpan
{
    const SyncType *type = nullptr;
    const uint32_t *arg = nullptr;
    size_t count = 0;
    uint64_t numRecords = 0;
};

/**
 * The body of ColumnarTrace::validateAndBarrierPopulations() over raw
 * sync-column spans: lets the out-of-core streaming profiler validate a
 * trace file and size its barriers from the resident sync columns alone,
 * without materializing a ColumnarTrace. Throws std::invalid_argument on
 * violation.
 */
std::unordered_map<uint32_t, uint32_t>
validateSyncAndBarrierPopulations(const std::vector<SyncSpan> &threads);

} // namespace rppm

#endif // RPPM_TRACE_COLUMNAR_HH

#include "trace/trace.hh"

#include <map>

#include "common/assert.hh"

namespace rppm {

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAdd:  return "FpAdd";
      case OpClass::FpMul:  return "FpMul";
      case OpClass::FpDiv:  return "FpDiv";
      case OpClass::Load:   return "Load";
      case OpClass::Store:  return "Store";
      case OpClass::Branch: return "Branch";
      default:              return "Unknown";
    }
}

const char *
syncTypeName(SyncType type)
{
    switch (type) {
      case SyncType::None:         return "None";
      case SyncType::ThreadCreate: return "ThreadCreate";
      case SyncType::ThreadJoin:   return "ThreadJoin";
      case SyncType::BarrierWait:  return "BarrierWait";
      case SyncType::MutexLock:    return "MutexLock";
      case SyncType::MutexUnlock:  return "MutexUnlock";
      case SyncType::CondBarrier:  return "CondBarrier";
      case SyncType::QueuePush:    return "QueuePush";
      case SyncType::QueuePop:     return "QueuePop";
      case SyncType::CondMarker:   return "CondMarker";
      default:                     return "Unknown";
    }
}

uint64_t
ThreadTrace::numOps() const
{
    uint64_t n = 0;
    for (const auto &rec : records) {
        if (!rec.isSync())
            ++n;
    }
    return n;
}

uint64_t
WorkloadTrace::totalOps() const
{
    uint64_t n = 0;
    for (const auto &t : threads)
        n += t.numOps();
    return n;
}

uint64_t
WorkloadTrace::countSync(SyncType type) const
{
    uint64_t n = 0;
    for (const auto &t : threads) {
        for (const auto &rec : t.records) {
            if (rec.sync == type)
                ++n;
        }
    }
    return n;
}

void
WorkloadTrace::validate() const
{
    RPPM_REQUIRE(!threads.empty(), "workload has no threads");

    std::vector<int> created(threads.size(), 0);
    std::vector<int> joined(threads.size(), 0);
    created[0] = 1; // main thread exists at startup

    for (size_t tid = 0; tid < threads.size(); ++tid) {
        std::map<uint32_t, int> lock_depth;
        for (const auto &rec : threads[tid].records) {
            switch (rec.sync) {
              case SyncType::ThreadCreate:
                RPPM_REQUIRE(rec.syncArg < threads.size(),
                             "create of unknown thread");
                RPPM_REQUIRE(rec.syncArg != 0, "cannot create main thread");
                ++created[rec.syncArg];
                break;
              case SyncType::ThreadJoin:
                RPPM_REQUIRE(rec.syncArg < threads.size(),
                             "join of unknown thread");
                ++joined[rec.syncArg];
                break;
              case SyncType::MutexLock:
                ++lock_depth[rec.syncArg];
                RPPM_REQUIRE(lock_depth[rec.syncArg] == 1,
                             "recursive mutex lock");
                break;
              case SyncType::MutexUnlock:
                --lock_depth[rec.syncArg];
                RPPM_REQUIRE(lock_depth[rec.syncArg] == 0,
                             "unlock of unheld mutex");
                break;
              default:
                break;
            }
        }
        for (const auto &[id, depth] : lock_depth) {
            RPPM_REQUIRE(depth == 0, "mutex held at thread exit");
        }
    }

    for (size_t tid = 1; tid < threads.size(); ++tid) {
        if (!threads[tid].records.empty()) {
            RPPM_REQUIRE(created[tid] == 1,
                         "thread with records must be created exactly once");
        }
        RPPM_REQUIRE(joined[tid] <= 1, "thread joined more than once");
    }
}

} // namespace rppm

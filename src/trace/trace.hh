/**
 * @file
 * Micro-op trace representation.
 *
 * A workload is a set of per-thread traces of TraceRecords. A record is
 * either a micro-op (with op class, PC, dependence distances and, for
 * memory ops, an address) or a synchronization event. Traces are the
 * common substrate of the whole repository: the multicore simulator
 * executes them with timing, and the RPPM profiler observes them to build
 * microarchitecture-independent profiles — exactly the role the dynamic
 * instruction stream plays for Pin in the paper.
 */

#ifndef RPPM_TRACE_TRACE_HH
#define RPPM_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rppm {

/** Functional classes of micro-ops; latencies are per-class (arch config). */
enum class OpClass : uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,
    NumClasses,
};

/** Number of OpClass values. */
constexpr size_t kNumOpClasses = static_cast<size_t>(OpClass::NumClasses);

/** Human-readable op class name. */
const char *opClassName(OpClass cls);

/** True for Load/Store. */
inline bool
isMemory(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

/**
 * Synchronization event types.
 *
 * The simulator gives these their dynamic semantics (who blocks depends on
 * runtime arrival order); the profiler records them as the workload's
 * synchronization profile. CondMarker corresponds to the paper's manual
 * source markers: it flags a point where a thread *could* wait on a
 * condition variable regardless of whether it actually waits at runtime.
 */
enum class SyncType : uint8_t
{
    None,
    ThreadCreate,   ///< arg = created thread id
    ThreadJoin,     ///< arg = joined thread id
    BarrierWait,    ///< arg = barrier id (classic pthread/OpenMP barrier)
    MutexLock,      ///< arg = mutex id
    MutexUnlock,    ///< arg = mutex id
    CondBarrier,    ///< arg = condvar id; condvar-implemented barrier arrive
    QueuePush,      ///< arg = queue id; producer side of a condvar queue
    QueuePop,       ///< arg = queue id; consumer side (blocks when empty)
    CondMarker,     ///< arg = condvar id; "possible wait" source marker
    NumTypes,
};

/** Human-readable sync type name. */
const char *syncTypeName(SyncType type);

/**
 * One trace record: a micro-op or a sync event.
 *
 * Dependence distances are in micro-ops (0 = no dependence): dep1/dep2 name
 * the producers of this op's source operands as backward distances within
 * the same thread's stream. PC identifies the static instruction for branch
 * prediction and I-cache behaviour; addr is the byte address for memory ops.
 */
struct TraceRecord
{
    uint64_t addr = 0;      ///< memory byte address (Load/Store only)
    uint32_t pc = 0;        ///< static instruction id (byte address)
    uint32_t syncArg = 0;   ///< sync object id / thread id
    uint16_t dep1 = 0;      ///< backward distance to first producer (0=none)
    uint16_t dep2 = 0;      ///< backward distance to second producer
    OpClass op = OpClass::IntAlu;
    SyncType sync = SyncType::None;
    bool taken = false;     ///< branch outcome (Branch only)

    bool isSync() const { return sync != SyncType::None; }
    bool isMem() const { return !isSync() && isMemory(op); }
    bool isBranch() const { return !isSync() && op == OpClass::Branch; }
};

/** A single thread's dynamic stream. */
struct ThreadTrace
{
    std::vector<TraceRecord> records;

    /** Number of micro-ops (sync records excluded). */
    uint64_t numOps() const;
};

/**
 * A complete multi-threaded workload trace.
 *
 * Thread 0 is the main thread (exists at program start); all other threads
 * must be started by a ThreadCreate record and are typically joined before
 * the main thread finishes. The region of interest is the whole trace.
 */
struct WorkloadTrace
{
    std::string name;
    std::vector<ThreadTrace> threads;

    size_t numThreads() const { return threads.size(); }

    /** Total micro-ops across all threads. */
    uint64_t totalOps() const;

    /** Count of dynamic sync events of @p type across all threads. */
    uint64_t countSync(SyncType type) const;

    /**
     * Validate structural invariants: every non-main thread is created
     * exactly once by a lower-numbered thread before any of its records
     * can run; mutex lock/unlock pairs are balanced per thread; created
     * threads are joined at most once. Throws on violation.
     */
    void validate() const;
};

} // namespace rppm

#endif // RPPM_TRACE_TRACE_HH

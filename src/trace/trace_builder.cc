#include "trace/trace_builder.hh"

namespace rppm {

void
ThreadTraceBuilder::push(TraceRecord rec)
{
    trace_.records.push_back(rec);
    if (!rec.isSync())
        ++ops_;
}

void
ThreadTraceBuilder::op(OpClass cls, uint32_t pc, uint16_t dep1, uint16_t dep2)
{
    TraceRecord rec;
    rec.op = cls;
    rec.pc = pc;
    rec.dep1 = dep1;
    rec.dep2 = dep2;
    push(rec);
}

void
ThreadTraceBuilder::load(uint64_t addr, uint32_t pc,
                         uint16_t dep1, uint16_t dep2)
{
    TraceRecord rec;
    rec.op = OpClass::Load;
    rec.pc = pc;
    rec.addr = addr;
    rec.dep1 = dep1;
    rec.dep2 = dep2;
    push(rec);
}

void
ThreadTraceBuilder::store(uint64_t addr, uint32_t pc,
                          uint16_t dep1, uint16_t dep2)
{
    TraceRecord rec;
    rec.op = OpClass::Store;
    rec.pc = pc;
    rec.addr = addr;
    rec.dep1 = dep1;
    rec.dep2 = dep2;
    push(rec);
}

void
ThreadTraceBuilder::branch(uint32_t pc, bool taken, uint16_t dep1)
{
    TraceRecord rec;
    rec.op = OpClass::Branch;
    rec.pc = pc;
    rec.taken = taken;
    rec.dep1 = dep1;
    push(rec);
}

void
ThreadTraceBuilder::sync(SyncType type, uint32_t arg)
{
    TraceRecord rec;
    rec.sync = type;
    rec.syncArg = arg;
    push(rec);
}

} // namespace rppm

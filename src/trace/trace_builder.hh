/**
 * @file
 * Convenience builder for authoring traces by hand (tests, examples) and
 * for the workload generators. Keeps per-thread cursors so records can be
 * appended thread by thread with correct dependence distances.
 */

#ifndef RPPM_TRACE_TRACE_BUILDER_HH
#define RPPM_TRACE_TRACE_BUILDER_HH

#include <cstddef>
#include <cstdint>

#include "trace/trace.hh"

namespace rppm {

/**
 * Appends records to one thread of a WorkloadTrace.
 *
 * The builder is deliberately low level: the workload kernels in
 * src/workload compose richer patterns on top of it.
 */
class ThreadTraceBuilder
{
  public:
    explicit ThreadTraceBuilder(ThreadTrace &trace) : trace_(trace) {}

    /** Append a non-memory, non-branch op. */
    void op(OpClass cls, uint32_t pc, uint16_t dep1 = 0, uint16_t dep2 = 0);

    /** Append a load from @p addr. */
    void load(uint64_t addr, uint32_t pc,
              uint16_t dep1 = 0, uint16_t dep2 = 0);

    /** Append a store to @p addr. */
    void store(uint64_t addr, uint32_t pc,
               uint16_t dep1 = 0, uint16_t dep2 = 0);

    /** Append a conditional branch with outcome @p taken. */
    void branch(uint32_t pc, bool taken, uint16_t dep1 = 0);

    /** Append a sync event. */
    void sync(SyncType type, uint32_t arg);

    /** Number of records appended so far (including sync records). */
    size_t size() const { return trace_.records.size(); }

    /** Number of micro-ops appended so far. */
    uint64_t numOps() const { return ops_; }

  private:
    void push(TraceRecord rec);

    ThreadTrace &trace_;
    uint64_t ops_ = 0;
};

} // namespace rppm

#endif // RPPM_TRACE_TRACE_BUILDER_HH

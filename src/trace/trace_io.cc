#include "trace/trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/binio.hh"

namespace rppm {

// kTraceMagic and the TraceColumnTag values live in trace_io.hh, shared
// with the chunked out-of-core reader (trace_stream.hh).

void
saveTrace(const ColumnarTrace &trace, std::ostream &os)
{
    BinWriter out(kTraceMagic, kTraceFormatVersion);
    out.str(trace.name);
    out.u64(trace.threads.size());
    for (const ThreadColumns &cols : trace.threads) {
        out.u64(cols.numRecords());
        out.column(kTagOp, cols.op);
        out.column(kTagPc, cols.pc);
        out.column(kTagDep1, cols.dep1);
        out.column(kTagDep2, cols.dep2);
        out.column(kTagAddr, cols.addr);
        out.column(kTagTaken, cols.taken);
        out.column(kTagSyncPos, cols.syncPos);
        out.column(kTagSyncTyp, cols.syncType);
        out.column(kTagSyncArg, cols.syncArg);
    }
    os.write(out.data().data(),
             static_cast<std::streamsize>(out.data().size()));
    if (!os)
        throw std::runtime_error("trace write failed");
}

namespace {

/** Column policy for the copying loader: payloads land in owned
 *  vectors. */
struct CopyColumns
{
    BinReader &in;

    template <typename T>
    Column<T>
    read(uint32_t tag, const char *what) const
    {
        return in.column<T>(tag, what);
    }
};

/** Column policy for the zero-copy loader: payloads stay in the mapped
 *  image and the columns borrow pointers into it. */
struct ViewColumns
{
    BinReader &in;

    template <typename T>
    Column<T>
    read(uint32_t tag, const char *what) const
    {
        const auto [p, n] = in.columnView<T>(tag, what);
        return Column<T>::borrow(p, n);
    }
};

/**
 * Structural parse shared by both loaders; they differ only in how a
 * column block becomes a Column<T>. Every validation path — header,
 * tags, element sizes, bounds, trailing bytes, dense/sparse
 * cross-consistency — is this one function, so the view loader rejects
 * exactly what the copying loader rejects.
 */
template <typename ColumnPolicy>
ColumnarTrace
parseTrace(BinReader &in, size_t image_size, const ColumnPolicy &cols_in)
{
    ColumnarTrace trace;
    trace.name = in.str("name");
    const uint64_t threads = in.u64("thread count");
    // An absurd thread count means corruption; fail before allocating.
    if (threads > image_size)
        in.fail("thread count exceeds file size");
    trace.threads.resize(threads);
    for (uint64_t t = 0; t < threads; ++t) {
        ThreadColumns &cols = trace.threads[t];
        const uint64_t records = in.u64("record count");
        cols.op = cols_in.template read<OpClass>(kTagOp, "op column");
        cols.pc = cols_in.template read<uint32_t>(kTagPc, "pc column");
        cols.dep1 = cols_in.template read<uint16_t>(kTagDep1, "dep1 column");
        cols.dep2 = cols_in.template read<uint16_t>(kTagDep2, "dep2 column");
        cols.addr = cols_in.template read<uint64_t>(kTagAddr, "addr column");
        cols.taken =
            cols_in.template read<uint8_t>(kTagTaken, "taken column");
        cols.syncPos =
            cols_in.template read<uint64_t>(kTagSyncPos, "syncPos column");
        cols.syncType =
            cols_in.template read<SyncType>(kTagSyncTyp, "syncType column");
        cols.syncArg =
            cols_in.template read<uint32_t>(kTagSyncArg, "syncArg column");
        if (cols.op.size() != records)
            in.fail("record count does not match op column");
    }
    if (!in.atEnd())
        in.fail("trailing bytes after last thread");
    // Cross-check dense/sparse column consistency (also throws
    // std::invalid_argument) before handing the trace to consumers that
    // index the sparse columns blindly.
    trace.validateColumnConsistency();
    return trace;
}

} // namespace

ColumnarTrace
loadTrace(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string data = buf.str();

    BinReader in(data, kTraceMagic, kTraceFormatVersionMin,
                 kTraceFormatVersion);
    in.setBlockCrcVerify(in.version() >= kTraceFormatVersionCrc);
    return parseTrace(in, data.size(), CopyColumns{in});
}

ColumnarTrace
loadTraceView(std::shared_ptr<const MappedFile> image)
{
    BinReader in(image->view(), kTraceMagic, kTraceFormatVersionMin,
                 kTraceFormatVersion);
    in.setBlockCrcVerify(in.version() >= kTraceFormatVersionCrc);
    ColumnarTrace trace = parseTrace(in, image->size(), ViewColumns{in});
    // The columns alias the mapped bytes; the trace keeps the image
    // alive (and marks itself borrowed) by holding it.
    trace.storage = std::move(image);
    return trace;
}

ColumnarTrace
loadTraceViewFromFile(const std::string &path)
{
    return loadTraceView(MappedFile::open(path));
}

void
saveTraceToFile(const ColumnarTrace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open " + path + " for writing");
    saveTrace(trace, os);
}

ColumnarTrace
loadTraceFromFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    return loadTrace(is);
}

} // namespace rppm

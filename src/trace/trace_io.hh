/**
 * @file
 * Versioned binary serialization of ColumnarTrace ("RPPMTRC" format).
 *
 * The file is an RPPM binary container (common/binio.hh): a fixed header
 * (magic, endianness marker, version), the workload name, the thread
 * count, then per thread a small count block followed by one block per
 * column. Blocks are 8-byte aligned with sizes declared up front, so the
 * format is mmap-friendly: a reader can map the file and point into the
 * column payloads directly.
 *
 * Loading validates everything the sequential consumers rely on: magic,
 * byte order and version (unknown versions are rejected, never
 * half-decoded; version-1 pre-checksum files still load), per-column
 * CRC32C trailers (version >= 2), per-column tags and element sizes,
 * sync positions
 * strictly ascending and in range, enum values in range, and sparse
 * column lengths consistent with the dense op column. Malformed input
 * throws std::invalid_argument; I/O failures throw std::runtime_error.
 */

#ifndef RPPM_TRACE_TRACE_IO_HH
#define RPPM_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/columnar.hh"

namespace rppm {

/** Current RPPMTRC format version. Version 2 added CRC32C trailers to
 *  every column block (common/binio.hh); version 1 files (no trailers)
 *  still load, just without integrity verification. */
constexpr uint32_t kTraceFormatVersion = 2;

/** Oldest RPPMTRC version the loaders accept. */
constexpr uint32_t kTraceFormatVersionMin = 1;

/** First version whose column blocks carry CRC32C trailers. */
constexpr uint32_t kTraceFormatVersionCrc = 2;

/** Container magic (first 8 bytes of every RPPMTRC file). */
constexpr char kTraceMagic[8] = {'R', 'P', 'P', 'M', 'T', 'R', 'C', '\0'};

/** Column tags ("fourcc" style, stable across versions). Shared by the
 *  whole-file loaders here and the chunked reader (trace_stream.hh). */
enum TraceColumnTag : uint32_t
{
    kTagOp = 0x4f500000,      // 'OP'
    kTagPc = 0x50430000,      // 'PC'
    kTagDep1 = 0x44503100,    // 'DP1'
    kTagDep2 = 0x44503200,    // 'DP2'
    kTagAddr = 0x41445200,    // 'ADR'
    kTagTaken = 0x544b4e00,   // 'TKN'
    kTagSyncPos = 0x53504f00, // 'SPO'
    kTagSyncTyp = 0x53545900, // 'STY'
    kTagSyncArg = 0x53415200, // 'SAR'
};

/** Serialize @p trace to @p os; throws std::runtime_error on I/O error. */
void saveTrace(const ColumnarTrace &trace, std::ostream &os);

/** Parse a trace from @p is; throws std::invalid_argument on bad input. */
ColumnarTrace loadTrace(std::istream &is);

/** Convenience wrappers over file paths. */
void saveTraceToFile(const ColumnarTrace &trace, const std::string &path);
ColumnarTrace loadTraceFromFile(const std::string &path);

/**
 * Zero-copy load: parse the container structure of @p image but point
 * the trace's columns straight into the mapped payload bytes instead of
 * copying them out (the format keeps every payload 8-byte aligned for
 * exactly this). The returned trace holds @p image alive via
 * ColumnarTrace::storage and reports isBorrowed() == true; it validates
 * the same invariants and rejects the same malformed inputs as
 * loadTrace(), and compares equal to the copying loader's result.
 */
ColumnarTrace loadTraceView(std::shared_ptr<const MappedFile> image);

/** Map @p path (common/mmap.hh) and loadTraceView() it. */
ColumnarTrace loadTraceViewFromFile(const std::string &path);

} // namespace rppm

#endif // RPPM_TRACE_TRACE_IO_HH

#include "trace/trace_stream.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/assert.hh"
#include "common/binio.hh"
#include "common/crc32c.hh"
#include "trace/trace_io.hh"

namespace rppm {

namespace {

[[noreturn]] void
fail(const std::string &msg)
{
    // Same exception type and prefix as BinReader::fail, so structural
    // defects are rejected identically whether a file is loaded whole
    // (trace_io.cc) or indexed for streaming.
    throw std::invalid_argument("binary container: " + msg);
}

/** pread-backed cursor mirroring BinReader's walk over an image. */
class FileWalker
{
  public:
    explicit FileWalker(const FdFile &file)
        : file_(file), size_(file.size())
    {
    }

    uint64_t offset() const { return off_; }
    uint64_t remaining() const { return size_ - off_; }

    void
    bytes(void *out, size_t n, const char *what)
    {
        if (remaining() < n)
            fail(std::string("truncated input reading ") + what);
        file_.pread(out, n, off_);
        off_ += n;
    }

    uint32_t
    u32(const char *what)
    {
        uint32_t v;
        bytes(&v, sizeof(v), what);
        return v;
    }

    uint64_t
    u64(const char *what)
    {
        uint64_t v;
        bytes(&v, sizeof(v), what);
        return v;
    }

    void
    skip(uint64_t n, const char *what)
    {
        if (remaining() < n)
            fail(std::string("truncated input reading ") + what);
        off_ += n;
    }

    void
    skipPad8()
    {
        const uint64_t pad = (8 - off_ % 8) % 8;
        if (pad > remaining())
            fail("truncated padding");
        off_ += pad;
    }

  private:
    const FdFile &file_;
    uint64_t size_;
    uint64_t off_ = 0;
};

/** Walk one column block header, record its extent, skip its payload.
 *  For checksummed (version >= 2) files, consume the 8-byte trailer and
 *  record the stored CRC so readers can verify payloads later. */
ColumnExtent
walkColumn(FileWalker &in, uint32_t tag, uint32_t elemSize,
           const char *what, bool hasCrc)
{
    in.skipPad8();
    if (in.u32(what) != tag)
        fail(std::string("unexpected block tag for ") + what);
    if (in.u32(what) != elemSize)
        fail(std::string("element size mismatch in ") + what);
    const uint64_t count = in.u64(what);
    if (count > in.remaining() / elemSize)
        fail(std::string("truncated column: ") + what);
    ColumnExtent ext;
    ext.offset = in.offset();
    ext.count = count;
    in.skip(count * elemSize, what);
    in.skipPad8();
    if (hasCrc) {
        ext.crc = in.u32(what);
        in.u32(what); // reserved
    }
    return ext;
}

} // namespace

TraceFileLayout
indexTraceFile(const FdFile &file)
{
    TraceFileLayout layout;
    layout.fileSize = file.size();

    FileWalker in(file);
    char magic[8];
    in.bytes(magic, 8, "magic");
    if (std::memcmp(magic, kTraceMagic, 8) != 0)
        fail("bad magic (not this container format)");
    if (in.u32("endianness") != kBinEndianMarker)
        fail("foreign byte order");
    const uint32_t version = in.u32("version");
    if (version < kTraceFormatVersionMin || version > kTraceFormatVersion) {
        fail("unsupported format version " + std::to_string(version) +
             " (expected " + std::to_string(kTraceFormatVersionMin) +
             ".." + std::to_string(kTraceFormatVersion) + ")");
    }
    layout.version = version;
    layout.hasBlockCrcs = version >= kTraceFormatVersionCrc;

    const uint64_t nameLen = in.u64("name");
    if (nameLen > in.remaining())
        fail("truncated string: name");
    layout.name.resize(nameLen);
    if (nameLen > 0)
        in.bytes(layout.name.data(), nameLen, "name");
    in.skipPad8();

    const uint64_t threads = in.u64("thread count");
    // An absurd thread count means corruption; fail before allocating.
    if (threads > layout.fileSize)
        fail("thread count exceeds file size");
    layout.threads.resize(threads);
    const bool crcs = layout.hasBlockCrcs;
    for (uint64_t t = 0; t < threads; ++t) {
        ThreadLayout &th = layout.threads[t];
        th.records = in.u64("record count");
        th.op = walkColumn(in, kTagOp, 1, "op column", crcs);
        th.pc = walkColumn(in, kTagPc, 4, "pc column", crcs);
        th.dep1 = walkColumn(in, kTagDep1, 2, "dep1 column", crcs);
        th.dep2 = walkColumn(in, kTagDep2, 2, "dep2 column", crcs);
        th.addr = walkColumn(in, kTagAddr, 8, "addr column", crcs);
        th.taken = walkColumn(in, kTagTaken, 1, "taken column", crcs);
        th.syncPos = walkColumn(in, kTagSyncPos, 8, "syncPos column", crcs);
        th.syncType =
            walkColumn(in, kTagSyncTyp, 1, "syncType column", crcs);
        th.syncArg = walkColumn(in, kTagSyncArg, 4, "syncArg column", crcs);
        if (th.op.count != th.records)
            fail("record count does not match op column");
        if (th.pc.count != th.records || th.dep1.count != th.records ||
            th.dep2.count != th.records) {
            fail("dense column lengths differ");
        }
        if (th.addr.count > th.records || th.taken.count > th.records)
            fail("sparse column longer than record count");
        if (th.syncType.count != th.syncPos.count ||
            th.syncArg.count != th.syncPos.count) {
            fail("sync column lengths differ");
        }
    }
    if (in.remaining() != 0)
        fail("trailing bytes after last thread");
    return layout;
}

std::vector<ResidentSync>
loadSyncColumns(const FdFile &file, const TraceFileLayout &layout)
{
    std::vector<ResidentSync> sync(layout.threads.size());
    for (size_t t = 0; t < layout.threads.size(); ++t) {
        const ThreadLayout &th = layout.threads[t];
        ResidentSync &s = sync[t];
        const size_t n = static_cast<size_t>(th.syncPos.count);
        s.pos.resize(n);
        s.type.resize(n);
        s.arg.resize(n);
        if (n > 0) {
            file.pread(s.pos.data(), n * sizeof(uint64_t),
                       th.syncPos.offset);
            file.pread(s.type.data(), n * sizeof(SyncType),
                       th.syncType.offset);
            file.pread(s.arg.data(), n * sizeof(uint32_t),
                       th.syncArg.offset);
        }
        if (layout.hasBlockCrcs) {
            // Sync columns are resident anyway, so verify them here in
            // one shot; the dense columns are verified incrementally as
            // the chunk reader maps them.
            if (crc32c(s.pos.data(), n * sizeof(uint64_t)) !=
                    th.syncPos.crc ||
                crc32c(s.type.data(), n * sizeof(SyncType)) !=
                    th.syncType.crc ||
                crc32c(s.arg.data(), n * sizeof(uint32_t)) !=
                    th.syncArg.crc) {
                fail("checksum mismatch in sync columns "
                     "(torn write or corruption)");
            }
        }
        uint64_t prev = 0;
        for (size_t k = 0; k < n; ++k) {
            if (s.pos[k] >= th.records)
                fail("sync position out of range");
            if (k > 0 && s.pos[k] <= prev)
                fail("sync positions not strictly ascending");
            prev = s.pos[k];
            if (static_cast<uint8_t>(s.type[k]) >=
                static_cast<uint8_t>(SyncType::NumTypes)) {
                fail("sync type out of range");
            }
        }
    }
    return sync;
}

StreamCrcVerifier::StreamCrcVerifier(const TraceFileLayout &layout)
{
    MutexLock lock(mutex_);
    states_.resize(layout.threads.size() * kNumColumns);
    for (size_t t = 0; t < layout.threads.size(); ++t) {
        const ThreadLayout &th = layout.threads[t];
        const ColumnExtent *exts[kNumColumns] = {&th.op,   &th.pc,
                                                 &th.dep1, &th.dep2,
                                                 &th.addr, &th.taken};
        for (uint32_t c = 0; c < kNumColumns; ++c) {
            State &s = states_[t * kNumColumns + c];
            s.count = exts[c]->count;
            s.expect = exts[c]->crc;
            if (s.count == 0) {
                // Empty columns have nothing to fold; check now.
                if (s.expect != kCrc32cInit)
                    fail("checksum mismatch in empty column "
                         "(torn write or corruption)");
                s.frontier = kRetired;
                ++verified_;
            }
        }
    }
}

void
StreamCrcVerifier::fold(uint32_t t, Column col, uint64_t lo, uint64_t hi,
                        const void *data, size_t elemSize)
{
    MutexLock lock(mutex_);
    State &s = states_[t * kNumColumns + col];
    if (s.frontier == kRetired)
        return;
    if (lo != s.frontier) {
        // Out-of-order access: the running CRC can no longer cover the
        // column contiguously. Retire it from verification — missing a
        // check is acceptable, a false mismatch is not.
        s.frontier = kRetired;
        return;
    }
    s.crc = crc32cExtend(s.crc, data, (hi - lo) * elemSize);
    s.frontier = hi;
    if (s.frontier == s.count) {
        if (s.crc != s.expect)
            fail("checksum mismatch in streamed column "
                 "(torn write or corruption)");
        s.frontier = kRetired;
        ++verified_;
    }
}

uint64_t
StreamCrcVerifier::columnsVerified() const
{
    MutexLock lock(mutex_);
    return verified_;
}

TraceChunk
TraceChunkReader::read(uint32_t t, size_t recLo, size_t recHi,
                       uint64_t memLo, uint64_t memHi, uint64_t brLo,
                       uint64_t brHi) const
{
    const ThreadLayout &th = layout_.threads[t];
    RPPM_REQUIRE(recLo <= recHi && recHi <= th.records &&
                     memLo <= memHi && memHi <= th.addr.count &&
                     brLo <= brHi && brHi <= th.taken.count,
                 "trace chunk range out of bounds");

    TraceChunk chunk;
    chunk.recLo = recLo;
    chunk.recHi = recHi;
    chunk.memLo = memLo;
    chunk.memHi = memHi;
    chunk.brLo = brLo;
    chunk.brHi = brHi;
    chunk.windows.reserve(6);

    // One mapping per column slice. Payload offsets are 8-byte aligned
    // by the container discipline, and every element size divides 8, so
    // each window's data pointer is correctly aligned for its type.
    auto mapSlice = [&](const ColumnExtent &ext, uint64_t lo, uint64_t hi,
                        size_t elem,
                        StreamCrcVerifier::Column col) -> const char * {
        if (lo == hi)
            return nullptr;
        MappedWindow w;
        w.map(file_, ext.offset + lo * elem,
              static_cast<size_t>((hi - lo) * elem));
        chunk.windows.push_back(std::move(w));
        const char *data = chunk.windows.back().data();
        if (verifier_)
            verifier_->fold(t, col, lo, hi, data, elem);
        return data;
    };

    chunk.op = reinterpret_cast<const OpClass *>(
        mapSlice(th.op, recLo, recHi, 1, StreamCrcVerifier::kColOp));
    chunk.pc = reinterpret_cast<const uint32_t *>(
        mapSlice(th.pc, recLo, recHi, 4, StreamCrcVerifier::kColPc));
    chunk.dep1 = reinterpret_cast<const uint16_t *>(
        mapSlice(th.dep1, recLo, recHi, 2, StreamCrcVerifier::kColDep1));
    chunk.dep2 = reinterpret_cast<const uint16_t *>(
        mapSlice(th.dep2, recLo, recHi, 2, StreamCrcVerifier::kColDep2));
    chunk.addr = reinterpret_cast<const uint64_t *>(
        mapSlice(th.addr, memLo, memHi, 8, StreamCrcVerifier::kColAddr));
    chunk.taken = reinterpret_cast<const uint8_t *>(
        mapSlice(th.taken, brLo, brHi, 1, StreamCrcVerifier::kColTaken));
    return chunk;
}

uint64_t
verifyTraceFileCrcs(const FdFile &file, const TraceFileLayout &layout)
{
    if (!layout.hasBlockCrcs)
        return 0;
    // Bounded scratch: big enough to amortize syscalls, small enough to
    // stay out-of-core friendly.
    constexpr size_t kSpanBytes = size_t{1} << 20;
    std::vector<char> buf(kSpanBytes);
    uint64_t checked = 0;
    auto verify = [&](const ColumnExtent &ext, size_t elem,
                      const char *what) {
        uint32_t crc = kCrc32cInit;
        uint64_t bytes = ext.count * elem;
        uint64_t off = ext.offset;
        while (bytes > 0) {
            const size_t n =
                static_cast<size_t>(std::min<uint64_t>(bytes, kSpanBytes));
            file.pread(buf.data(), n, off);
            crc = crc32cExtend(crc, buf.data(), n);
            off += n;
            bytes -= n;
        }
        if (crc != ext.crc)
            fail(std::string("checksum mismatch in ") + what +
                 " (torn write or corruption)");
        ++checked;
    };
    for (const ThreadLayout &th : layout.threads) {
        verify(th.op, 1, "op column");
        verify(th.pc, 4, "pc column");
        verify(th.dep1, 2, "dep1 column");
        verify(th.dep2, 2, "dep2 column");
        verify(th.addr, 8, "addr column");
        verify(th.taken, 1, "taken column");
        verify(th.syncPos, 8, "syncPos column");
        verify(th.syncType, 1, "syncType column");
        verify(th.syncArg, 4, "syncArg column");
    }
    return checked;
}

void
OpColumnScanner::slide(size_t i)
{
    RPPM_REQUIRE(i >= winLo_ || winHi_ == 0,
                 "op scanner is forward-only");
    RPPM_REQUIRE(i < thread_.records, "op scan past end of thread");
    winLo_ = i;
    winHi_ = std::min(i + kSpanRecords,
                      static_cast<size_t>(thread_.records));
    win_.map(file_, thread_.op.offset + winLo_, winHi_ - winLo_);
}

} // namespace rppm

/**
 * @file
 * Out-of-core access to RPPMTRC containers: layout index, resident sync
 * columns, and windowed chunk views.
 *
 * The whole-file loaders (trace_io.hh) either copy every column into
 * memory or mmap the entire file — both charge O(file) against the
 * process's address-space limit, which is exactly what the streaming
 * profiler must avoid. This reader decomposes access instead:
 *
 *  - indexTraceFile() walks the container structure with pread (a few
 *    dozen small reads, no mapping at all) and returns the byte extent
 *    of every column of every thread, validating the same structural
 *    properties the whole-file loaders validate: magic, byte order,
 *    version, block tags, element sizes, bounds, trailing bytes. A
 *    truncated or corrupt file is rejected here, before any profiling
 *    work starts.
 *  - loadSyncColumns() reads only the sparse sync columns resident
 *    (O(#sync events) memory) and validates them: positions strictly
 *    ascending and in range, types in range, equal lengths.
 *  - TraceChunkReader::read() maps just the byte ranges one chunk of
 *    one thread needs — dense records [recLo, recHi), the matching
 *    addr/taken slices — through small MappedWindow mappings that die
 *    with the returned TraceChunk. Peak address-space charge is
 *    O(chunks in flight), independent of file size.
 *
 * What the per-record loop of validateColumnConsistency() used to check
 * (sync-slot neutrality, op/taken ranges) is re-checked incrementally by
 * the streaming consumers as they touch each window, so nothing ever
 * walks the whole file.
 */

#ifndef RPPM_TRACE_TRACE_STREAM_HH
#define RPPM_TRACE_TRACE_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mmap.hh"
#include "common/thread_annotations.hh"
#include "trace/trace.hh"

namespace rppm {

/** Byte extent of one column payload inside the container. */
struct ColumnExtent
{
    uint64_t offset = 0; ///< absolute byte offset of the first element
    uint64_t count = 0;  ///< element count
    uint32_t crc = 0;    ///< CRC32C trailer (valid when the layout's
                         ///< hasBlockCrcs is set, i.e. version >= 2)
};

/** Extents of one thread's nine columns. */
struct ThreadLayout
{
    uint64_t records = 0;
    ColumnExtent op, pc, dep1, dep2, addr, taken;
    ColumnExtent syncPos, syncType, syncArg;
};

/** The structural index of an RPPMTRC file: everything needed to read
 *  any record range of any thread without parsing the container again. */
struct TraceFileLayout
{
    std::string name;
    uint64_t fileSize = 0;
    uint32_t version = 0;
    bool hasBlockCrcs = false; ///< version >= kTraceFormatVersionCrc
    std::vector<ThreadLayout> threads;
};

/**
 * Walk the container structure of @p file and return its layout.
 * Throws std::invalid_argument (same type and "binary container: "
 * prefix as the whole-file loaders) on any structural defect, including
 * truncation anywhere in the file.
 */
TraceFileLayout indexTraceFile(const FdFile &file);

/** One thread's sparse sync columns, resident. */
struct ResidentSync
{
    std::vector<uint64_t> pos;
    std::vector<SyncType> type;
    std::vector<uint32_t> arg;
};

/**
 * Read every thread's sync columns resident and validate them
 * (positions strictly ascending and < records, types in range).
 * Memory: O(total sync events), which is tiny by construction — sync
 * delimits epochs, not records.
 */
std::vector<ResidentSync> loadSyncColumns(const FdFile &file,
                                          const TraceFileLayout &layout);

/**
 * One chunk's worth of column data for one thread. Pointers are
 * absolute-base: op points at record recLo, addr at memory ordinal
 * memLo, taken at branch ordinal brLo — callers index them relative to
 * those bases (or wrap them in OffsetSpan). The windows member owns the
 * mappings; the pointers die with the struct.
 */
struct TraceChunk
{
    size_t recLo = 0, recHi = 0;
    uint64_t memLo = 0, memHi = 0;
    uint64_t brLo = 0, brHi = 0;
    const OpClass *op = nullptr;
    const uint32_t *pc = nullptr;
    const uint16_t *dep1 = nullptr;
    const uint16_t *dep2 = nullptr;
    const uint64_t *addr = nullptr;
    const uint8_t *taken = nullptr;
    std::vector<MappedWindow> windows;
};

/**
 * Rolling CRC32C verification of a trace file's column payloads as the
 * chunked reader maps them — the streaming analogue of the whole-file
 * loaders' per-block trailer check, without ever holding a whole column.
 *
 * Each verified column keeps a frontier: the element ordinal up to which
 * its CRC has been folded. A mapped slice starting exactly at the
 * frontier extends the running CRC (crc32cExtend composes); when the
 * frontier reaches the column's end the accumulated CRC is compared
 * against the stored trailer and a mismatch throws std::invalid_argument
 * with the same "binary container: " prefix as every other integrity
 * failure. Chunked profiling tiles each column front to back, so in
 * practice every column completes; a consumer that ever maps a slice out
 * of order (re-reads or skips) silently retires that column from
 * verification rather than raising a false alarm — verification is
 * best-effort by design, corruption detection must never reject a good
 * file. Zero-length columns are checked at construction.
 *
 * Thread-safe: chunks of different threads fold concurrently under an
 * internal mutex (the fold itself is a cheap table walk).
 */
class StreamCrcVerifier
{
  public:
    /** Column ordinals within a thread, for fold(). */
    enum Column : uint32_t
    {
        kColOp = 0,
        kColPc,
        kColDep1,
        kColDep2,
        kColAddr,
        kColTaken,
        kNumColumns,
    };

    /** @p layout must describe a file with hasBlockCrcs == true. */
    explicit StreamCrcVerifier(const TraceFileLayout &layout);

    /**
     * Fold the payload bytes of thread @p t's column @p col covering
     * element ordinals [lo, hi) into its running CRC. Throws on a
     * mismatch once the column completes.
     */
    void fold(uint32_t t, Column col, uint64_t lo, uint64_t hi,
              const void *data, size_t elemSize);

    /** Columns fully verified so far (monotone; for tests/tools). */
    uint64_t columnsVerified() const RPPM_EXCLUDES(mutex_);

  private:
    struct State
    {
        uint64_t count = 0;    ///< total elements in the column
        uint64_t frontier = 0; ///< elements folded so far (kRetired: off)
        uint32_t expect = 0;   ///< stored trailer CRC
        uint32_t crc = 0;      ///< running CRC over [0, frontier)
    };

    static constexpr uint64_t kRetired = ~uint64_t{0};

    mutable Mutex mutex_;
    std::vector<State> states_ RPPM_GUARDED_BY(mutex_); // t*kNumColumns+col
    uint64_t verified_ RPPM_GUARDED_BY(mutex_) = 0;
};

/** Maps per-chunk column windows out of an indexed trace file. */
class TraceChunkReader
{
  public:
    /**
     * @p file and @p layout must outlive the reader and its chunks.
     * When @p layout has block CRCs, every mapped slice is folded into a
     * rolling per-column checksum and each column is verified against
     * its trailer as its last slice is read (see StreamCrcVerifier).
     */
    TraceChunkReader(const FdFile &file, const TraceFileLayout &layout)
        : file_(file), layout_(layout),
          verifier_(layout.hasBlockCrcs
                        ? std::make_unique<StreamCrcVerifier>(layout)
                        : nullptr)
    {
    }

    /**
     * Map thread @p t's dense columns for records [recLo, recHi) plus
     * the addr slice [memLo, memHi) and taken slice [brLo, brHi) (the
     * caller knows these from its rolling scan). Range-checks against
     * the layout.
     */
    TraceChunk read(uint32_t t, size_t recLo, size_t recHi,
                    uint64_t memLo, uint64_t memHi, uint64_t brLo,
                    uint64_t brHi) const;

    /** Columns fully CRC-verified so far (0 for pre-checksum files). */
    uint64_t
    columnsVerified() const
    {
        return verifier_ ? verifier_->columnsVerified() : 0;
    }

  private:
    const FdFile &file_;
    const TraceFileLayout &layout_;
    // Verification state mutates as a side effect of read() const —
    // logically the reader stays const (results are unchanged), so the
    // verifier is the classic mutable-cache shape. It locks internally.
    mutable std::unique_ptr<StreamCrcVerifier> verifier_;
};

/**
 * Verify every column trailer of an indexed trace file by pread'ing the
 * payloads in bounded spans (O(1) memory). Returns the number of columns
 * checked — 0 for pre-checksum (version 1) files, 9 * threads otherwise.
 * Throws std::invalid_argument on any mismatch. Used by `rppm_trace
 * info` and available to any tool that wants an explicit integrity pass
 * without loading the trace.
 */
uint64_t verifyTraceFileCrcs(const FdFile &file,
                             const TraceFileLayout &layout);

/**
 * Forward-only reader of one thread's op column through a small rolling
 * window — the streaming scheduler's record-scan frontier. at(i) must be
 * called with non-decreasing i; the window slides forward in fixed-size
 * spans so the address-space charge stays constant.
 */
class OpColumnScanner
{
  public:
    /** Records per mapped span (1 byte each). */
    static constexpr size_t kSpanRecords = size_t{1} << 20;

    OpColumnScanner(const FdFile &file, const ThreadLayout &thread)
        : file_(file), thread_(thread)
    {
    }

    OpClass
    at(size_t i)
    {
        if (i < winLo_ || i >= winHi_)
            slide(i);
        return reinterpret_cast<const OpClass *>(win_.data())[i - winLo_];
    }

  private:
    void slide(size_t i);

    const FdFile &file_;
    const ThreadLayout &thread_;
    MappedWindow win_;
    size_t winLo_ = 0;
    size_t winHi_ = 0; ///< empty window until the first at()
};

} // namespace rppm

#endif // RPPM_TRACE_TRACE_STREAM_HH

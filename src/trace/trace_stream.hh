/**
 * @file
 * Out-of-core access to RPPMTRC containers: layout index, resident sync
 * columns, and windowed chunk views.
 *
 * The whole-file loaders (trace_io.hh) either copy every column into
 * memory or mmap the entire file — both charge O(file) against the
 * process's address-space limit, which is exactly what the streaming
 * profiler must avoid. This reader decomposes access instead:
 *
 *  - indexTraceFile() walks the container structure with pread (a few
 *    dozen small reads, no mapping at all) and returns the byte extent
 *    of every column of every thread, validating the same structural
 *    properties the whole-file loaders validate: magic, byte order,
 *    version, block tags, element sizes, bounds, trailing bytes. A
 *    truncated or corrupt file is rejected here, before any profiling
 *    work starts.
 *  - loadSyncColumns() reads only the sparse sync columns resident
 *    (O(#sync events) memory) and validates them: positions strictly
 *    ascending and in range, types in range, equal lengths.
 *  - TraceChunkReader::read() maps just the byte ranges one chunk of
 *    one thread needs — dense records [recLo, recHi), the matching
 *    addr/taken slices — through small MappedWindow mappings that die
 *    with the returned TraceChunk. Peak address-space charge is
 *    O(chunks in flight), independent of file size.
 *
 * What the per-record loop of validateColumnConsistency() used to check
 * (sync-slot neutrality, op/taken ranges) is re-checked incrementally by
 * the streaming consumers as they touch each window, so nothing ever
 * walks the whole file.
 */

#ifndef RPPM_TRACE_TRACE_STREAM_HH
#define RPPM_TRACE_TRACE_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mmap.hh"
#include "trace/trace.hh"

namespace rppm {

/** Byte extent of one column payload inside the container. */
struct ColumnExtent
{
    uint64_t offset = 0; ///< absolute byte offset of the first element
    uint64_t count = 0;  ///< element count
};

/** Extents of one thread's nine columns. */
struct ThreadLayout
{
    uint64_t records = 0;
    ColumnExtent op, pc, dep1, dep2, addr, taken;
    ColumnExtent syncPos, syncType, syncArg;
};

/** The structural index of an RPPMTRC file: everything needed to read
 *  any record range of any thread without parsing the container again. */
struct TraceFileLayout
{
    std::string name;
    uint64_t fileSize = 0;
    std::vector<ThreadLayout> threads;
};

/**
 * Walk the container structure of @p file and return its layout.
 * Throws std::invalid_argument (same type and "binary container: "
 * prefix as the whole-file loaders) on any structural defect, including
 * truncation anywhere in the file.
 */
TraceFileLayout indexTraceFile(const FdFile &file);

/** One thread's sparse sync columns, resident. */
struct ResidentSync
{
    std::vector<uint64_t> pos;
    std::vector<SyncType> type;
    std::vector<uint32_t> arg;
};

/**
 * Read every thread's sync columns resident and validate them
 * (positions strictly ascending and < records, types in range).
 * Memory: O(total sync events), which is tiny by construction — sync
 * delimits epochs, not records.
 */
std::vector<ResidentSync> loadSyncColumns(const FdFile &file,
                                          const TraceFileLayout &layout);

/**
 * One chunk's worth of column data for one thread. Pointers are
 * absolute-base: op points at record recLo, addr at memory ordinal
 * memLo, taken at branch ordinal brLo — callers index them relative to
 * those bases (or wrap them in OffsetSpan). The windows member owns the
 * mappings; the pointers die with the struct.
 */
struct TraceChunk
{
    size_t recLo = 0, recHi = 0;
    uint64_t memLo = 0, memHi = 0;
    uint64_t brLo = 0, brHi = 0;
    const OpClass *op = nullptr;
    const uint32_t *pc = nullptr;
    const uint16_t *dep1 = nullptr;
    const uint16_t *dep2 = nullptr;
    const uint64_t *addr = nullptr;
    const uint8_t *taken = nullptr;
    std::vector<MappedWindow> windows;
};

/** Maps per-chunk column windows out of an indexed trace file. */
class TraceChunkReader
{
  public:
    /** @p file and @p layout must outlive the reader and its chunks. */
    TraceChunkReader(const FdFile &file, const TraceFileLayout &layout)
        : file_(file), layout_(layout)
    {
    }

    /**
     * Map thread @p t's dense columns for records [recLo, recHi) plus
     * the addr slice [memLo, memHi) and taken slice [brLo, brHi) (the
     * caller knows these from its rolling scan). Range-checks against
     * the layout.
     */
    TraceChunk read(uint32_t t, size_t recLo, size_t recHi,
                    uint64_t memLo, uint64_t memHi, uint64_t brLo,
                    uint64_t brHi) const;

  private:
    const FdFile &file_;
    const TraceFileLayout &layout_;
};

/**
 * Forward-only reader of one thread's op column through a small rolling
 * window — the streaming scheduler's record-scan frontier. at(i) must be
 * called with non-decreasing i; the window slides forward in fixed-size
 * spans so the address-space charge stays constant.
 */
class OpColumnScanner
{
  public:
    /** Records per mapped span (1 byte each). */
    static constexpr size_t kSpanRecords = size_t{1} << 20;

    OpColumnScanner(const FdFile &file, const ThreadLayout &thread)
        : file_(file), thread_(thread)
    {
    }

    OpClass
    at(size_t i)
    {
        if (i < winLo_ || i >= winHi_)
            slide(i);
        return reinterpret_cast<const OpClass *>(win_.data())[i - winLo_];
    }

  private:
    void slide(size_t i);

    const FdFile &file_;
    const ThreadLayout &thread_;
    MappedWindow win_;
    size_t winLo_ = 0;
    size_t winHi_ = 0; ///< empty window until the first at()
};

} // namespace rppm

#endif // RPPM_TRACE_TRACE_STREAM_HH

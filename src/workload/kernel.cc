#include "workload/kernel.hh"

#include <algorithm>
#include <cmath>

#include "common/assert.hh"

namespace rppm {

KernelGenerator::KernelGenerator(const KernelParams &params, uint32_t tid,
                                 uint32_t code_base, Rng rng)
    : params_(params), rng_(rng), codeBase_(code_base),
      privateBase_(privateBase(tid))
{
    RPPM_REQUIRE(params_.codeFootprint > 0, "kernel needs code");
    RPPM_REQUIRE(params_.privateBytes >= 64, "private region too small");
    RPPM_REQUIRE(params_.sharedBytes >= 64, "shared region too small");
    hotPool_.reserve(params_.hotLines);

    // Build the static code layout once: each position in the loop body
    // has a fixed role, exactly like real program text. Branch PCs are
    // therefore stable static branches a predictor can train on. The
    // layout is derived from the *kernel parameters*, not the thread's
    // dynamic stream, so all threads of a benchmark share code.
    Rng layout_rng(0xc0de2bad ^ (uint64_t{params_.codeFootprint} << 20) ^
                   static_cast<uint64_t>(params_.fracBranch * 1e6) ^
                   code_base);
    const double frac_mem = params_.fracLoad + params_.fracStore;
    layout_.resize(params_.codeFootprint);
    computeClass_.resize(params_.codeFootprint, OpClass::IntAlu);
    for (uint32_t p = 0; p < params_.codeFootprint; ++p) {
        if (layout_rng.nextBool(params_.fracBranch)) {
            layout_[p] = Role::Branch;
            continue;
        }
        if (layout_rng.nextBool(frac_mem)) {
            layout_[p] = Role::Memory;
            continue;
        }
        layout_[p] = Role::Compute;
        const double c = layout_rng.nextDouble();
        double acc = params_.fracFpAdd;
        if (c < acc) {
            computeClass_[p] = OpClass::FpAdd;
        } else if (c < (acc += params_.fracFpMul)) {
            computeClass_[p] = OpClass::FpMul;
        } else if (c < (acc += params_.fracFpDiv)) {
            computeClass_[p] = OpClass::FpDiv;
        } else if (c < (acc += params_.fracIntMul)) {
            computeClass_[p] = OpClass::IntMul;
        } else if (c < (acc += params_.fracIntDiv)) {
            computeClass_[p] = OpClass::IntDiv;
        }
    }
}

uint64_t
KernelGenerator::nextAddress(bool &is_shared)
{
    // Revisit a hot line with probability reuseFrac: this produces short
    // reuse distances on top of the streaming/random background.
    if (!hotPool_.empty() && rng_.nextBool(params_.reuseFrac)) {
        const size_t pick = rng_.nextBounded(hotPool_.size());
        const uint64_t addr = hotPool_[pick];
        is_shared = addr >= kSharedBase;
        return addr;
    }

    is_shared = rng_.nextBool(params_.sharedFrac);
    uint64_t addr;
    if (is_shared) {
        // Shared accesses are spread over the shared region so threads
        // both constructively share lines and conflict on them.
        const uint64_t lines = params_.sharedBytes / 64;
        addr = kSharedBase + 64 * rng_.nextBounded(lines);
    } else if (rng_.nextBool(params_.randomFrac)) {
        const uint64_t lines = params_.privateBytes / 64;
        addr = privateBase_ + 64 * rng_.nextBounded(lines);
    } else {
        streamCursor_ =
            (streamCursor_ + params_.strideBytes) % params_.privateBytes;
        addr = privateBase_ + streamCursor_;
    }

    if (hotPool_.size() < params_.hotLines) {
        hotPool_.push_back(addr);
    } else if (params_.hotLines > 0) {
        hotPool_[rng_.nextBounded(hotPool_.size())] = addr;
    }
    return addr;
}

bool
KernelGenerator::branchOutcome(uint32_t pc)
{
    // Two static-branch populations: loop-like branches that are heavily
    // biased, and data-dependent branches that flip coins. The mixing
    // fraction is chosen so the stream's average linear entropy matches
    // the requested target:
    //   f * 0.5 + (1 - f) * e_biased = target.
    constexpr double kBiasedTakenProb = 0.98;
    const double e_biased =
        2.0 * kBiasedTakenProb * (1.0 - kBiasedTakenProb); // ~0.0392
    const double f = std::clamp(
        (params_.branchEntropy - e_biased) / (0.5 - e_biased), 0.0, 1.0);

    // Classify the static branch by a PC hash so the classification is
    // stable across dynamic executions of the same branch.
    uint64_t h = pc * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    const bool is_flip =
        static_cast<double>(h >> 11) * 0x1.0p-53 < f;
    if (is_flip)
        return rng_.nextBool(0.5);
    return rng_.nextBool(kBiasedTakenProb);
}

uint16_t
KernelGenerator::drawDep(uint64_t emitted)
{
    uint64_t dist;
    if (rng_.nextBool(params_.chainFrac))
        dist = 1 + rng_.nextBounded(2);
    else
        dist = rng_.nextGeometric(params_.depMean);
    dist = std::min<uint64_t>(dist, 500);
    dist = std::min<uint64_t>(dist, emitted);
    return static_cast<uint16_t>(dist);
}

void
KernelGenerator::emit(ThreadTraceBuilder &builder, uint64_t num_ops)
{
    const double frac_mem = params_.fracLoad + params_.fracStore;

    for (uint64_t n = 0; n < num_ops; ++n) {
        const uint32_t pos = codeCursor_ % params_.codeFootprint;
        const uint32_t pc = codeBase_ + 4 * pos;
        ++codeCursor_;
        ++opsSinceLoad_;
        ++emitted_;

        switch (layout_[pos]) {
          case Role::Branch:
            builder.branch(pc, branchOutcome(pc), drawDep(emitted_ - 1));
            continue;

          case Role::Memory: {
            bool shared = false;
            const uint64_t addr = nextAddress(shared);
            // Shared data has its own write ratio (it controls coherence
            // traffic); private accesses follow the load/store mix.
            const double store_prob = shared ? params_.sharedWriteFrac :
                params_.fracStore / std::max(frac_mem, 1e-9);
            if (rng_.nextBool(store_prob)) {
                builder.store(addr, pc, drawDep(emitted_ - 1),
                              drawDep(emitted_ - 1));
            } else {
                uint16_t dep1 = drawDep(emitted_ - 1);
                // Pointer chasing: serialize this load behind the
                // previous load's completion.
                if (rng_.nextBool(params_.pointerChaseFrac) &&
                    opsSinceLoad_ <= 500 && opsSinceLoad_ < emitted_) {
                    dep1 = static_cast<uint16_t>(opsSinceLoad_);
                }
                builder.load(addr, pc, dep1, 0);
                opsSinceLoad_ = 0;
            }
            continue;
          }

          case Role::Compute: {
            uint16_t dep2 = 0;
            if (rng_.nextBool(params_.dep2Frac))
                dep2 = drawDep(emitted_ - 1);
            builder.op(computeClass_[pos], pc, drawDep(emitted_ - 1), dep2);
            continue;
          }
        }
    }
}

} // namespace rppm

/**
 * @file
 * Parameterized micro-op kernel generator.
 *
 * A kernel emits a stream of micro-ops with controlled, workload-inherent
 * characteristics: instruction mix, dependence structure (ILP), branch
 * predictability (entropy), code footprint, and memory access behaviour
 * (working-set sizes, striding vs. random access, data sharing and write
 * sharing across threads). The synthetic benchmark suite composes kernels
 * with synchronization scaffolding to mimic the paper's Rodinia and Parsec
 * workloads.
 */

#ifndef RPPM_WORKLOAD_KERNEL_HH
#define RPPM_WORKLOAD_KERNEL_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "trace/trace_builder.hh"

namespace rppm {

/** Workload-inherent characteristics of a kernel. */
struct KernelParams
{
    // --- Instruction mix (fractions of non-branch ops; rest is IntAlu).
    double fracLoad = 0.25;
    double fracStore = 0.10;
    double fracFpAdd = 0.05;
    double fracFpMul = 0.05;
    double fracFpDiv = 0.0;
    double fracIntMul = 0.02;
    double fracIntDiv = 0.0;

    // --- Control flow.
    double fracBranch = 0.10;      ///< fraction of all ops that branch
    double branchEntropy = 0.08;   ///< target average linear entropy
    uint32_t codeFootprint = 2048; ///< static instructions in the loop body

    // --- Dependences (ILP).
    double chainFrac = 0.3;        ///< prob. of a distance-1/2 dependence
    double depMean = 12.0;         ///< mean distance of loose dependences
    double dep2Frac = 0.25;        ///< prob. of a second source operand

    // --- Memory behaviour.
    uint64_t privateBytes = 1 << 20;  ///< per-thread working set
    uint64_t sharedBytes = 4 << 20;   ///< working set shared by all threads
    double sharedFrac = 0.1;          ///< prob. a memory op hits shared data
    double sharedWriteFrac = 0.2;     ///< prob. a shared access is a write
    double randomFrac = 0.3;          ///< random (vs. streaming) accesses
    double reuseFrac = 0.35;          ///< prob. of revisiting a hot line
    uint32_t hotLines = 64;           ///< size of the hot reuse pool
    double pointerChaseFrac = 0.0;    ///< loads serialized on prior loads
    uint64_t strideBytes = 64;        ///< streaming stride
};

/**
 * Stateful generator emitting micro-ops for one thread.
 *
 * The generator is deterministic given its seed; the profiler and the
 * simulator therefore see the identical dynamic stream, playing the role
 * of a real binary's execution.
 */
class KernelGenerator
{
  public:
    /**
     * @param params kernel characteristics
     * @param tid thread id (selects the private memory region)
     * @param code_base first PC of this kernel's code region
     * @param rng private random stream
     */
    KernelGenerator(const KernelParams &params, uint32_t tid,
                    uint32_t code_base, Rng rng);

    /** Emit @p num_ops micro-ops into @p builder. */
    void emit(ThreadTraceBuilder &builder, uint64_t num_ops);

  private:
    /** Static role of one code position (fixed across iterations, like
     *  real program text; memory ops pick load/store dynamically). */
    enum class Role : uint8_t
    {
        Compute,   ///< class given by computeClass_
        Memory,
        Branch,
    };

    uint64_t nextAddress(bool &is_shared);
    bool branchOutcome(uint32_t pc);
    uint16_t drawDep(uint64_t emitted);

    KernelParams params_;
    Rng rng_;
    uint32_t codeBase_;
    uint32_t codeCursor_ = 0;
    uint64_t privateBase_;
    uint64_t streamCursor_ = 0;
    uint64_t opsSinceLoad_ = 0;     ///< distance to the previous load
    std::vector<uint64_t> hotPool_; ///< recently touched lines
    uint64_t emitted_ = 0;
    std::vector<Role> layout_;      ///< static code layout (per position)
    std::vector<OpClass> computeClass_;
};

/** Shared-region base address (same for every thread). */
constexpr uint64_t kSharedBase = uint64_t{1} << 40;

/** Private-region base address for @p tid. */
constexpr uint64_t
privateBase(uint32_t tid)
{
    return (uint64_t{tid} + 1) << 32;
}

} // namespace rppm

#endif // RPPM_WORKLOAD_KERNEL_HH

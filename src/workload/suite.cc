#include "workload/suite.hh"

#include <algorithm>

namespace rppm {

namespace {

/** Rodinia defaults: main + 3 workers, all work, classic barriers. */
WorkloadSpec
rodiniaBase(const std::string &name, uint64_t seed)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.seed = seed;
    spec.numWorkers = 3;
    spec.mainWorks = true;
    spec.initOps = 30000;
    spec.finalOps = 8000;
    // Real Rodinia kernels have data-dependent per-thread work variation
    // between barriers; without it the naive MAIN/CRIT baselines would
    // look artificially good (no idle time to mispredict).
    spec.epochJitter = 0.35;
    spec.barrierFlavor = BarrierFlavor::Classic;
    return spec;
}

/** Parsec group 1: main + 4 workers, idle main, very balanced. */
WorkloadSpec
parsecPool(const std::string &name, uint64_t seed)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.seed = seed;
    spec.numWorkers = 4;
    spec.mainWorks = false;
    spec.mainBookkeepingOps = 3000;
    spec.initOps = 40000;
    spec.finalOps = 10000;
    spec.epochJitter = 0.08;
    spec.barrierFlavor = BarrierFlavor::None;
    return spec;
}

/** Parsec group 3: main + 3 workers, main does (almost) no work. */
WorkloadSpec
parsecImbalanced(const std::string &name, uint64_t seed)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.seed = seed;
    spec.numWorkers = 3;
    spec.mainWorks = false;
    spec.mainBookkeepingOps = 6000;
    spec.initOps = 50000;
    spec.finalOps = 12000;
    spec.epochJitter = 0.1;
    return spec;
}

} // namespace

std::vector<SuiteEntry>
rodiniaSuite()
{
    std::vector<SuiteEntry> suite;

    {   // backprop: bandwidth-bound streaming layers; the paper's highest
        // MLP benchmark (up to 5.3).
        WorkloadSpec s = rodiniaBase("backprop", 101);
        s.numEpochs = 12;
        s.opsPerEpoch = 45000;
        s.kernel.privateBytes = 8 << 20;
        s.kernel.randomFrac = 0.1;
        s.kernel.reuseFrac = 0.15;
        s.kernel.fracLoad = 0.30;
        s.kernel.fracStore = 0.14;
        s.kernel.fracFpAdd = 0.14;
        s.kernel.fracFpMul = 0.10;
        s.kernel.chainFrac = 0.12;
        s.kernel.depMean = 24.0;
        s.kernel.sharedFrac = 0.05;
        s.kernel.branchEntropy = 0.03;
        suite.push_back({s, "4,194,304", "rodinia"});
    }
    {   // bfs: irregular graph traversal, data-dependent branches.
        WorkloadSpec s = rodiniaBase("bfs", 102);
        s.numEpochs = 24;
        s.opsPerEpoch = 24000;
        s.epochJitter = 0.6; // frontier sizes vary wildly per level
        s.kernel.privateBytes = 4 << 20;
        s.kernel.sharedBytes = 8 << 20;
        s.kernel.sharedFrac = 0.30;
        s.kernel.randomFrac = 0.85;
        s.kernel.reuseFrac = 0.2;
        s.kernel.branchEntropy = 0.22;
        s.kernel.fracBranch = 0.16;
        s.kernel.fracLoad = 0.32;
        s.kernel.pointerChaseFrac = 0.25;
        suite.push_back({s, "graph8M", "rodinia"});
    }
    {   // cfd: FP-heavy solver with long dependence chains.
        WorkloadSpec s = rodiniaBase("cfd", 103);
        s.numEpochs = 15;
        s.opsPerEpoch = 40000;
        s.kernel.privateBytes = 2 << 20;
        s.kernel.fracFpAdd = 0.18;
        s.kernel.fracFpMul = 0.14;
        s.kernel.fracFpDiv = 0.02;
        s.kernel.chainFrac = 0.45;
        s.kernel.depMean = 6.0;
        s.kernel.branchEntropy = 0.02;
        s.kernel.fracBranch = 0.06;
        suite.push_back({s, "fvcorr.domn.010K", "rodinia"});
    }
    {   // heartwall: compute-dense imaging with a large code footprint.
        WorkloadSpec s = rodiniaBase("heartwall", 104);
        s.numEpochs = 10;
        s.opsPerEpoch = 50000;
        s.kernel.privateBytes = 256 << 10;
        s.kernel.codeFootprint = 12000;
        s.kernel.fracFpAdd = 0.12;
        s.kernel.fracFpMul = 0.12;
        s.kernel.reuseFrac = 0.5;
        s.kernel.branchEntropy = 0.05;
        suite.push_back({s, "test.avi 10", "rodinia"});
    }
    {   // hotspot: stencil with strong spatial locality.
        WorkloadSpec s = rodiniaBase("hotspot", 105);
        s.numEpochs = 16;
        s.opsPerEpoch = 35000;
        s.kernel.privateBytes = 2 << 20;
        s.kernel.reuseFrac = 0.5;
        s.kernel.randomFrac = 0.05;
        s.kernel.fracFpAdd = 0.12;
        s.kernel.fracFpMul = 0.08;
        s.kernel.branchEntropy = 0.02;
        suite.push_back({s, "16384 5", "rodinia"});
    }
    {   // kmeans: streams a big dataset against hot centroids.
        WorkloadSpec s = rodiniaBase("kmeans", 106);
        s.numEpochs = 12;
        s.opsPerEpoch = 45000;
        s.kernel.privateBytes = 16 << 20;
        s.kernel.reuseFrac = 0.4;
        s.kernel.hotLines = 16;
        s.kernel.randomFrac = 0.05;
        s.kernel.fracLoad = 0.34;
        s.kernel.fracFpAdd = 0.10;
        s.kernel.fracFpMul = 0.08;
        s.kernel.branchEntropy = 0.04;
        suite.push_back({s, "kdd_cup", "rodinia"});
    }
    {   // lavaMD: compute-bound particle interactions, tiny working set.
        WorkloadSpec s = rodiniaBase("lavaMD", 107);
        s.numEpochs = 8;
        s.opsPerEpoch = 55000;
        s.kernel.privateBytes = 128 << 10;
        s.kernel.fracFpAdd = 0.16;
        s.kernel.fracFpMul = 0.16;
        s.kernel.fracFpDiv = 0.015;
        s.kernel.reuseFrac = 0.6;
        s.kernel.branchEntropy = 0.015;
        s.kernel.fracBranch = 0.05;
        suite.push_back({s, "10", "rodinia"});
    }
    {   // leukocyte: compute-heavy video tracking.
        WorkloadSpec s = rodiniaBase("leukocyte", 108);
        s.numEpochs = 10;
        s.opsPerEpoch = 50000;
        s.kernel.privateBytes = 512 << 10;
        s.kernel.codeFootprint = 9000;
        s.kernel.fracFpAdd = 0.14;
        s.kernel.fracFpMul = 0.10;
        s.kernel.chainFrac = 0.35;
        s.kernel.branchEntropy = 0.03;
        suite.push_back({s, "testfile.avi 5", "rodinia"});
    }
    {   // lud: triangular solve — shrinking work per epoch (imbalance).
        WorkloadSpec s = rodiniaBase("lud", 109);
        s.numEpochs = 25;
        s.opsPerEpoch = 25000;
        s.imbalance = 0.5;
        s.kernel.privateBytes = 1 << 20;
        s.kernel.fracFpAdd = 0.12;
        s.kernel.fracFpMul = 0.12;
        s.kernel.branchEntropy = 0.02;
        suite.push_back({s, "2048.dat", "rodinia"});
    }
    {   // myocyte: long serial FP chains, very low ILP.
        WorkloadSpec s = rodiniaBase("myocyte", 110);
        s.numEpochs = 6;
        s.opsPerEpoch = 60000;
        s.kernel.privateBytes = 64 << 10;
        s.kernel.chainFrac = 0.6;
        s.kernel.depMean = 4.0;
        s.kernel.fracFpAdd = 0.2;
        s.kernel.fracFpMul = 0.15;
        s.kernel.fracFpDiv = 0.02;
        s.kernel.branchEntropy = 0.01;
        s.kernel.fracBranch = 0.04;
        suite.push_back({s, "myocyte default", "rodinia"});
    }
    {   // nn: nearest neighbour — pure streaming, memory bound.
        WorkloadSpec s = rodiniaBase("nn", 111);
        s.numEpochs = 6;
        s.opsPerEpoch = 50000;
        s.kernel.privateBytes = 8 << 20;
        s.kernel.randomFrac = 0.02;
        s.kernel.reuseFrac = 0.05;
        s.kernel.fracLoad = 0.38;
        s.kernel.fracStore = 0.04;
        s.kernel.fracBranch = 0.06;
        s.kernel.branchEntropy = 0.02;
        s.kernel.chainFrac = 0.1;
        s.kernel.depMean = 30.0;
        suite.push_back({s, "4096k", "rodinia"});
    }
    {   // nw: wavefront with inter-epoch imbalance.
        WorkloadSpec s = rodiniaBase("nw", 112);
        s.numEpochs = 30;
        s.opsPerEpoch = 20000;
        s.imbalance = 0.3;
        s.kernel.privateBytes = 4 << 20;
        s.kernel.randomFrac = 0.15;
        s.kernel.fracLoad = 0.3;
        s.kernel.fracStore = 0.15;
        s.kernel.branchEntropy = 0.06;
        suite.push_back({s, "16k x 16k", "rodinia"});
    }
    {   // particlefilter: random resampling with branchy control.
        WorkloadSpec s = rodiniaBase("particlefilter", 113);
        s.numEpochs = 14;
        s.opsPerEpoch = 30000;
        s.epochJitter = 0.55; // resampling-driven imbalance
        s.kernel.privateBytes = 2 << 20;
        s.kernel.randomFrac = 0.6;
        s.kernel.branchEntropy = 0.15;
        s.kernel.fracBranch = 0.14;
        suite.push_back({s, "128 x 128 x 10", "rodinia"});
    }
    {   // pathfinder: many short barrier-delimited rows.
        WorkloadSpec s = rodiniaBase("pathfinder", 114);
        s.numEpochs = 40;
        s.opsPerEpoch = 15000;
        s.kernel.privateBytes = 1 << 20;
        s.kernel.reuseFrac = 0.3;
        s.kernel.branchEntropy = 0.05;
        suite.push_back({s, "1M x 1k", "rodinia"});
    }
    {   // srad: stencil + FP, moderate working set.
        WorkloadSpec s = rodiniaBase("srad", 115);
        s.numEpochs = 16;
        s.opsPerEpoch = 35000;
        s.kernel.privateBytes = 4 << 20;
        s.kernel.reuseFrac = 0.35;
        s.kernel.fracFpAdd = 0.14;
        s.kernel.fracFpMul = 0.10;
        s.kernel.fracFpDiv = 0.01;
        s.kernel.branchEntropy = 0.02;
        suite.push_back({s, "2048", "rodinia"});
    }
    {   // streamcluster (Rodinia/OpenMP): barrier-dominated clustering.
        WorkloadSpec s = rodiniaBase("streamcluster", 116);
        s.numEpochs = 120;
        s.opsPerEpoch = 8000;
        s.kernel.privateBytes = 2 << 20;
        s.kernel.sharedBytes = 4 << 20;
        s.kernel.sharedFrac = 0.2;
        s.kernel.fracLoad = 0.32;
        s.kernel.branchEntropy = 0.04;
        suite.push_back({s, "256k", "rodinia"});
    }

    return suite;
}

std::vector<SuiteEntry>
parsecSuite()
{
    std::vector<SuiteEntry> suite;

    {   // Blackscholes: embarrassingly parallel FP, join-only sync.
        WorkloadSpec s = parsecPool("Blackscholes", 201);
        s.numEpochs = 1;
        s.opsPerEpoch = 380000;
        s.kernel.privateBytes = 1 << 20;
        s.kernel.fracFpAdd = 0.16;
        s.kernel.fracFpMul = 0.14;
        s.kernel.fracFpDiv = 0.02;
        s.kernel.chainFrac = 0.3;
        s.kernel.branchEntropy = 0.01;
        s.kernel.fracBranch = 0.05;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Bodytrack: critical sections + barriers + a condvar task queue.
        WorkloadSpec s = parsecImbalanced("Bodytrack", 202);
        s.numEpochs = 24;
        s.opsPerEpoch = 14000;
        s.barrierFlavor = BarrierFlavor::Classic;
        s.csPerEpoch = 24;
        s.csLenOps = 40;
        s.numMutexes = 8;
        s.queueItems = 24;
        s.itemOps = 2500;
        s.kernel.privateBytes = 1 << 20;
        s.kernel.fracFpAdd = 0.1;
        s.kernel.fracFpMul = 0.08;
        s.kernel.branchEntropy = 0.08;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Canneal: barrier-phased annealing with shared random access.
        WorkloadSpec s = parsecPool("Canneal", 203);
        s.numEpochs = 16;
        s.opsPerEpoch = 22000;
        s.barrierFlavor = BarrierFlavor::Classic;
        s.kernel.privateBytes = 2 << 20;
        s.kernel.sharedBytes = 16 << 20;
        s.kernel.sharedFrac = 0.45;
        s.kernel.sharedWriteFrac = 0.25;
        s.kernel.randomFrac = 0.9;
        s.kernel.pointerChaseFrac = 0.3;
        s.kernel.branchEntropy = 0.12;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Facesim: condvar barriers + many critical sections; main works
        // slightly more than the workers (paper Fig. 6 group 2).
        WorkloadSpec s;
        s.name = "Facesim";
        s.seed = 204;
        s.numWorkers = 3;
        s.mainWorks = true;
        s.mainWorkScale = 1.15;
        s.initOps = 45000;
        s.finalOps = 10000;
        s.numEpochs = 40;
        s.opsPerEpoch = 16000;
        s.epochJitter = 0.08;
        s.barrierFlavor = BarrierFlavor::CondVar;
        s.csPerEpoch = 8;
        s.csLenOps = 30;
        s.numMutexes = 16;
        s.kernel.privateBytes = 4 << 20;
        s.kernel.fracFpAdd = 0.14;
        s.kernel.fracFpMul = 0.12;
        s.kernel.branchEntropy = 0.03;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Fluidanimate: dominated by fine-grained critical sections.
        WorkloadSpec s = parsecPool("Fluidanimate", 205);
        s.numEpochs = 12;
        s.opsPerEpoch = 34000;
        s.barrierFlavor = BarrierFlavor::Classic;
        s.csPerEpoch = 140;
        s.csLenOps = 18;
        s.numMutexes = 64;
        s.kernel.privateBytes = 2 << 20;
        s.kernel.sharedFrac = 0.15;
        s.kernel.fracFpAdd = 0.12;
        s.kernel.fracFpMul = 0.10;
        s.kernel.branchEntropy = 0.03;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Freqmine: main thread is the bottleneck (paper Fig. 6 group 2);
        // no synchronization other than the final joins.
        WorkloadSpec s;
        s.name = "Freqmine";
        s.seed = 206;
        s.numWorkers = 3;
        s.mainWorks = true;
        s.mainWorkScale = 1.7;
        s.initOps = 60000;
        s.finalOps = 20000;
        s.numEpochs = 1;
        s.opsPerEpoch = 320000;
        s.epochJitter = 0.15;
        s.barrierFlavor = BarrierFlavor::None;
        s.kernel.privateBytes = 4 << 20;
        s.kernel.randomFrac = 0.5;
        s.kernel.branchEntropy = 0.1;
        s.kernel.fracBranch = 0.13;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Raytrace: a few critical sections plus a small condvar queue.
        WorkloadSpec s = parsecPool("Raytrace", 207);
        s.numEpochs = 1;
        s.opsPerEpoch = 300000;
        s.csPerEpoch = 12;
        s.csLenOps = 40;
        s.numMutexes = 4;
        s.queueItems = 16;
        s.itemOps = 3000;
        s.kernel.privateBytes = 6 << 20;
        s.kernel.randomFrac = 0.4;
        s.kernel.pointerChaseFrac = 0.2;
        s.kernel.fracFpAdd = 0.12;
        s.kernel.fracFpMul = 0.10;
        s.kernel.branchEntropy = 0.06;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Streamcluster (Parsec/pthread): barrier-storm, imbalanced.
        WorkloadSpec s = parsecImbalanced("Streamcluster", 208);
        s.numEpochs = 300;
        s.opsPerEpoch = 3500;
        s.barrierFlavor = BarrierFlavor::Classic;
        s.queueItems = 16;
        s.itemOps = 1500;
        s.kernel.privateBytes = 2 << 20;
        s.kernel.sharedBytes = 8 << 20;
        s.kernel.sharedFrac = 0.25;
        s.kernel.fracLoad = 0.33;
        s.kernel.branchEntropy = 0.03;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Swaptions: join-only Monte-Carlo pricing, very balanced.
        WorkloadSpec s = parsecPool("Swaptions", 209);
        s.numEpochs = 1;
        s.opsPerEpoch = 350000;
        s.kernel.privateBytes = 512 << 10;
        s.kernel.fracFpAdd = 0.16;
        s.kernel.fracFpMul = 0.14;
        s.kernel.fracFpDiv = 0.015;
        s.kernel.chainFrac = 0.35;
        s.kernel.branchEntropy = 0.015;
        s.kernel.fracBranch = 0.05;
        suite.push_back({s, "simmedium", "parsec"});
    }
    {   // Vips: producer-consumer condvar pipeline + critical sections.
        WorkloadSpec s = parsecImbalanced("Vips", 210);
        s.numEpochs = 8;
        s.opsPerEpoch = 18000;
        s.barrierFlavor = BarrierFlavor::None;
        s.csPerEpoch = 40;
        s.csLenOps = 25;
        s.numMutexes = 16;
        s.queueItems = 360;
        s.itemOps = 2200;
        s.kernel.privateBytes = 3 << 20;
        s.kernel.fracLoad = 0.3;
        s.kernel.fracStore = 0.14;
        s.kernel.branchEntropy = 0.05;
        suite.push_back({s, "simmedium", "parsec"});
    }

    return suite;
}

std::vector<SuiteEntry>
fullSuite()
{
    std::vector<SuiteEntry> suite = rodiniaSuite();
    std::vector<SuiteEntry> parsec = parsecSuite();
    suite.insert(suite.end(), parsec.begin(), parsec.end());
    return suite;
}

std::optional<SuiteEntry>
findBenchmark(const std::string &name)
{
    for (const SuiteEntry &entry : fullSuite()) {
        if (entry.spec.name == name)
            return entry;
    }
    return std::nullopt;
}

} // namespace rppm

/**
 * @file
 * The synthetic benchmark suite mirroring the paper's evaluation set:
 * all 16 OpenMP Rodinia benchmarks (Tables II and V) and the 10 pthread
 * Parsec benchmarks (Table III, Figs. 4-6).
 *
 * Each spec is tuned to the paper's qualitative description:
 *  - Rodinia: main + 3 workers, all performing work, barrier-synchronized,
 *    well balanced (almost perfect bottlegraphs).
 *  - Parsec group 1 (blackscholes, canneal, fluidanimate, raytrace,
 *    swaptions): main + 4 workers, main only does bookkeeping.
 *  - Parsec group 2 (facesim, freqmine): main + 3 workers, main works too.
 *  - Parsec group 3 (bodytrack, streamcluster, vips): main + 3 workers,
 *    main does little-to-no work — highly imbalanced, parallelism ~3.
 * The synchronization flavor mix per benchmark follows Table III
 * (critical-section-dominated fluidanimate, barrier-dominated
 * streamcluster, condvar-dominated facesim/vips, join-only blackscholes/
 * freqmine/swaptions), scaled down to keep simulation times tractable.
 */

#ifndef RPPM_WORKLOAD_SUITE_HH
#define RPPM_WORKLOAD_SUITE_HH

#include <optional>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace rppm {

/** A benchmark entry: the spec plus its Table-II style input note. */
struct SuiteEntry
{
    WorkloadSpec spec;
    std::string input;   ///< human-readable input description
    std::string suite;   ///< "rodinia" or "parsec"
};

/** The 16 Rodinia benchmarks (OpenMP model, barrier synchronized). */
std::vector<SuiteEntry> rodiniaSuite();

/** The 10 Parsec benchmarks (pthread model). */
std::vector<SuiteEntry> parsecSuite();

/** rodiniaSuite() followed by parsecSuite(), as in Fig. 4. */
std::vector<SuiteEntry> fullSuite();

/** Look up a benchmark by name in the full suite. */
std::optional<SuiteEntry> findBenchmark(const std::string &name);

} // namespace rppm

#endif // RPPM_WORKLOAD_SUITE_HH

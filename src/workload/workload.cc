#include "workload/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/assert.hh"
#include "common/parallel.hh"
#include "trace/trace_builder.hh"

namespace rppm {

namespace {

// Sync object id spaces. Barriers, mutexes, condvars and queues live in
// one 32-bit id space partitioned by high bits so populations never clash.
constexpr uint32_t kBarrierBase = 0x1000;
constexpr uint32_t kMutexBase = 0x2000;
constexpr uint32_t kQueueBase = 0x3000;
constexpr uint32_t kCondBase = 0x4000;

/** Deterministic per-thread skew in [-0.5, 0.5] used for imbalance. */
double
threadSkew(uint32_t slot, uint32_t num_slots)
{
    if (num_slots <= 1)
        return 0.0;
    // Spread slots evenly over [-0.5, 0.5] with a fixed permutation so
    // neighbouring thread ids do not get neighbouring skews.
    const uint32_t perm = (slot * 7 + 3) % num_slots;
    return static_cast<double>(perm) /
        static_cast<double>(num_slots - 1) - 0.5;
}

/** Ops for thread in an epoch, after imbalance and jitter. */
uint64_t
epochOps(const WorkloadSpec &spec, double work_scale, uint32_t slot,
         uint32_t num_slots, Rng &rng)
{
    double ops = static_cast<double>(spec.opsPerEpoch) * work_scale;
    ops *= 1.0 + spec.imbalance * threadSkew(slot, num_slots);
    ops *= 1.0 + spec.epochJitter * (rng.nextDouble() - 0.5);
    return std::max<uint64_t>(1, static_cast<uint64_t>(ops));
}

/** Emit one thread's share of a parallel epoch, with critical sections. */
void
emitEpochWork(const WorkloadSpec &spec, ThreadTraceBuilder &builder,
              KernelGenerator &kernel, uint64_t ops, Rng &rng)
{
    if (spec.csPerEpoch == 0) {
        kernel.emit(builder, ops);
        return;
    }
    // Interleave csPerEpoch critical sections with the open work. The
    // mutex is chosen per section so contention spreads over numMutexes.
    const uint64_t cs_total =
        static_cast<uint64_t>(spec.csPerEpoch) * spec.csLenOps;
    const uint64_t open = ops > cs_total ? ops - cs_total : 0;
    const uint64_t chunk = open / (spec.csPerEpoch + 1);
    for (uint32_t cs = 0; cs < spec.csPerEpoch; ++cs) {
        kernel.emit(builder, chunk);
        const uint32_t mutex = kMutexBase +
            static_cast<uint32_t>(rng.nextBounded(
                std::max<uint32_t>(1, spec.numMutexes)));
        builder.sync(SyncType::MutexLock, mutex);
        kernel.emit(builder, spec.csLenOps);
        builder.sync(SyncType::MutexUnlock, mutex);
    }
    kernel.emit(builder, open - chunk * spec.csPerEpoch);
}

/** Emit the barrier ending an epoch (if any). */
void
emitBarrier(const WorkloadSpec &spec, ThreadTraceBuilder &builder,
            uint32_t epoch)
{
    // Cycle over a few barrier objects like real loop nests do.
    const uint32_t id = kBarrierBase + epoch % 4;
    switch (spec.barrierFlavor) {
      case BarrierFlavor::None:
        break;
      case BarrierFlavor::Classic:
        builder.sync(SyncType::BarrierWait, id);
        break;
      case BarrierFlavor::CondVar:
        // The marker tells the profiler every thread *could* wait here,
        // exactly like the paper's manual source markers.
        builder.sync(SyncType::CondMarker, kCondBase + epoch % 4);
        builder.sync(SyncType::CondBarrier, id);
        break;
    }
}

} // namespace

uint64_t
WorkloadSpec::approxTotalOps() const
{
    const uint32_t participants = numWorkers + (mainWorks ? 1 : 0);
    uint64_t total = initOps + finalOps;
    total += static_cast<uint64_t>(numEpochs) * opsPerEpoch * participants;
    total += static_cast<uint64_t>(queueItems) * itemOps;
    if (!mainWorks)
        total += mainBookkeepingOps;
    return total;
}

namespace {

/** Emit one worker thread's full stream (tid = w + 1). */
void
generateWorkerThread(const WorkloadSpec &spec, uint32_t w, Rng rng,
                     ThreadTrace &out)
{
    const uint32_t participants = spec.numWorkers + (spec.mainWorks ? 1 : 0);
    const uint32_t tid = w + 1;
    ThreadTraceBuilder builder(out);
    KernelGenerator kernel(spec.kernel, tid, 0x10000 * tid,
                           rng.fork(0xf00d));

    // Producer-consumer phase: each worker pops its share of items.
    if (spec.queueItems > 0) {
        uint32_t my_items = spec.queueItems / spec.numWorkers;
        if (w < spec.queueItems % spec.numWorkers)
            ++my_items;
        for (uint32_t item = 0; item < my_items; ++item) {
            builder.sync(SyncType::CondMarker, kCondBase + 0x100);
            builder.sync(SyncType::QueuePop, kQueueBase);
            kernel.emit(builder, spec.itemOps);
        }
    }

    const uint32_t slot = spec.mainWorks ? tid : w;
    for (uint32_t epoch = 0; epoch < spec.numEpochs; ++epoch) {
        const uint64_t ops = epochOps(spec, 1.0, slot, participants, rng);
        emitEpochWork(spec, builder, kernel, ops, rng);
        emitBarrier(spec, builder, epoch);
    }
}

/** Emit the main thread's full stream (tid 0). */
void
generateMainThread(const WorkloadSpec &spec, Rng rng, ThreadTrace &out)
{
    const uint32_t participants = spec.numWorkers + (spec.mainWorks ? 1 : 0);
    ThreadTraceBuilder builder(out);
    KernelGenerator kernel(spec.kernel, 0, 0, rng.fork(0xf00d));

    kernel.emit(builder, spec.initOps);
    for (uint32_t w = 0; w < spec.numWorkers; ++w)
        builder.sync(SyncType::ThreadCreate, w + 1);

    // Produce queue items interleaved with light push-side work.
    for (uint32_t item = 0; item < spec.queueItems; ++item) {
        kernel.emit(builder, std::max<uint64_t>(8, spec.itemOps / 16));
        builder.sync(SyncType::CondMarker, kCondBase + 0x101);
        builder.sync(SyncType::QueuePush, kQueueBase);
    }

    if (spec.mainWorks) {
        for (uint32_t epoch = 0; epoch < spec.numEpochs; ++epoch) {
            const uint64_t ops = epochOps(spec, spec.mainWorkScale, 0,
                                          participants, rng);
            emitEpochWork(spec, builder, kernel, ops, rng);
            emitBarrier(spec, builder, epoch);
        }
    } else if (spec.mainBookkeepingOps > 0) {
        kernel.emit(builder, spec.mainBookkeepingOps);
    }

    for (uint32_t w = 0; w < spec.numWorkers; ++w)
        builder.sync(SyncType::ThreadJoin, w + 1);
    kernel.emit(builder, spec.finalOps);
}

} // namespace

WorkloadTrace
generateWorkload(const WorkloadSpec &spec)
{
    return generateWorkload(spec, 1);
}

WorkloadTrace
generateWorkload(const WorkloadSpec &spec, unsigned jobs)
{
    RPPM_REQUIRE(spec.numWorkers >= 1, "need at least one worker");
    const uint32_t num_threads = spec.numThreads();

    WorkloadTrace trace;
    trace.name = spec.name;
    trace.threads.resize(num_threads);

    Rng master(spec.seed * 0x51a3bc96d47e20efULL + 0xabcdef12345ULL);

    // Fork all per-thread RNG streams up front, in the order the
    // historical sequential generator forked them (worker tids 1..W,
    // then main): fork() advances the parent, so preserving this order
    // is what keeps the generated trace bit-identical for every job
    // count. The streams are then independent and each thread's stream
    // synthesis fans out across the pool.
    std::vector<Rng> rngs;
    rngs.reserve(num_threads);
    for (uint32_t w = 0; w < spec.numWorkers; ++w)
        rngs.push_back(master.fork(w + 1));
    rngs.push_back(master.fork(0));

    ParallelExecutor pool(jobs);
    pool.forEach(num_threads, [&](size_t task) {
        if (task < spec.numWorkers) {
            const uint32_t w = static_cast<uint32_t>(task);
            generateWorkerThread(spec, w, rngs[w], trace.threads[w + 1]);
        } else {
            generateMainThread(spec, rngs[spec.numWorkers],
                               trace.threads[0]);
        }
    });

    trace.validate();
    return trace;
}

WorkloadSpec
barrierLoopSpec(uint32_t threads, uint32_t iterations,
                uint64_t ops_per_iter)
{
    RPPM_REQUIRE(threads >= 2, "barrier loop needs >= 2 threads");
    WorkloadSpec spec;
    spec.name = "barrier-loop";
    spec.numWorkers = threads - 1;
    spec.mainWorks = true;
    spec.initOps = 100;
    spec.finalOps = 100;
    spec.numEpochs = iterations;
    spec.opsPerEpoch = ops_per_iter;
    spec.imbalance = 0.0;
    spec.epochJitter = 0.0;
    spec.barrierFlavor = BarrierFlavor::Classic;
    spec.kernel.privateBytes = 16 << 10; // fits in L1: pure compute loop
    spec.kernel.sharedFrac = 0.0;
    spec.kernel.fracBranch = 0.05;
    spec.kernel.branchEntropy = 0.01;
    return spec;
}

} // namespace rppm

/**
 * @file
 * Multi-threaded workload specification and trace generation.
 *
 * A WorkloadSpec composes kernel blocks with synchronization scaffolding:
 * sequential init/finalization by the main thread, thread creation and
 * join, barrier-delimited parallel epochs (classic OpenMP-style barriers
 * or condvar-implemented pthread barriers), critical sections, and
 * producer-consumer condvar queues. The generator turns a spec into a
 * deterministic WorkloadTrace — the stand-in for running a real Rodinia
 * or Parsec binary.
 */

#ifndef RPPM_WORKLOAD_WORKLOAD_HH
#define RPPM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"
#include "workload/kernel.hh"

namespace rppm {

/** How parallel epochs are delimited. */
enum class BarrierFlavor : uint8_t
{
    None,      ///< epochs run back-to-back; only the final join syncs
    Classic,   ///< OpenMP/pthread barrier (BarrierWait records)
    CondVar,   ///< barrier implemented with a condition variable
};

/** Complete description of a synthetic multi-threaded benchmark. */
struct WorkloadSpec
{
    std::string name = "workload";
    uint64_t seed = 1;

    // --- Thread structure.
    uint32_t numWorkers = 3;     ///< worker threads created by main
    bool mainWorks = true;       ///< main participates in parallel epochs
    double mainWorkScale = 1.0;  ///< main's relative work when it works
    uint64_t mainBookkeepingOps = 2000; ///< main's work when it idles

    // --- Sequential phases (main thread only).
    uint64_t initOps = 20000;
    uint64_t finalOps = 5000;

    // --- Parallel epochs.
    uint32_t numEpochs = 20;
    uint64_t opsPerEpoch = 20000;  ///< per participating thread
    double imbalance = 0.0;        ///< deterministic per-thread skew
    double epochJitter = 0.1;      ///< random per-epoch work variation
    BarrierFlavor barrierFlavor = BarrierFlavor::Classic;

    // --- Critical sections (inside epochs).
    uint32_t csPerEpoch = 0;       ///< per thread per epoch
    uint64_t csLenOps = 60;        ///< ops inside each critical section
    uint32_t numMutexes = 1;

    // --- Producer-consumer phase (before the epochs).
    uint32_t queueItems = 0;       ///< items pushed by main (0 = none)
    uint64_t itemOps = 2000;       ///< consumer work per item

    // --- Kernel characteristics of the parallel work.
    KernelParams kernel;

    /** Threads in the trace: main + workers. */
    uint32_t numThreads() const { return numWorkers + 1; }

    /** Approximate total micro-op count the spec will generate. */
    uint64_t approxTotalOps() const;
};

/** Generate the deterministic trace for @p spec. */
WorkloadTrace generateWorkload(const WorkloadSpec &spec);

/**
 * Generate the trace on up to @p jobs worker threads (0 = all hardware
 * threads), one per workload thread stream. The per-thread RNG streams
 * are forked up front in the sequential generator's order, so the
 * resulting trace is bit-identical for every job count.
 */
WorkloadTrace generateWorkload(const WorkloadSpec &spec, unsigned jobs);

/**
 * The Table-I style microbenchmark: @p threads threads iterating a loop
 * of @p iterations identical bodies of @p ops_per_iter micro-ops with a
 * barrier after every iteration.
 */
WorkloadSpec barrierLoopSpec(uint32_t threads, uint32_t iterations,
                             uint64_t ops_per_iter);

} // namespace rppm

#endif // RPPM_WORKLOAD_WORKLOAD_HH

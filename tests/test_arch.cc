/**
 * @file
 * Unit tests for src/arch: configuration validation and the Table-IV
 * design space.
 */

#include <gtest/gtest.h>

#include "arch/config.hh"

namespace rppm {
namespace {

TEST(Config, BaseConfigIsValid)
{
    const MulticoreConfig cfg = baseConfig();
    EXPECT_EQ(cfg.numCores(), 4u);
    EXPECT_EQ(cfg.core().dispatchWidth, 4u);
    EXPECT_EQ(cfg.core().robSize, 128u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, TableIvHasFiveIsoThroughputPoints)
{
    const auto configs = tableIvConfigs();
    ASSERT_EQ(configs.size(), 5u);
    // Peak throughput (width x frequency) is ~constant (10 Gops/s).
    for (const auto &cfg : configs) {
        const double peak = cfg.core().dispatchWidth * cfg.core().frequencyGHz;
        EXPECT_NEAR(peak, 10.0, 0.05) << cfg.name;
    }
}

TEST(Config, TableIvScalesWindowWithWidth)
{
    const auto configs = tableIvConfigs();
    for (size_t i = 1; i < configs.size(); ++i) {
        EXPECT_GT(configs[i].core().dispatchWidth,
                  configs[i - 1].core().dispatchWidth);
        EXPECT_GT(configs[i].core().robSize, configs[i - 1].core().robSize);
        EXPECT_GT(configs[i].core().issueQueueSize,
                  configs[i - 1].core().issueQueueSize);
        EXPECT_LT(configs[i].core().frequencyGHz,
                  configs[i - 1].core().frequencyGHz);
    }
}

TEST(Config, TableIvBaseMatchesPaper)
{
    const auto configs = tableIvConfigs();
    const auto &base = configs[2];
    EXPECT_EQ(base.name, "Base");
    EXPECT_DOUBLE_EQ(base.core().frequencyGHz, 2.5);
    EXPECT_EQ(base.core().robSize, 128u);
    EXPECT_EQ(base.core().issueQueueSize, 64u);
}

TEST(Config, CacheGeometry)
{
    CacheConfig c{"L1", 32 * 1024, 4, 64, 3};
    EXPECT_EQ(c.numLines(), 512u);
    EXPECT_EQ(c.numSets(), 128u);
}

TEST(Config, ValidateRejectsEmptyCoreTable)
{
    MulticoreConfig cfg = baseConfig();
    cfg.cores.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsRobSmallerThanWidth)
{
    MulticoreConfig cfg = baseConfig();
    cfg.core().robSize = 2;
    cfg.core().dispatchWidth = 4;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsMismatchedLineSizes)
{
    MulticoreConfig cfg = baseConfig();
    cfg.core().l2.lineBytes = 128;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, ValidateRejectsNonIntegralSets)
{
    MulticoreConfig cfg = baseConfig();
    cfg.core().l1d.sizeBytes = 1000; // not a multiple of assoc * line
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, CyclesToNs)
{
    MulticoreConfig cfg = baseConfig();
    cfg.eachCore([](CoreConfig &c) { c.frequencyGHz = 2.0; });
    EXPECT_DOUBLE_EQ(cfg.cyclesToNs(2000.0), 1000.0);
}

TEST(Config, DefaultFusCoverAllClasses)
{
    const auto fus = CoreConfig::defaultFus();
    for (size_t c = 0; c < kNumOpClasses; ++c) {
        EXPECT_GE(fus[c].latency, 1u) << opClassName(static_cast<OpClass>(c));
        EXPECT_GE(fus[c].count, 1u);
    }
    // Divides are long-latency, unpipelined.
    EXPECT_GT(fus[static_cast<size_t>(OpClass::IntDiv)].latency, 10u);
    EXPECT_GT(fus[static_cast<size_t>(OpClass::IntDiv)].interval, 1u);
}

TEST(Config, BranchPredictorBudget)
{
    BranchPredictorConfig bp;
    bp.totalBytes = 4 * 1024;
    // 4KB = 32768 bits / 2-bit counters / 3 tables.
    EXPECT_EQ(bp.tableEntries(), 5461u);
}

} // namespace
} // namespace rppm

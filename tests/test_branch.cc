/**
 * @file
 * Unit tests for src/branch: tournament predictor learning behaviour,
 * linear branch entropy, and the entropy -> miss-rate calibration.
 */

#include <gtest/gtest.h>

#include "branch/entropy.hh"
#include "branch/tournament.hh"
#include "common/rng.hh"

namespace rppm {
namespace {

BranchPredictorConfig
defaultBp()
{
    return BranchPredictorConfig{};
}

TEST(Tournament, LearnsAlwaysTaken)
{
    TournamentPredictor pred(defaultBp());
    for (int i = 0; i < 1000; ++i)
        pred.predictAndUpdate(0x400, true);
    // After warmup the miss rate must be ~0.
    pred.resetStats();
    for (int i = 0; i < 1000; ++i)
        pred.predictAndUpdate(0x400, true);
    EXPECT_LT(pred.stats().missRate(), 0.01);
}

TEST(Tournament, LearnsAlwaysNotTaken)
{
    TournamentPredictor pred(defaultBp());
    for (int i = 0; i < 1000; ++i)
        pred.predictAndUpdate(0x400, false);
    pred.resetStats();
    for (int i = 0; i < 1000; ++i)
        pred.predictAndUpdate(0x400, false);
    EXPECT_LT(pred.stats().missRate(), 0.01);
}

TEST(Tournament, GshareLearnsAlternatingPattern)
{
    // T,N,T,N... is perfectly predictable with one bit of history.
    TournamentPredictor pred(defaultBp());
    for (int i = 0; i < 4000; ++i)
        pred.predictAndUpdate(0x400, i % 2 == 0);
    pred.resetStats();
    for (int i = 0; i < 2000; ++i)
        pred.predictAndUpdate(0x400, i % 2 == 0);
    EXPECT_LT(pred.stats().missRate(), 0.02);
}

TEST(Tournament, GshareLearnsPeriodicPattern)
{
    // Period-4 pattern TTTN requires global history correlation.
    TournamentPredictor pred(defaultBp());
    for (int i = 0; i < 8000; ++i)
        pred.predictAndUpdate(0x400, i % 4 != 3);
    pred.resetStats();
    for (int i = 0; i < 4000; ++i)
        pred.predictAndUpdate(0x400, i % 4 != 3);
    EXPECT_LT(pred.stats().missRate(), 0.05);
}

TEST(Tournament, RandomBranchesMissHalf)
{
    TournamentPredictor pred(defaultBp());
    Rng rng(99);
    for (int i = 0; i < 20000; ++i)
        pred.predictAndUpdate(0x400 + 4 * rng.nextBounded(16),
                              rng.nextBool(0.5));
    EXPECT_NEAR(pred.stats().missRate(), 0.5, 0.05);
}

TEST(Tournament, TracksMultipleBranches)
{
    TournamentPredictor pred(defaultBp());
    // Interleave a taken and a not-taken branch; both should be learned.
    for (int i = 0; i < 2000; ++i) {
        pred.predictAndUpdate(0x100, true);
        pred.predictAndUpdate(0x200, false);
    }
    pred.resetStats();
    for (int i = 0; i < 2000; ++i) {
        pred.predictAndUpdate(0x100, true);
        pred.predictAndUpdate(0x200, false);
    }
    EXPECT_LT(pred.stats().missRate(), 0.02);
}

TEST(Tournament, TinyBudgetRejected)
{
    BranchPredictorConfig cfg;
    cfg.totalBytes = 0;
    EXPECT_THROW(TournamentPredictor pred(cfg), std::invalid_argument);
}

// ------------------------------------------------ BranchEntropyProfile ---

TEST(Entropy, PerfectlyBiasedBranchHasZeroEntropy)
{
    BranchEntropyProfile prof;
    for (int i = 0; i < 1000; ++i)
        prof.record(0x400, true);
    EXPECT_DOUBLE_EQ(prof.averageLinearEntropy(), 0.0);
}

TEST(Entropy, CoinFlipBranchHasHalfEntropy)
{
    BranchEntropyProfile prof;
    for (int i = 0; i < 1000; ++i)
        prof.record(0x400, i % 2 == 0);
    EXPECT_NEAR(prof.averageLinearEntropy(), 0.5, 1e-6);
}

TEST(Entropy, MixtureWeightsByDynamicCount)
{
    BranchEntropyProfile prof;
    // 3000 biased (entropy 0) and 1000 coin-flip (entropy 0.5) branches:
    // weighted average = 0.125.
    for (int i = 0; i < 3000; ++i)
        prof.record(0x100, true);
    for (int i = 0; i < 1000; ++i)
        prof.record(0x200, i % 2 == 0);
    EXPECT_NEAR(prof.averageLinearEntropy(), 0.125, 1e-6);
}

TEST(Entropy, MergeCombinesCounts)
{
    BranchEntropyProfile a, b;
    for (int i = 0; i < 100; ++i) {
        a.record(0x100, true);
        b.record(0x100, false);
    }
    a.merge(b);
    // Merged: p = 0.5 => entropy 0.5.
    EXPECT_NEAR(a.averageLinearEntropy(), 0.5, 1e-6);
    EXPECT_EQ(a.dynamicBranches(), 200u);
}

TEST(Entropy, StaticBranchCount)
{
    BranchEntropyProfile prof;
    prof.record(0x100, true);
    prof.record(0x200, true);
    prof.record(0x100, false);
    EXPECT_EQ(prof.staticBranches(), 2u);
    EXPECT_EQ(prof.dynamicBranches(), 3u);
}

// ---------------------------------------------- EntropyMissRateModel ---

TEST(EntropyModel, ZeroEntropyMapsToNearZeroMissRate)
{
    EntropyMissRateModel model(defaultBp());
    EXPECT_LT(model.missRate(0.0), 0.02);
}

TEST(EntropyModel, FullEntropyMapsToNearHalf)
{
    EntropyMissRateModel model(defaultBp());
    EXPECT_NEAR(model.missRate(0.5), 0.5, 0.08);
}

TEST(EntropyModel, Monotone)
{
    EntropyMissRateModel model(defaultBp());
    double prev = -1.0;
    for (double e = 0.0; e <= 0.5; e += 0.01) {
        const double m = model.missRate(e);
        EXPECT_GE(m, prev - 1e-12) << "at entropy " << e;
        prev = m;
    }
}

TEST(EntropyModel, ClampsOutOfRangeInputs)
{
    EntropyMissRateModel model(defaultBp());
    EXPECT_DOUBLE_EQ(model.missRate(-1.0), model.missRate(0.0));
    EXPECT_DOUBLE_EQ(model.missRate(2.0), model.missRate(0.5));
}

/**
 * Property: the calibrated model predicts the real predictor's miss rate
 * on fresh Bernoulli streams within a few points, across the bias range.
 */
class EntropyAccuracyTest : public ::testing::TestWithParam<double>
{
};

TEST_P(EntropyAccuracyTest, PredictsRealPredictor)
{
    const double p = GetParam();
    EntropyMissRateModel model(defaultBp());
    TournamentPredictor pred(defaultBp());
    BranchEntropyProfile prof;
    Rng rng(static_cast<uint64_t>(p * 10000) + 5);
    for (int i = 0; i < 100000; ++i) {
        const uint64_t pc = 0x800 + 4 * rng.nextBounded(48);
        const bool taken = rng.nextBool(p);
        pred.predictAndUpdate(pc, taken);
        prof.record(pc, taken);
    }
    const double predicted = model.missRate(prof.averageLinearEntropy());
    EXPECT_NEAR(predicted, pred.stats().missRate(), 0.04) << "bias " << p;
}

INSTANTIATE_TEST_SUITE_P(BiasSweep, EntropyAccuracyTest,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
                                           0.99, 1.0));

} // namespace
} // namespace rppm

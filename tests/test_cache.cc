/**
 * @file
 * Unit tests for src/cache: LRU set-associative behaviour, hierarchy
 * latencies, and MESI-style write invalidation.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"

namespace rppm {
namespace {

CacheConfig
tinyCache(uint32_t size_bytes, uint32_t assoc)
{
    return CacheConfig{"tiny", size_bytes, assoc, 64, 1};
}

TEST(Cache, FirstAccessMisses)
{
    Cache c(tinyCache(1024, 2));
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, SecondAccessHits)
{
    Cache c(tinyCache(1024, 2));
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1020, false)); // same 64B line
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, 64B lines, 256B total => 2 sets. Lines mapping to set 0:
    // line numbers 0, 2, 4 (addresses 0x0, 0x80, 0x100).
    Cache c(tinyCache(256, 2));
    c.access(0x000, false);
    c.access(0x080, false);
    // Touch 0x000 so 0x080 becomes LRU.
    c.access(0x000, false);
    // Fill a third line in set 0: must evict 0x080.
    c.access(0x100, false);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x080));
    EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, AssociativityConflicts)
{
    // Direct-mapped: two lines mapping to the same set evict each other.
    Cache c(tinyCache(128, 1)); // 2 sets
    c.access(0x000, false);
    c.access(0x080, false); // same set as 0x000
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x080));
}

TEST(Cache, FullyAssociativeHoldsWorkingSet)
{
    Cache c(tinyCache(1024, 16)); // fully associative, 16 lines
    for (uint64_t i = 0; i < 16; ++i)
        c.access(i * 64, false);
    for (uint64_t i = 0; i < 16; ++i)
        EXPECT_TRUE(c.contains(i * 64)) << i;
    // One more line evicts exactly the LRU (line 0).
    c.access(16 * 64, false);
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(64));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(tinyCache(1024, 2));
    c.access(0x1000, false);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000)); // already gone
    EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache c(tinyCache(1024, 2));
    for (uint64_t i = 0; i < 8; ++i)
        c.access(i * 64, false);
    c.flush();
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_FALSE(c.contains(i * 64));
}

TEST(Cache, MissRateStat)
{
    Cache c(tinyCache(1024, 2));
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.25);
}

/** Property: for the same trace, a larger fully-associative LRU cache
 *  never misses more (LRU inclusion property). */
class CacheInclusionTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CacheInclusionTest, LargerCacheNeverWorse)
{
    const uint32_t lines_small = GetParam();
    Cache small(tinyCache(lines_small * 64, lines_small));
    Cache big(tinyCache(lines_small * 2 * 64, lines_small * 2));
    uint64_t seed = 12345;
    for (int i = 0; i < 20000; ++i) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t addr = (seed >> 33) % (lines_small * 8) * 64;
        small.access(addr, false);
        big.access(addr, false);
    }
    EXPECT_LE(big.stats().misses, small.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheInclusionTest,
                         ::testing::Values(4, 8, 16, 32, 64));

// ----------------------------------------------------- CacheHierarchy ---

MulticoreConfig
smallHierarchyConfig()
{
    MulticoreConfig cfg = baseConfig();
    cfg.setNumCores(2);
    cfg.eachCore([](CoreConfig &c) {
        c.l1d = {"L1D", 1024, 2, 64, 3};
        c.l1i = {"L1I", 1024, 2, 64, 1};
        c.l2 = {"L2", 4096, 4, 64, 10};
        c.memLatency = 200;
    });
    cfg.llc = {"LLC", 16384, 8, 64, 30};
    return cfg;
}

TEST(Hierarchy, LatencyPerLevel)
{
    CacheHierarchy h(smallHierarchyConfig());
    // Cold: memory access.
    auto r = h.dataAccess(0, 0x10000, false);
    EXPECT_EQ(r.level, HitLevel::Memory);
    EXPECT_EQ(r.latency, 3u + 10u + 30u + 200u);
    // Now everything is filled: L1 hit.
    r = h.dataAccess(0, 0x10000, false);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.latency, 3u);
}

TEST(Hierarchy, L2ServesL1Victims)
{
    CacheHierarchy h(smallHierarchyConfig());
    // L1D: 16 lines. Touch 17 distinct lines: line 0 falls to L2.
    for (uint64_t i = 0; i <= 16; ++i)
        h.dataAccess(0, i * 64, false);
    const auto r = h.dataAccess(0, 0, false);
    EXPECT_EQ(r.level, HitLevel::L2);
    EXPECT_EQ(r.latency, 3u + 10u);
}

TEST(Hierarchy, SharedLlcServesRemoteData)
{
    CacheHierarchy h(smallHierarchyConfig());
    h.dataAccess(0, 0x40000, false); // core 0 brings line into LLC
    const auto r = h.dataAccess(1, 0x40000, false);
    // Core 1 misses privately but hits the shared LLC: positive
    // interference across threads.
    EXPECT_EQ(r.level, HitLevel::LLC);
}

TEST(Hierarchy, WriteInvalidatesRemoteCopies)
{
    CacheHierarchy h(smallHierarchyConfig());
    h.dataAccess(0, 0x40000, false);
    h.dataAccess(1, 0x40000, false); // both cores now cache the line
    h.dataAccess(1, 0x40000, false); // L1 hit for core 1
    EXPECT_EQ(h.coreStats(1).l1dMisses, 1u);

    // Core 0 writes: core 1's copies must be invalidated.
    h.dataAccess(0, 0x40000, true);
    const auto r = h.dataAccess(1, 0x40000, false);
    EXPECT_NE(r.level, HitLevel::L1);
    EXPECT_TRUE(r.coherenceMiss);
    EXPECT_GE(h.coreStats(1).invalidationsReceived, 1u);
    EXPECT_GE(h.coreStats(1).coherenceMisses, 1u);
}

TEST(Hierarchy, NoSelfInvalidation)
{
    CacheHierarchy h(smallHierarchyConfig());
    h.dataAccess(0, 0x40000, true);
    const auto r = h.dataAccess(0, 0x40000, false);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_FALSE(r.coherenceMiss);
    EXPECT_EQ(h.coreStats(0).invalidationsReceived, 0u);
}

TEST(Hierarchy, InstrFetchHitIsFree)
{
    CacheHierarchy h(smallHierarchyConfig());
    EXPECT_GT(h.instrFetch(0, 0x400), 0u); // cold
    EXPECT_EQ(h.instrFetch(0, 0x400), 0u); // warm
    EXPECT_EQ(h.coreStats(0).l1iMisses, 1u);
    EXPECT_EQ(h.coreStats(0).l1iAccesses, 2u);
}

TEST(Hierarchy, StatsTrackPerCore)
{
    CacheHierarchy h(smallHierarchyConfig());
    h.dataAccess(0, 0x100, false);
    h.dataAccess(0, 0x100, false);
    h.dataAccess(1, 0x200, true);
    EXPECT_EQ(h.coreStats(0).l1dAccesses, 2u);
    EXPECT_EQ(h.coreStats(0).l1dMisses, 1u);
    EXPECT_EQ(h.coreStats(1).l1dAccesses, 1u);
}

} // namespace
} // namespace rppm

/**
 * @file
 * Chaos suite: the fault-injection layer (common/fault.hh) driven
 * through every registered injection point end to end.
 *
 *  - plan parsing: trigger semantics, unknown points and malformed
 *    triggers rejected loudly, env-variable installation;
 *  - the io helpers under injected faults: sendFull/recvFull transfers
 *    stay byte-identical through partial sends and EINTR storms,
 *    writeFileAtomic survives ENOSPC without touching the target and
 *    leaves torn renames for the next reader's checksum to catch;
 *  - checksummed artifacts: a flipped byte or a torn tail in an RPPMTRC
 *    or RPPMPRF container is rejected as a checksum mismatch by the
 *    whole-file, view and streaming readers, while legacy version-1
 *    (pre-checksum) images still load;
 *  - the ProfileCache quarantines corrupt artifacts to *.corrupt and
 *    self-heals by recomputing and rewriting byte-identical bytes;
 *  - the daemon serves byte-identical results under a benign fault
 *    plan, fails deadline-expired requests without poisoning shared
 *    state, sheds load deterministically at the admission bound, and
 *    converges under concurrent shed/retry pressure (the hammer runs
 *    in the ThreadSanitizer CI shard).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.hh"
#include "common/binio.hh"
#include "common/fault.hh"
#include "common/mmap.hh"
#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "study/profile_cache.hh"
#include "study/study.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stream.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** Every test leaves the process-global plan disarmed, whatever
 *  happened: a leaked plan would silently chaos-test unrelated tests. */
class Chaos : public ::testing::Test
{
  protected:
    void TearDown() override { fault::clearPlan(); }
};

/** A unique, self-cleaning temp directory per test. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(std::filesystem::temp_directory_path() /
                ("rppm_chaos_test_" + tag + "_" +
                 std::to_string(static_cast<unsigned long>(::getpid()))))
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    std::string str() const { return path_.string(); }
    std::string file(const std::string &name) const
    {
        return (path_ / name).string();
    }

  private:
    std::filesystem::path path_;
};

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void
flipByteAt(const std::string &path, uint64_t offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good()) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
}

WorkloadSpec
chaosSpec(const char *name)
{
    WorkloadSpec spec = barrierLoopSpec(3, 4, 2500);
    spec.name = name;
    spec.csPerEpoch = 2;
    spec.kernel.sharedFrac = 0.2;
    return spec;
}

ProfilerOptions
lightProfiler()
{
    ProfilerOptions opts;
    opts.microTraceLength = 100;
    opts.microTraceInterval = 2000;
    return opts;
}

std::string
socketPathFor(const char *tag)
{
    return "/tmp/rppm_chaos_" + std::string(tag) + "_" +
           std::to_string(static_cast<unsigned long>(::getpid())) + ".sock";
}

// ------------------------------------------------------------ the plan ---

TEST_F(Chaos, PlanTriggersFireDeterministically)
{
    fault::installPlan("io.pread.short=every:3");
    EXPECT_TRUE(fault::armed());
    int fires = 0;
    for (int i = 0; i < 9; ++i)
        fires += fault::fire(fault::kPreadShort) ? 1 : 0;
    EXPECT_EQ(fires, 3);
    const fault::PointStats every = fault::pointStats(fault::kPreadShort);
    EXPECT_EQ(every.hits, 9u);
    EXPECT_EQ(every.fires, 3u);
    // Unarmed points never fire even while a plan is live.
    EXPECT_FALSE(fault::fire(fault::kRenameTorn));

    fault::installPlan("net.recv.eintr=once:2");
    std::vector<bool> hits;
    for (int i = 0; i < 5; ++i)
        hits.push_back(fault::fire(fault::kRecvEintr));
    EXPECT_EQ(hits, (std::vector<bool>{false, true, false, false, false}));

    fault::installPlan("net.send.partial=first:3");
    fires = 0;
    for (int i = 0; i < 5; ++i)
        fires += fault::fire(fault::kSendPartial) ? 1 : 0;
    EXPECT_EQ(fires, 3);

    // prob:100 always fires, prob:0 never; both draw from a seeded
    // stream so runs are reproducible.
    fault::installPlan("io.write.enospc=prob:100:7,fs.rename.torn=prob:0:7");
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(fault::fire(fault::kWriteEnospc));
        EXPECT_FALSE(fault::fire(fault::kRenameTorn));
    }

    fault::clearPlan();
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::fire(fault::kPreadShort));
}

TEST_F(Chaos, PlanRejectsUnknownPointsAndMalformedTriggers)
{
    // A typo must fail loudly, not arm nothing.
    EXPECT_THROW(fault::installPlan("io.pread.shrot=once:1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::installPlan("io.pread.short"),
                 std::invalid_argument);
    EXPECT_THROW(fault::installPlan("io.pread.short=every"),
                 std::invalid_argument);
    EXPECT_THROW(fault::installPlan("io.pread.short=every:0"),
                 std::invalid_argument);
    EXPECT_THROW(fault::installPlan("io.pread.short=sometimes:3"),
                 std::invalid_argument);
    EXPECT_THROW(fault::installPlan("io.pread.short=prob:150:1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::installPlan("io.pread.short=prob:50"),
                 std::invalid_argument);
    EXPECT_FALSE(fault::armed());

    // An empty spec clears the previous plan.
    fault::installPlan("io.pread.short=once:1");
    EXPECT_TRUE(fault::armed());
    fault::installPlan("");
    EXPECT_FALSE(fault::armed());

    // The registry exposes every point a plan may name.
    const std::vector<std::string> points = fault::knownPoints();
    EXPECT_EQ(points.size(), 5u);
    for (const std::string &point : points)
        fault::installPlan(point + "=once:1"); // each must parse
    fault::clearPlan();
}

TEST_F(Chaos, PlanInstallsFromEnvironment)
{
    ASSERT_EQ(::setenv("RPPM_FAULT_PLAN", "fs.rename.torn=once:1", 1), 0);
    EXPECT_TRUE(fault::installPlanFromEnv());
    EXPECT_TRUE(fault::armed());
    fault::clearPlan();

    ASSERT_EQ(::setenv("RPPM_FAULT_PLAN", "not-a-plan", 1), 0);
    EXPECT_THROW(fault::installPlanFromEnv(), std::invalid_argument);

    ASSERT_EQ(::unsetenv("RPPM_FAULT_PLAN"), 0);
    EXPECT_FALSE(fault::installPlanFromEnv());
}

// ----------------------------------------------------------- io helpers ---

TEST_F(Chaos, SendRecvFullByteIdenticalUnderInjectedFaults)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string payload(256 * 1024, '\0');
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i * 131 + 17);

    // first:N fires from the very first syscall, so the retry paths run
    // no matter how few calls the kernel needs for the transfer.
    fault::installPlan("net.send.partial=first:4,net.recv.eintr=first:3");
    std::thread sender([&] {
        const io::XferResult r =
            io::sendFull(fds[0], payload.data(), payload.size());
        EXPECT_EQ(r.status, io::XferResult::Ok);
    });
    std::string got(payload.size(), '\0');
    const io::XferResult r = io::recvFull(fds[1], got.data(), got.size());
    sender.join();
    EXPECT_EQ(r.status, io::XferResult::Ok);
    EXPECT_EQ(got, payload);
    EXPECT_GT(fault::pointStats(fault::kSendPartial).fires, 0u);
    EXPECT_GT(fault::pointStats(fault::kRecvEintr).fires, 0u);
    fault::clearPlan();

    // Peer close before the first byte is a clean Eof; mid-transfer it
    // is an error — a frame boundary is the only honest place to stop.
    ASSERT_EQ(::send(fds[0], "abc", 3, 0), 3);
    ::close(fds[0]);
    char head[3];
    EXPECT_EQ(io::recvFull(fds[1], head, 3).status, io::XferResult::Ok);
    char tail[4];
    EXPECT_EQ(io::recvFull(fds[1], tail, 4).status, io::XferResult::Eof);
    ::close(fds[1]);
}

TEST_F(Chaos, WriteFileAtomicEnospcNeverTouchesTheTarget)
{
    const TempDir dir("enospc");
    const std::string path = dir.file("artifact.bin");
    io::writeFileAtomic(path, "first-version");
    ASSERT_EQ(readFileBytes(path), "first-version");

    fault::installPlan("io.write.enospc=once:1");
    EXPECT_THROW(io::writeFileAtomic(path, "second-version"),
                 std::runtime_error);
    // The published artifact is untouched; the torn temp file stays
    // behind exactly as a real crash would leave it.
    EXPECT_EQ(readFileBytes(path), "first-version");
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid()));
    EXPECT_TRUE(std::filesystem::exists(tmp));
    EXPECT_EQ(fault::pointStats(fault::kWriteEnospc).fires, 1u);

    // The once-trigger is exhausted: the retry succeeds and the rename
    // consumes the temp file.
    io::writeFileAtomic(path, "second-version");
    EXPECT_EQ(readFileBytes(path), "second-version");
    EXPECT_FALSE(std::filesystem::exists(tmp));
}

// ---------------------------------------------------- checksummed files ---

TEST_F(Chaos, FlippedByteInTracePayloadFailsEveryReader)
{
    const TempDir dir("flip");
    const std::string path = dir.file("trace.rppmtrc");
    const ColumnarTrace trace =
        ColumnarTrace::fromWorkload(generateWorkload(chaosSpec("flip")));
    saveTraceToFile(trace, path);

    // Aim inside a known column payload via the layout index so the
    // damage is caught by the CRC trailer, not a structural check.
    uint64_t addrOffset = 0;
    {
        const FdFile file(path);
        const TraceFileLayout layout = indexTraceFile(file);
        ASSERT_EQ(layout.version, kTraceFormatVersion);
        ASSERT_TRUE(layout.hasBlockCrcs);
        ASSERT_GT(layout.threads[0].addr.count, 0u);
        addrOffset = layout.threads[0].addr.offset;
        EXPECT_EQ(verifyTraceFileCrcs(file, layout),
                  9 * layout.threads.size());
    }
    flipByteAt(path, addrOffset + 4);

    const auto isChecksum = [](const std::invalid_argument &e) {
        return std::string(e.what()).find("checksum mismatch") !=
               std::string::npos;
    };
    try {
        loadTraceFromFile(path);
        FAIL() << "copying loader accepted a corrupt trace";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(isChecksum(e)) << e.what();
    }
    try {
        loadTraceViewFromFile(path);
        FAIL() << "view loader accepted a corrupt trace";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(isChecksum(e)) << e.what();
    }
    try {
        const FdFile file(path);
        verifyTraceFileCrcs(file, indexTraceFile(file));
        FAIL() << "streaming verifier accepted a corrupt trace";
    } catch (const std::invalid_argument &e) {
        EXPECT_TRUE(isChecksum(e)) << e.what();
    }
}

TEST_F(Chaos, StreamingIndexVerifiesUnderInjectedShortReads)
{
    const TempDir dir("shortread");
    const std::string path = dir.file("trace.rppmtrc");
    const ColumnarTrace trace = ColumnarTrace::fromWorkload(
        generateWorkload(chaosSpec("shortread")));
    saveTraceToFile(trace, path);

    // Injected short preads perturb the syscall pattern, not the bytes:
    // indexing and full verification still succeed.
    fault::installPlan("io.pread.short=every:2");
    const FdFile file(path);
    const TraceFileLayout layout = indexTraceFile(file);
    EXPECT_EQ(verifyTraceFileCrcs(file, layout), 9 * layout.threads.size());
    EXPECT_GT(fault::pointStats(fault::kPreadShort).fires, 0u);
}

TEST_F(Chaos, LegacyVersion1TraceStillLoads)
{
    const TempDir dir("legacy");
    const std::string path = dir.file("legacy.rppmtrc");
    const ColumnarTrace trace = ColumnarTrace::fromWorkload(
        generateWorkload(chaosSpec("legacy")));

    // Craft a pre-checksum version-1 image: same layout, no trailers.
    BinWriter out(kTraceMagic, 1, /*block_crcs=*/false);
    out.str(trace.name);
    out.u64(trace.threads.size());
    for (const ThreadColumns &cols : trace.threads) {
        out.u64(cols.numRecords());
        out.column(kTagOp, cols.op);
        out.column(kTagPc, cols.pc);
        out.column(kTagDep1, cols.dep1);
        out.column(kTagDep2, cols.dep2);
        out.column(kTagAddr, cols.addr);
        out.column(kTagTaken, cols.taken);
        out.column(kTagSyncPos, cols.syncPos);
        out.column(kTagSyncTyp, cols.syncType);
        out.column(kTagSyncArg, cols.syncArg);
    }
    {
        std::ofstream os(path, std::ios::binary);
        os.write(out.data().data(),
                 static_cast<std::streamsize>(out.data().size()));
        ASSERT_TRUE(os.good());
    }

    // Both loaders accept the legacy image and decode the same trace:
    // re-serializing with the current writer is byte-identical to
    // serializing the original.
    std::ostringstream expect;
    saveTrace(trace, expect);
    for (const ColumnarTrace &loaded :
         {loadTraceFromFile(path), loadTraceViewFromFile(path)}) {
        std::ostringstream seen;
        saveTrace(loaded, seen);
        EXPECT_EQ(seen.str(), expect.str());
    }

    // The streaming index knows there is nothing to verify.
    const FdFile file(path);
    const TraceFileLayout layout = indexTraceFile(file);
    EXPECT_EQ(layout.version, 1u);
    EXPECT_FALSE(layout.hasBlockCrcs);
    EXPECT_EQ(verifyTraceFileCrcs(file, layout), 0u);
}

// --------------------------------------------------- cache self-healing ---

TEST_F(Chaos, ProfileCacheQuarantinesTornArtifactAndSelfHeals)
{
    const TempDir dir("heal");
    const WorkloadSpec spec = chaosSpec("chaos-heal");
    const WorkloadTrace trace = generateWorkload(spec);
    int computations = 0;
    const auto compute = [&] {
        ++computations;
        return profileWorkload(trace);
    };

    std::string goodBytes;
    std::string path;
    {
        ProfileCache cache;
        cache.setDirectory(dir.str());
        cache.getOrCompute(spec.name, {}, compute);
        path = cache.pathFor(spec.name, {});
        goodBytes = readFileBytes(path);
        ASSERT_FALSE(goodBytes.empty());
    }

    // A torn rename during the next rewrite truncates the artifact on
    // disk while the writer believes it succeeded — only the next
    // reader can catch it.
    fault::installPlan("fs.rename.torn=once:1");
    io::writeFileAtomic(path, goodBytes);
    fault::clearPlan();
    ASSERT_LT(std::filesystem::file_size(path), goodBytes.size());

    // The next cache load quarantines the damage and self-heals: the
    // torn bytes move to *.corrupt for post-mortem, the profile is
    // recomputed, and the rewritten artifact is byte-identical to the
    // never-corrupted one.
    ProfileCache fresh;
    fresh.setDirectory(dir.str());
    fresh.getOrCompute(spec.name, {}, compute);
    EXPECT_EQ(computations, 2);
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
    EXPECT_EQ(readFileBytes(path), goodBytes);
    const ProfileCache::Stats stats = fresh.stats();
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.diskHits, 0u);
}

TEST_F(Chaos, ProfileCacheDegradesToMemoryOnEnospc)
{
    const TempDir dir("cachespc");
    const WorkloadSpec spec = chaosSpec("chaos-enospc");
    const WorkloadTrace trace = generateWorkload(spec);
    const auto compute = [&] { return profileWorkload(trace); };

    // ENOSPC during the write-back: the study must still get its
    // profile (the disk tier is an optimization), just without a
    // durable artifact.
    fault::installPlan("io.write.enospc=once:1");
    ProfileCache cache;
    cache.setDirectory(dir.str());
    const auto starved = cache.getOrCompute(spec.name, {}, compute);
    EXPECT_EQ(fault::pointStats(fault::kWriteEnospc).fires, 1u);
    fault::clearPlan();
    ASSERT_NE(starved, nullptr);
    const std::string path = cache.pathFor(spec.name, {});
    EXPECT_FALSE(std::filesystem::exists(path));

    // Once space returns, a fresh cache recomputes and publishes an
    // artifact carrying the exact same profile bytes.
    ProfileCache healed;
    healed.setDirectory(dir.str());
    const auto recovered = healed.getOrCompute(spec.name, {}, compute);
    ASSERT_TRUE(std::filesystem::exists(path));
    std::ostringstream a, b;
    saveProfileBinary(*starved, a);
    saveProfileBinary(*recovered, b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(readFileBytes(path), b.str());
}

// ------------------------------------------------------- hardened daemon ---

TEST_F(Chaos, DaemonByteIdenticalToLocalUnderBenignFaultPlan)
{
    using namespace rppm::server;

    // A trace-file workload (exercising pread through the streaming
    // profiler) plus a suite kernel, referenced fault-free first.
    const TempDir dir("daemon");
    WorkloadSpec spec = chaosSpec("chaos-daemon");
    const ColumnarTrace trace =
        ColumnarTrace::fromWorkload(generateWorkload(spec));
    const std::string tracePath = dir.file("chaos.rppmtrc");
    saveTraceToFile(trace, tracePath);
    const std::vector<MulticoreConfig> configs = tableIvConfigs();

    Study study;
    study.add(WorkloadSource(loadTraceViewFromFile(tracePath)));
    study.addWorkload(*findBenchmark("backprop"));
    study.addConfigs(configs);
    study.addEvaluator("rppm");
    study.profilerOptions(lightProfiler());
    const StudyResult local = study.run();

    // Arm every benign point: perturbed syscalls, identical bytes.
    fault::installPlan("io.pread.short=every:5,net.recv.eintr=every:4,"
                       "net.send.partial=every:3");

    ServerOptions opts;
    opts.socketPath = socketPathFor("benign");
    opts.workers = 2;
    opts.streamChunkRecords = 512; // force the out-of-core pread path
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);
    const auto check = [&](WorkloadRefKind kind, const std::string &ref,
                           const std::string &name) {
        Query query;
        query.kind = kind;
        query.workload = ref;
        query.profiler = lightProfiler();
        query.configs = configs;
        const auto results = client.evaluate(query);
        ASSERT_EQ(results.size(), configs.size());
        for (size_t i = 0; i < results.size(); ++i) {
            const Evaluation &want = local.at(name, configs[i].name, "rppm");
            EXPECT_EQ(results[i].cycles, want.cycles)
                << name << "/" << configs[i].name;
            EXPECT_EQ(results[i].seconds, want.seconds);
            EXPECT_EQ(results[i].threadSeconds, want.threadSeconds);
        }
    };
    check(WorkloadRefKind::TracePath, tracePath, spec.name);
    check(WorkloadRefKind::SuiteName, "backprop", "backprop");

    EXPECT_GT(fault::pointStats(fault::kPreadShort).fires, 0u);
    EXPECT_GT(fault::pointStats(fault::kRecvEintr).fires, 0u);
    EXPECT_GT(fault::pointStats(fault::kSendPartial).fires, 0u);

    client.close();
    server.stop();
}

TEST_F(Chaos, DeadlineExpiryFailsRequestWithoutPoisoningState)
{
    using namespace rppm::server;

    const std::vector<MulticoreConfig> configs = tableIvConfigs();
    Study study;
    study.addWorkload(*findBenchmark("backprop"));
    study.addConfigs(configs);
    study.addEvaluator("rppm");
    study.profilerOptions(lightProfiler());
    const StudyResult local = study.run();

    ServerOptions opts;
    opts.socketPath = socketPathFor("deadline");
    opts.workers = 1;
    RppmServer server(opts);
    server.start();

    // Occupy the single worker with a wide cold grid so the doomed
    // request's cells sit in the queue past their 1 ms deadline.
    RppmClient blocker;
    blocker.connect(opts.socketPath);
    std::atomic<bool> firstCell{false};
    std::thread blocking([&] {
        Query big;
        big.workload = "backprop";
        big.profiler = lightProfiler();
        big.configs = configs;
        const auto hetero = heterogeneousConfigs();
        big.configs.insert(big.configs.end(), hetero.begin(), hetero.end());
        try {
            blocker.evaluate(big, [&](const CellResult &) {
                firstCell.store(true, std::memory_order_release);
            });
        } catch (const std::exception &) {
            firstCell.store(true, std::memory_order_release);
        }
    });
    while (!firstCell.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    RppmClient client;
    client.connect(opts.socketPath);
    Query doomed;
    doomed.workload = "backprop";
    doomed.profiler = lightProfiler();
    doomed.deadlineMs = 1;
    doomed.configs = configs;
    try {
        client.evaluate(doomed);
        FAIL() << "1ms deadline behind a busy worker did not expire";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
            << e.what();
    }
    blocking.join();
    EXPECT_GE(server.stats().deadlineExpired, 1u);

    // The connection survives, and the shared memo/profile state the
    // failed request touched is not poisoned: a clean retry on the same
    // connection is byte-identical to the local reference.
    Query retry = doomed;
    retry.deadlineMs = 0;
    const auto results = client.evaluate(retry);
    ASSERT_EQ(results.size(), configs.size());
    for (size_t i = 0; i < results.size(); ++i) {
        const Evaluation &want = local.at("backprop", configs[i].name, "rppm");
        EXPECT_EQ(results[i].cycles, want.cycles) << configs[i].name;
        EXPECT_EQ(results[i].seconds, want.seconds);
        EXPECT_EQ(results[i].threadSeconds, want.threadSeconds);
    }
    client.close();
    blocker.close();
    server.stop();
}

TEST_F(Chaos, LoadSheddingIsDeterministicAtTheAdmissionBound)
{
    using namespace rppm::server;

    ServerOptions opts;
    opts.socketPath = socketPathFor("shed");
    opts.maxQueuedCells = 1;
    opts.busyRetryMs = 1;
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);
    client.setBackoff({/*maxAttempts=*/3, /*capMs=*/2, /*seed=*/1});

    // Two cells can never fit a one-cell bound: every attempt is shed
    // and the client's backoff gives up after its budget.
    Query big;
    big.workload = "backprop";
    big.profiler = lightProfiler();
    big.configs = {baseConfig(), tableIvConfigs().front()};
    try {
        client.evaluate(big);
        FAIL() << "a 2-cell request was admitted past a 1-cell bound";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos)
            << e.what();
    }
    EXPECT_EQ(server.stats().shed, 3u); // one per attempt

    // Shedding is per-request, not per-connection: a request that fits
    // the bound is admitted and served on the same connection.
    Query fits;
    fits.workload = "backprop";
    fits.profiler = lightProfiler();
    fits.configs = {baseConfig()};
    const auto results = client.evaluate(fits);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].cycles, 0.0);

    client.close();
    server.stop();
}

TEST_F(Chaos, HammerConvergesUnderShedsAndDeadlines)
{
    using namespace rppm::server;

    // The TSan acceptance bar: concurrent clients mixing doomed
    // (1 ms deadline) and clean queries against a bounded queue. Shed
    // requests back off and retry, expired requests fail cleanly, and
    // every delivered result is byte-identical to the local reference —
    // failed requests never corrupt shared memo or cache state.
    const std::vector<std::string> kernels = {"backprop", "bfs"};
    const std::vector<MulticoreConfig> configs = {baseConfig(),
                                                  tableIvConfigs().front()};
    Study study;
    for (const std::string &kernel : kernels)
        study.addWorkload(*findBenchmark(kernel));
    study.addConfigs(configs);
    study.addEvaluator("rppm");
    study.profilerOptions(lightProfiler());
    const StudyResult local = study.run();

    ServerOptions opts;
    opts.socketPath = socketPathFor("hammer");
    opts.workers = 2;
    opts.maxQueuedCells = 2 * configs.size();
    opts.busyRetryMs = 1;
    RppmServer server(opts);
    server.start();

    constexpr int kClients = 4;
    constexpr int kRounds = 4;
    std::atomic<int> mismatches{0};
    std::atomic<int> hardFailures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                RppmClient client;
                client.connect(opts.socketPath);
                client.setBackoff(
                    {/*maxAttempts=*/10000, /*capMs=*/2,
                     /*seed=*/static_cast<uint64_t>(c) + 1});
                for (int round = 0; round < kRounds; ++round) {
                    Query query;
                    query.workload = kernels[(c + round) % kernels.size()];
                    query.profiler = lightProfiler();
                    query.configs = configs;
                    // Odd rounds race a 1 ms deadline; either outcome
                    // is legal, but delivered cells must be exact.
                    query.deadlineMs = (round % 2 != 0) ? 1 : 0;
                    std::vector<CellResult> results;
                    try {
                        results = client.evaluate(query);
                    } catch (const std::runtime_error &) {
                        continue; // expired: clean failure, no results
                    }
                    for (size_t i = 0; i < results.size(); ++i) {
                        const Evaluation &want = local.at(
                            query.workload, configs[i].name, "rppm");
                        if (results[i].cycles != want.cycles ||
                            results[i].seconds != want.seconds ||
                            results[i].threadSeconds != want.threadSeconds)
                            ++mismatches;
                    }
                }
            } catch (const std::exception &) {
                ++hardFailures;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(hardFailures.load(), 0);

    // After the storm the state must still serve exact results.
    RppmClient client;
    client.connect(opts.socketPath);
    for (const std::string &kernel : kernels) {
        Query query;
        query.workload = kernel;
        query.profiler = lightProfiler();
        query.configs = configs;
        const auto results = client.evaluate(query);
        ASSERT_EQ(results.size(), configs.size());
        for (size_t i = 0; i < results.size(); ++i) {
            const Evaluation &want =
                local.at(kernel, configs[i].name, "rppm");
            EXPECT_EQ(results[i].cycles, want.cycles)
                << kernel << "/" << configs[i].name;
            EXPECT_EQ(results[i].threadSeconds, want.threadSeconds);
        }
    }
    client.close();
    server.stop();
}

TEST_F(Chaos, ServerShedsProfileTierBeforeMemoTier)
{
    using namespace rppm::server;

    // With a combined resident budget of one byte, every admission
    // triggers graceful degradation. Results stay exact — the budget
    // sheds speed (cached profiles, then memo engines), never bytes.
    ServerOptions opts;
    opts.socketPath = socketPathFor("budget");
    opts.maxResidentBytes = 1;
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);
    Query query;
    query.workload = "backprop";
    query.profiler = lightProfiler();
    query.configs = {baseConfig(), tableIvConfigs().front()};
    const auto first = client.evaluate(query);
    const auto second = client.evaluate(query);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].cycles, second[i].cycles);
        EXPECT_EQ(first[i].threadSeconds, second[i].threadSeconds);
    }
    client.close();
    server.stop();

    const RppmServer::Stats stats = server.stats();
    EXPECT_GT(stats.profile.evictions, 0u); // profile tier shed first
    EXPECT_EQ(stats.profile.residentBytes, 0u);
}

} // namespace
} // namespace rppm
